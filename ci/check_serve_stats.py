#!/usr/bin/env python3
"""Validate an `acic_run serve` rolling-stats JSONL file.

Usage: check_serve_stats.py STATS.jsonl [--min-windows N]

Every line must parse as JSON. serve.window lines must carry the
dashboard fields (workload, scheme, seq, retired, window_mpki,
window_ipc, minst_per_s) with per-scheme seq numbers increasing from
0 without gaps; serve.final lines must carry the end-of-run summary
fields. The file must hold at least --min-windows window lines
(default 3) and at least one final line per scheme seen.

Exit codes: 0 ok, 1 malformed stats, 2 usage.
"""

import argparse
import json
import sys

WINDOW_FIELDS = {"workload", "scheme", "seq", "retired", "cycle",
                 "window_insts", "window_mpki", "window_ipc",
                 "minst_per_s"}
FINAL_FIELDS = {"workload", "scheme", "instructions", "cycles",
                "l1i_misses", "mpki", "ipc"}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("stats")
    parser.add_argument(
        "--min-windows", type=int, default=3,
        help="minimum serve.window lines required (default 3)")
    args = parser.parse_args()

    windows = 0
    next_seq = {}
    finals = set()
    try:
        with open(args.stats, encoding="utf-8") as handle:
            for lineno, line in enumerate(handle, 1):
                if not line.strip():
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as err:
                    print(f"{args.stats}:{lineno}: not JSON: {err}",
                          file=sys.stderr)
                    return 1
                kind = event.get("ev")
                if kind == "serve.window":
                    missing = WINDOW_FIELDS - event.keys()
                    if missing:
                        print(f"{args.stats}:{lineno}: serve.window "
                              f"missing {sorted(missing)}",
                              file=sys.stderr)
                        return 1
                    scheme = event["scheme"]
                    want = next_seq.get(scheme, 0)
                    if event["seq"] != want:
                        print(f"{args.stats}:{lineno}: {scheme} seq "
                              f"{event['seq']}, expected {want}",
                              file=sys.stderr)
                        return 1
                    next_seq[scheme] = want + 1
                    windows += 1
                elif kind == "serve.final":
                    missing = FINAL_FIELDS - event.keys()
                    if missing:
                        print(f"{args.stats}:{lineno}: serve.final "
                              f"missing {sorted(missing)}",
                              file=sys.stderr)
                        return 1
                    finals.add(event["scheme"])
    except OSError as err:
        print(f"check_serve_stats: {err}", file=sys.stderr)
        return 2

    if windows < args.min_windows:
        print(f"only {windows} serve.window line(s), expected at "
              f"least {args.min_windows}", file=sys.stderr)
        return 1
    if not finals:
        print("no serve.final lines", file=sys.stderr)
        return 1
    print(f"serve stats ok: {windows} windows over "
          f"{len(next_seq)} scheme(s), finals for "
          f"{', '.join(sorted(finals))}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
