#!/usr/bin/env python3
"""Compare a fresh BENCH_throughput.json against the committed
baseline and fail on per-scheme Minst/s regressions.

Usage:
  check_throughput.py BASELINE CURRENT [--tolerance F] [--normalize]
  check_throughput.py BASELINE CURRENT --update

Absolute throughput differs across machines, so a raw compare of a
laptop-committed baseline against a CI runner would mostly measure
the runner. --normalize cancels that: every current rate is rescaled
by the median baseline/current ratio across shared labels, leaving
only *relative* shifts — a scheme whose hot path got slower while the
others held still fails even on a slower machine. CI runs with
--normalize; a local before/after on one machine can omit it.

The two runs must cover the same labels: a benched scheme silently
dropping out of the matrix (or a new one sneaking in unbaselined)
is reported as LABEL DIVERGENCE and fails, never skated over as
"fewer shared rows". Landing an intentional matrix change — or a new
performance level — goes through --update, which validates CURRENT
and rewrites BASELINE from it verbatim (commit the result).

Labels ending in "@streamed" are the live-ingest lane
(bench_throughput's framed-stream rows). They are GATED like the
file-backed rows: the zero-copy chunk path made their timing
reproducible enough to hold to the same tolerance, and the whole
point of the lane is to keep the streamed/file gap closed. Labels
starting with "serve" are the multi-engine serve scaling lane:
recorded and reported for trajectory, but informational — the
parallel/serial ratio measures the runner's core count, not the
code, so gating it would mostly test CI hardware.

Exit codes: 0 ok, 1 regression or label divergence, 2 usage.
"""

import argparse
import json
import statistics
import sys

INFORMATIONAL_PREFIX = "serve"


def informational(label):
    """True for rows recorded but not gated (see module docstring)."""
    return label.startswith(INFORMATIONAL_PREFIX)


def load_rates(path):
    """label -> minst_per_sec from a BENCH_throughput.json."""
    with open(path, encoding="utf-8") as handle:
        doc = json.load(handle)
    if doc.get("format") != 1 or doc.get("bench") != "throughput":
        raise ValueError(f"{path} is not a throughput bench file")
    rates = {}
    for row in doc.get("rows", []):
        rate = float(row["minst_per_sec"])
        if rate > 0.0:
            rates[row["label"]] = rate
    return rates


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument(
        "--tolerance", type=float, default=0.10,
        help="allowed fractional slowdown per label (default 0.10)")
    parser.add_argument(
        "--normalize", action="store_true",
        help="rescale by the median baseline/current ratio so only "
             "relative (per-scheme) shifts count")
    parser.add_argument(
        "--update", action="store_true",
        help="validate CURRENT and rewrite BASELINE from it, landing "
             "a new committed baseline instead of comparing")
    args = parser.parse_args()

    try:
        current = load_rates(args.current)
        if args.update:
            # A missing or stale-format baseline is fine when we are
            # about to replace it.
            try:
                baseline = load_rates(args.baseline)
            except (OSError, ValueError, KeyError):
                baseline = {}
        else:
            baseline = load_rates(args.baseline)
    except (OSError, ValueError, KeyError) as err:
        print(f"check_throughput: {err}", file=sys.stderr)
        return 2

    if args.update:
        with open(args.current, encoding="utf-8") as handle:
            text = handle.read()
        with open(args.baseline, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"baseline updated: {args.baseline} <- {args.current} "
              f"({len(current)} label(s))")
        for label in sorted(current):
            old = baseline.get(label)
            was = f"{old:.2f}" if old is not None else "(new)"
            print(f"  {label:<28} {was:>9} -> {current[label]:.2f} "
                  f"Minst/s")
        dropped = sorted(set(baseline) - set(current))
        if dropped:
            print(f"  dropped label(s): {', '.join(dropped)}")
        return 0

    only_base = sorted(label for label in set(baseline) - set(current)
                       if not informational(label))
    only_cur = sorted(label for label in set(current) - set(baseline)
                      if not informational(label))
    if only_base or only_cur:
        print("check_throughput: LABEL DIVERGENCE between baseline "
              "and current run", file=sys.stderr)
        if only_base:
            print(f"  only in baseline: {', '.join(only_base)}",
                  file=sys.stderr)
        if only_cur:
            print(f"  only in current:  {', '.join(only_cur)}",
                  file=sys.stderr)
        print("  (intentional matrix change? land it with --update)",
              file=sys.stderr)
        return 1

    shared = sorted(set(baseline) & set(current))
    gated = [label for label in shared if not informational(label)]
    if not gated:
        print("check_throughput: no shared gated labels between "
              "baseline and current run", file=sys.stderr)
        return 1

    scale = 1.0
    if args.normalize:
        # Gated labels only: the informational lane's jitter must not
        # perturb the machine-speed estimate.
        scale = statistics.median(
            baseline[label] / current[label] for label in gated)
        print(f"machine-speed normalization: x{scale:.3f} "
              f"(median baseline/current over {len(gated)} labels)")

    failed = []
    header = f"{'label':<28} {'baseline':>9} {'current':>9} {'delta':>8}"
    print(header)
    print("-" * len(header))
    for label in shared:
        adjusted = current[label] * scale
        delta = adjusted / baseline[label] - 1.0
        mark = ""
        if informational(label):
            mark = "  (informational, not gated)"
        elif delta < -args.tolerance:
            failed.append(label)
            mark = "  REGRESSION"
        elif delta > args.tolerance:
            # A big (relative) win usually means the baseline is
            # stale; nudge without failing.
            mark = "  improved -- consider refreshing the baseline"
        print(f"{label:<28} {baseline[label]:>9.2f} {adjusted:>9.2f} "
              f"{delta:>+7.1%}{mark}")

    if failed:
        print(f"\nFAIL: {len(failed)} label(s) regressed more than "
              f"{args.tolerance:.0%}: {', '.join(failed)}",
              file=sys.stderr)
        return 1
    print(f"\nOK: {len(gated)} gated label(s) within "
          f"{args.tolerance:.0%}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
