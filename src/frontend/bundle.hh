/**
 * @file
 * Fetch-bundle formation. The 6-wide fetch unit (Table II) pulls
 * maximal runs of sequential instructions from one block per cycle; a
 * bundle ends at a taken control transfer, a block boundary, or the
 * fetch width. One bundle corresponds to one L1i demand access, so the
 * bundle sequence *is* the demand block-access sequence -- the oracle
 * pass and the timing simulator must agree on it exactly, which is why
 * both use this walker.
 */

#ifndef ACIC_FRONTEND_BUNDLE_HH
#define ACIC_FRONTEND_BUNDLE_HH

#include <cstdint>

#include "common/types.hh"
#include "trace/trace.hh"

namespace acic {

class Serializer;
class Deserializer;

/** One fetch group: up to kMaxInsts instructions from one block. */
struct Bundle
{
    static constexpr unsigned kMaxInsts = 6;

    /** Block all instructions live in. */
    BlockAddr blk = 0;
    /** PC of the first instruction. */
    Addr pc = 0;
    /** Instruction count. */
    std::uint8_t count = 0;
    /** The member instructions (branch metadata for the BP unit). */
    TraceInst insts[kMaxInsts];
};

/** Checkpoint one bundle (FTQ entries hold them by value). */
void saveBundle(Serializer &s, const Bundle &bundle);
void loadBundle(Deserializer &d, Bundle &bundle);

/** Streams bundles off a TraceSource; deterministic and re-usable. */
class BundleWalker
{
  public:
    /**
     * @param source trace to walk; not owned; must outlive the walker.
     * @param width fetch width (bundle size cap).
     */
    explicit BundleWalker(TraceSource &source,
                          unsigned width = Bundle::kMaxInsts);

    /** Rewind the underlying trace and restart. */
    void reset();

    /** @return false when the trace is exhausted. */
    bool next(Bundle &out);

    /** Bundles produced so far. */
    std::uint64_t bundlesEmitted() const { return emitted_; }

    /**
     * Checkpoint the walker. save() records the number of
     * instructions consumed from the source plus the lookahead
     * state; load() seeks the (fresh) source to that instruction via
     * TraceSource::seekTo() and restores the lookahead, after which
     * next() resumes the identical bundle sequence.
     */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    /** Hand out the next instruction: from the zero-copy run when
     *  the source exposes one (TraceSource::acquireRun), else from
     *  the internal batch refilled via source_.decodeBatch(). Both
     *  are pure read-ahead: consumed_ counts only what the walker
     *  has handed out, so the checkpoint format (and load()'s
     *  seekTo) are untouched — reset()/load() simply drop them. */
    bool pullInst(TraceInst &out);
    /** Slow half of pullInst (run drained): acquire a new run or
     *  fall back to the decode batch. */
    bool pullInstSlow(TraceInst &out);

    TraceSource &source_;
    unsigned width_;
    TraceInst pending_{};
    bool havePending_ = false;
    bool exhausted_ = false;
    std::uint64_t emitted_ = 0;
    /** Instructions handed out (read-ahead not included). */
    std::uint64_t consumed_ = 0;
    /** Zero-copy instruction run (memory-backed sources). */
    const TraceInst *run_ = nullptr;
    std::uint64_t runLen_ = 0;
    std::uint64_t runPos_ = 0;
    /** Batched read-ahead over source_ (not checkpointed). */
    InstBatch batch_{};
    unsigned batchPos_ = 0;
};

} // namespace acic

#endif // ACIC_FRONTEND_BUNDLE_HH
