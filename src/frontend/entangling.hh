/**
 * @file
 * Entangling instruction prefetcher (Ros & Jimborean, ISCA 2021),
 * the alternative baseline prefetcher of Fig. 20/21. The prefetcher
 * *entangles* a miss-causing block with a source block accessed at
 * least one miss-latency earlier, so that a future access to the
 * source prefetches the destination just in time. We model the 4K
 * entangled-table configuration the paper cites, with two
 * destinations per entry.
 */

#ifndef ACIC_FRONTEND_ENTANGLING_HH
#define ACIC_FRONTEND_ENTANGLING_HH

#include <cstdint>
#include <deque>
#include <vector>

#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** See file comment. */
class EntanglingPrefetcher
{
  public:
    /**
     * @param table_entries entangled table size (paper config: 4096).
     * @param max_dsts destinations per source entry.
     * @param history_depth recent-access window searched for sources.
     */
    explicit EntanglingPrefetcher(std::size_t table_entries = 4096,
                                  unsigned max_dsts = 2,
                                  std::size_t history_depth = 64);

    /**
     * Record a demand access and emit any entangled prefetch
     * candidates for it into the internal queue.
     */
    void onDemandAccess(BlockAddr blk, Cycle now);

    /** Learn an entangling when a demand miss is detected. */
    void onDemandMiss(BlockAddr blk, Cycle now, Cycle fill_latency);

    /** Pop the next prefetch candidate, if any. */
    bool popCandidate(BlockAddr &out);

    /** Candidates currently queued. */
    std::size_t queued() const { return candidates_.size(); }

    /** Storage cost in bits (~40 KB noted by the ACIC paper). */
    std::uint64_t storageBits() const;

    /** Checkpoint table, history window, and candidate queue. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Entry
    {
        BlockAddr src = 0;
        bool valid = false;
        std::uint8_t nextSlot = 0;
        std::vector<BlockAddr> dsts;
    };

    struct HistoryRec
    {
        BlockAddr blk;
        Cycle cycle;
    };

    std::size_t indexOf(BlockAddr blk) const;

    std::size_t tableEntries_;
    unsigned maxDsts_;
    std::size_t historyDepth_;
    std::vector<Entry> table_;
    std::deque<HistoryRec> history_;
    std::deque<BlockAddr> candidates_;
};

} // namespace acic

#endif // ACIC_FRONTEND_ENTANGLING_HH
