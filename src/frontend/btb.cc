#include "frontend/btb.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

Btb::Btb(std::uint32_t entries, std::uint32_t ways)
    : sets_(entries / ways), ways_(ways)
{
    ACIC_ASSERT(ways >= 1 && entries % ways == 0, "BTB geometry");
    ACIC_ASSERT((sets_ & (sets_ - 1)) == 0,
                "BTB sets must be a power of two");
    entries_.resize(entries);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    const std::uint32_t set = setOf(pc);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            e.stamp = ++tick_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::uint32_t set = setOf(pc);
    Entry *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.stamp = ++tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < oldest) {
            oldest = e.stamp;
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->stamp = ++tick_;
}

void
Btb::save(Serializer &s) const
{
    s.u64(sets_);
    s.u64(ways_);
    s.u64(tick_);
    for (const Entry &e : entries_) {
        s.u64(e.pc);
        s.u64(e.target);
        s.b(e.valid);
        s.u64(e.stamp);
    }
}

void
Btb::load(Deserializer &d)
{
    d.expectGeometry("btb sets", sets_);
    d.expectGeometry("btb ways", ways_);
    tick_ = d.u64();
    for (Entry &e : entries_) {
        e.pc = d.u64();
        e.target = d.u64();
        e.valid = d.b();
        e.stamp = d.u64();
    }
}

void
ReturnAddressStack::save(Serializer &s) const
{
    s.vecU64(stack_);
    s.u32(top_);
    s.u32(size_);
}

void
ReturnAddressStack::load(Deserializer &d)
{
    std::vector<std::uint64_t> stack = d.vecU64();
    if (stack.size() != stack_.size())
        throw SerializeError(
            "checkpoint geometry mismatch for RAS depth: snapshot "
            "has " +
            std::to_string(stack.size()) +
            ", running configuration has " +
            std::to_string(stack_.size()));
    stack_ = std::move(stack);
    top_ = d.u32();
    size_ = d.u32();
    if (top_ >= stack_.size() || size_ > stack_.size())
        throw SerializeError("checkpoint RAS cursor out of range "
                             "(corrupt payload)");
}

} // namespace acic
