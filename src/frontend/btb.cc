#include "frontend/btb.hh"

#include "common/logging.hh"

namespace acic {

Btb::Btb(std::uint32_t entries, std::uint32_t ways)
    : sets_(entries / ways), ways_(ways)
{
    ACIC_ASSERT(ways >= 1 && entries % ways == 0, "BTB geometry");
    ACIC_ASSERT((sets_ & (sets_ - 1)) == 0,
                "BTB sets must be a power of two");
    entries_.resize(entries);
}

std::optional<Addr>
Btb::lookup(Addr pc)
{
    const std::uint32_t set = setOf(pc);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            e.stamp = ++tick_;
            return e.target;
        }
    }
    return std::nullopt;
}

void
Btb::update(Addr pc, Addr target)
{
    const std::uint32_t set = setOf(pc);
    Entry *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.pc == pc) {
            e.target = target;
            e.stamp = ++tick_;
            return;
        }
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < oldest) {
            oldest = e.stamp;
            victim = &e;
        }
    }
    victim->valid = true;
    victim->pc = pc;
    victim->target = target;
    victim->stamp = ++tick_;
}

} // namespace acic
