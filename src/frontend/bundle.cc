#include "frontend/bundle.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

namespace {

void
saveInst(Serializer &s, const TraceInst &inst)
{
    s.u64(inst.pc);
    s.u64(inst.nextPc);
    s.u8(static_cast<std::uint8_t>(inst.kind));
    s.b(inst.taken);
}

void
loadInst(Deserializer &d, TraceInst &inst)
{
    inst.pc = d.u64();
    inst.nextPc = d.u64();
    const std::uint8_t kind = d.u8();
    if (kind > static_cast<std::uint8_t>(BranchKind::Return))
        throw SerializeError("checkpoint branch kind out of range "
                             "(corrupt payload)");
    inst.kind = static_cast<BranchKind>(kind);
    inst.taken = d.b();
}

} // namespace

void
saveBundle(Serializer &s, const Bundle &bundle)
{
    s.u64(bundle.blk);
    s.u64(bundle.pc);
    s.u8(bundle.count);
    for (unsigned i = 0; i < bundle.count; ++i)
        saveInst(s, bundle.insts[i]);
}

void
loadBundle(Deserializer &d, Bundle &bundle)
{
    bundle.blk = d.u64();
    bundle.pc = d.u64();
    bundle.count = d.u8();
    if (bundle.count > Bundle::kMaxInsts)
        throw SerializeError("checkpoint bundle instruction count "
                             "out of range (corrupt payload)");
    for (unsigned i = 0; i < bundle.count; ++i)
        loadInst(d, bundle.insts[i]);
}

BundleWalker::BundleWalker(TraceSource &source, unsigned width)
    : source_(source), width_(width)
{
    ACIC_ASSERT(width_ >= 1 && width_ <= Bundle::kMaxInsts,
                "bundle width out of range");
}

void
BundleWalker::reset()
{
    source_.reset();
    havePending_ = false;
    exhausted_ = false;
    emitted_ = 0;
    consumed_ = 0;
    run_ = nullptr;
    runLen_ = 0;
    runPos_ = 0;
    batch_.count = 0;
    batchPos_ = 0;
}

bool
BundleWalker::pullInst(TraceInst &out)
{
    if (runPos_ < runLen_) {
        out = run_[runPos_++];
        return true;
    }
    return pullInstSlow(out);
}

bool
BundleWalker::pullInstSlow(TraceInst &out)
{
    // Prefer one zero-copy run over the source's whole remainder;
    // sources without contiguous storage return nullptr and we read
    // through the 64-record decode batch instead.
    runPos_ = 0;
    run_ = source_.acquireRun(~std::uint64_t{0}, runLen_);
    if (run_ != nullptr && runLen_ != 0) {
        runPos_ = 1;
        out = run_[0];
        return true;
    }
    runLen_ = 0;
    if (batchPos_ >= batch_.count) {
        if (source_.decodeBatch(batch_) == 0)
            return false;
        batchPos_ = 0;
    }
    out = batch_.get(batchPos_++);
    return true;
}

void
BundleWalker::save(Serializer &s) const
{
    s.u64(consumed_);
    saveInst(s, pending_);
    s.b(havePending_);
    s.b(exhausted_);
    s.u64(emitted_);
}

void
BundleWalker::load(Deserializer &d)
{
    const std::uint64_t consumed = d.u64();
    if (!source_.seekTo(consumed))
        throw SerializeError(
            "checkpoint trace cursor position " +
            std::to_string(consumed) +
            " lies beyond the trace (length " +
            std::to_string(source_.length()) + ")");
    consumed_ = consumed;
    loadInst(d, pending_);
    havePending_ = d.b();
    exhausted_ = d.b();
    emitted_ = d.u64();
    // Read-ahead (run + batch) is walker-internal and not
    // checkpointed; the freshly sought source refills it on the
    // next pull.
    run_ = nullptr;
    runLen_ = 0;
    runPos_ = 0;
    batch_.count = 0;
    batchPos_ = 0;
}

bool
BundleWalker::next(Bundle &out)
{
    if (!havePending_) {
        if (exhausted_ || !pullInst(pending_)) {
            exhausted_ = true;
            return false;
        }
        ++consumed_;
        havePending_ = true;
    }

    out.blk = blockOf(pending_.pc);
    out.pc = pending_.pc;
    out.count = 0;

    for (;;) {
        out.insts[out.count++] = pending_;
        const TraceInst current = pending_;
        havePending_ = pullInst(pending_);
        if (havePending_)
            ++consumed_;
        if (!havePending_) {
            exhausted_ = true;
            break;
        }
        // A redirect (taken control transfer) ends the fetch group.
        if (current.redirects())
            break;
        // Sequential flow: stop at block boundary or width.
        if (blockOf(current.nextPc) != out.blk ||
            out.count >= width_) {
            break;
        }
    }
    ++emitted_;
    return true;
}

} // namespace acic
