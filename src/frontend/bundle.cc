#include "frontend/bundle.hh"

#include "common/logging.hh"

namespace acic {

BundleWalker::BundleWalker(TraceSource &source, unsigned width)
    : source_(source), width_(width)
{
    ACIC_ASSERT(width_ >= 1 && width_ <= Bundle::kMaxInsts,
                "bundle width out of range");
}

void
BundleWalker::reset()
{
    source_.reset();
    havePending_ = false;
    exhausted_ = false;
    emitted_ = 0;
}

bool
BundleWalker::next(Bundle &out)
{
    if (!havePending_) {
        if (exhausted_ || !source_.next(pending_)) {
            exhausted_ = true;
            return false;
        }
        havePending_ = true;
    }

    out.blk = blockOf(pending_.pc);
    out.pc = pending_.pc;
    out.count = 0;

    for (;;) {
        out.insts[out.count++] = pending_;
        const TraceInst current = pending_;
        havePending_ = source_.next(pending_);
        if (!havePending_) {
            exhausted_ = true;
            break;
        }
        // A redirect (taken control transfer) ends the fetch group.
        if (current.redirects())
            break;
        // Sequential flow: stop at block boundary or width.
        if (blockOf(current.nextPc) != out.blk ||
            out.count >= width_) {
            break;
        }
    }
    ++emitted_;
    return true;
}

} // namespace acic
