/**
 * @file
 * Branch Target Buffer: Table II specifies 8192 entries, 4-way.
 * Stores targets of taken branches; a taken branch missing in the BTB
 * costs a front-end re-steer bubble.
 */

#ifndef ACIC_FRONTEND_BTB_HH
#define ACIC_FRONTEND_BTB_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** See file comment. */
class Btb
{
  public:
    /** @param entries total entries; @param ways associativity. */
    explicit Btb(std::uint32_t entries = 8192, std::uint32_t ways = 4);

    /** Predicted target for a branch PC, if present. */
    std::optional<Addr> lookup(Addr pc);

    /** Install/update the target of a taken branch. */
    void update(Addr pc, Addr target);

    std::uint32_t entryCount() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /** Checkpoint the full table state (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Entry
    {
        Addr pc = 0;
        Addr target = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    std::uint32_t setOf(Addr pc) const
    {
        return static_cast<std::uint32_t>(pc >> 2) & (sets_ - 1);
    }

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
};

/**
 * Return Address Stack. Calls push their return address; returns pop
 * a prediction. Fixed depth with wrap-around overwrite on overflow,
 * as in real front ends.
 */
class ReturnAddressStack
{
  public:
    explicit ReturnAddressStack(std::uint32_t depth = 32)
        : stack_(depth, 0)
    {
    }

    /** Record the return address of a call. */
    void
    push(Addr return_pc)
    {
        top_ = (top_ + 1) % stack_.size();
        stack_[top_] = return_pc;
        if (size_ < stack_.size())
            ++size_;
    }

    /** Predict a return target; 0 when empty. */
    Addr
    pop()
    {
        if (size_ == 0)
            return 0;
        const Addr predicted = stack_[top_];
        top_ = (top_ + stack_.size() - 1) % stack_.size();
        --size_;
        return predicted;
    }

    std::uint32_t size() const { return size_; }

    /** Checkpoint the stack contents (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    std::vector<Addr> stack_;
    std::uint32_t top_ = 0;
    std::uint32_t size_ = 0;
};

} // namespace acic

#endif // ACIC_FRONTEND_BTB_HH
