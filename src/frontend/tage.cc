#include "frontend/tage.hh"

#include <algorithm>

#include "common/serialize.hh"

namespace acic {

namespace {

/**
 * Second fold stage: XOR-collapse a 64-bit word to `bits` wide.
 * For bits >= 8 a word holds at most 8 fields, so a 3-step halving
 * network folds them all into field 0 — identical to the sequential
 * mask-and-shift loop (field order is irrelevant under XOR), minus
 * the loop-carried dependency chain.
 */
std::uint64_t
foldDown(std::uint64_t folded, unsigned bits)
{
    const std::uint64_t mask = (std::uint64_t{1} << bits) - 1;
    if (bits >= 8 && bits * 4 < 64) {
        folded ^= folded >> (bits * 4);
        folded ^= folded >> (bits * 2);
        folded ^= folded >> bits;
        return folded & mask;
    }
    std::uint64_t out = 0;
    while (folded != 0) {
        out ^= folded & mask;
        folded >>= bits;
    }
    return out;
}

} // namespace

Tage::Tage()
{
    bimodal_.assign(std::size_t{1} << kBimodalBits, SatCounter(2, 1));
    for (auto &table : tables_)
        table.assign(std::size_t{1} << kTableBits, TaggedEntry{});
    refold();
}

void
Tage::refold()
{
    for (unsigned t = 0; t < kTables; ++t) {
        const unsigned length = kHistLen[t];
        // XOR-fold the most recent `length` history bits into one
        // 64-bit word; the index- and tag-width folds share it.
        std::uint64_t folded = 0;
        unsigned consumed = 0;
        while (consumed < length) {
            const unsigned word = consumed / 64;
            const unsigned off = consumed % 64;
            const unsigned take =
                std::min<unsigned>(64 - off, length - consumed);
            std::uint64_t chunk = ghr_[word] >> off;
            if (take < 64)
                chunk &= (std::uint64_t{1} << take) - 1;
            folded ^= chunk;
            consumed += take;
        }
        folded64_[t] = folded;
        foldedIdx_[t] = foldDown(folded, kTableBits);
        foldedTag_[t] = foldDown(folded, kTagBits);
    }
}

std::size_t
Tage::tableIndex(Addr pc, unsigned table) const
{
    const std::uint64_t h = foldedIdx_[table];
    const std::uint64_t p = pc >> 2;
    return static_cast<std::size_t>(
        (p ^ (p >> kTableBits) ^ h ^ (h << 1)) &
        ((std::uint64_t{1} << kTableBits) - 1));
}

std::uint16_t
Tage::tableTag(Addr pc, unsigned table) const
{
    const std::uint64_t h = foldedTag_[table];
    const std::uint64_t p = pc >> 2;
    return static_cast<std::uint16_t>(
        (p ^ (p >> 7) ^ (h << 2) ^ (table * 0x9d)) &
        ((1u << kTagBits) - 1));
}

Tage::Lookup
Tage::lookup(Addr pc)
{
    Lookup result;
    for (int t = kTables - 1; t >= 0; --t) {
        const std::size_t idx =
            tableIndex(pc, static_cast<unsigned>(t));
        const TaggedEntry &e = tables_[static_cast<unsigned>(t)][idx];
        if (e.tag != tableTag(pc, static_cast<unsigned>(t)))
            continue;
        if (result.provider < 0) {
            result.provider = t;
            result.providerIdx = idx;
            result.providerPred = e.ctr >= 4;
        } else if (result.alt < 0) {
            result.alt = t;
            result.altIdx = idx;
            result.altPred = e.ctr >= 4;
            break;
        }
    }
    const std::size_t bi =
        static_cast<std::size_t>(pc >> 2) &
        ((std::size_t{1} << kBimodalBits) - 1);
    const bool bimodal_pred = bimodal_[bi].msbSet();
    if (result.alt < 0) {
        result.altPred = bimodal_pred;
        result.altIdx = bi;
    }
    result.prediction =
        result.provider >= 0 ? result.providerPred : bimodal_pred;
    return result;
}

bool
Tage::predict(Addr pc)
{
    last_ = lookup(pc);
    lastPc_ = pc;
    ++predictions_;
    return last_.prediction;
}

void
Tage::pushHistory(bool taken)
{
    const std::uint64_t b = taken ? 1u : 0u;
    const std::uint64_t carry1 = ghr_[0] >> 63;
    const std::uint64_t carry2 = ghr_[1] >> 63;

    // Incremental stage-1 fold, exact by the chunk-fold algebra: with
    // L = kHistLen[t] and fold_old the XOR of the 64-bit chunks of
    // ghr[0:L), the new history is (ghr[0:L-1) << 1) | outcome, so
    //
    //   fold_new = ((fold_old ^ outgoing-bit) << 1) ^ outcome
    //              ^ (top bit of every full chunk below L-1)
    //
    // — dropping history bit L-1 from its in-chunk offset, shifting
    // every chunk up one (64-bit shifts truncate each chunk's top
    // bit exactly like the chunk-wise fold does), and re-inserting
    // the bits that cross chunk boundaries. refold() computes the
    // same values from scratch (ctor/load pin the equivalence).
    for (unsigned t = 0; t < kTables; ++t) {
        const unsigned L = kHistLen[t];
        const unsigned top = (L - 1) & 63;
        const std::uint64_t out_bit =
            (ghr_[(L - 1) >> 6] >> top) & 1;
        std::uint64_t f = folded64_[t] ^ (out_bit << top);
        f = (f << 1) ^ b;
        if (L > 64)
            f ^= carry1;
        if (L > 128)
            f ^= carry2;
        folded64_[t] = f;
        foldedIdx_[t] = foldDown(f, kTableBits);
        foldedTag_[t] = foldDown(f, kTagBits);
    }

    // Shift the 192-bit history left by one, inserting the outcome.
    ghr_[0] = (ghr_[0] << 1) | b;
    ghr_[1] = (ghr_[1] << 1) | carry1;
    ghr_[2] = (ghr_[2] << 1) | carry2;
}

void
Tage::update(Addr pc, bool taken)
{
    // Re-derive the lookup if predict() was for a different branch.
    if (lastPc_ != pc)
        last_ = lookup(pc);
    const Lookup &l = last_;
    const bool correct = l.prediction == taken;
    if (!correct)
        ++mispredicts_;

    if (l.provider >= 0) {
        TaggedEntry &e =
            tables_[static_cast<unsigned>(l.provider)][l.providerIdx];
        if (taken && e.ctr < 7)
            ++e.ctr;
        else if (!taken && e.ctr > 0)
            --e.ctr;
        if (l.providerPred != l.altPred) {
            if (l.providerPred == taken && e.useful < 3)
                ++e.useful;
            else if (l.providerPred != taken && e.useful > 0)
                --e.useful;
        }
    } else {
        SatCounter &b = bimodal_[l.altIdx];
        if (taken)
            b.increment();
        else
            b.decrement();
    }

    // Allocate in a longer-history table on a mispredict.
    if (!correct && l.provider < static_cast<int>(kTables) - 1) {
        allocSeed_ = allocSeed_ * 6364136223846793005ull + 1443ull;
        const unsigned start = static_cast<unsigned>(l.provider + 1);
        bool allocated = false;
        for (unsigned t = start; t < kTables && !allocated; ++t) {
            const std::size_t idx = tableIndex(pc, t);
            TaggedEntry &e = tables_[t][idx];
            if (e.useful == 0) {
                e.tag = tableTag(pc, t);
                e.ctr = taken ? 4 : 3;
                allocated = true;
            }
        }
        if (!allocated) {
            // Decay useful bits along the allocation path.
            for (unsigned t = start; t < kTables; ++t) {
                TaggedEntry &e = tables_[t][tableIndex(pc, t)];
                if (e.useful > 0)
                    --e.useful;
            }
        }
    }

    pushHistory(taken);
    lastPc_ = 0;
}

void
Tage::save(Serializer &s) const
{
    s.vecSat(bimodal_);
    for (const auto &table : tables_) {
        s.u64(table.size());
        for (const TaggedEntry &e : table) {
            s.u16(e.tag);
            s.u8(e.ctr);
            s.u8(e.useful);
        }
    }
    for (std::uint64_t word : ghr_)
        s.u64(word);
    s.u64(static_cast<std::uint64_t>(last_.provider));
    s.u64(static_cast<std::uint64_t>(last_.alt));
    s.u64(last_.providerIdx);
    s.u64(last_.altIdx);
    s.b(last_.providerPred);
    s.b(last_.altPred);
    s.b(last_.prediction);
    s.u64(lastPc_);
    s.u64(predictions_);
    s.u64(mispredicts_);
    s.u64(allocSeed_);
}

void
Tage::load(Deserializer &d)
{
    d.vecSat(bimodal_);
    for (auto &table : tables_) {
        d.expectGeometry("tage table entries", table.size());
        for (TaggedEntry &e : table) {
            e.tag = d.u16();
            e.ctr = d.u8();
            e.useful = d.u8();
        }
    }
    for (auto &word : ghr_)
        word = d.u64();
    last_.provider = static_cast<int>(d.u64());
    last_.alt = static_cast<int>(d.u64());
    last_.providerIdx = d.u64();
    last_.altIdx = d.u64();
    last_.providerPred = d.b();
    last_.altPred = d.b();
    last_.prediction = d.b();
    lastPc_ = d.u64();
    predictions_ = d.u64();
    mispredicts_ = d.u64();
    allocSeed_ = d.u64();
    refold();
}

} // namespace acic
