#include "frontend/entangling.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

EntanglingPrefetcher::EntanglingPrefetcher(std::size_t table_entries,
                                           unsigned max_dsts,
                                           std::size_t history_depth)
    : tableEntries_(table_entries), maxDsts_(max_dsts),
      historyDepth_(history_depth)
{
    ACIC_ASSERT((table_entries & (table_entries - 1)) == 0,
                "entangled table must be a power of two");
    table_.resize(tableEntries_);
}

std::size_t
EntanglingPrefetcher::indexOf(BlockAddr blk) const
{
    std::uint64_t x = blk;
    x ^= x >> 17;
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x & (tableEntries_ - 1));
}

void
EntanglingPrefetcher::onDemandAccess(BlockAddr blk, Cycle now)
{
    // Emit entangled destinations of this source block.
    const Entry &e = table_[indexOf(blk)];
    if (e.valid && e.src == blk) {
        for (const BlockAddr dst : e.dsts)
            candidates_.push_back(dst);
    }

    // Skip duplicate back-to-back records (intra-burst accesses).
    if (history_.empty() || history_.back().blk != blk) {
        history_.push_back({blk, now});
        if (history_.size() > historyDepth_)
            history_.pop_front();
    }
}

void
EntanglingPrefetcher::onDemandMiss(BlockAddr blk, Cycle now,
                                   Cycle fill_latency)
{
    // Find the youngest history block accessed at least fill_latency
    // ago: prefetching `blk` at that block's access would have been
    // just-in-time.
    const HistoryRec *source = nullptr;
    for (auto it = history_.rbegin(); it != history_.rend(); ++it) {
        if (it->blk == blk)
            continue;
        if (now - it->cycle >= fill_latency) {
            source = &*it;
            break;
        }
    }
    if (source == nullptr)
        return;

    Entry &e = table_[indexOf(source->blk)];
    if (!e.valid || e.src != source->blk) {
        e.valid = true;
        e.src = source->blk;
        e.dsts.clear();
        e.nextSlot = 0;
    }
    if (std::find(e.dsts.begin(), e.dsts.end(), blk) != e.dsts.end())
        return;
    if (e.dsts.size() < maxDsts_) {
        e.dsts.push_back(blk);
    } else {
        e.dsts[e.nextSlot] = blk;
        e.nextSlot = static_cast<std::uint8_t>(
            (e.nextSlot + 1) % maxDsts_);
    }
}

bool
EntanglingPrefetcher::popCandidate(BlockAddr &out)
{
    if (candidates_.empty())
        return false;
    out = candidates_.front();
    candidates_.pop_front();
    return true;
}

std::uint64_t
EntanglingPrefetcher::storageBits() const
{
    // src tag (~38 bits) + 2 compressed destinations (~20 bits each),
    // matching the ~40 KB the ACIC paper attributes to the 4K-entry
    // configuration.
    return tableEntries_ * (38 + maxDsts_ * 20);
}

void
EntanglingPrefetcher::save(Serializer &s) const
{
    s.u64(tableEntries_);
    s.u64(maxDsts_);
    s.u64(historyDepth_);
    for (const Entry &e : table_) {
        s.u64(e.src);
        s.b(e.valid);
        s.u8(e.nextSlot);
        s.vecU64(e.dsts);
    }
    s.u64(history_.size());
    for (const HistoryRec &h : history_) {
        s.u64(h.blk);
        s.u64(h.cycle);
    }
    s.u64(candidates_.size());
    for (BlockAddr blk : candidates_)
        s.u64(blk);
}

void
EntanglingPrefetcher::load(Deserializer &d)
{
    d.expectGeometry("entangling table entries", tableEntries_);
    d.expectGeometry("entangling destinations", maxDsts_);
    d.expectGeometry("entangling history depth", historyDepth_);
    for (Entry &e : table_) {
        e.src = d.u64();
        e.valid = d.b();
        e.nextSlot = d.u8();
        e.dsts = d.vecU64();
        if (e.dsts.size() > maxDsts_)
            throw SerializeError(
                "checkpoint entangling entry holds more "
                "destinations than the configuration allows");
    }
    std::size_t n = d.count(16);
    history_.clear();
    for (std::size_t i = 0; i < n; ++i) {
        HistoryRec h{};
        h.blk = d.u64();
        h.cycle = d.u64();
        history_.push_back(h);
    }
    n = d.count(8);
    candidates_.clear();
    for (std::size_t i = 0; i < n; ++i)
        candidates_.push_back(d.u64());
}

} // namespace acic
