/**
 * @file
 * TAGE conditional branch predictor (Seznec & Michaud, JILP 2006),
 * the predictor Table II specifies. A bimodal base table plus tagged
 * tables indexed by geometrically increasing global-history folds;
 * the longest-history tag match provides the prediction, with the
 * standard useful-bit allocation policy on mispredicts.
 */

#ifndef ACIC_FRONTEND_TAGE_HH
#define ACIC_FRONTEND_TAGE_HH

#include <array>
#include <cstdint>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** See file comment. */
class Tage
{
  public:
    Tage();

    /** Predict the direction of the conditional branch at @p pc. */
    bool predict(Addr pc);

    /**
     * Train with the actual outcome. Must be called once per
     * conditional branch, after predict(), with the same PC.
     */
    void update(Addr pc, bool taken);

    /** Predictions made / mispredicted (accuracy bookkeeping). */
    std::uint64_t predictions() const { return predictions_; }
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Checkpoint the full predictor state (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

    static constexpr unsigned kTables = 4;

  private:
    struct TaggedEntry
    {
        std::uint16_t tag = 0;
        std::uint8_t ctr = 4;    ///< 3-bit, taken when >= 4
        std::uint8_t useful = 0; ///< 2-bit
    };

    struct Lookup
    {
        int provider = -1; ///< table index, -1 = bimodal
        int alt = -1;
        std::size_t providerIdx = 0;
        std::size_t altIdx = 0;
        bool providerPred = false;
        bool altPred = false;
        bool prediction = false;
    };

    void refold();
    std::size_t tableIndex(Addr pc, unsigned table) const;
    std::uint16_t tableTag(Addr pc, unsigned table) const;
    Lookup lookup(Addr pc);
    void pushHistory(bool taken);

    static constexpr unsigned kBimodalBits = 13; // 8192 entries
    static constexpr unsigned kTableBits = 10;   // 1024 entries
    static constexpr unsigned kTagBits = 9;
    static constexpr std::array<unsigned, kTables> kHistLen = {
        8, 21, 55, 144};

    std::vector<SatCounter> bimodal_;
    std::array<std::vector<TaggedEntry>, kTables> tables_;
    /** 192-bit global history, bit 0 most recent. */
    std::array<std::uint64_t, 3> ghr_{};
    /**
     * Cached XOR-folds of ghr_ per table (index-width and tag-width),
     * recomputed by refold() whenever the history changes. Every
     * lookup of every table reads these instead of re-folding the
     * history from scratch. Derived state: not checkpointed, rebuilt
     * after load().
     */
    std::array<std::uint64_t, kTables> foldedIdx_{};
    std::array<std::uint64_t, kTables> foldedTag_{};
    /** Stage-1 fold (64-bit chunk XOR of the low kHistLen[t] history
     *  bits) per table, maintained incrementally by pushHistory() and
     *  from scratch by refold(); foldedIdx_/foldedTag_ derive from
     *  it. Derived state like the folds above. */
    std::array<std::uint64_t, kTables> folded64_{};
    Lookup last_{};
    Addr lastPc_ = 0;
    std::uint64_t predictions_ = 0;
    std::uint64_t mispredicts_ = 0;
    std::uint64_t allocSeed_ = 0x1234;
};

} // namespace acic

#endif // ACIC_FRONTEND_TAGE_HH
