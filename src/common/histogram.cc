#include "common/histogram.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acic {

Histogram::Histogram(std::vector<std::int64_t> edges,
                     std::vector<std::string> labels)
    : edges_(std::move(edges)), labels_(std::move(labels))
{
    ACIC_ASSERT(!edges_.empty(), "Histogram needs at least one edge");
    ACIC_ASSERT(std::is_sorted(edges_.begin(), edges_.end()),
                "Histogram edges must be ascending");
    counts_.assign(edges_.size() + 1, 0);
    if (labels_.empty()) {
        for (std::size_t i = 0; i < edges_.size(); ++i) {
            const std::int64_t lo = i == 0 ? 0 : edges_[i - 1] + 1;
            labels_.push_back(std::to_string(lo) + "-" +
                              std::to_string(edges_[i]));
        }
        labels_.push_back("> " + std::to_string(edges_.back()));
    }
    ACIC_ASSERT(labels_.size() == counts_.size(),
                "Histogram labels must cover every bucket");
}

void
Histogram::record(std::int64_t value)
{
    record(value, 1);
}

void
Histogram::record(std::int64_t value, std::uint64_t count)
{
    counts_[bucketOf(value)] += count;
    total_ += count;
}

std::size_t
Histogram::bucketOf(std::int64_t value) const
{
    const auto it =
        std::lower_bound(edges_.begin(), edges_.end(), value);
    return static_cast<std::size_t>(it - edges_.begin());
}

std::uint64_t
Histogram::count(std::size_t i) const
{
    ACIC_ASSERT(i < counts_.size(), "Histogram bucket out of range");
    return counts_[i];
}

double
Histogram::percent(std::size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return 100.0 * static_cast<double>(count(i)) /
           static_cast<double>(total_);
}

const std::string &
Histogram::label(std::size_t i) const
{
    ACIC_ASSERT(i < labels_.size(), "Histogram label out of range");
    return labels_[i];
}

void
Histogram::clear()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    total_ = 0;
}

} // namespace acic
