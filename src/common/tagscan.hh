/**
 * @file
 * Vectorized tag-scan kernels — the one hot loop every associative
 * structure in the simulator shares: "which of these N lanes equals
 * this tag?". SetAssocCache way probes, the i-Filter's
 * fully-associative search, and the CSHR's dual-lane sweep all
 * funnel through the two entry points here:
 *
 *   matchMask64(lanes, count, target)  -> bitmask of equal lanes
 *   anyEqual32(lanes, count, target)   -> any lane equal?
 *
 * Three implementations exist: a portable 4x-unrolled scalar loop,
 * an SSE2 path (2/4 lanes per vector), and an AVX2 path (4/8 lanes
 * per vector). SSE2 is part of the x86-64 baseline, so it is
 * *inlined here in the header* — the typical 8-32 lane scan of an
 * 8-way set or 16-entry filter is a handful of compares, and an
 * out-of-line call would cost as much as the scan itself. AVX2 needs
 * a CPU check, so it sits behind one-time function-pointer dispatch
 * (tagscan.cc) and is only consulted for wide scans
 * (>= kWideLaneThreshold lanes), where the call amortizes.
 *
 * All paths compute bit-identical results, so the choice is
 * invisible to simulation output — a property the forced-portable
 * CI build (-DACIC_DISABLE_SIMD=ON) pins against the golden corpus.
 *
 * Kernels are tail-safe: they read exactly `count` lanes (full
 * vectors plus a scalar tail), so callers need no padding or
 * alignment guarantees. Callers that can pad their rows to a vector
 * multiple (SetAssocCache strides ways to 4) hit the no-tail fast
 * case.
 */

#ifndef ACIC_COMMON_TAGSCAN_HH
#define ACIC_COMMON_TAGSCAN_HH

#include <cstdint>

#if defined(__x86_64__) && !defined(ACIC_DISABLE_SIMD)
#define ACIC_TAGSCAN_SIMD 1
#include <emmintrin.h>
#endif

namespace acic {
namespace tagscan {

/** Lanes-per-vector stride callers pad to for the no-tail fast case
 *  (4 x u64 = one 256-bit vector = half a cache line). */
constexpr std::uint32_t kLaneStride64 = 4;

/** Scans at least this many lanes go through the dispatched wide
 *  (AVX2 when available) kernel; narrower scans stay on the inlined
 *  SSE2/portable path where call overhead would dominate. */
constexpr std::uint32_t kWideLaneThreshold = 32;

/** Round @p n up to the u64 lane stride. */
constexpr std::uint32_t
padLanes64(std::uint32_t n)
{
    return (n + kLaneStride64 - 1) & ~(kLaneStride64 - 1);
}

/** Portable reference implementations, always available — the bench
 *  measures them against the SIMD paths, and the equivalence
 *  property test compares every path against these. */
inline std::uint64_t
matchMask64Portable(const std::uint64_t *lanes, std::uint32_t count,
                    std::uint64_t target)
{
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        // Branch-free unrolled compare; each equality becomes a
        // setcc + shift, no data-dependent branches.
        mask |= static_cast<std::uint64_t>(lanes[i + 0] == target) << (i + 0);
        mask |= static_cast<std::uint64_t>(lanes[i + 1] == target) << (i + 1);
        mask |= static_cast<std::uint64_t>(lanes[i + 2] == target) << (i + 2);
        mask |= static_cast<std::uint64_t>(lanes[i + 3] == target) << (i + 3);
    }
    for (; i < count; ++i)
        mask |= static_cast<std::uint64_t>(lanes[i] == target) << i;
    return mask;
}

inline bool
anyEqual32Portable(const std::uint32_t *lanes, std::uint32_t count,
                   std::uint32_t target)
{
    std::uint32_t any = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        any |= (lanes[i + 0] == target) | (lanes[i + 1] == target) |
               (lanes[i + 2] == target) | (lanes[i + 3] == target);
    }
    for (; i < count; ++i)
        any |= (lanes[i] == target);
    return any != 0;
}

inline bool
anyEqual32PairPortable(const std::uint32_t *a, const std::uint32_t *b,
                       std::uint32_t count, std::uint32_t target)
{
    std::uint32_t any = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        any |= (a[i + 0] == target) | (a[i + 1] == target) |
               (a[i + 2] == target) | (a[i + 3] == target) |
               (b[i + 0] == target) | (b[i + 1] == target) |
               (b[i + 2] == target) | (b[i + 3] == target);
    }
    for (; i < count; ++i)
        any |= (a[i] == target) | (b[i] == target);
    return any != 0;
}

#ifdef ACIC_TAGSCAN_SIMD

inline std::uint64_t
matchMask64Sse2(const std::uint64_t *lanes, std::uint32_t count,
                std::uint64_t target)
{
    const __m128i t = _mm_set1_epi64x(static_cast<long long>(target));
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 2 <= count; i += 2) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lanes + i));
        // Baseline SSE2 has no 64-bit compare (_mm_cmpeq_epi64 is
        // SSE4.1): compare the 32-bit halves and AND with the
        // pair-swapped result, so a 64-bit lane is all-ones iff both
        // halves matched. movmskpd then compresses the two lanes
        // into bits 0..1.
        const __m128i c = _mm_cmpeq_epi32(v, t);
        const __m128i cs =
            _mm_shuffle_epi32(c, _MM_SHUFFLE(2, 3, 0, 1));
        const int m = _mm_movemask_pd(
            _mm_castsi128_pd(_mm_and_si128(c, cs)));
        mask |= static_cast<std::uint64_t>(m) << i;
    }
    for (; i < count; ++i)
        mask |= static_cast<std::uint64_t>(lanes[i] == target) << i;
    return mask;
}

inline bool
anyEqual32Sse2(const std::uint32_t *lanes, std::uint32_t count,
               std::uint32_t target)
{
    const __m128i t = _mm_set1_epi32(static_cast<int>(target));
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128i v = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(lanes + i));
        if (_mm_movemask_epi8(_mm_cmpeq_epi32(v, t)) != 0)
            return true;
    }
    for (; i < count; ++i)
        if (lanes[i] == target)
            return true;
    return false;
}

inline bool
anyEqual32PairSse2(const std::uint32_t *a, const std::uint32_t *b,
                   std::uint32_t count, std::uint32_t target)
{
    const __m128i t = _mm_set1_epi32(static_cast<int>(target));
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m128i va = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(a + i));
        const __m128i vb = _mm_loadu_si128(
            reinterpret_cast<const __m128i *>(b + i));
        const __m128i hit = _mm_or_si128(_mm_cmpeq_epi32(va, t),
                                         _mm_cmpeq_epi32(vb, t));
        if (_mm_movemask_epi8(hit) != 0)
            return true;
    }
    for (; i < count; ++i)
        if (a[i] == target || b[i] == target)
            return true;
    return false;
}

/** AVX2 kernels, compiled with a target attribute in tagscan.cc and
 *  reached through the one-time dispatch below. Only call directly
 *  (benches/tests) when avx2Supported() is true. */
std::uint64_t matchMask64Avx2(const std::uint64_t *lanes,
                              std::uint32_t count,
                              std::uint64_t target);
bool anyEqual32Avx2(const std::uint32_t *lanes, std::uint32_t count,
                    std::uint32_t target);
bool anyEqual32PairAvx2(const std::uint32_t *a,
                        const std::uint32_t *b, std::uint32_t count,
                        std::uint32_t target);
bool avx2Supported();

/** Dispatched wide-scan entry points (AVX2 when the CPU has it,
 *  SSE2 otherwise); resolved once before main(). */
extern std::uint64_t (*const matchMask64Wide)(const std::uint64_t *,
                                              std::uint32_t,
                                              std::uint64_t);
extern bool (*const anyEqual32Wide)(const std::uint32_t *,
                                    std::uint32_t, std::uint32_t);
extern bool (*const anyEqual32PairWide)(const std::uint32_t *,
                                        const std::uint32_t *,
                                        std::uint32_t, std::uint32_t);

#endif // ACIC_TAGSCAN_SIMD

/**
 * Bit i (i < @p count, count <= 64) is set iff lanes[i] == target.
 * Reads exactly @p count lanes.
 */
inline std::uint64_t
matchMask64(const std::uint64_t *lanes, std::uint32_t count,
            std::uint64_t target)
{
#ifdef ACIC_TAGSCAN_SIMD
    if (count >= kWideLaneThreshold)
        return matchMask64Wide(lanes, count, target);
    return matchMask64Sse2(lanes, count, target);
#else
    return matchMask64Portable(lanes, count, target);
#endif
}

/** True when any of lanes[0..count) equals @p target. */
inline bool
anyEqual32(const std::uint32_t *lanes, std::uint32_t count,
           std::uint32_t target)
{
#ifdef ACIC_TAGSCAN_SIMD
    if (count >= kWideLaneThreshold)
        return anyEqual32Wide(lanes, count, target);
    return anyEqual32Sse2(lanes, count, target);
#else
    return anyEqual32Portable(lanes, count, target);
#endif
}

/**
 * True when any of a[0..count) or b[0..count) equals @p target —
 * one fused sweep over two parallel tag rows (the CSHR's
 * victim/contender pair), halving the calls and interleaving the
 * loads of the common no-match case.
 */
inline bool
anyEqual32Pair(const std::uint32_t *a, const std::uint32_t *b,
               std::uint32_t count, std::uint32_t target)
{
#ifdef ACIC_TAGSCAN_SIMD
    if (count >= kWideLaneThreshold)
        return anyEqual32PairWide(a, b, count, target);
    return anyEqual32PairSse2(a, b, count, target);
#else
    return anyEqual32PairPortable(a, b, count, target);
#endif
}

/**
 * The implementation stack the build/CPU selected: "avx2" or "sse2"
 * (inlined SSE2 narrow path + that wide path), or "portable".
 * Surfaced in bench labels and the equivalence tests.
 */
const char *activeIsa();

} // namespace tagscan
} // namespace acic

#endif // ACIC_COMMON_TAGSCAN_HH
