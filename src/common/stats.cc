#include "common/stats.hh"

#include <iostream>

namespace acic {

void
StatSet::bump(const std::string &name, std::uint64_t delta)
{
    counters_[name] += delta;
}

void
StatSet::set(const std::string &name, std::uint64_t value)
{
    counters_[name] = value;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

bool
StatSet::has(const std::string &name) const
{
    return counters_.find(name) != counters_.end();
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    const std::uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatSet::clear()
{
    counters_.clear();
}

void
StatSet::dump(const std::string &prefix) const
{
    dump(std::cout, prefix);
}

void
StatSet::dump(std::ostream &out, const std::string &prefix) const
{
    for (const auto &[name, value] : counters_)
        out << prefix << name << ' ' << value << '\n';
}

} // namespace acic
