#include "common/stats.hh"

#include <algorithm>
#include <iostream>

namespace acic {

StatHandle
StatSet::handle(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return StatHandle(it->second);
    const auto idx = static_cast<std::uint32_t>(values_.size());
    index_.emplace(name, idx);
    names_.push_back(name);
    values_.push_back(0);
    touched_.push_back(0);
    return StatHandle(idx);
}

const std::uint32_t *
StatSet::findIndex(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &it->second;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const std::uint32_t *idx = findIndex(name);
    return idx == nullptr ? 0 : values_[*idx];
}

bool
StatSet::has(const std::string &name) const
{
    const std::uint32_t *idx = findIndex(name);
    return idx != nullptr && touched_[*idx] != 0;
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    const std::uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatSet::clear()
{
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(touched_.begin(), touched_.end(), 0);
}

void
StatSet::dump(const std::string &prefix) const
{
    dump(std::cout, prefix);
}

void
StatSet::dump(std::ostream &out, const std::string &prefix) const
{
    for (const auto &[name, value] : raw())
        out << prefix << name << ' ' << value << '\n';
}

std::map<std::string, std::uint64_t>
StatSet::raw() const
{
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (touched_[i] != 0)
            out.emplace(names_[i], values_[i]);
    return out;
}

} // namespace acic
