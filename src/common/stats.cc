#include "common/stats.hh"

#include <algorithm>
#include <iostream>

#include "common/serialize.hh"

namespace acic {

StatHandle
StatSet::handle(const std::string &name)
{
    const auto it = index_.find(name);
    if (it != index_.end())
        return StatHandle(it->second);
    const auto idx = static_cast<std::uint32_t>(values_.size());
    index_.emplace(name, idx);
    names_.push_back(name);
    values_.push_back(0);
    touched_.push_back(0);
    return StatHandle(idx);
}

const std::uint32_t *
StatSet::findIndex(const std::string &name) const
{
    const auto it = index_.find(name);
    return it == index_.end() ? nullptr : &it->second;
}

std::uint64_t
StatSet::get(const std::string &name) const
{
    const std::uint32_t *idx = findIndex(name);
    return idx == nullptr ? 0 : values_[*idx];
}

bool
StatSet::has(const std::string &name) const
{
    const std::uint32_t *idx = findIndex(name);
    return idx != nullptr && touched_[*idx] != 0;
}

double
StatSet::ratio(const std::string &num, const std::string &den) const
{
    const std::uint64_t d = get(den);
    if (d == 0)
        return 0.0;
    return static_cast<double>(get(num)) / static_cast<double>(d);
}

void
StatSet::clear()
{
    std::fill(values_.begin(), values_.end(), 0);
    std::fill(touched_.begin(), touched_.end(), 0);
}

void
StatSet::dump(const std::string &prefix) const
{
    dump(std::cout, prefix);
}

void
StatSet::dump(std::ostream &out, const std::string &prefix) const
{
    for (const auto &[name, value] : raw())
        out << prefix << name << ' ' << value << '\n';
}

std::map<std::string, std::uint64_t>
StatSet::raw() const
{
    std::map<std::string, std::uint64_t> out;
    for (std::size_t i = 0; i < names_.size(); ++i)
        if (touched_[i] != 0)
            out.emplace(names_[i], values_[i]);
    return out;
}

void
StatSet::save(Serializer &s) const
{
    s.u64(names_.size());
    for (std::size_t i = 0; i < names_.size(); ++i) {
        s.str(names_[i]);
        s.u64(values_[i]);
        s.u8(touched_[i]);
    }
}

void
StatSet::load(Deserializer &d)
{
    const std::size_t n = d.count(10);
    // Handles interned before load() (by the owning object's
    // constructor) must stay valid afterwards: a checkpoint restores
    // into a freshly built object whose registrations are a prefix of
    // (or identical to) the snapshot's, in the same order.
    if (n < names_.size())
        throw SerializeError(
            "checkpoint stat registry has fewer counters than the "
            "running object registered");
    std::unordered_map<std::string, std::uint32_t> index;
    std::vector<std::string> names;
    std::vector<std::uint64_t> values;
    std::vector<std::uint8_t> touched;
    names.reserve(n);
    values.reserve(n);
    touched.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::string name = d.str();
        if (i < names_.size() && name != names_[i])
            throw SerializeError(
                "checkpoint stat registry mismatch at index " +
                std::to_string(i) + ": snapshot has '" + name +
                "', running object registered '" + names_[i] + "'");
        index.emplace(name, static_cast<std::uint32_t>(i));
        names.push_back(std::move(name));
        values.push_back(d.u64());
        touched.push_back(d.u8());
        if (touched.back() > 1)
            throw SerializeError(
                "checkpoint stat touched flag out of range "
                "(corrupt payload)");
    }
    if (index.size() != n)
        throw SerializeError(
            "checkpoint stat registry has duplicate counter names "
            "(corrupt payload)");
    index_ = std::move(index);
    names_ = std::move(names);
    values_ = std::move(values);
    touched_ = std::move(touched);
}

} // namespace acic
