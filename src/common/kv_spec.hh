/**
 * @file
 * Reusable spec-string machinery: parse "name(key=value,...)" forms,
 * split comma lists that may nest parentheses/braces, expand {a,b,c}
 * value sets into cartesian grids, and validate parameter lists
 * against a declared ParamSpec table with typed accessors and range
 * checks. The scheme registry (sim/scheme) and the driver's sweep
 * subcommand are both built on this layer; it knows nothing about
 * caches, so any future registry (prefetchers, hierarchies) can reuse
 * it unchanged.
 */

#ifndef ACIC_COMMON_KV_SPEC_HH
#define ACIC_COMMON_KV_SPEC_HH

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace acic {

/**
 * User-facing spec-string error (unknown name, bad grammar, bad
 * parameter). Thrown instead of ACIC_FATAL so CLIs can print the
 * message with usage-error exit codes and tests can assert on it.
 */
class SpecError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One key=value parameter, both sides kept as written. */
struct KvPair
{
    std::string key;
    std::string value;

    bool operator==(const KvPair &o) const
    {
        return key == o.key && value == o.value;
    }
};

/** Parsed "name" or "name(key=value,...)" spec string. */
struct KvSpec
{
    std::string name;
    std::vector<KvPair> params;

    /** Canonical text form; reparses to an equal KvSpec. */
    std::string toString() const;
};

/**
 * Lower-case @p token, collapse '-'/'_' to spaces, and trim
 * surrounding whitespace — the lenient-matching fold of the legacy
 * schemeFromName ("OPT_Bypass" == "opt-bypass" == "OPT Bypass").
 */
std::string canonicalToken(const std::string &token);

/**
 * Split @p list at top-level occurrences of @p sep: separators inside
 * '(' ')' or '{' '}' do not split, so "acic(filter=8,cshr=4),lru"
 * yields two items. Empty items are dropped.
 */
std::vector<std::string> splitTopLevel(const std::string &list,
                                       char sep = ',');

/**
 * Parse "name" or "name(key=value,...)". Values may be "{a,b,c}"
 * sets, later expanded by expandValueSets(). Throws SpecError on an
 * empty name, empty parens, a parameter without '=' or with an empty
 * side, duplicate keys, unbalanced brackets, or trailing text after
 * the closing paren.
 */
KvSpec parseKvSpec(const std::string &text);

/** True when any parameter value is a "{...}" set. */
bool hasValueSets(const KvSpec &spec);

/**
 * Expand every "{a,b,c}" value set into scalars: the cartesian
 * product over parameters, leftmost set varying slowest. A spec
 * without sets expands to itself. Throws SpecError on an empty set.
 */
std::vector<KvSpec> expandValueSets(const KvSpec &spec);

/** Levenshtein distance, for near-miss suggestions. */
std::size_t editDistance(const std::string &a, const std::string &b);

/** Declared parameter of a spec-driven builder (validation + docs). */
struct ParamSpec
{
    enum class Kind
    {
        Count,   ///< unsigned integer
        Integer, ///< signed integer
        Real,    ///< floating point
        Keyword, ///< one of a fixed keyword list
    };

    std::string key;
    Kind kind = Kind::Count;
    /** Default shown in docs (the builder owns the actual default). */
    std::string defaultText;
    /** Inclusive numeric range (ignored for Keyword). */
    double min = 0.0;
    double max = 0.0;
    /** Allowed values for Keyword parameters. */
    std::vector<std::string> keywords;
    /** One-line description for `acic_run list` / DESIGN.md. */
    std::string summary;

    /** Range rendered for docs: "[min..max]" or the keyword list. */
    std::string rangeText() const;

    static ParamSpec count(std::string key, std::string def,
                           double min, double max,
                           std::string summary);
    static ParamSpec integer(std::string key, std::string def,
                             double min, double max,
                             std::string summary);
    static ParamSpec real(std::string key, std::string def,
                          double min, double max,
                          std::string summary);
    static ParamSpec keyword(std::string key, std::string def,
                             std::vector<std::string> keywords,
                             std::string summary);
};

/**
 * Typed, validated view of a parameter list against a ParamSpec
 * table. Construction throws SpecError (prefixed with @p subject) on
 * an unknown key (naming the valid ones), a duplicate key, an
 * unparsable value, a value outside the declared range, a keyword
 * outside the declared list, or a leftover "{...}" set. Accessors
 * return the validated value or the caller's fallback.
 */
class ParamReader
{
  public:
    ParamReader(std::string subject,
                const std::vector<ParamSpec> &docs,
                const std::vector<KvPair> &given);

    /** Was @p key explicitly given? */
    bool given(const std::string &key) const;

    std::uint64_t count(const std::string &key,
                        std::uint64_t fallback) const;
    std::int64_t integer(const std::string &key,
                         std::int64_t fallback) const;
    double real(const std::string &key, double fallback) const;
    std::string keyword(const std::string &key,
                        std::string fallback) const;

    /** The subject name, for builder-side SpecError prefixes. */
    const std::string &subject() const { return subject_; }

  private:
    const KvPair *findPair(const std::string &key) const;

    std::string subject_;
    std::vector<KvPair> given_;
};

} // namespace acic

#endif // ACIC_COMMON_KV_SPEC_HH
