#include "common/telemetry.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <mutex>
#include <ostream>

#include "common/json.hh"
#include "common/logging.hh"

namespace acic {

std::atomic<bool> Telemetry::enabled_{false};

namespace {

/** Flush threshold of one thread buffer, in bytes. */
constexpr std::size_t kFlushBytes = 64 * 1024;

struct ThreadBuffer;

/**
 * The process-wide sink plus the registry of live thread buffers.
 * The mutex orders buffer drains, open/close transitions, and the
 * registry; per-event formatting never takes it.
 */
struct Sink
{
    std::mutex mutex;
    std::FILE *file = nullptr;      ///< owned (open())
    std::ostream *stream = nullptr; ///< borrowed (openStream())
    std::chrono::steady_clock::time_point epoch;
    std::vector<ThreadBuffer *> buffers;
    std::atomic<unsigned> nextTid{0};
    std::atomic<std::uint64_t> heartbeat{1'000'000};

    void writeLocked(const std::string &data)
    {
        if (data.empty())
            return;
        if (file)
            std::fwrite(data.data(), 1, data.size(), file);
        else if (stream)
            stream->write(data.data(),
                          static_cast<std::streamsize>(data.size()));
    }
};

Sink &
sink()
{
    static Sink s;
    return s;
}

/**
 * Per-thread event staging: formatted lines accumulate without any
 * lock and drain to the sink in batches. Registered with the sink so
 * close() can collect buffers of threads that are already quiescent
 * but not yet exited; the destructor (thread exit) drains and
 * unregisters.
 */
struct ThreadBuffer
{
    std::string data;
    unsigned tid;
    int depth = 0;

    ThreadBuffer()
    {
        Sink &s = sink();
        tid = s.nextTid.fetch_add(1, std::memory_order_relaxed);
        std::lock_guard<std::mutex> lock(s.mutex);
        s.buffers.push_back(this);
    }

    ~ThreadBuffer()
    {
        Sink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.writeLocked(data);
        data.clear();
        s.buffers.erase(std::remove(s.buffers.begin(),
                                    s.buffers.end(), this),
                        s.buffers.end());
    }

    void append(std::string &&line)
    {
        data += line;
        if (data.size() >= kFlushBytes)
            flush();
    }

    void flush()
    {
        Sink &s = sink();
        std::lock_guard<std::mutex> lock(s.mutex);
        s.writeLocked(data);
        data.clear();
    }
};

ThreadBuffer &
tls()
{
    thread_local ThreadBuffer buffer;
    return buffer;
}

void
appendDouble(std::string &out, double v)
{
    if (!std::isfinite(v))
        v = 0.0; // JSON has no NaN/Inf
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    out += buf;
}

void
appendEventHead(std::string &out, const char *ev, const char *name,
                unsigned tid, std::uint64_t tUs)
{
    out += "{\"ev\":\"";
    out += ev;
    out += "\",\"name\":\"";
    out += json::escape(name);
    out += "\",\"tid\":";
    out += std::to_string(tid);
    out += ",\"t_us\":";
    out += std::to_string(tUs);
}

template <typename Attrs>
void
appendAttrs(std::string &out, const Attrs &attrs)
{
    bool any = false;
    for (const TelemetryAttr &attr : attrs) {
        out += any ? "," : ",\"attrs\":{";
        attr.appendTo(out);
        any = true;
    }
    if (any)
        out += '}';
}

} // namespace

void
TelemetryAttr::appendTo(std::string &out) const
{
    out += '"';
    out += json::escape(key_);
    out += "\":";
    switch (kind_) {
      case Kind::Str:
        out += '"';
        out += json::escape(str_);
        out += '"';
        break;
      case Kind::U64: out += std::to_string(u64_); break;
      case Kind::F64: appendDouble(out, f64_); break;
    }
}

bool
Telemetry::open(const std::string &path)
{
    Sink &s = sink();
    std::FILE *file = std::fopen(path.c_str(), "wb");
    if (!file)
        return false;
    // The meta line is written straight through the sink, not via a
    // thread buffer, so it is always the file's first line.
    std::string line = "{\"ev\":\"meta\",\"version\":1,"
                       "\"heartbeat_insts\":";
    line += std::to_string(
        s.heartbeat.load(std::memory_order_relaxed));
    line += "}\n";
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        ACIC_ASSERT(!s.file && !s.stream,
                    "telemetry sink is already open");
        s.file = file;
        s.epoch = std::chrono::steady_clock::now();
        s.writeLocked(line);
    }
    enabled_.store(true, std::memory_order_relaxed);
    return true;
}

void
Telemetry::openStream(std::ostream &os)
{
    Sink &s = sink();
    std::string line = "{\"ev\":\"meta\",\"version\":1,"
                       "\"heartbeat_insts\":";
    line += std::to_string(
        s.heartbeat.load(std::memory_order_relaxed));
    line += "}\n";
    {
        std::lock_guard<std::mutex> lock(s.mutex);
        ACIC_ASSERT(!s.file && !s.stream,
                    "telemetry sink is already open");
        s.stream = &os;
        s.epoch = std::chrono::steady_clock::now();
        s.writeLocked(line);
    }
    enabled_.store(true, std::memory_order_relaxed);
}

void
Telemetry::close()
{
    Sink &s = sink();
    enabled_.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(s.mutex);
    // Collect buffers of threads that finished emitting but have not
    // exited (pool workers between jobs, and the calling thread).
    for (ThreadBuffer *buffer : s.buffers) {
        s.writeLocked(buffer->data);
        buffer->data.clear();
        buffer->depth = 0;
    }
    if (s.file) {
        std::fclose(s.file);
        s.file = nullptr;
    }
    if (s.stream) {
        s.stream->flush();
        s.stream = nullptr;
    }
}

std::uint64_t
Telemetry::heartbeatInterval()
{
    return sink().heartbeat.load(std::memory_order_relaxed);
}

void
Telemetry::setHeartbeatInterval(std::uint64_t insts)
{
    sink().heartbeat.store(insts, std::memory_order_relaxed);
}

std::uint64_t
Telemetry::nowMicros()
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - sink().epoch)
            .count());
}

void
Telemetry::counter(const char *name,
                   std::initializer_list<TelemetryAttr> attrs)
{
    if (!enabled())
        return;
    ThreadBuffer &buffer = tls();
    std::string line;
    line.reserve(192);
    appendEventHead(line, "count", name, buffer.tid, nowMicros());
    appendAttrs(line, attrs);
    line += "}\n";
    buffer.append(std::move(line));
}

void
Telemetry::gauge(const char *name, double value)
{
    if (!enabled())
        return;
    ThreadBuffer &buffer = tls();
    std::string line;
    line.reserve(128);
    appendEventHead(line, "gauge", name, buffer.tid, nowMicros());
    line += ",\"value\":";
    appendDouble(line, value);
    line += "}\n";
    buffer.append(std::move(line));
}

void
Telemetry::flushThread()
{
    tls().flush();
}

void
Telemetry::emitSpan(const char *name, std::uint64_t startUs,
                    std::uint64_t durUs, int depth,
                    const std::vector<TelemetryAttr> &attrs)
{
    ThreadBuffer &buffer = tls();
    std::string line;
    line.reserve(192);
    appendEventHead(line, "span", name, buffer.tid, startUs);
    line += ",\"dur_us\":";
    line += std::to_string(durUs);
    line += ",\"depth\":";
    line += std::to_string(depth);
    appendAttrs(line, attrs);
    line += "}\n";
    buffer.append(std::move(line));
}

int
Telemetry::enterSpan()
{
    return tls().depth++;
}

void
Telemetry::exitSpan()
{
    --tls().depth;
}

TelemetryScope::TelemetryScope(const char *name)
    : name_(name), live_(Telemetry::enabled())
{
    if (!live_)
        return;
    depth_ = Telemetry::enterSpan();
    startUs_ = Telemetry::nowMicros();
}

TelemetryScope::~TelemetryScope()
{
    if (!live_)
        return;
    const std::uint64_t end = Telemetry::nowMicros();
    Telemetry::exitSpan();
    // The sink may have closed while the span was open (a span
    // wrapping close() itself); drop the event in that case rather
    // than resurrecting a disabled sink.
    if (!Telemetry::enabled())
        return;
    Telemetry::emitSpan(name_, startUs_,
                        end > startUs_ ? end - startUs_ : 0, depth_,
                        attrs_);
}

} // namespace acic
