/**
 * @file
 * Bucketed histogram with caller-defined edges. The paper's figures
 * bucket reuse distances into ranges such as {0, [1,16], (16,512],
 * (512,1024], (1024,10000]}; this class reproduces those exact
 * bucketings and prints percentage rows.
 */

#ifndef ACIC_COMMON_HISTOGRAM_HH
#define ACIC_COMMON_HISTOGRAM_HH

#include <cstdint>
#include <string>
#include <vector>

namespace acic {

/**
 * Histogram over int64 samples with explicit bucket upper bounds.
 *
 * Bucket i holds samples v with edge[i-1] < v <= edge[i] (bucket 0
 * holds v <= edge[0]); an implicit overflow bucket collects everything
 * above the last edge.
 */
class Histogram
{
  public:
    /**
     * @param edges ascending inclusive upper bounds of each bucket.
     * @param labels human-readable bucket names (edges.size() + 1 of
     *        them, the last naming the overflow bucket); empty to
     *        auto-generate from the edges.
     */
    explicit Histogram(std::vector<std::int64_t> edges,
                       std::vector<std::string> labels = {});

    /** Record one sample. */
    void record(std::int64_t value);

    /** Record @p count samples of the same value. */
    void record(std::int64_t value, std::uint64_t count);

    /** Number of buckets including the overflow bucket. */
    std::size_t buckets() const { return counts_.size(); }

    /** Raw count of bucket @p i. */
    std::uint64_t count(std::size_t i) const;

    /** Percentage (0..100) of samples in bucket @p i. */
    double percent(std::size_t i) const;

    /** Total samples recorded. */
    std::uint64_t total() const { return total_; }

    /** Bucket label. */
    const std::string &label(std::size_t i) const;

    /** Index of the bucket that @p value falls into. */
    std::size_t bucketOf(std::int64_t value) const;

    /** Reset all counts. */
    void clear();

  private:
    std::vector<std::int64_t> edges_;
    std::vector<std::string> labels_;
    std::vector<std::uint64_t> counts_;
    std::uint64_t total_ = 0;
};

} // namespace acic

#endif // ACIC_COMMON_HISTOGRAM_HH
