/**
 * @file
 * Fundamental scalar types and cache-geometry constants shared by every
 * module in the ACIC reproduction.
 */

#ifndef ACIC_COMMON_TYPES_HH
#define ACIC_COMMON_TYPES_HH

#include <cstdint>

namespace acic {

/** A byte address in the simulated machine. */
using Addr = std::uint64_t;

/** A 64-byte-block address, i.e. Addr >> kBlockShift. */
using BlockAddr = std::uint64_t;

/** Simulated clock cycle count. */
using Cycle = std::uint64_t;

/** Dynamic-instruction index within a trace. */
using InstSeq = std::uint64_t;

/** log2 of the instruction block size (64 B blocks throughout). */
constexpr unsigned kBlockShift = 6;

/** Instruction block size in bytes. */
constexpr unsigned kBlockBytes = 1u << kBlockShift;

/** Sentinel meaning "this block is never accessed again". */
constexpr InstSeq kNeverAgain = ~InstSeq{0};

/** Sentinel for an invalid / absent address. */
constexpr Addr kInvalidAddr = ~Addr{0};

/** Convert a byte address to its block address. */
constexpr BlockAddr
blockOf(Addr addr)
{
    return addr >> kBlockShift;
}

/** First byte address of a block. */
constexpr Addr
blockBase(BlockAddr blk)
{
    return blk << kBlockShift;
}

/** Byte offset of an address within its block. */
constexpr unsigned
blockOffset(Addr addr)
{
    return static_cast<unsigned>(addr & (kBlockBytes - 1));
}

} // namespace acic

#endif // ACIC_COMMON_TYPES_HH
