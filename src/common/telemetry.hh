/**
 * @file
 * Run-telemetry layer: monotonic-clock scoped spans plus
 * counter/gauge events, serialized as one JSON object per line
 * (JSONL) into a process-wide sink. Designed so simulation hot loops
 * pay nothing when telemetry is off:
 *
 *  - Telemetry::enabled() is one relaxed atomic load; every emit
 *    path checks it first and call sites latch it once per phase,
 *    not per cycle (SimEngine folds the heartbeat check into a
 *    single integer compare against a sentinel target).
 *  - Events are formatted into a per-thread buffer (no lock, no
 *    allocation beyond the buffer's own growth) and drained to the
 *    sink under a mutex only when the buffer fills, at thread exit,
 *    or at close().
 *
 * Lifecycle: open()/openStream() enable the layer, close() drains
 * every registered thread buffer and disables it again. close() must
 * only run when no other thread is still emitting — in practice the
 * driver joins its worker pool before closing, and worker threads
 * flush their buffers from thread_local destructors as they exit.
 *
 * Event schema (DESIGN.md section 9):
 *   {"ev":"meta","version":1,"heartbeat_insts":N}
 *   {"ev":"span","name":S,"tid":T,"t_us":A,"dur_us":D,"depth":K,
 *    "attrs":{...}}
 *   {"ev":"count","name":S,"tid":T,"t_us":A,"attrs":{...}}
 *   {"ev":"gauge","name":S,"tid":T,"t_us":A,"value":V}
 * t_us is microseconds since open() on the monotonic clock; tid is a
 * small per-process thread ordinal (first-use order, not an OS id).
 */

#ifndef ACIC_COMMON_TELEMETRY_HH
#define ACIC_COMMON_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace acic {

/** One key/value attribute of a telemetry event. */
class TelemetryAttr
{
  public:
    TelemetryAttr(const char *key, const char *value)
        : key_(key), kind_(Kind::Str), str_(value)
    {
    }
    TelemetryAttr(const char *key, const std::string &value)
        : key_(key), kind_(Kind::Str), str_(value)
    {
    }
    TelemetryAttr(const char *key, std::uint64_t value)
        : key_(key), kind_(Kind::U64), u64_(value)
    {
    }
    TelemetryAttr(const char *key, double value)
        : key_(key), kind_(Kind::F64), f64_(value)
    {
    }

    /** Append `"key":value` (JSON-escaped) to @p out. */
    void appendTo(std::string &out) const;

  private:
    enum class Kind { Str, U64, F64 };
    const char *key_;
    Kind kind_;
    std::string str_;
    std::uint64_t u64_ = 0;
    double f64_ = 0.0;
};

/** See file comment. All members are static; this is a process-wide
 *  facility (one sink per process, like a log). */
class Telemetry
{
  public:
    /** True between a successful open()/openStream() and close(). */
    static bool enabled()
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /**
     * Open @p path as the JSONL sink (truncating) and enable the
     * layer. @return false (layer stays disabled) when the file
     * cannot be created.
     */
    static bool open(const std::string &path);

    /**
     * Use caller-owned @p os as the sink (tests). The stream must
     * outlive the telemetry session, i.e. stay valid until close().
     */
    static void openStream(std::ostream &os);

    /**
     * Drain every registered thread buffer, write the sink out, and
     * disable the layer. Only call when no other thread is emitting
     * (join worker pools first). Idempotent.
     */
    static void close();

    /**
     * Heartbeat cadence in retired instructions, consumed by
     * SimEngine at construction. Settable any time (takes effect for
     * engines constructed afterwards); 0 disables heartbeats.
     */
    static std::uint64_t heartbeatInterval();
    static void setHeartbeatInterval(std::uint64_t insts);

    /** Microseconds since open() on the monotonic clock. */
    static std::uint64_t nowMicros();

    /** Emit a counter event (no-op when disabled). */
    static void counter(const char *name,
                        std::initializer_list<TelemetryAttr> attrs);

    /** Emit a gauge event (no-op when disabled). */
    static void gauge(const char *name, double value);

    /** Flush the calling thread's buffer to the sink. */
    static void flushThread();

  private:
    friend class TelemetryScope;

    static void emitSpan(const char *name, std::uint64_t startUs,
                         std::uint64_t durUs, int depth,
                         const std::vector<TelemetryAttr> &attrs);

    /** Per-thread span-nesting depth bookkeeping. */
    static int enterSpan();
    static void exitSpan();

    static std::atomic<bool> enabled_;
};

/**
 * RAII scoped span: records the monotonic interval from construction
 * to destruction, with the per-thread nesting depth at entry.
 * Constructed-disabled when telemetry is off — attr() and the
 * destructor then cost one predictable branch each. Guard any
 * expensive attribute computation with live().
 */
class TelemetryScope
{
  public:
    explicit TelemetryScope(const char *name);
    ~TelemetryScope();

    TelemetryScope(const TelemetryScope &) = delete;
    TelemetryScope &operator=(const TelemetryScope &) = delete;

    /** True when the span will be emitted. */
    bool live() const { return live_; }

    void attr(const char *key, const char *value)
    {
        if (live_)
            attrs_.emplace_back(key, value);
    }
    void attr(const char *key, const std::string &value)
    {
        if (live_)
            attrs_.emplace_back(key, value);
    }
    void attr(const char *key, std::uint64_t value)
    {
        if (live_)
            attrs_.emplace_back(key, value);
    }
    void attr(const char *key, double value)
    {
        if (live_)
            attrs_.emplace_back(key, value);
    }

  private:
    const char *name_;
    bool live_;
    int depth_ = 0;
    std::uint64_t startUs_ = 0;
    std::vector<TelemetryAttr> attrs_;
};

} // namespace acic

#endif // ACIC_COMMON_TELEMETRY_HH
