/**
 * @file
 * ASCII table printer. Every bench binary renders its figure/table in
 * the paper's row/column layout through this class so outputs stay
 * visually comparable to the publication.
 */

#ifndef ACIC_COMMON_TABLE_HH
#define ACIC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace acic {

/** Column-aligned text table with an optional title and footer note. */
class TablePrinter
{
  public:
    /** @param title caption printed above the table. */
    explicit TablePrinter(std::string title);

    /** Define the header row. Must be called before any addRow(). */
    void setHeader(std::vector<std::string> header);

    /** Append one data row; must match the header's column count. */
    void addRow(std::vector<std::string> row);

    /** Append a note printed under the table. */
    void addNote(std::string note);

    /** Render to stdout. */
    void print() const;

    /** Render to a string (used by tests). */
    std::string str() const;

    /** Format helper: fixed-point double with @p digits decimals. */
    static std::string fmt(double value, int digits = 4);

    /** Format helper: percentage with sign, e.g. "-18.14%". */
    static std::string pct(double fraction, int digits = 2);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
    std::vector<std::string> notes_;
};

} // namespace acic

#endif // ACIC_COMMON_TABLE_HH
