/**
 * @file
 * Minimal JSON support shared by the telemetry layer and the
 * `acic_run report` reader: string escaping for emission and a small
 * recursive-descent parser for consumption. The parser covers the
 * full JSON grammar (objects, arrays, strings with escapes, numbers,
 * booleans, null) but keeps every number as a double — ample for the
 * telemetry schema, which this repo itself emits.
 */

#ifndef ACIC_COMMON_JSON_HH
#define ACIC_COMMON_JSON_HH

#include <string>
#include <utility>
#include <vector>

namespace acic {
namespace json {

/** Escape @p s for inclusion in a JSON string literal. */
std::string escape(const std::string &s);

/** One parsed JSON value (tree-owning). */
struct Value
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<Value> items;                            ///< Array
    std::vector<std::pair<std::string, Value>> fields;   ///< Object

    bool isObject() const { return kind == Kind::Object; }

    /** Field lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Field as number, @p dflt when absent or non-numeric. */
    double num(const std::string &key, double dflt = 0.0) const;

    /** Field as string, @p dflt when absent or non-string. */
    std::string text(const std::string &key,
                     const std::string &dflt = "") const;
};

/**
 * Parse @p text (one complete JSON document; trailing whitespace
 * allowed, trailing garbage is an error). @return false with a
 * position-bearing message in @p err (when non-null) on failure.
 */
bool parse(const std::string &text, Value &out,
           std::string *err = nullptr);

} // namespace json
} // namespace acic

#endif // ACIC_COMMON_JSON_HH
