/**
 * @file
 * Minimal gem5-style logging: panic() for internal invariant
 * violations (aborts), fatal() for user/configuration errors (clean
 * exit), and printf-style warn()/inform()/logDebug() for status.
 * Header-only so every module can use it without a link dependency.
 *
 * All status output goes to stderr — stdout is reserved for result
 * payloads (CSV/JSON/stat dumps), which status lines must never
 * interleave with. warn/inform/debug are filtered by the
 * ACIC_LOG_LEVEL environment variable (silent|error|warn|info|debug,
 * or the matching 0-4 numeral; default info), read once per process.
 * panic() and fatal() always print.
 *
 * The single-argument form prints its message verbatim (no format
 * interpretation), so paths or user strings containing '%' are safe:
 *   warn(msg.c_str());
 *   inform("sweep: %zu cells on %u threads", cells, threads);
 */

#ifndef ACIC_COMMON_LOGGING_HH
#define ACIC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace acic {

/** Verbosity threshold of the status macros; higher prints more. */
enum class LogLevel : int {
    Silent = 0,
    Error = 1,
    Warn = 2,
    Info = 3,
    Debug = 4,
};

/**
 * Parse an ACIC_LOG_LEVEL value; unknown text (and null) yields the
 * @p fallback so a typo degrades to the default loudly-enough rather
 * than silencing the run.
 */
inline LogLevel
logLevelFromString(const char *text,
                   LogLevel fallback = LogLevel::Info)
{
    if (!text || !*text)
        return fallback;
    if (text[0] >= '0' && text[0] <= '4' && text[1] == '\0')
        return static_cast<LogLevel>(text[0] - '0');
    if (!std::strcmp(text, "silent"))
        return LogLevel::Silent;
    if (!std::strcmp(text, "error"))
        return LogLevel::Error;
    if (!std::strcmp(text, "warn"))
        return LogLevel::Warn;
    if (!std::strcmp(text, "info"))
        return LogLevel::Info;
    if (!std::strcmp(text, "debug"))
        return LogLevel::Debug;
    return fallback;
}

/** Process-wide threshold, latched from ACIC_LOG_LEVEL on first use. */
inline LogLevel
logLevel()
{
    static const LogLevel level =
        logLevelFromString(std::getenv("ACIC_LOG_LEVEL"));
    return level;
}

/** True when messages of @p level should print. */
inline bool
logEnabled(LogLevel level)
{
    return static_cast<int>(level) <= static_cast<int>(logLevel());
}

/**
 * Abort the simulation because an internal invariant was violated.
 * Use for conditions that indicate a bug in the simulator itself.
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Terminate the simulation because of a user-level error such as an
 * invalid configuration. Exits with status 1 instead of aborting.
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/**
 * Print one status line "<tag>: <formatted message>" to stderr. The
 * zero-argument form bypasses format interpretation (see file
 * comment); callers go through warn()/inform()/logDebug().
 */
template <typename... Args>
inline void
logLine(LogLevel level, const char *tag, const char *fmt,
        Args... args)
{
    if (!logEnabled(level))
        return;
    if constexpr (sizeof...(Args) == 0) {
        std::fprintf(stderr, "%s: %s\n", tag, fmt);
    } else {
        std::fprintf(stderr, "%s: ", tag);
        std::fprintf(stderr, fmt, args...);
        std::fputc('\n', stderr);
    }
}

/** Print a warning that does not stop the simulation. */
template <typename... Args>
inline void
warn(const char *fmt, Args... args)
{
    logLine(LogLevel::Warn, "warn", fmt, args...);
}

/** Print an informational status message (stderr; stdout carries
 *  result payloads only). */
template <typename... Args>
inline void
inform(const char *fmt, Args... args)
{
    logLine(LogLevel::Info, "info", fmt, args...);
}

/** Print a debug-level message (hidden unless ACIC_LOG_LEVEL=debug). */
template <typename... Args>
inline void
logDebug(const char *fmt, Args... args)
{
    logLine(LogLevel::Debug, "debug", fmt, args...);
}

} // namespace acic

#define ACIC_PANIC(msg) ::acic::panicImpl(__FILE__, __LINE__, (msg))
#define ACIC_FATAL(msg) ::acic::fatalImpl(__FILE__, __LINE__, (msg))

/** Cheap always-on invariant check used on non-hot paths. */
#define ACIC_ASSERT(cond, msg)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ACIC_PANIC(msg);                                              \
        }                                                                 \
    } while (0)

#endif // ACIC_COMMON_LOGGING_HH
