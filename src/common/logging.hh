/**
 * @file
 * Minimal gem5-style logging: panic() for internal invariant violations
 * (aborts), fatal() for user/configuration errors (clean exit), warn()
 * and inform() for status. Header-only so every module can use it
 * without a link dependency.
 */

#ifndef ACIC_COMMON_LOGGING_HH
#define ACIC_COMMON_LOGGING_HH

#include <cstdio>
#include <cstdlib>

namespace acic {

/**
 * Abort the simulation because an internal invariant was violated.
 * Use for conditions that indicate a bug in the simulator itself.
 */
[[noreturn]] inline void
panicImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "panic: %s (%s:%d)\n", msg, file, line);
    std::abort();
}

/**
 * Terminate the simulation because of a user-level error such as an
 * invalid configuration. Exits with status 1 instead of aborting.
 */
[[noreturn]] inline void
fatalImpl(const char *file, int line, const char *msg)
{
    std::fprintf(stderr, "fatal: %s (%s:%d)\n", msg, file, line);
    std::exit(1);
}

/** Print a warning that does not stop the simulation. */
inline void
warn(const char *msg)
{
    std::fprintf(stderr, "warn: %s\n", msg);
}

/** Print an informational status message. */
inline void
inform(const char *msg)
{
    std::fprintf(stdout, "info: %s\n", msg);
}

} // namespace acic

#define ACIC_PANIC(msg) ::acic::panicImpl(__FILE__, __LINE__, (msg))
#define ACIC_FATAL(msg) ::acic::fatalImpl(__FILE__, __LINE__, (msg))

/** Cheap always-on invariant check used on non-hot paths. */
#define ACIC_ASSERT(cond, msg)                                            \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ACIC_PANIC(msg);                                              \
        }                                                                 \
    } while (0)

#endif // ACIC_COMMON_LOGGING_HH
