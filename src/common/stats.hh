/**
 * @file
 * Lightweight named-statistics registry. Modules register counters with
 * a name and the simulator dumps them at the end of a run; benches pick
 * specific counters to build the paper's tables.
 */

#ifndef ACIC_COMMON_STATS_HH
#define ACIC_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>

namespace acic {

/** A flat bag of named 64-bit counters and derived ratios. */
class StatSet
{
  public:
    /** Add @p delta (default 1) to counter @p name, creating it at 0. */
    void bump(const std::string &name, std::uint64_t delta = 1);

    /** Set counter @p name to an explicit value. */
    void set(const std::string &name, std::uint64_t value);

    /** Value of @p name, or 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** True when the counter exists. */
    bool has(const std::string &name) const;

    /** numerator/denominator with 0 fallback when denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Reset everything. */
    void clear();

    /**
     * Dump "name value" lines sorted by name.
     * @param out destination stream (std::cout by default), so the
     *        driver's emitters and tests can capture the output.
     */
    void dump(const std::string &prefix = "") const;
    void dump(std::ostream &out,
              const std::string &prefix = "") const;

    /** Access to the underlying map for iteration in tests. */
    const std::map<std::string, std::uint64_t> &raw() const
    {
        return counters_;
    }

  private:
    std::map<std::string, std::uint64_t> counters_;
};

} // namespace acic

#endif // ACIC_COMMON_STATS_HH
