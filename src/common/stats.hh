/**
 * @file
 * Lightweight named-statistics registry with a two-tier design:
 *
 *  - Registration phase (cold, construction time): modules intern
 *    counter names with handle(), receiving an integer StatHandle.
 *    Bucketed families ("acic.decisions_r2048", "acic.gap_bucket_3")
 *    intern every member once into a handle table.
 *  - Hot phase (per fetch bundle): bump(StatHandle) is a
 *    bounds-checked array increment — no allocation, no hashing, no
 *    string construction, no tree walk.
 *
 * The original string-keyed API remains as a compatibility shim
 * (interning on first use), so tests, benches, and one-off counters
 * keep working; it is the slow path and must stay out of per-access
 * loops. dump()/raw() only show counters that were actually written
 * (bump/set), never merely registered ones, so output is byte-for-byte
 * identical to the historical map-based StatSet — the golden-run
 * corpus under tests/golden/ pins this.
 */

#ifndef ACIC_COMMON_STATS_HH
#define ACIC_COMMON_STATS_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/logging.hh"

namespace acic {

class Serializer;
class Deserializer;

/**
 * Interned counter id, valid only for the StatSet that produced it
 * (and copies of that StatSet, which preserve indices). The default
 * constructed handle is invalid and trips the bump() bounds check.
 */
class StatHandle
{
  public:
    StatHandle() = default;

    bool valid() const { return idx_ != kInvalid; }

  private:
    friend class StatSet;
    explicit StatHandle(std::uint32_t idx) : idx_(idx) {}

    static constexpr std::uint32_t kInvalid = ~std::uint32_t{0};
    std::uint32_t idx_ = kInvalid;
};

/** A flat bag of named 64-bit counters and derived ratios. */
class StatSet
{
  public:
    // ---- registration phase ------------------------------------

    /**
     * Intern @p name and return its handle; idempotent, so modules
     * may register the same name freely. Registration alone does not
     * make the counter appear in dump()/raw() — only a write does.
     */
    StatHandle handle(const std::string &name);

    // ---- hot phase ---------------------------------------------

    /** Add @p delta (default 1) to the counter behind @p handle. */
    void bump(StatHandle handle, std::uint64_t delta = 1)
    {
        ACIC_ASSERT(handle.idx_ < values_.size(),
                    "bump() on an unregistered stat handle");
        values_[handle.idx_] += delta;
        touched_[handle.idx_] = 1;
    }

    /** Set the counter behind @p handle to an explicit value. */
    void set(StatHandle handle, std::uint64_t value)
    {
        ACIC_ASSERT(handle.idx_ < values_.size(),
                    "set() on an unregistered stat handle");
        values_[handle.idx_] = value;
        touched_[handle.idx_] = 1;
    }

    /** Value behind @p handle (0 until first written). */
    std::uint64_t get(StatHandle handle) const
    {
        ACIC_ASSERT(handle.idx_ < values_.size(),
                    "get() on an unregistered stat handle");
        return values_[handle.idx_];
    }

    // ---- string compatibility shim (slow path) -----------------

    /** Add @p delta (default 1) to counter @p name, creating it. */
    void bump(const std::string &name, std::uint64_t delta = 1)
    {
        bump(handle(name), delta);
    }

    /** Set counter @p name to an explicit value. */
    void set(const std::string &name, std::uint64_t value)
    {
        set(handle(name), value);
    }

    /** Value of @p name, or 0 when absent. */
    std::uint64_t get(const std::string &name) const;

    /** True when the counter exists (was ever written, not merely
     *  registered). */
    bool has(const std::string &name) const;

    /** numerator/denominator with 0 fallback when denominator is 0. */
    double ratio(const std::string &num, const std::string &den) const;

    /** Reset every counter to unwritten; registrations survive. */
    void clear();

    /**
     * Dump "name value" lines sorted by name.
     * @param out destination stream (std::cout by default), so the
     *        driver's emitters and tests can capture the output.
     */
    void dump(const std::string &prefix = "") const;
    void dump(std::ostream &out,
              const std::string &prefix = "") const;

    /** Written counters as a sorted name->value map (tests,
     *  emitters). Built on demand; not for hot paths. */
    std::map<std::string, std::uint64_t> raw() const;

    /**
     * Checkpoint the full registry — names in registration order,
     * values, and touched flags — so load() reproduces the exact
     * index layout and previously interned StatHandles stay valid.
     */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    const std::uint32_t *findIndex(const std::string &name) const;

    /** name -> index into values_/touched_/names_. */
    std::unordered_map<std::string, std::uint32_t> index_;
    /** Registration-ordered names; dump() sorts a view on demand. */
    std::vector<std::string> names_;
    std::vector<std::uint64_t> values_;
    /** 1 once bump()/set() ran; registered-only counters stay 0 and
     *  are hidden from dump()/raw()/has(). */
    std::vector<std::uint8_t> touched_;
};

} // namespace acic

#endif // ACIC_COMMON_STATS_HH
