/**
 * @file
 * Saturating counter, the workhorse of every predictor in this repo:
 * the ACIC pattern table (5-bit), GHRP dead-block tables (2-bit),
 * SRRIP RRPVs, SHiP SHCT, TAGE useful bits, etc.
 */

#ifndef ACIC_COMMON_SAT_COUNTER_HH
#define ACIC_COMMON_SAT_COUNTER_HH

#include <cstdint>

#include "common/logging.hh"

namespace acic {

/**
 * An n-bit saturating counter. Increment/decrement clamp at the bounds
 * instead of wrapping, matching the hardware structures in the paper.
 */
class SatCounter
{
  public:
    /**
     * @param bits counter width in bits (1..31).
     * @param initial initial value; clamped to the representable range.
     */
    explicit SatCounter(unsigned bits = 2, std::uint32_t initial = 0)
        : maxVal_((1u << bits) - 1),
          value_(initial > maxVal_ ? maxVal_ : initial)
    {
        ACIC_ASSERT(bits >= 1 && bits <= 31, "SatCounter width");
    }

    /** Saturating increment. */
    void
    increment()
    {
        if (value_ < maxVal_)
            ++value_;
    }

    /** Saturating decrement. */
    void
    decrement()
    {
        if (value_ > 0)
            --value_;
    }

    /** Current raw value. */
    std::uint32_t value() const { return value_; }

    /** Largest representable value. */
    std::uint32_t maxValue() const { return maxVal_; }

    /** Set to an explicit value (clamped). */
    void
    set(std::uint32_t v)
    {
        value_ = v > maxVal_ ? maxVal_ : v;
    }

    /** Reset to zero. */
    void reset() { value_ = 0; }

    /** True when the MSB of the counter is set (taken / predict-yes). */
    bool msbSet() const { return value_ > maxVal_ / 2; }

    /** True when value >= threshold. */
    bool atLeast(std::uint32_t threshold) const
    {
        return value_ >= threshold;
    }

  private:
    std::uint32_t maxVal_;
    std::uint32_t value_;
};

} // namespace acic

#endif // ACIC_COMMON_SAT_COUNTER_HH
