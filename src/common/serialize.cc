#include "common/serialize.hh"

#include <array>
#include <atomic>
#include <cstdio>
#include <fstream>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace acic {

constexpr char CheckpointFormat::kMagic[4];
constexpr std::uint16_t CheckpointFormat::kVersion;
constexpr std::size_t CheckpointFormat::kHeaderBytes;

namespace {

std::array<std::uint32_t, 256>
buildCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[i] = c;
    }
    return table;
}

} // namespace

std::uint32_t
crc32(const void *data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table =
        buildCrcTable();
    const auto *p = static_cast<const std::uint8_t *>(data);
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i)
        c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

void
writeCheckpointFile(const std::string &path, const char tag[4],
                    const std::vector<std::uint8_t> &payload)
{
    Serializer header;
    for (char m : CheckpointFormat::kMagic)
        header.u8(static_cast<std::uint8_t>(m));
    header.u16(CheckpointFormat::kVersion);
    for (int i = 0; i < 4; ++i)
        header.u8(static_cast<std::uint8_t>(tag[i]));
    header.u64(payload.size());
    header.u32(crc32(payload.data(), payload.size()));

    // Unique temp name per process and call: shard processes sharing
    // a checkpoint directory must never interleave writes into one
    // temp file (the rename itself is atomic either way).
    static std::atomic<std::uint64_t> tmpSeq{0};
    std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
    tmp += "." + std::to_string(static_cast<long>(getpid()));
#endif
    tmp += "." + std::to_string(tmpSeq.fetch_add(1));
    {
        std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
        if (!out)
            throw SerializeError("cannot open checkpoint temp file " +
                                 tmp + " for writing");
        const auto &h = header.bytes();
        out.write(reinterpret_cast<const char *>(h.data()),
                  static_cast<std::streamsize>(h.size()));
        out.write(reinterpret_cast<const char *>(payload.data()),
                  static_cast<std::streamsize>(payload.size()));
        out.flush();
        if (!out)
            throw SerializeError("short write to checkpoint temp "
                                 "file " +
                                 tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SerializeError("cannot rename checkpoint temp file " +
                             tmp + " over " + path);
    }
}

std::vector<std::uint8_t>
readCheckpointFile(const std::string &path, const char tag[4])
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        throw SerializeError("cannot open checkpoint file " + path);
    std::vector<std::uint8_t> bytes(
        (std::istreambuf_iterator<char>(in)),
        std::istreambuf_iterator<char>());
    if (bytes.size() < CheckpointFormat::kHeaderBytes)
        throw SerializeError(
            "checkpoint file " + path + " is truncated: " +
            std::to_string(bytes.size()) +
            " bytes, header needs " +
            std::to_string(CheckpointFormat::kHeaderBytes));

    Deserializer d(bytes);
    for (char m : CheckpointFormat::kMagic)
        if (d.u8() != static_cast<std::uint8_t>(m))
            throw SerializeError("checkpoint file " + path +
                                 " has bad magic (not an ACKP "
                                 "checkpoint)");
    const std::uint16_t version = d.u16();
    if (version != CheckpointFormat::kVersion)
        throw SerializeError(
            "checkpoint file " + path +
            " has unsupported format version " +
            std::to_string(version) + " (this build reads version " +
            std::to_string(CheckpointFormat::kVersion) + ")");
    char got_tag[5] = {0, 0, 0, 0, 0};
    for (int i = 0; i < 4; ++i)
        got_tag[i] = static_cast<char>(d.u8());
    if (std::memcmp(got_tag, tag, 4) != 0)
        throw SerializeError(
            "checkpoint file " + path + " has payload tag '" +
            got_tag + "', expected '" + std::string(tag, 4) + "'");
    const std::uint64_t length = d.u64();
    const std::uint32_t want_crc = d.u32();
    if (length != bytes.size() - CheckpointFormat::kHeaderBytes)
        throw SerializeError(
            "checkpoint file " + path + " is truncated: header "
            "declares " +
            std::to_string(length) + " payload bytes, file has " +
            std::to_string(bytes.size() -
                           CheckpointFormat::kHeaderBytes));
    const std::uint8_t *payload =
        bytes.data() + CheckpointFormat::kHeaderBytes;
    const std::uint32_t got_crc =
        crc32(payload, static_cast<std::size_t>(length));
    if (got_crc != want_crc)
        throw SerializeError(
            "checkpoint file " + path + " failed CRC-32 "
            "verification (payload is corrupt)");
    return std::vector<std::uint8_t>(payload, payload + length);
}

} // namespace acic
