/**
 * @file
 * Versioned binary serialization for checkpoint/resume: a
 * little-endian field-by-field byte stream (never struct memcpy —
 * padding bytes are nondeterministic) with a CRC-32-guarded container
 * format ("ACKP" magic, format version, 4-char payload tag). Every
 * stateful simulator component exposes save(Serializer&) /
 * load(Deserializer&) built on these primitives; SimEngine composes
 * them into a whole-machine snapshot (sim/engine.hh) and the driver
 * persists completed cells and in-flight engines through
 * writeCheckpointFile()'s temp-file+rename atomic publish.
 *
 * Failure policy: a checkpoint is either provably intact or rejected
 * loudly. readCheckpointFile() distinguishes truncation, magic,
 * version, tag, and CRC mismatches in its SerializeError message, and
 * Deserializer bounds-checks every read, so a corrupted snapshot can
 * never silently resume into wrong statistics.
 */

#ifndef ACIC_COMMON_SERIALIZE_HH
#define ACIC_COMMON_SERIALIZE_HH

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/sat_counter.hh"

namespace acic {

/** Thrown on any malformed, corrupt, or incompatible checkpoint. */
class SerializeError : public std::runtime_error
{
  public:
    explicit SerializeError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

/** CRC-32 (IEEE 802.3, reflected) over @p size bytes at @p data. */
std::uint32_t crc32(const void *data, std::size_t size);

/** Little-endian append-only byte sink. */
class Serializer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    f64(double v)
    {
        std::uint64_t bits = 0;
        static_assert(sizeof(bits) == sizeof(v), "double is 64-bit");
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string &s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    /** Element-count-prefixed vector of unsigned scalars. */
    template <typename T, typename Writer>
    void
    vec(const std::vector<T> &v, Writer &&write_one)
    {
        u64(v.size());
        for (const T &e : v)
            write_one(e);
    }

    void
    vecU8(const std::vector<std::uint8_t> &v)
    {
        u64(v.size());
        buf_.insert(buf_.end(), v.begin(), v.end());
    }

    void
    vecU32(const std::vector<std::uint32_t> &v)
    {
        u64(v.size());
        for (std::uint32_t e : v)
            u32(e);
    }

    void
    vecU64(const std::vector<std::uint64_t> &v)
    {
        u64(v.size());
        for (std::uint64_t e : v)
            u64(e);
    }

    /**
     * Saturating-counter vector: widths come from construction and
     * are geometry, so only the values travel.
     */
    void
    vecSat(const std::vector<SatCounter> &v)
    {
        u64(v.size());
        for (const SatCounter &c : v)
            u32(c.value());
    }

    const std::vector<std::uint8_t> &bytes() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

  private:
    std::vector<std::uint8_t> buf_;
};

/** Bounds-checked little-endian reader over a byte buffer. */
class Deserializer
{
  public:
    Deserializer(const std::uint8_t *data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit Deserializer(const std::vector<std::uint8_t> &buf)
        : Deserializer(buf.data(), buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        return static_cast<std::uint16_t>(lo |
                                          (std::uint16_t{u8()} << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        return lo | (std::uint32_t{u16()} << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        return lo | (std::uint64_t{u32()} << 32);
    }

    bool
    b()
    {
        const std::uint8_t v = u8();
        if (v > 1)
            throw SerializeError("checkpoint bool field out of "
                                 "range (corrupt payload)");
        return v != 0;
    }

    double
    f64()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_),
                      static_cast<std::size_t>(n));
        pos_ += static_cast<std::size_t>(n);
        return s;
    }

    /** Read an element count, sanity-bounded by remaining bytes. */
    std::size_t
    count(std::size_t min_bytes_per_element = 1)
    {
        const std::uint64_t n = u64();
        if (min_bytes_per_element > 0 &&
            n > remaining() / min_bytes_per_element)
            throw SerializeError(
                "checkpoint element count exceeds payload size "
                "(truncated or corrupt)");
        return static_cast<std::size_t>(n);
    }

    std::vector<std::uint8_t>
    vecU8()
    {
        const std::size_t n = count(1);
        std::vector<std::uint8_t> v(n);
        need(n);
        std::memcpy(v.data(), data_ + pos_, n);
        pos_ += n;
        return v;
    }

    std::vector<std::uint32_t>
    vecU32()
    {
        const std::size_t n = count(4);
        std::vector<std::uint32_t> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = u32();
        return v;
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        const std::size_t n = count(8);
        std::vector<std::uint64_t> v(n);
        for (std::size_t i = 0; i < n; ++i)
            v[i] = u64();
        return v;
    }

    /**
     * Restore counter values into an already-constructed vector
     * (widths are geometry); the length must match.
     */
    void
    vecSat(std::vector<SatCounter> &v)
    {
        const std::size_t n = count(4);
        if (n != v.size())
            throw SerializeError(
                "checkpoint counter-table size mismatch (geometry "
                "differs from the running configuration)");
        for (SatCounter &c : v)
            c.set(u32());
    }

    /**
     * Assert a geometry field matches the running construction —
     * checkpoints restore state into identically-built objects, never
     * reshape them.
     */
    void
    expectGeometry(const char *what, std::uint64_t expected)
    {
        const std::uint64_t got = u64();
        if (got != expected)
            throw SerializeError(
                std::string("checkpoint geometry mismatch for ") +
                what + ": snapshot has " + std::to_string(got) +
                ", running configuration has " +
                std::to_string(expected));
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

    /** Require the stream to be fully consumed. */
    void
    finish()
    {
        if (!done())
            throw SerializeError(
                "checkpoint payload has " +
                std::to_string(remaining()) +
                " unread trailing bytes (format mismatch)");
    }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            throw SerializeError(
                "checkpoint payload truncated: wanted " +
                std::to_string(n) + " bytes, " +
                std::to_string(size_ - pos_) + " remain");
    }

    const std::uint8_t *data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Container framing shared by every on-disk checkpoint file. */
struct CheckpointFormat
{
    /** File magic ("ACKP"). */
    static constexpr char kMagic[4] = {'A', 'C', 'K', 'P'};
    /** Container format version; bump on any layout change. */
    static constexpr std::uint16_t kVersion = 1;
    /** Header bytes: magic + version + tag + length + crc. */
    static constexpr std::size_t kHeaderBytes = 4 + 2 + 4 + 8 + 4;
};

/**
 * Atomically publish @p payload to @p path under the "ACKP" container
 * (magic, version, 4-char @p tag, payload length, CRC-32 of the
 * payload): the bytes are written to `<path>.tmp` and renamed over
 * @p path, so a concurrently crashed writer leaves either the old
 * file or nothing — never a partial checkpoint. Throws
 * SerializeError on any I/O failure.
 */
void writeCheckpointFile(const std::string &path, const char tag[4],
                         const std::vector<std::uint8_t> &payload);

/**
 * Read and validate a checkpoint container written by
 * writeCheckpointFile(). Throws SerializeError naming the specific
 * failure — truncation, bad magic, unsupported version, tag
 * mismatch, payload length, or CRC mismatch — and the offending
 * path. Returns the verified payload bytes.
 */
std::vector<std::uint8_t>
readCheckpointFile(const std::string &path, const char tag[4]);

} // namespace acic

#endif // ACIC_COMMON_SERIALIZE_HH
