#include "common/kv_spec.hh"

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace acic {

namespace {

std::string
trimmed(const std::string &s)
{
    std::size_t first = 0;
    std::size_t last = s.size();
    while (first < last &&
           std::isspace(static_cast<unsigned char>(s[first])))
        ++first;
    while (last > first &&
           std::isspace(static_cast<unsigned char>(s[last - 1])))
        --last;
    return s.substr(first, last - first);
}

} // namespace

std::string
KvSpec::toString() const
{
    if (params.empty())
        return name;
    std::string out = name + "(";
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (i)
            out += ',';
        out += params[i].key + "=" + params[i].value;
    }
    out += ')';
    return out;
}

std::string
canonicalToken(const std::string &token)
{
    std::string out;
    out.reserve(token.size());
    for (const char c : token) {
        if (c == '_' || c == '-')
            out.push_back(' ');
        else
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return trimmed(out);
}

std::vector<std::string>
splitTopLevel(const std::string &list, char sep)
{
    std::vector<std::string> out;
    std::string item;
    int depth = 0;
    for (const char c : list) {
        if (c == '(' || c == '{')
            ++depth;
        else if (c == ')' || c == '}')
            --depth;
        if (c == sep && depth == 0) {
            const std::string t = trimmed(item);
            if (!t.empty())
                out.push_back(t);
            item.clear();
        } else {
            item.push_back(c);
        }
    }
    const std::string t = trimmed(item);
    if (!t.empty())
        out.push_back(t);
    return out;
}

KvSpec
parseKvSpec(const std::string &text)
{
    const std::string spec = trimmed(text);
    KvSpec out;

    const std::size_t open = spec.find('(');
    if (open == std::string::npos) {
        if (spec.find(')') != std::string::npos ||
            spec.find('=') != std::string::npos)
            throw SpecError("malformed spec '" + spec +
                            "': expected name or name(key=value,...)");
        out.name = spec;
        if (out.name.empty())
            throw SpecError("empty scheme spec");
        return out;
    }

    out.name = trimmed(spec.substr(0, open));
    if (out.name.empty())
        throw SpecError("malformed spec '" + spec +
                        "': missing name before '('");
    if (spec.back() != ')')
        throw SpecError("malformed spec '" + spec +
                        "': expected ')' at the end");
    const std::string body =
        spec.substr(open + 1, spec.size() - open - 2);
    if (body.find('(') != std::string::npos ||
        body.find(')') != std::string::npos)
        throw SpecError("malformed spec '" + spec +
                        "': nested parentheses");
    if (trimmed(body).empty())
        throw SpecError("malformed spec '" + spec +
                        "': empty parameter list (drop the parens)");

    for (const std::string &param : splitTopLevel(body, ',')) {
        const std::size_t eq = param.find('=');
        if (eq == std::string::npos)
            throw SpecError("malformed parameter '" + param +
                            "' in '" + spec +
                            "': expected key=value");
        KvPair pair;
        pair.key = trimmed(param.substr(0, eq));
        pair.value = trimmed(param.substr(eq + 1));
        if (pair.key.empty() || pair.value.empty())
            throw SpecError("malformed parameter '" + param +
                            "' in '" + spec +
                            "': expected key=value");
        if (pair.value.find('{') != std::string::npos) {
            if (pair.value.front() != '{' ||
                pair.value.back() != '}' ||
                pair.value.find('{', 1) != std::string::npos)
                throw SpecError("malformed value set '" + pair.value +
                                "' in '" + spec + "'");
        } else if (pair.value.find('}') != std::string::npos) {
            throw SpecError("malformed value set '" + pair.value +
                            "' in '" + spec + "'");
        }
        for (const KvPair &seen : out.params)
            if (seen.key == pair.key)
                throw SpecError("duplicate parameter '" + pair.key +
                                "' in '" + spec + "'");
        out.params.push_back(std::move(pair));
    }
    return out;
}

bool
hasValueSets(const KvSpec &spec)
{
    for (const KvPair &p : spec.params)
        if (!p.value.empty() && p.value.front() == '{')
            return true;
    return false;
}

std::vector<KvSpec>
expandValueSets(const KvSpec &spec)
{
    // Per-parameter candidate values; scalars contribute one each.
    std::vector<std::vector<std::string>> choices;
    for (const KvPair &p : spec.params) {
        if (!p.value.empty() && p.value.front() == '{') {
            const std::string body =
                p.value.substr(1, p.value.size() - 2);
            std::vector<std::string> values =
                splitTopLevel(body, ',');
            if (values.empty())
                throw SpecError("empty value set for parameter '" +
                                p.key + "' in '" + spec.toString() +
                                "'");
            choices.push_back(std::move(values));
        } else {
            choices.push_back({p.value});
        }
    }

    std::vector<KvSpec> out;
    std::vector<std::size_t> index(choices.size(), 0);
    while (true) {
        KvSpec concrete;
        concrete.name = spec.name;
        for (std::size_t i = 0; i < choices.size(); ++i)
            concrete.params.push_back(
                {spec.params[i].key, choices[i][index[i]]});
        out.push_back(std::move(concrete));

        // Odometer: rightmost parameter varies fastest.
        std::size_t i = choices.size();
        while (i > 0) {
            --i;
            if (++index[i] < choices[i].size())
                break;
            index[i] = 0;
            if (i == 0)
                return out;
        }
        if (choices.empty())
            return out;
    }
}

std::size_t
editDistance(const std::string &a, const std::string &b)
{
    std::vector<std::size_t> prev(b.size() + 1);
    std::vector<std::size_t> cur(b.size() + 1);
    for (std::size_t j = 0; j <= b.size(); ++j)
        prev[j] = j;
    for (std::size_t i = 1; i <= a.size(); ++i) {
        cur[0] = i;
        for (std::size_t j = 1; j <= b.size(); ++j) {
            const std::size_t subst =
                prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
            cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, subst});
        }
        std::swap(prev, cur);
    }
    return prev[b.size()];
}

std::string
ParamSpec::rangeText() const
{
    if (kind == Kind::Keyword) {
        std::string out;
        for (std::size_t i = 0; i < keywords.size(); ++i)
            out += (i ? "|" : "") + keywords[i];
        return out;
    }
    const auto fmt = [this](double v) {
        char buf[32];
        if (kind == Kind::Real)
            std::snprintf(buf, sizeof(buf), "%g", v);
        else
            std::snprintf(buf, sizeof(buf), "%lld",
                          static_cast<long long>(v));
        return std::string(buf);
    };
    return "[" + fmt(min) + ".." + fmt(max) + "]";
}

ParamSpec
ParamSpec::count(std::string key, std::string def, double min,
                 double max, std::string summary)
{
    ParamSpec p;
    p.key = std::move(key);
    p.kind = Kind::Count;
    p.defaultText = std::move(def);
    p.min = min;
    p.max = max;
    p.summary = std::move(summary);
    return p;
}

ParamSpec
ParamSpec::integer(std::string key, std::string def, double min,
                   double max, std::string summary)
{
    ParamSpec p = count(std::move(key), std::move(def), min, max,
                        std::move(summary));
    p.kind = Kind::Integer;
    return p;
}

ParamSpec
ParamSpec::real(std::string key, std::string def, double min,
                double max, std::string summary)
{
    ParamSpec p = count(std::move(key), std::move(def), min, max,
                        std::move(summary));
    p.kind = Kind::Real;
    return p;
}

ParamSpec
ParamSpec::keyword(std::string key, std::string def,
                   std::vector<std::string> keywords,
                   std::string summary)
{
    ParamSpec p;
    p.key = std::move(key);
    p.kind = Kind::Keyword;
    p.defaultText = std::move(def);
    p.keywords = std::move(keywords);
    p.summary = std::move(summary);
    return p;
}

namespace {

double
parseNumber(const std::string &subject, const ParamSpec &doc,
            const std::string &value)
{
    errno = 0;
    char *end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0' || errno == ERANGE)
        throw SpecError(subject + ": parameter '" + doc.key +
                        "' has non-numeric value '" + value + "'");
    if (doc.kind != ParamSpec::Kind::Real &&
        v != static_cast<double>(static_cast<long long>(v)))
        throw SpecError(subject + ": parameter '" + doc.key +
                        "' must be an integer, got '" + value + "'");
    if (v < doc.min || v > doc.max)
        throw SpecError(subject + ": " + doc.key + "=" + value +
                        " out of range " + doc.rangeText());
    return v;
}

} // namespace

ParamReader::ParamReader(std::string subject,
                         const std::vector<ParamSpec> &docs,
                         const std::vector<KvPair> &given)
    : subject_(std::move(subject)), given_(given)
{
    for (std::size_t i = 0; i < given_.size(); ++i) {
        const KvPair &pair = given_[i];
        for (std::size_t j = 0; j < i; ++j)
            if (given_[j].key == pair.key)
                throw SpecError(subject_ + ": duplicate parameter '" +
                                pair.key + "'");
        if (!pair.value.empty() && pair.value.front() == '{')
            throw SpecError(subject_ + ": value sets {a,b,...} are "
                            "only expanded by sweep grids (parameter "
                            "'" + pair.key + "')");

        const ParamSpec *doc = nullptr;
        for (const ParamSpec &d : docs)
            if (d.key == pair.key) {
                doc = &d;
                break;
            }
        if (!doc) {
            std::string msg = subject_ + ": unknown parameter '" +
                              pair.key + "'";
            if (docs.empty()) {
                msg = subject_ + " takes no parameters (got '" +
                      pair.key + "')";
            } else {
                msg += " (valid:";
                for (const ParamSpec &d : docs)
                    msg += " " + d.key;
                msg += ")";
            }
            throw SpecError(msg);
        }

        if (doc->kind == ParamSpec::Kind::Keyword) {
            const std::string folded = canonicalToken(pair.value);
            bool ok = false;
            for (const std::string &k : doc->keywords)
                ok = ok || canonicalToken(k) == folded;
            if (!ok)
                throw SpecError(subject_ + ": " + doc->key + "='" +
                                pair.value + "' invalid (one of: " +
                                doc->rangeText() + ")");
        } else {
            parseNumber(subject_, *doc, pair.value);
        }
    }
}

const KvPair *
ParamReader::findPair(const std::string &key) const
{
    for (const KvPair &p : given_)
        if (p.key == key)
            return &p;
    return nullptr;
}

bool
ParamReader::given(const std::string &key) const
{
    return findPair(key) != nullptr;
}

std::uint64_t
ParamReader::count(const std::string &key,
                   std::uint64_t fallback) const
{
    const KvPair *p = findPair(key);
    if (!p)
        return fallback;
    // strtod, matching validation: "1e2" and "0x20" read as the
    // same number the range check accepted (integrality was
    // enforced there, so the cast is exact).
    return static_cast<std::uint64_t>(
        std::strtod(p->value.c_str(), nullptr));
}

std::int64_t
ParamReader::integer(const std::string &key,
                     std::int64_t fallback) const
{
    const KvPair *p = findPair(key);
    if (!p)
        return fallback;
    return static_cast<std::int64_t>(
        std::strtod(p->value.c_str(), nullptr));
}

double
ParamReader::real(const std::string &key, double fallback) const
{
    const KvPair *p = findPair(key);
    if (!p)
        return fallback;
    return std::strtod(p->value.c_str(), nullptr);
}

std::string
ParamReader::keyword(const std::string &key,
                     std::string fallback) const
{
    const KvPair *p = findPair(key);
    // Canonicalize both sides so "Two-Level" matches "two_level".
    return canonicalToken(p ? p->value : fallback);
}

} // namespace acic
