/**
 * @file
 * Fenwick (binary indexed) tree over prefix sums. Used by the
 * reuse-distance profiler: stack distance of an access is the number of
 * *distinct* blocks touched since the previous access to the same
 * block, computed in O(log n) by marking each block's most recent
 * access time and summing marks in a time window (Olken's algorithm).
 */

#ifndef ACIC_COMMON_FENWICK_HH
#define ACIC_COMMON_FENWICK_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace acic {

/** Fenwick tree of 32-bit deltas with 64-bit prefix sums. */
class FenwickTree
{
  public:
    /** @param n number of addressable slots [0, n). */
    explicit FenwickTree(std::size_t n) : tree_(n + 1, 0) {}

    /** Add @p delta at index @p i. */
    void
    add(std::size_t i, std::int32_t delta)
    {
        ACIC_ASSERT(i + 1 < tree_.size() + 1 && i < size(),
                    "FenwickTree::add out of range");
        for (std::size_t j = i + 1; j < tree_.size(); j += j & (~j + 1))
            tree_[j] += delta;
    }

    /** Sum of [0, i] inclusive. */
    std::int64_t
    prefixSum(std::size_t i) const
    {
        std::int64_t sum = 0;
        for (std::size_t j = i + 1; j > 0; j -= j & (~j + 1))
            sum += tree_[j];
        return sum;
    }

    /** Sum of the closed interval [lo, hi]; 0 when lo > hi. */
    std::int64_t
    rangeSum(std::size_t lo, std::size_t hi) const
    {
        if (lo > hi)
            return 0;
        const std::int64_t upper = prefixSum(hi);
        return lo == 0 ? upper : upper - prefixSum(lo - 1);
    }

    /** Number of slots. */
    std::size_t size() const { return tree_.size() - 1; }

  private:
    std::vector<std::int64_t> tree_;
};

} // namespace acic

#endif // ACIC_COMMON_FENWICK_HH
