#include "common/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "common/logging.hh"

namespace acic {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title))
{
}

void
TablePrinter::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    ACIC_ASSERT(row.size() == header_.size(),
                "TablePrinter row width mismatch");
    rows_.push_back(std::move(row));
}

void
TablePrinter::addNote(std::string note)
{
    notes_.push_back(std::move(note));
}

std::string
TablePrinter::str() const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    std::ostringstream out;
    out << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            out << row[c];
            if (c + 1 < row.size())
                out << std::string(widths[c] - row[c].size() + 2, ' ');
        }
        out << "\n";
    };
    emit(header_);
    std::size_t rule = 0;
    for (std::size_t c = 0; c < widths.size(); ++c)
        rule += widths[c] + (c + 1 < widths.size() ? 2 : 0);
    out << std::string(rule, '-') << "\n";
    for (const auto &row : rows_)
        emit(row);
    for (const auto &note : notes_)
        out << "note: " << note << "\n";
    return out.str();
}

void
TablePrinter::print() const
{
    const std::string text = str();
    std::fwrite(text.data(), 1, text.size(), stdout);
    std::fflush(stdout);
}

std::string
TablePrinter::fmt(double value, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, value);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", digits,
                  100.0 * fraction);
    return buf;
}

} // namespace acic
