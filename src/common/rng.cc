#include "common/rng.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t sm = seed;
    for (auto &word : s_)
        word = splitmix64(sm);
}

void
Rng::save(Serializer &s) const
{
    for (std::uint64_t word : s_)
        s.u64(word);
}

void
Rng::load(Deserializer &d)
{
    for (auto &word : s_)
        word = d.u64();
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

std::uint64_t
Rng::nextBelow(std::uint64_t bound)
{
    if (bound == 0)
        return 0;
    // Lemire's multiply-shift mapping; bias is negligible for the
    // bounds used in workload synthesis (all << 2^64).
    const unsigned __int128 m =
        static_cast<unsigned __int128>(next()) * bound;
    return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t
Rng::nextRange(std::uint64_t lo, std::uint64_t hi)
{
    ACIC_ASSERT(lo <= hi, "nextRange: lo > hi");
    return lo + nextBelow(hi - lo + 1);
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::chance(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

std::uint64_t
Rng::geometric(double p, std::uint64_t cap)
{
    if (p <= 0.0)
        return cap;
    if (p >= 1.0)
        return 1;
    // Inverse-CDF sampling keeps the stream deterministic (one draw).
    const double u = nextDouble();
    const double k = std::floor(std::log1p(-u) / std::log1p(-p)) + 1.0;
    if (k >= static_cast<double>(cap))
        return cap;
    return static_cast<std::uint64_t>(k);
}

ZipfSampler::ZipfSampler(std::size_t n, double s)
{
    ACIC_ASSERT(n > 0, "ZipfSampler needs at least one item");
    cdf_.resize(n);
    double acc = 0.0;
    for (std::size_t r = 0; r < n; ++r) {
        acc += 1.0 / std::pow(static_cast<double>(r + 1), s);
        cdf_[r] = acc;
    }
    for (auto &v : cdf_)
        v /= acc;
}

std::size_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return cdf_.size() - 1;
    return static_cast<std::size_t>(it - cdf_.begin());
}

double
ZipfSampler::mass(std::size_t r) const
{
    ACIC_ASSERT(r < cdf_.size(), "ZipfSampler::mass out of range");
    return r == 0 ? cdf_[0] : cdf_[r] - cdf_[r - 1];
}

} // namespace acic
