/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * The synthetic trace generator must be re-iterable: oracle passes
 * (Belady OPT, reuse-distance profiling) replay the exact same stream.
 * We therefore use a self-contained xoshiro256** implementation whose
 * sequence is fixed for a given seed across platforms, rather than
 * std::mt19937 whose distributions are not specified bit-exactly.
 */

#ifndef ACIC_COMMON_RNG_HH
#define ACIC_COMMON_RNG_HH

#include <cstdint>
#include <vector>

namespace acic {

class Serializer;
class Deserializer;

/**
 * xoshiro256** generator (Blackman & Vigna). Deterministic across
 * platforms for a given seed; fast enough for per-instruction use.
 */
class Rng
{
  public:
    /** Seed via splitmix64 so that nearby seeds diverge immediately. */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform integer in [0, bound) using rejection-free mapping. */
    std::uint64_t nextBelow(std::uint64_t bound);

    /** Uniform integer in [lo, hi] inclusive. */
    std::uint64_t nextRange(std::uint64_t lo, std::uint64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli trial with probability p of returning true. */
    bool chance(double p);

    /**
     * Geometric-ish run length: smallest k >= 1 with failure prob p
     * per step, capped at @p cap to bound burst lengths.
     */
    std::uint64_t geometric(double p, std::uint64_t cap = 1u << 20);

    /** Checkpoint the generator state (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    std::uint64_t s_[4];
};

/**
 * Zipf(s, n) sampler over ranks {0, .., n-1} with precomputed CDF and
 * binary search. Used to pick hot vs cold functions in the synthetic
 * program model: datacenter instruction footprints are famously
 * Zipf-distributed across functions.
 */
class ZipfSampler
{
  public:
    /**
     * @param n number of items (ranks).
     * @param s skew parameter; s = 0 degenerates to uniform.
     */
    ZipfSampler(std::size_t n, double s);

    /** Draw a rank in [0, n). Rank 0 is the hottest. */
    std::size_t sample(Rng &rng) const;

    /** Number of items. */
    std::size_t size() const { return cdf_.size(); }

    /** Probability mass of rank @p r. */
    double mass(std::size_t r) const;

  private:
    std::vector<double> cdf_;
};

} // namespace acic

#endif // ACIC_COMMON_RNG_HH
