#include "common/json.hh"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace acic {
namespace json {

std::string
escape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

const Value *
Value::find(const std::string &key) const
{
    if (kind != Kind::Object)
        return nullptr;
    for (const auto &[name, value] : fields)
        if (name == key)
            return &value;
    return nullptr;
}

double
Value::num(const std::string &key, double dflt) const
{
    const Value *v = find(key);
    return v && v->kind == Kind::Number ? v->number : dflt;
}

std::string
Value::text(const std::string &key, const std::string &dflt) const
{
    const Value *v = find(key);
    return v && v->kind == Kind::String ? v->str : dflt;
}

namespace {

/** Recursive-descent parser state over one text buffer. */
class Parser
{
  public:
    Parser(const std::string &text, std::string *err)
        : text_(text), err_(err)
    {
    }

    bool parseDocument(Value &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after document");
        return true;
    }

  private:
    bool fail(const char *what)
    {
        if (err_) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "%s at offset %zu", what,
                          pos_);
            *err_ = buf;
        }
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool literal(const char *word, std::size_t len)
    {
        if (text_.compare(pos_, len, word) != 0)
            return fail("malformed literal");
        pos_ += len;
        return true;
    }

    bool parseValue(Value &out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        switch (c) {
          case '{': return parseObject(out);
          case '[': return parseArray(out);
          case '"':
            out.kind = Value::Kind::String;
            return parseString(out.str);
          case 't':
            out.kind = Value::Kind::Bool;
            out.boolean = true;
            return literal("true", 4);
          case 'f':
            out.kind = Value::Kind::Bool;
            out.boolean = false;
            return literal("false", 5);
          case 'n':
            out.kind = Value::Kind::Null;
            return literal("null", 4);
          default: return parseNumber(out);
        }
    }

    bool parseObject(Value &out)
    {
        out.kind = Value::Kind::Object;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':' after key");
            ++pos_;
            skipWs();
            Value value;
            if (!parseValue(value))
                return false;
            out.fields.emplace_back(std::move(key),
                                    std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}' in object");
        }
    }

    bool parseArray(Value &out)
    {
        out.kind = Value::Kind::Array;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            Value value;
            if (!parseValue(value))
                return false;
            out.items.push_back(std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']' in array");
        }
    }

    bool parseString(std::string &out)
    {
        ++pos_; // opening quote
        out.clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("unterminated escape");
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("truncated \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape digit");
                }
                // UTF-8 encode the BMP code point (surrogate pairs
                // are passed through as two 3-byte sequences; the
                // telemetry emitter only escapes control bytes).
                if (code < 0x80) {
                    out.push_back(static_cast<char>(code));
                } else if (code < 0x800) {
                    out.push_back(
                        static_cast<char>(0xc0 | (code >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                } else {
                    out.push_back(
                        static_cast<char>(0xe0 | (code >> 12)));
                    out.push_back(static_cast<char>(
                        0x80 | ((code >> 6) & 0x3f)));
                    out.push_back(
                        static_cast<char>(0x80 | (code & 0x3f)));
                }
                break;
              }
              default: return fail("unknown escape character");
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(Value &out)
    {
        const std::size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E' || text_[pos_] == '+' ||
                text_[pos_] == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a value");
        const std::string token = text_.substr(start, pos_ - start);
        char *end = nullptr;
        out.kind = Value::Kind::Number;
        out.number = std::strtod(token.c_str(), &end);
        if (end == token.c_str() || *end != '\0')
            return fail("malformed number");
        return true;
    }

    const std::string &text_;
    std::string *err_;
    std::size_t pos_ = 0;
};

} // namespace

bool
parse(const std::string &text, Value &out, std::string *err)
{
    return Parser(text, err).parseDocument(out);
}

} // namespace json
} // namespace acic
