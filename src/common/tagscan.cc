/**
 * @file
 * AVX2 tag-scan kernels and the one-time wide-scan dispatch. The
 * narrow SSE2/portable kernels live inline in tagscan.hh; only the
 * AVX2 pair needs a translation unit of its own for the
 * target("avx2") attribute, plus the CPU probe that picks the wide
 * function pointers before main().
 */

#include "common/tagscan.hh"

#ifdef ACIC_TAGSCAN_SIMD
#include <immintrin.h>
#endif

namespace acic {
namespace tagscan {

#ifdef ACIC_TAGSCAN_SIMD

__attribute__((target("avx2"))) std::uint64_t
matchMask64Avx2(const std::uint64_t *lanes, std::uint32_t count,
                std::uint64_t target)
{
    const __m256i t = _mm256_set1_epi64x(static_cast<long long>(target));
    std::uint64_t mask = 0;
    std::uint32_t i = 0;
    for (; i + 4 <= count; i += 4) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lanes + i));
        const int m = _mm256_movemask_pd(
            _mm256_castsi256_pd(_mm256_cmpeq_epi64(v, t)));
        mask |= static_cast<std::uint64_t>(m) << i;
    }
    for (; i < count; ++i)
        mask |= static_cast<std::uint64_t>(lanes[i] == target) << i;
    return mask;
}

__attribute__((target("avx2"))) bool
anyEqual32Avx2(const std::uint32_t *lanes, std::uint32_t count,
               std::uint32_t target)
{
    const __m256i t = _mm256_set1_epi32(static_cast<int>(target));
    std::uint32_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256i v = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(lanes + i));
        if (_mm256_movemask_epi8(_mm256_cmpeq_epi32(v, t)) != 0)
            return true;
    }
    for (; i < count; ++i)
        if (lanes[i] == target)
            return true;
    return false;
}

__attribute__((target("avx2"))) bool
anyEqual32PairAvx2(const std::uint32_t *a, const std::uint32_t *b,
                   std::uint32_t count, std::uint32_t target)
{
    const __m256i t = _mm256_set1_epi32(static_cast<int>(target));
    std::uint32_t i = 0;
    for (; i + 8 <= count; i += 8) {
        const __m256i va = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(a + i));
        const __m256i vb = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i hit = _mm256_or_si256(
            _mm256_cmpeq_epi32(va, t), _mm256_cmpeq_epi32(vb, t));
        if (_mm256_movemask_epi8(hit) != 0)
            return true;
    }
    for (; i < count; ++i)
        if (a[i] == target || b[i] == target)
            return true;
    return false;
}

bool
avx2Supported()
{
    return __builtin_cpu_supports("avx2") != 0;
}

namespace {

// SSE2-built wrappers with out-of-line linkage for the dispatch
// table (the inline header kernels have no stable address).
std::uint64_t
matchMask64Sse2Fn(const std::uint64_t *lanes, std::uint32_t count,
                  std::uint64_t target)
{
    return matchMask64Sse2(lanes, count, target);
}

bool
anyEqual32Sse2Fn(const std::uint32_t *lanes, std::uint32_t count,
                 std::uint32_t target)
{
    return anyEqual32Sse2(lanes, count, target);
}

bool
anyEqual32PairSse2Fn(const std::uint32_t *a, const std::uint32_t *b,
                     std::uint32_t count, std::uint32_t target)
{
    return anyEqual32PairSse2(a, b, count, target);
}

const bool haveAvx2 = avx2Supported();

} // namespace

std::uint64_t (*const matchMask64Wide)(const std::uint64_t *,
                                       std::uint32_t, std::uint64_t) =
    haveAvx2 ? matchMask64Avx2 : matchMask64Sse2Fn;
bool (*const anyEqual32Wide)(const std::uint32_t *, std::uint32_t,
                             std::uint32_t) =
    haveAvx2 ? anyEqual32Avx2 : anyEqual32Sse2Fn;
bool (*const anyEqual32PairWide)(const std::uint32_t *,
                                 const std::uint32_t *, std::uint32_t,
                                 std::uint32_t) =
    haveAvx2 ? anyEqual32PairAvx2 : anyEqual32PairSse2Fn;

const char *
activeIsa()
{
    return haveAvx2 ? "avx2" : "sse2";
}

#else // !ACIC_TAGSCAN_SIMD

const char *
activeIsa()
{
    return "portable";
}

#endif // ACIC_TAGSCAN_SIMD

} // namespace tagscan
} // namespace acic
