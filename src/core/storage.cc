#include "core/storage.hh"

#include "cache/ghrp.hh"
#include "cache/hawkeye.hh"
#include "cache/lru.hh"
#include "cache/set_assoc.hh"
#include "cache/ship.hh"
#include "cache/srrip.hh"
#include "cache/victim_cache.hh"
#include "cache/vvc.hh"
#include "core/ifilter.hh"

namespace acic {

namespace {

/** Bind a policy to the 32 KB / 8-way L1i and read its overhead. */
template <typename Policy, typename... Args>
std::uint64_t
policyBits(Args &&...args)
{
    auto policy = std::make_unique<Policy>(std::forward<Args>(args)...);
    policy->bind(64, 8);
    return policy->storageOverheadBits();
}

} // namespace

std::vector<StorageRow>
acicStorageBreakdown(std::uint32_t filter_entries,
                     const PredictorConfig &predictor,
                     const CshrConfig &cshr)
{
    std::vector<StorageRow> rows;

    const IFilter filter(filter_entries);
    rows.push_back({"i-Filter",
                    std::to_string(filter_entries) +
                        " entries x (63 bit metadata + 64B block)",
                    filter.storageBits()});

    const AdmissionPredictor pred(predictor);
    const std::uint64_t hrt_bits =
        predictor.kind == PredictorKind::Bimodal
            ? 0
            : std::uint64_t{predictor.kind ==
                                    PredictorKind::GlobalHistory
                                ? 1
                                : predictor.hrtEntries} *
                  predictor.historyBits;
    rows.push_back({"HRT",
                    std::to_string(predictor.hrtEntries) +
                        " entries x " +
                        std::to_string(predictor.historyBits) +
                        " bit history",
                    hrt_bits});
    const std::uint64_t pt_entries =
        predictor.kind == PredictorKind::Bimodal
            ? predictor.hrtEntries
            : (std::uint64_t{1} << predictor.historyBits);
    rows.push_back({"PT",
                    std::to_string(pt_entries) + " entries x " +
                        std::to_string(predictor.counterBits) +
                        " bit counters",
                    pt_entries * predictor.counterBits});
    rows.push_back(
        {"PT update queues",
         std::to_string(pt_entries) + " queues x " +
             std::to_string(predictor.updateQueueSlots) + " slots",
         pred.storageBits() - hrt_bits -
             pt_entries * predictor.counterBits});

    const Cshr cshr_unit(cshr);
    rows.push_back({"CSHR",
                    std::to_string(cshr.entries) + " entries x (2x" +
                        std::to_string(cshr.tagBits) +
                        " bit tags + 1 valid + 5 LRU)",
                    cshr_unit.storageBits()});
    return rows;
}

std::uint64_t
totalBits(const std::vector<StorageRow> &rows)
{
    std::uint64_t sum = 0;
    for (const auto &row : rows)
        sum += row.bits;
    return sum;
}

std::vector<StorageRow>
schemeStorageTable()
{
    std::vector<StorageRow> rows;
    rows.push_back({"SRRIP", "2-bit RRPV", policyBits<SrripPolicy>()});
    rows.push_back({"SHiP",
                    "13-bit signature, 8K-entry SHCT, 2-bit counters",
                    policyBits<ShipPolicy>()});
    rows.push_back({"Hawkeye/Harmony",
                    "64-entry occupancy vectors, 8K predictor, 3-bit",
                    policyBits<HawkeyePolicy>()});
    rows.push_back({"GHRP",
                    "3x4096 2-bit tables, 16-bit signatures/history",
                    policyBits<GhrpPolicy>()});
    // Bypassing policies (sized in src/bypass, duplicated here to
    // avoid a dependency cycle; verified by tests).
    rows.push_back({"DSB",
                    "16-bit tracked tag, 3-bit way, duel monitors",
                    static_cast<std::uint64_t>(0.48 * 1024 * 8)});
    rows.push_back({"OBM",
                    "128-entry RHT, 1024-entry BDCT, 4-bit counters",
                    128 * (21 + 21 + 10) + 1024 * 4 + 10});
    const VvcCache vvc(64, 8);
    rows.push_back({"VVC", "15-bit traces, 2x2^14 2-bit tables",
                    vvc.storageOverheadBits()});
    rows.push_back({"VC3K", "48-block fully-associative victim cache",
                    VictimCache::vc3k().storageBits()});
    rows.push_back({"VC8K", "128-block 4-way victim cache",
                    VictimCache::vc8k().storageBits()});
    rows.push_back({"36KB L1i", "9-way, +64 blocks over baseline",
                    std::uint64_t{64} * (kBlockBytes * 8 + 58 + 1 + 4)});
    rows.push_back({"OPT", "oracle (not implementable)", 0});

    const IFilter filter(16);
    rows.push_back({"OPT bypass w/ i-Filter", "16-entry i-Filter",
                    filter.storageBits()});

    const auto acic = acicStorageBreakdown();
    rows.push_back({"ACIC",
                    "i-Filter + HRT + PT + queues + CSHR",
                    totalBits(acic)});
    return rows;
}

} // namespace acic
