/**
 * @file
 * The filtered L1i organization: i-Filter in front of a conventional
 * LRU i-cache, with a pluggable admission controller judging every
 * i-Filter victim (Fig. 2 datapath). With AcicAdmission this is the
 * paper's ACIC; with AlwaysAdmit it is the plain spatio-temporal
 * separation of Fig. 3a; with OptAdmission it is "OPT bypass".
 */

#ifndef ACIC_CORE_FILTERED_ICACHE_HH
#define ACIC_CORE_FILTERED_ICACHE_HH

#include <cstdint>
#include <iterator>
#include <memory>
#include <string>

#include "cache/icache_org.hh"
#include "cache/set_assoc.hh"
#include "core/admission.hh"
#include "core/ifilter.hh"

namespace acic {

/** See file comment. */
class FilteredIcache : public IcacheOrg
{
  public:
    /** Geometry of the filtered organization. */
    struct Config
    {
        std::uint32_t filterEntries = 16;
        std::uint32_t icacheSets = 64;
        std::uint32_t icacheWays = 8;
        /**
         * Attribute oracle-accuracy instrumentation (Fig. 12a/13);
         * requires the run to carry next-use annotations.
         */
        bool trackAccuracy = false;
    };

    FilteredIcache(Config config,
                   std::unique_ptr<AdmissionController> admission,
                   std::string scheme_name);

    bool access(const CacheAccess &access) override;
    void fill(const CacheAccess &access) override;
    bool contains(BlockAddr blk) const override;
    void tick(Cycle now) override;
    std::string name() const override { return schemeName_; }
    std::uint64_t storageOverheadBits() const override;
    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

    /** The underlying admission controller (bench instrumentation). */
    AdmissionController &admission() { return *admission_; }

    /** The backing i-cache (tests). */
    const SetAssocCache &icache() const { return l1i_; }

    /** The i-Filter (tests). */
    const IFilter &filter() const { return filter_; }

  private:
    void judgeVictim(const CacheLine &victim,
                     const CacheAccess &cause);
    void recordAccuracy(const CacheLine &victim,
                        const CacheLine &contender, bool admitted,
                        std::uint64_t seq);

    /** Fig. 12a accuracy-restriction bounds (descending). */
    static constexpr std::uint64_t kAccuracyRanges[] = {2048, 1024,
                                                        512, 256, 128};
    /** Fig. 3b signed next-use-gap bucket edges. */
    static constexpr std::int64_t kGapEdges[] = {
        -10000, -1000, -100, -10, 0, 10, 100, 1000, 10000};
    static constexpr std::size_t kGapBuckets =
        std::size(kGapEdges) + 1;

    Config config_;
    IFilter filter_;
    SetAssocCache l1i_;
    std::unique_ptr<AdmissionController> admission_;
    std::string schemeName_;

    // Counter handles, interned once at construction so the access
    // and victim-judgement paths never build name strings.
    StatHandle stFilterHit_;
    StatHandle stIcacheHit_;
    StatHandle stDecisions_;
    StatHandle stDecisionsCorrect_;
    StatHandle stDecisionsR_[std::size(kAccuracyRanges)];
    StatHandle stCorrectR_[std::size(kAccuracyRanges)];
    StatHandle stAdmitLongerReuse_;
    StatHandle stAdmitShorterReuse_;
    StatHandle stGapBucket_[kGapBuckets];
    StatHandle stFilterVictims_;
    StatHandle stVictimAlreadyCached_;
    StatHandle stVictimsAdmitted_;
    StatHandle stAdmittedFreeWay_;
    StatHandle stVictimsDropped_;
};

} // namespace acic

#endif // ACIC_CORE_FILTERED_ICACHE_HH
