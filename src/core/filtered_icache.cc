#include "core/filtered_icache.hh"

#include <iterator>
#include <string>

#include "cache/lru.hh"
#include "common/logging.hh"

namespace acic {

FilteredIcache::FilteredIcache(
    Config config, std::unique_ptr<AdmissionController> admission,
    std::string scheme_name)
    : config_(config), filter_(config.filterEntries),
      l1i_(config.icacheSets, config.icacheWays,
           std::make_unique<LruPolicy>()),
      admission_(std::move(admission)),
      schemeName_(std::move(scheme_name))
{
    ACIC_ASSERT(admission_ != nullptr,
                "filtered i-cache needs an admission controller");

    // Registration phase: intern every counter this organization can
    // touch, including the full bucketed families, so the hot paths
    // below are pure handle bumps.
    stFilterHit_ = stats_.handle("filtered.filter_hit");
    stIcacheHit_ = stats_.handle("filtered.icache_hit");
    stDecisions_ = stats_.handle("acic.decisions");
    stDecisionsCorrect_ = stats_.handle("acic.decisions_correct");
    for (std::size_t i = 0; i < std::size(kAccuracyRanges); ++i) {
        const std::string range =
            std::to_string(kAccuracyRanges[i]);
        stDecisionsR_[i] =
            stats_.handle("acic.decisions_r" + range);
        stCorrectR_[i] = stats_.handle("acic.correct_r" + range);
    }
    stAdmitLongerReuse_ = stats_.handle("acic.admit_longer_reuse");
    stAdmitShorterReuse_ = stats_.handle("acic.admit_shorter_reuse");
    for (std::size_t b = 0; b < kGapBuckets; ++b)
        stGapBucket_[b] =
            stats_.handle("acic.gap_bucket_" + std::to_string(b));
    stFilterVictims_ = stats_.handle("filtered.filter_victims");
    stVictimAlreadyCached_ =
        stats_.handle("filtered.victim_already_cached");
    stVictimsAdmitted_ = stats_.handle("filtered.victims_admitted");
    stAdmittedFreeWay_ = stats_.handle("filtered.admitted_free_way");
    stVictimsDropped_ = stats_.handle("filtered.victims_dropped");
}

bool
FilteredIcache::access(const CacheAccess &access)
{
    // Every issued fetch searches the CSHR (Sec. III-B), hit or miss.
    admission_->onDemandAccess(access, l1i_.setOf(access.blk));
    tickWake_ = admission_->nextDue();

    if (filter_.lookup(access)) {
        stats_.bump(stFilterHit_);
        return true;
    }
    if (l1i_.lookup(access)) {
        stats_.bump(stIcacheHit_);
        return true;
    }
    return false;
}

void
FilteredIcache::recordAccuracy(const CacheLine &victim,
                               const CacheLine &contender,
                               bool admitted, std::uint64_t seq)
{
    // Oracle-correct decision: admit exactly when the victim's next
    // use comes before the contender's (Sec. IV-G).
    const bool should_admit = victim.nextUse < contender.nextUse;
    const bool correct = admitted == should_admit;

    const auto dist = [seq](std::uint64_t next_use) -> std::uint64_t {
        return next_use == kNeverAgain ? kNeverAgain : next_use - seq;
    };
    const std::uint64_t victim_dist = dist(victim.nextUse);
    const std::uint64_t contender_dist = dist(contender.nextUse);
    const std::uint64_t min_dist =
        victim_dist < contender_dist ? victim_dist : contender_dist;

    stats_.bump(stDecisions_);
    if (correct)
        stats_.bump(stDecisionsCorrect_);
    // Fig. 12a: accuracy restricted to decisions where at least one
    // of the two blocks is re-referenced within a bound.
    for (std::size_t i = 0; i < std::size(kAccuracyRanges); ++i) {
        if (min_dist < kAccuracyRanges[i]) {
            stats_.bump(stDecisionsR_[i]);
            if (correct)
                stats_.bump(stCorrectR_[i]);
        }
    }
    // Fig. 3b source data: signed next-use gap (incoming - outgoing)
    // at admission time, histogrammed into the paper's buckets.
    if (admitted) {
        stats_.bump(victim_dist > contender_dist
                        ? stAdmitLongerReuse_
                        : stAdmitShorterReuse_);
        std::int64_t gap;
        if (victim_dist == kNeverAgain && contender_dist == kNeverAgain)
            gap = 0;
        else if (victim_dist == kNeverAgain)
            gap = 1'000'000;
        else if (contender_dist == kNeverAgain)
            gap = -1'000'000;
        else
            gap = static_cast<std::int64_t>(victim_dist) -
                  static_cast<std::int64_t>(contender_dist);
        std::size_t bucket = 0;
        while (bucket < std::size(kGapEdges) && gap > kGapEdges[bucket])
            ++bucket;
        stats_.bump(stGapBucket_[bucket]);
    }
}

void
FilteredIcache::judgeVictim(const CacheLine &victim,
                            const CacheAccess &cause)
{
    stats_.bump(stFilterVictims_);
    if (l1i_.probe(victim.blk)) {
        // Already present (e.g. duplicate fill paths): nothing to do.
        stats_.bump(stVictimAlreadyCached_);
        return;
    }

    CacheAccess as_access;
    as_access.pc = victim.fillPc;
    as_access.blk = victim.blk;
    as_access.seq = cause.seq;
    as_access.nextUse = victim.nextUse;
    as_access.cycle = cause.cycle;

    const std::uint32_t set = l1i_.setOf(victim.blk);
    const std::uint32_t way = l1i_.victimWay(as_access);
    const CacheLine &contender = l1i_.lineAt(set, way);

    if (!contender.valid) {
        // Free way: no one is displaced, so no comparison to learn.
        l1i_.fillAt(set, way, as_access);
        stats_.bump(stVictimsAdmitted_);
        stats_.bump(stAdmittedFreeWay_);
        return;
    }

    AdmissionContext ctx{victim, contender, set, cause.seq,
                         cause.cycle};
    const bool admitted = admission_->admit(ctx);
    if (config_.trackAccuracy)
        recordAccuracy(victim, contender, admitted, cause.seq);

    if (admitted) {
        l1i_.fillAt(set, way, as_access);
        stats_.bump(stVictimsAdmitted_);
    } else {
        stats_.bump(stVictimsDropped_);
    }
}

void
FilteredIcache::fill(const CacheAccess &access)
{
    if (contains(access.blk))
        return;
    // The contains() check above just proved the block absent from
    // the filter, so insert can skip its own duplicate probe.
    const auto evicted = filter_.insertAbsent(access);
    if (evicted)
        judgeVictim(*evicted, access);
    tickWake_ = admission_->nextDue();
}

bool
FilteredIcache::contains(BlockAddr blk) const
{
    return filter_.contains(blk) || l1i_.probe(blk);
}

void
FilteredIcache::tick(Cycle now)
{
    admission_->tick(now);
    tickWake_ = admission_->nextDue();
}

std::uint64_t
FilteredIcache::storageOverheadBits() const
{
    return filter_.storageBits() + admission_->storageBits();
}

void
FilteredIcache::save(Serializer &s) const
{
    IcacheOrg::save(s);
    filter_.save(s);
    l1i_.save(s);
    admission_->save(s);
}

void
FilteredIcache::load(Deserializer &d)
{
    IcacheOrg::load(d);
    filter_.load(d);
    l1i_.load(d);
    admission_->load(d);
    tickWake_ = admission_->nextDue();
}

} // namespace acic
