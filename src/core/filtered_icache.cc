#include "core/filtered_icache.hh"

#include <iterator>

#include "cache/lru.hh"
#include "common/logging.hh"

namespace acic {

FilteredIcache::FilteredIcache(
    Config config, std::unique_ptr<AdmissionController> admission,
    std::string scheme_name)
    : config_(config), filter_(config.filterEntries),
      l1i_(config.icacheSets, config.icacheWays,
           std::make_unique<LruPolicy>()),
      admission_(std::move(admission)),
      schemeName_(std::move(scheme_name))
{
    ACIC_ASSERT(admission_ != nullptr,
                "filtered i-cache needs an admission controller");
}

bool
FilteredIcache::access(const CacheAccess &access)
{
    // Every issued fetch searches the CSHR (Sec. III-B), hit or miss.
    admission_->onDemandAccess(access, l1i_.setOf(access.blk));

    if (filter_.lookup(access)) {
        stats_.bump("filtered.filter_hit");
        return true;
    }
    if (l1i_.lookup(access)) {
        stats_.bump("filtered.icache_hit");
        return true;
    }
    return false;
}

void
FilteredIcache::recordAccuracy(const CacheLine &victim,
                               const CacheLine &contender,
                               bool admitted, std::uint64_t seq)
{
    // Oracle-correct decision: admit exactly when the victim's next
    // use comes before the contender's (Sec. IV-G).
    const bool should_admit = victim.nextUse < contender.nextUse;
    const bool correct = admitted == should_admit;

    const auto dist = [seq](std::uint64_t next_use) -> std::uint64_t {
        return next_use == kNeverAgain ? kNeverAgain : next_use - seq;
    };
    const std::uint64_t victim_dist = dist(victim.nextUse);
    const std::uint64_t contender_dist = dist(contender.nextUse);
    const std::uint64_t min_dist =
        victim_dist < contender_dist ? victim_dist : contender_dist;

    stats_.bump("acic.decisions");
    if (correct)
        stats_.bump("acic.decisions_correct");
    // Fig. 12a: accuracy restricted to decisions where at least one
    // of the two blocks is re-referenced within a bound.
    static constexpr std::uint64_t kRanges[] = {2048, 1024, 512, 256,
                                                128};
    for (const std::uint64_t range : kRanges) {
        if (min_dist < range) {
            stats_.bump("acic.decisions_r" + std::to_string(range));
            if (correct)
                stats_.bump("acic.correct_r" + std::to_string(range));
        }
    }
    // Fig. 3b source data: signed next-use gap (incoming - outgoing)
    // at admission time, histogrammed into the paper's buckets.
    if (admitted) {
        stats_.bump(victim_dist > contender_dist
                        ? "acic.admit_longer_reuse"
                        : "acic.admit_shorter_reuse");
        static constexpr std::int64_t kEdges[] = {
            -10000, -1000, -100, -10, 0, 10, 100, 1000, 10000};
        std::int64_t gap;
        if (victim_dist == kNeverAgain && contender_dist == kNeverAgain)
            gap = 0;
        else if (victim_dist == kNeverAgain)
            gap = 1'000'000;
        else if (contender_dist == kNeverAgain)
            gap = -1'000'000;
        else
            gap = static_cast<std::int64_t>(victim_dist) -
                  static_cast<std::int64_t>(contender_dist);
        std::size_t bucket = 0;
        while (bucket < std::size(kEdges) && gap > kEdges[bucket])
            ++bucket;
        stats_.bump("acic.gap_bucket_" + std::to_string(bucket));
    }
}

void
FilteredIcache::judgeVictim(const CacheLine &victim,
                            const CacheAccess &cause)
{
    stats_.bump("filtered.filter_victims");
    if (l1i_.probe(victim.blk)) {
        // Already present (e.g. duplicate fill paths): nothing to do.
        stats_.bump("filtered.victim_already_cached");
        return;
    }

    CacheAccess as_access;
    as_access.pc = victim.fillPc;
    as_access.blk = victim.blk;
    as_access.seq = cause.seq;
    as_access.nextUse = victim.nextUse;
    as_access.cycle = cause.cycle;

    const std::uint32_t set = l1i_.setOf(victim.blk);
    const std::uint32_t way = l1i_.victimWay(as_access);
    const CacheLine &contender = l1i_.lineAt(set, way);

    if (!contender.valid) {
        // Free way: no one is displaced, so no comparison to learn.
        l1i_.fillAt(set, way, as_access);
        stats_.bump("filtered.victims_admitted");
        stats_.bump("filtered.admitted_free_way");
        return;
    }

    AdmissionContext ctx{victim, contender, set, cause.seq,
                         cause.cycle};
    const bool admitted = admission_->admit(ctx);
    if (config_.trackAccuracy)
        recordAccuracy(victim, contender, admitted, cause.seq);

    if (admitted) {
        l1i_.fillAt(set, way, as_access);
        stats_.bump("filtered.victims_admitted");
    } else {
        stats_.bump("filtered.victims_dropped");
    }
}

void
FilteredIcache::fill(const CacheAccess &access)
{
    if (contains(access.blk))
        return;
    const auto evicted = filter_.insert(access);
    if (evicted)
        judgeVictim(*evicted, access);
}

bool
FilteredIcache::contains(BlockAddr blk) const
{
    return filter_.contains(blk) || l1i_.probe(blk);
}

void
FilteredIcache::tick(Cycle now)
{
    admission_->tick(now);
}

std::uint64_t
FilteredIcache::storageOverheadBits() const
{
    return filter_.storageBits() + admission_->storageBits();
}

} // namespace acic
