/**
 * @file
 * The i-Filter: a 16-entry fully-associative LRU buffer next to the
 * i-cache (Sec. II, after [29], [49]). All fills from L2+ land here
 * first; the buffer absorbs the spatial/short-term-temporal burst, and
 * only its evictions are candidates for i-cache admission.
 */

#ifndef ACIC_CORE_IFILTER_HH
#define ACIC_CORE_IFILTER_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "cache/cache_types.hh"
#include "common/types.hh"

namespace acic {

/** See file comment. */
class IFilter
{
  public:
    /** @param entries slot count (paper default: 16). */
    explicit IFilter(std::uint32_t entries = 16);

    /** Demand lookup; refreshes LRU and oracle annotations on hit. */
    bool lookup(const CacheAccess &access);

    /** State-preserving presence test. */
    bool contains(BlockAddr blk) const;

    /**
     * Insert a filled block. When full, the LRU slot is evicted and
     * returned so the admission controller can judge it.
     * @return the evicted line, if one was displaced.
     */
    std::optional<CacheLine> insert(const CacheAccess &access);

    /**
     * insert() minus the duplicate-presence probe, for callers that
     * have just proven the block absent (FilteredIcache::fill checks
     * contains() across filter + i-cache first). Inserting a block
     * that IS present would create a duplicate entry.
     */
    std::optional<CacheLine> insertAbsent(const CacheAccess &access);

    /** Drop a block if present (duplicate-suppression paths). */
    bool invalidate(BlockAddr blk);

    std::uint32_t entryCount() const
    {
        return static_cast<std::uint32_t>(slots_.size());
    }

    /** Currently valid slots. */
    std::uint32_t occupancy() const;

    /**
     * Storage in bits: per entry 58-bit tag + valid + LRU bits plus
     * the 64 B instruction block (Table I: 1.123 KB at 16 entries).
     */
    std::uint64_t storageBits() const;

    /** Checkpoint buffer contents (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Slot
    {
        CacheLine line{};
        std::uint64_t stamp = 0;
    };

    /** Tag stored in the SoA mirror for invalid/padding lanes;
     *  unmatchable (block addresses are PCs shifted right by 6). */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    /** Vectorized scan of the tag mirror; lowest matching slot. */
    std::optional<std::uint32_t> findSlot(BlockAddr blk) const;

    /** Rebuild the tag mirror from slots_ (after load). */
    void rebuildTags();

    std::vector<Slot> slots_;
    /** SoA tag mirror of slots_ (padded to the SIMD lane stride) so
     *  lookup/contains are one vectorized scan instead of a branchy
     *  walk over the 80-byte Slot records. */
    std::vector<std::uint64_t> tags_;
    std::uint64_t tick_ = 0;
};

} // namespace acic

#endif // ACIC_CORE_IFILTER_HH
