/**
 * @file
 * Storage accounting reproducing Table I (ACIC component breakdown)
 * and the storage column of Table IV (all compared schemes).
 */

#ifndef ACIC_CORE_STORAGE_HH
#define ACIC_CORE_STORAGE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/admission_predictor.hh"
#include "core/cshr.hh"

namespace acic {

/** One row of a storage table. */
struct StorageRow
{
    std::string component;
    std::string detail;
    std::uint64_t bits;

    double kilobytes() const
    {
        return static_cast<double>(bits) / 8.0 / 1024.0;
    }
};

/** Table I: per-component ACIC storage for a given configuration. */
std::vector<StorageRow>
acicStorageBreakdown(std::uint32_t filter_entries = 16,
                     const PredictorConfig &predictor = {},
                     const CshrConfig &cshr = {});

/** Table IV: storage overhead of every compared scheme. */
std::vector<StorageRow> schemeStorageTable();

/** Sum of a breakdown in bits. */
std::uint64_t totalBits(const std::vector<StorageRow> &rows);

} // namespace acic

#endif // ACIC_CORE_STORAGE_HH
