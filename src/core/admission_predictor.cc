#include "core/admission_predictor.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

namespace {

/** Pipeline latencies of the parallel update scheme (Sec. III-C2). */
constexpr Cycle kHrtStageDelay = 1;
constexpr Cycle kPtStageDelay = 2;

std::uint64_t
mix(std::uint64_t x)
{
    x ^= x >> 23;
    x *= 0x2127599bf4325c37ull;
    x ^= x >> 47;
    return x;
}

} // namespace

AdmissionPredictor::AdmissionPredictor(PredictorConfig config)
    : config_(config)
{
    ACIC_ASSERT(config_.historyBits >= 1 && config_.historyBits <= 16,
                "history bits out of range");
    ACIC_ASSERT(config_.counterBits >= 1 && config_.counterBits <= 16,
                "counter bits out of range");
    historyMask_ = (1u << config_.historyBits) - 1;
    const int mid = 1 << (config_.counterBits - 1);
    const int max_val = (1 << config_.counterBits) - 1;
    int thr = mid + config_.thresholdDelta;
    if (thr < 1)
        thr = 1;
    if (thr > max_val)
        thr = max_val;
    threshold_ = static_cast<std::uint32_t>(thr);

    std::size_t pt_entries;
    switch (config_.kind) {
      case PredictorKind::TwoLevel:
        hrt_.assign(config_.hrtEntries, 0);
        pt_entries = std::size_t{1} << config_.historyBits;
        break;
      case PredictorKind::GlobalHistory:
        hrt_.assign(1, 0);
        pt_entries = std::size_t{1} << config_.historyBits;
        break;
      case PredictorKind::Bimodal:
        pt_entries = config_.hrtEntries;
        break;
      default:
        ACIC_PANIC("unknown predictor kind");
    }
    // Counters power on at zero: a cold predictor *bypasses*. This
    // matters beyond warm-up -- admission control is bistable (a
    // stable i-cache keeps contenders hot, so comparisons resolve
    // against new victims and keep the predictor selective; an
    // admit-everything cache churns contenders and the comparisons
    // degenerate), and the zero start lands in the selective
    // equilibrium.
    pt_.assign(pt_entries, SatCounter(config_.counterBits, 0));
    queues_.resize(pt_entries);
}

std::size_t
AdmissionPredictor::hrtIndex(std::uint32_t partial_tag) const
{
    if (config_.kind == PredictorKind::GlobalHistory)
        return 0;
    return static_cast<std::size_t>(mix(partial_tag) %
                                    hrt_.size());
}

std::uint32_t
AdmissionPredictor::historyFor(std::uint32_t partial_tag) const
{
    return hrt_[hrtIndex(partial_tag)];
}

std::uint32_t
AdmissionPredictor::ptIndexFor(std::uint32_t partial_tag) const
{
    if (config_.kind == PredictorKind::Bimodal) {
        return static_cast<std::uint32_t>(mix(partial_tag) %
                                          pt_.size());
    }
    return historyFor(partial_tag);
}

bool
AdmissionPredictor::predict(std::uint32_t partial_tag) const
{
    return pt_[ptIndexFor(partial_tag)].atLeast(threshold_);
}

void
AdmissionPredictor::applyHistoryShift(std::uint32_t partial_tag,
                                      bool won)
{
    if (config_.kind == PredictorKind::Bimodal)
        return;
    std::uint32_t &reg = hrt_[hrtIndex(partial_tag)];
    reg = ((reg << 1) | (won ? 1u : 0u)) & historyMask_;
}

void
AdmissionPredictor::applyPtUpdate(std::uint32_t pattern,
                                  bool increment)
{
    SatCounter &ctr = pt_[pattern % pt_.size()];
    if (increment)
        ctr.increment();
    else
        ctr.decrement();
}

void
AdmissionPredictor::train(std::uint32_t partial_tag, bool victim_won,
                          Cycle now)
{
    // The PT is indexed with the history value *before* the shift
    // (Fig. 8: history passed to the PT updater, then HRT updated).
    const std::uint32_t pattern = ptIndexFor(partial_tag);
    applyHistoryShift(partial_tag, victim_won);

    if (config_.instantUpdate) {
        applyPtUpdate(pattern, victim_won);
        return;
    }
    const std::uint32_t qi =
        static_cast<std::uint32_t>(pattern % queues_.size());
    auto &queue = queues_[qi];
    if (queue.size() >= config_.updateQueueSlots) {
        ++droppedUpdates_;
        return;
    }
    const Cycle due = now + kHrtStageDelay + kPtStageDelay;
    if (queue.empty())
        activeQueues_.push_back(qi);
    queue.push_back({pattern, victim_won, due});
    ++pendingUpdates_;
    if (due < earliestDue_)
        earliestDue_ = due;
}

void
AdmissionPredictor::tick(Cycle now)
{
    if (pendingUpdates_ == 0 || now < earliestDue_)
        return;
    // Each PT entry pops at most one queued update per cycle; the
    // queues are independent, so visiting only the non-empty ones
    // (in any order) matches the full sweep exactly.
    Cycle next_due = ~Cycle{0};
    std::size_t i = 0;
    while (i < activeQueues_.size()) {
        auto &queue = queues_[activeQueues_[i]];
        if (queue.front().due <= now) {
            applyPtUpdate(queue.front().pattern,
                          queue.front().increment);
            queue.pop_front();
            --pendingUpdates_;
            if (queue.empty()) {
                activeQueues_[i] = activeQueues_.back();
                activeQueues_.pop_back();
                continue;
            }
        }
        if (queue.front().due < next_due)
            next_due = queue.front().due;
        ++i;
    }
    earliestDue_ = next_due;
}

void
AdmissionPredictor::flush()
{
    for (auto &queue : queues_) {
        while (!queue.empty()) {
            applyPtUpdate(queue.front().pattern,
                          queue.front().increment);
            queue.pop_front();
        }
    }
    pendingUpdates_ = 0;
    earliestDue_ = ~Cycle{0};
    activeQueues_.clear();
}

void
AdmissionPredictor::save(Serializer &s) const
{
    s.u64(hrt_.size());
    s.u64(pt_.size());
    s.vecU32(hrt_);
    s.vecSat(pt_);
    s.u64(queues_.size());
    for (const auto &queue : queues_) {
        s.u64(queue.size());
        for (const PendingUpdate &u : queue) {
            s.u32(u.pattern);
            s.b(u.increment);
            s.u64(u.due);
        }
    }
    s.u64(pendingUpdates_);
    s.u64(earliestDue_);
    s.u64(droppedUpdates_);
}

void
AdmissionPredictor::load(Deserializer &d)
{
    d.expectGeometry("predictor hrt entries", hrt_.size());
    d.expectGeometry("predictor pt entries", pt_.size());
    std::vector<std::uint32_t> hrt = d.vecU32();
    if (hrt.size() != hrt_.size())
        throw SerializeError("checkpoint HRT size mismatch "
                             "(geometry differs)");
    hrt_ = std::move(hrt);
    d.vecSat(pt_);
    d.expectGeometry("predictor update queues", queues_.size());
    for (auto &queue : queues_) {
        queue.clear();
        const std::size_t n = d.count(13);
        for (std::size_t i = 0; i < n; ++i) {
            PendingUpdate u;
            u.pattern = d.u32();
            u.increment = d.b();
            u.due = d.u64();
            queue.push_back(u);
        }
    }
    pendingUpdates_ = d.u64();
    earliestDue_ = d.u64();
    droppedUpdates_ = d.u64();
    activeQueues_.clear();
    for (std::size_t i = 0; i < queues_.size(); ++i) {
        if (!queues_[i].empty())
            activeQueues_.push_back(static_cast<std::uint32_t>(i));
    }
}

std::uint64_t
AdmissionPredictor::storageBits() const
{
    std::uint64_t bits = 0;
    if (config_.kind != PredictorKind::Bimodal)
        bits += std::uint64_t{hrt_.size()} * config_.historyBits;
    bits += std::uint64_t{pt_.size()} * config_.counterBits;
    // Update queues: (PT index + 1 update-direction bit) per slot.
    bits += std::uint64_t{pt_.size()} * config_.updateQueueSlots *
            (config_.historyBits + 1);
    return bits;
}

std::string
AdmissionPredictor::name() const
{
    switch (config_.kind) {
      case PredictorKind::TwoLevel:
        return "two-level";
      case PredictorKind::GlobalHistory:
        return "global-history";
      case PredictorKind::Bimodal:
        return "bimodal";
    }
    return "?";
}

} // namespace acic
