/**
 * @file
 * Admission controllers: the policy consulted when the i-Filter evicts
 * a block and the organization must decide whether that victim enters
 * the i-cache in place of the set's *contender* (the block LRU would
 * evict). Variants cover the paper's schemes:
 *
 *  - AlwaysAdmit: the plain "i-Filter + i-cache" separation (Fig. 3a).
 *  - NeverAdmit: i-Filter only (Fig. 17).
 *  - AcicAdmission: two-level predictor + CSHR (the contribution).
 *  - OptAdmission: oracle reuse comparison ("OPT bypass", Table IV).
 *  - AccessCountAdmission: Johnson et al. [37] counter comparison.
 *  - RandomAdmission: the 60%-accuracy random control of Fig. 12b.
 */

#ifndef ACIC_CORE_ADMISSION_HH
#define ACIC_CORE_ADMISSION_HH

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache_types.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"
#include "core/admission_predictor.hh"
#include "core/cshr.hh"

namespace acic {

/** Everything an admission decision can see. */
struct AdmissionContext
{
    /** The i-Filter victim line under judgement. */
    const CacheLine &victim;
    /** The i-cache contender it would replace (always valid). */
    const CacheLine &contender;
    /** i-cache set index of the victim. */
    std::uint32_t icacheSet;
    /** Current demand-sequence position. */
    std::uint64_t seq;
    Cycle now;
};

/** See file comment. */
class AdmissionController
{
  public:
    virtual ~AdmissionController() = default;

    /** Admit the victim (replacing the contender)? */
    virtual bool admit(const AdmissionContext &ctx) = 0;

    /** Observe every demand fetch (training). */
    virtual void
    onDemandAccess(const CacheAccess &access, std::uint32_t icache_set)
    {
        (void)access;
        (void)icache_set;
    }

    /** Advance internal update pipelines. */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * Earliest cycle at which tick() has work to do (~0 when the
     * update pipeline is idle). The owning organization polls this
     * after every call that can enqueue work and skips tick()
     * entirely until it falls due.
     */
    virtual Cycle nextDue() const { return ~Cycle{0}; }

    virtual std::string name() const = 0;

    /** Hardware cost beyond the i-Filter itself, in bits. */
    virtual std::uint64_t storageBits() const { return 0; }

    /** Checkpoint hooks; stateless policies keep the no-op default. */
    virtual void save(Serializer &s) const { (void)s; }
    virtual void load(Deserializer &d) { (void)d; }
};

/** Insert every i-Filter victim (Fig. 3a's 1.0057 scheme). */
class AlwaysAdmit : public AdmissionController
{
  public:
    bool admit(const AdmissionContext &) override { return true; }
    std::string name() const override { return "always-insert"; }
};

/** Drop every i-Filter victim (Fig. 17 "i-Filter only"). */
class NeverAdmit : public AdmissionController
{
  public:
    bool admit(const AdmissionContext &) override { return false; }
    std::string name() const override { return "ifilter-only"; }
};

/** Oracle: admit iff the victim's next use precedes the contender's. */
class OptAdmission : public AdmissionController
{
  public:
    bool
    admit(const AdmissionContext &ctx) override
    {
        return ctx.victim.nextUse < ctx.contender.nextUse;
    }
    std::string name() const override { return "opt-bypass"; }
};

/**
 * Access-count comparison (run-time cache bypassing, Johnson et al.):
 * per-block saturating access counters; the block with the higher
 * count is retained. The paper shows this underperforms for
 * instruction streams (Fig. 3a).
 */
class AccessCountAdmission : public AdmissionController
{
  public:
    explicit AccessCountAdmission(std::size_t table_entries = 1u << 14,
                                  unsigned counter_bits = 6);

    bool admit(const AdmissionContext &ctx) override;
    void onDemandAccess(const CacheAccess &access,
                        std::uint32_t icache_set) override;
    std::string name() const override { return "access-count"; }
    std::uint64_t storageBits() const override;
    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    std::size_t indexOf(BlockAddr blk) const;
    std::vector<SatCounter> counters_;
};

/** Coin-flip admission with a fixed insert probability (Fig. 12b). */
class RandomAdmission : public AdmissionController
{
  public:
    explicit RandomAdmission(double insert_prob = 0.6,
                             std::uint64_t seed = 0xF1177E5);

    bool admit(const AdmissionContext &) override;
    std::string name() const override { return "random-bypass"; }
    void save(Serializer &s) const override { rng_.save(s); }
    void load(Deserializer &d) override { rng_.load(d); }

  private:
    double insertProb_;
    Rng rng_;
};

/**
 * The ACIC admission controller: two-level predictor trained through
 * the CSHR (Sec. III). Owns both structures; exposes an optional
 * CshrLifetimeProfiler for the Fig. 6 experiment.
 */
class AcicAdmission : public AdmissionController
{
  public:
    AcicAdmission(PredictorConfig predictor_config = {},
                  CshrConfig cshr_config = {});

    bool admit(const AdmissionContext &ctx) override;
    void onDemandAccess(const CacheAccess &access,
                        std::uint32_t icache_set) override;
    void tick(Cycle now) override;
    Cycle nextDue() const override { return predictor_.nextDue(); }
    std::string name() const override;
    std::uint64_t storageBits() const override;
    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

    /** Attach a Fig. 6 lifetime profiler (not owned). */
    void setLifetimeProfiler(CshrLifetimeProfiler *profiler)
    {
        profiler_ = profiler;
    }

    const AdmissionPredictor &predictor() const { return predictor_; }
    const Cshr &cshr() const { return cshr_; }

  private:
    AdmissionPredictor predictor_;
    Cshr cshr_;
    CshrLifetimeProfiler *profiler_ = nullptr;
};

} // namespace acic

#endif // ACIC_CORE_ADMISSION_HH
