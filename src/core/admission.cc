#include "core/admission.hh"

#include "common/logging.hh"

namespace acic {

AccessCountAdmission::AccessCountAdmission(std::size_t table_entries,
                                           unsigned counter_bits)
{
    counters_.assign(table_entries, SatCounter(counter_bits, 0));
}

std::size_t
AccessCountAdmission::indexOf(BlockAddr blk) const
{
    std::uint64_t x = blk;
    x ^= x >> 21;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    return static_cast<std::size_t>(x % counters_.size());
}

void
AccessCountAdmission::onDemandAccess(const CacheAccess &access,
                                     std::uint32_t)
{
    counters_[indexOf(access.blk)].increment();
}

bool
AccessCountAdmission::admit(const AdmissionContext &ctx)
{
    const std::uint32_t victim_count =
        counters_[indexOf(ctx.victim.blk)].value();
    const std::uint32_t contender_count =
        counters_[indexOf(ctx.contender.blk)].value();
    return victim_count >= contender_count;
}

std::uint64_t
AccessCountAdmission::storageBits() const
{
    return counters_.size() * 6;
}

void
AccessCountAdmission::save(Serializer &s) const
{
    s.vecSat(counters_);
}

void
AccessCountAdmission::load(Deserializer &d)
{
    d.vecSat(counters_);
}

RandomAdmission::RandomAdmission(double insert_prob,
                                 std::uint64_t seed)
    : insertProb_(insert_prob), rng_(seed)
{
}

bool
RandomAdmission::admit(const AdmissionContext &)
{
    return rng_.chance(insertProb_);
}

AcicAdmission::AcicAdmission(PredictorConfig predictor_config,
                             CshrConfig cshr_config)
    : predictor_(predictor_config), cshr_(cshr_config)
{
}

bool
AcicAdmission::admit(const AdmissionContext &ctx)
{
    const std::uint32_t tag = cshr_.partialTag(ctx.victim.blk);
    const bool decision = predictor_.predict(tag);

    // Enter the pair into the CSHR regardless of the decision; any
    // entry evicted unresolved trains in the victim's favour.
    const auto forced =
        cshr_.insert(ctx.victim.blk, ctx.contender.blk, ctx.icacheSet,
                     ctx.victim.nextUse < ctx.contender.nextUse);
    for (const auto &resolution : forced)
        predictor_.train(resolution.victimTag, resolution.victimWon,
                         ctx.now);

    if (profiler_ != nullptr)
        profiler_->onInsert(ctx.victim.blk, ctx.contender.blk);

    return decision;
}

void
AcicAdmission::onDemandAccess(const CacheAccess &access,
                              std::uint32_t icache_set)
{
    const auto resolutions = cshr_.search(access.blk, icache_set);
    for (const auto &resolution : resolutions)
        predictor_.train(resolution.victimTag, resolution.victimWon,
                         access.cycle);
    if (profiler_ != nullptr)
        profiler_->onFetch(access.blk);
}

void
AcicAdmission::tick(Cycle now)
{
    predictor_.tick(now);
}

std::string
AcicAdmission::name() const
{
    return "acic-" + predictor_.name();
}

std::uint64_t
AcicAdmission::storageBits() const
{
    return predictor_.storageBits() + cshr_.storageBits();
}

void
AcicAdmission::save(Serializer &s) const
{
    predictor_.save(s);
    cshr_.save(s);
}

void
AcicAdmission::load(Deserializer &d)
{
    predictor_.load(d);
    cshr_.load(d);
}

} // namespace acic
