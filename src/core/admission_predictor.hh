/**
 * @file
 * The two-level i-cache admission predictor (Sec. III-A, Fig. 4),
 * modeled on the Yeh/Patt two-level branch predictor:
 *
 *  - HRT (History Register Table): 1024 entries of 4-bit shift
 *    registers, indexed by a hash of the i-Filter victim's 12-bit
 *    partial tag. Each bit records one past comparison outcome
 *    (1 = the victim was re-accessed before its contender).
 *  - PT (Pattern Table): 2^4 = 16 entries of 5-bit saturating
 *    counters indexed by the history pattern.
 *
 * Training goes through a modeled 2-cycle pipeline with a 10-slot
 * update queue per PT entry (Sec. III-C2, Fig. 8); Fig. 14's *instant*
 * mode applies updates immediately. Fig. 17's ablations (global
 * history register, bimodal table) are variants of this class.
 */

#ifndef ACIC_CORE_ADMISSION_PREDICTOR_HH
#define ACIC_CORE_ADMISSION_PREDICTOR_HH

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "common/sat_counter.hh"
#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** Predictor organization (Fig. 17 ablation space). */
enum class PredictorKind : std::uint8_t
{
    TwoLevel,      ///< per-tag HRT + PT (the ACIC default)
    GlobalHistory, ///< single global history register + PT
    Bimodal,       ///< PT indexed directly by the tag hash
};

/** Configuration mirroring Table I and the Fig. 15 sensitivity axes. */
struct PredictorConfig
{
    PredictorKind kind = PredictorKind::TwoLevel;
    std::uint32_t hrtEntries = 1024;
    unsigned historyBits = 4;
    unsigned counterBits = 5;
    /** Slots in each PT-entry update queue. */
    unsigned updateQueueSlots = 10;
    /** Apply updates immediately (Fig. 14 "instant update"). */
    bool instantUpdate = false;
    /**
     * Offset added to the mid-scale admit threshold. The paper only
     * says "a simple threshold is then used"; a small positive bias
     * compensates for the admit-leaning training noise injected by
     * benefit-of-the-doubt CSHR evictions.
     */
    int thresholdDelta = 0;
};

/** See file comment. */
class AdmissionPredictor
{
  public:
    explicit AdmissionPredictor(PredictorConfig config = {});

    /**
     * Should the i-Filter victim with this partial tag be admitted
     * into the i-cache?
     */
    bool predict(std::uint32_t partial_tag) const;

    /**
     * Record a resolved comparison: @p victim_won is true when the
     * i-Filter victim was re-accessed before its contender. Enters
     * the 2-cycle update pipeline unless instantUpdate is set.
     */
    void train(std::uint32_t partial_tag, bool victim_won, Cycle now);

    /** Drain due pipeline stages; call once per simulated cycle. */
    void tick(Cycle now);

    /** Earliest cycle at which tick() has queued work (~0 if none) —
     *  exactly the complement of tick()'s early-exit condition, so
     *  skipping tick() until this falls due is behavior-identical. */
    Cycle nextDue() const
    {
        return pendingUpdates_ == 0 ? ~Cycle{0} : earliestDue_;
    }

    /** Flush the update pipeline (end of run). */
    void flush();

    /** Storage in bits (Table I: HRT 0.5 KB, PT 10 B, queues 100 B). */
    std::uint64_t storageBits() const;

    const PredictorConfig &config() const { return config_; }
    std::string name() const;

    /** Updates dropped because a PT queue was full (instrumentation). */
    std::uint64_t droppedUpdates() const { return droppedUpdates_; }

    /** Pattern table contents (tests / instrumentation). */
    const std::vector<SatCounter> &patternTable() const { return pt_; }

    /** History register table contents (tests / instrumentation). */
    const std::vector<std::uint32_t> &historyTable() const
    {
        return hrt_;
    }

    /** Checkpoint tables and the in-flight update pipeline. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct PendingUpdate
    {
        std::uint32_t pattern;
        bool increment;
        Cycle due;
    };

    std::size_t hrtIndex(std::uint32_t partial_tag) const;
    void applyHistoryShift(std::uint32_t partial_tag, bool won);
    std::uint32_t historyFor(std::uint32_t partial_tag) const;
    std::uint32_t ptIndexFor(std::uint32_t partial_tag) const;
    void applyPtUpdate(std::uint32_t pattern, bool increment);

    PredictorConfig config_;
    std::uint32_t historyMask_;
    std::uint32_t threshold_;
    std::vector<std::uint32_t> hrt_;
    std::vector<SatCounter> pt_;
    /** One bounded update queue per PT entry (Fig. 8). */
    std::vector<std::deque<PendingUpdate>> queues_;
    /**
     * Indices of the non-empty queues (unordered, no duplicates), so
     * tick() visits only queues that hold work instead of sweeping
     * every PT entry. Derived state: rebuilt on load().
     */
    std::vector<std::uint32_t> activeQueues_;
    /** Total updates queued across queues_; tick() is a no-op at 0. */
    std::uint64_t pendingUpdates_ = 0;
    /** Lower bound on the earliest queued due cycle (never above the
     *  true minimum), letting tick() skip the queue sweep entirely
     *  between bursts. */
    Cycle earliestDue_ = ~Cycle{0};
    std::uint64_t droppedUpdates_ = 0;
};

} // namespace acic

#endif // ACIC_CORE_ADMISSION_PREDICTOR_HH
