#include "core/cshr.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/tagscan.hh"

namespace acic {

Cshr::Cshr(CshrConfig config) : config_(config)
{
    ACIC_ASSERT(config_.sets >= 1 &&
                (config_.sets & (config_.sets - 1)) == 0,
                "CSHR sets must be a power of two");
    ACIC_ASSERT(config_.entries % config_.sets == 0,
                "CSHR entries must divide evenly into sets");
    ACIC_ASSERT(config_.tagBits >= 4 && config_.tagBits <= 30,
                "CSHR tag bits out of range");
    ways_ = config_.entries / config_.sets;
    unsigned set_bits = 0;
    while ((1u << set_bits) < config_.sets)
        ++set_bits;
    // The m MSBs of the i-cache set index (Sec. III-C2).
    setShift_ = config_.icacheSetBits - set_bits;
    victimTag_.assign(config_.entries, kFreeTag);
    contenderTag_.assign(config_.entries, kFreeTag);
    oracleWins_.assign(config_.entries, 0);
    stamp_.assign(config_.entries, 0); // 0 = free (ticks start at 1)
}

std::uint32_t
Cshr::partialTag(BlockAddr blk) const
{
    // Partial tag above the i-cache set index bits, folded to width.
    const std::uint64_t tag = blk >> config_.icacheSetBits;
    const std::uint64_t mask = (1ull << config_.tagBits) - 1;
    return static_cast<std::uint32_t>(
        (tag ^ (tag >> config_.tagBits)) & mask);
}

std::vector<CshrResolution>
Cshr::insert(BlockAddr victim_blk, BlockAddr contender_blk,
             std::uint32_t icache_set, bool oracle_victim_wins)
{
    std::vector<CshrResolution> forced_out;
    const std::uint32_t set = cshrSetOf(icache_set);
    const std::size_t base = std::size_t{set} * ways_;

    // Free slots carry stamp 0, below every live stamp, so one
    // min-stamp sweep finds the first free slot or the LRU victim.
    std::size_t slot = base;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (stamp_[base + w] < oldest) {
            oldest = stamp_[base + w];
            slot = base + w;
        }
    }
    if (stamp_[slot] != 0) {
        // Evicted unresolved: benefit of the doubt to the victim.
        forced_out.push_back({victimTag_[slot], true, true});
        ++forced_;
    }
    victimTag_[slot] = partialTag(victim_blk);
    contenderTag_[slot] = partialTag(contender_blk);
    oracleWins_[slot] = oracle_victim_wins ? 1 : 0;
    stamp_[slot] = ++tick_;
    return forced_out;
}

std::vector<CshrResolution>
Cshr::search(BlockAddr blk, std::uint32_t icache_set)
{
    std::vector<CshrResolution> out;
    const std::uint32_t set = cshrSetOf(icache_set);
    const std::uint32_t tag = partialTag(blk);
    const std::size_t base = std::size_t{set} * ways_;

    // Fast path: one fused SIMD any-equal sweep over both tag rows;
    // nearly every fetch matches nothing. Free slots hold kFreeTag,
    // which no partial tag can equal.
    if (!tagscan::anyEqual32Pair(victimTag_.data() + base,
                                 contenderTag_.data() + base, ways_,
                                 tag))
        return out;

    for (std::uint32_t w = 0; w < ways_; ++w) {
        const std::size_t i = base + w;
        if (victimTag_[i] == tag) {
            out.push_back({victimTag_[i], true, false});
            ++resolved_;
            ++resolvedWon_;
            if (oracleWins_[i])
                ++truthMatch_;
        } else if (contenderTag_[i] == tag) {
            out.push_back({victimTag_[i], false, false});
            ++resolved_;
            ++resolvedLost_;
            if (!oracleWins_[i])
                ++truthMatch_;
        } else {
            continue;
        }
        victimTag_[i] = kFreeTag;
        contenderTag_[i] = kFreeTag;
        stamp_[i] = 0;
    }
    return out;
}

std::uint32_t
Cshr::occupancy() const
{
    std::uint32_t n = 0;
    for (const std::uint64_t s : stamp_)
        n += s != 0 ? 1 : 0;
    return n;
}

std::uint64_t
Cshr::storageBits() const
{
    // 2 partial tags + valid + 5-bit LRU per entry (Table I).
    return std::uint64_t{config_.entries} *
           (2 * config_.tagBits + 1 + 5);
}

void
Cshr::save(Serializer &s) const
{
    s.u64(config_.entries);
    s.u64(config_.sets);
    s.u64(tick_);
    s.u64(resolved_);
    s.u64(forced_);
    s.u64(resolvedWon_);
    s.u64(resolvedLost_);
    s.u64(truthMatch_);
    s.vecU32(victimTag_);
    s.vecU32(contenderTag_);
    s.vecU8(oracleWins_);
    s.vecU64(stamp_);
}

void
Cshr::load(Deserializer &d)
{
    d.expectGeometry("cshr entries", config_.entries);
    d.expectGeometry("cshr sets", config_.sets);
    tick_ = d.u64();
    resolved_ = d.u64();
    forced_ = d.u64();
    resolvedWon_ = d.u64();
    resolvedLost_ = d.u64();
    truthMatch_ = d.u64();
    std::vector<std::uint32_t> victim = d.vecU32();
    std::vector<std::uint32_t> contender = d.vecU32();
    std::vector<std::uint8_t> wins = d.vecU8();
    std::vector<std::uint64_t> stamp = d.vecU64();
    if (victim.size() != victimTag_.size() ||
        contender.size() != contenderTag_.size() ||
        wins.size() != oracleWins_.size() ||
        stamp.size() != stamp_.size())
        throw SerializeError("checkpoint CSHR lane size mismatch "
                             "(geometry differs)");
    victimTag_ = std::move(victim);
    contenderTag_ = std::move(contender);
    oracleWins_ = std::move(wins);
    stamp_ = std::move(stamp);
}

CshrLifetimeProfiler::CshrLifetimeProfiler()
    : hist_({50, 100, 150, 200, 250, 300, 350, 400},
            {"0-50", "50-100", "100-150", "150-200", "200-250",
             "250-300", "300-350", "350-400", "InF"})
{
}

void
CshrLifetimeProfiler::onInsert(BlockAddr victim_blk,
                               BlockAddr contender_blk)
{
    const std::size_t idx = pairs_.size();
    pairs_.push_back({victim_blk, contender_blk, insertions_, true});
    byBlock_[victim_blk].push_back(idx);
    if (contender_blk != victim_blk)
        byBlock_[contender_blk].push_back(idx);
    ++insertions_;
}

void
CshrLifetimeProfiler::onFetch(BlockAddr blk)
{
    const auto it = byBlock_.find(blk);
    if (it == byBlock_.end())
        return;
    for (const std::size_t idx : it->second) {
        Outstanding &pair = pairs_[idx];
        if (!pair.live)
            continue;
        pair.live = false;
        hist_.record(static_cast<std::int64_t>(insertions_ -
                                               pair.insertIndex));
    }
    byBlock_.erase(it);
}

void
CshrLifetimeProfiler::finalize()
{
    for (auto &pair : pairs_) {
        if (pair.live) {
            pair.live = false;
            hist_.record(std::int64_t{1} << 40); // overflow bucket
        }
    }
    byBlock_.clear();
}

} // namespace acic
