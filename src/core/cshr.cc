#include "core/cshr.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acic {

Cshr::Cshr(CshrConfig config) : config_(config)
{
    ACIC_ASSERT(config_.sets >= 1 &&
                (config_.sets & (config_.sets - 1)) == 0,
                "CSHR sets must be a power of two");
    ACIC_ASSERT(config_.entries % config_.sets == 0,
                "CSHR entries must divide evenly into sets");
    ACIC_ASSERT(config_.tagBits >= 4 && config_.tagBits <= 30,
                "CSHR tag bits out of range");
    ways_ = config_.entries / config_.sets;
    entries_.resize(config_.entries);
}

std::uint32_t
Cshr::partialTag(BlockAddr blk) const
{
    // Partial tag above the i-cache set index bits, folded to width.
    const std::uint64_t tag = blk >> config_.icacheSetBits;
    const std::uint64_t mask = (1ull << config_.tagBits) - 1;
    return static_cast<std::uint32_t>(
        (tag ^ (tag >> config_.tagBits)) & mask);
}

std::uint32_t
Cshr::cshrSetOf(std::uint32_t icache_set) const
{
    if (config_.sets == 1)
        return 0;
    unsigned set_bits = 0;
    while ((1u << set_bits) < config_.sets)
        ++set_bits;
    // The m MSBs of the i-cache set index (Sec. III-C2).
    return (icache_set >> (config_.icacheSetBits - set_bits)) &
           (config_.sets - 1);
}

std::vector<CshrResolution>
Cshr::insert(BlockAddr victim_blk, BlockAddr contender_blk,
             std::uint32_t icache_set, bool oracle_victim_wins)
{
    std::vector<CshrResolution> forced_out;
    const std::uint32_t set = cshrSetOf(icache_set);
    Entry *base = setBase(set);

    Entry *slot = nullptr;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            slot = &base[w];
            break;
        }
        if (base[w].stamp < oldest) {
            oldest = base[w].stamp;
            slot = &base[w];
        }
    }
    if (slot->valid) {
        // Evicted unresolved: benefit of the doubt to the victim.
        forced_out.push_back({slot->victimTag, true, true});
        ++forced_;
    }
    slot->victimTag = partialTag(victim_blk);
    slot->contenderTag = partialTag(contender_blk);
    slot->valid = true;
    slot->oracleVictimWins = oracle_victim_wins;
    slot->stamp = ++tick_;
    return forced_out;
}

std::vector<CshrResolution>
Cshr::search(BlockAddr blk, std::uint32_t icache_set)
{
    std::vector<CshrResolution> out;
    const std::uint32_t set = cshrSetOf(icache_set);
    const std::uint32_t tag = partialTag(blk);
    Entry *base = setBase(set);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = base[w];
        if (!e.valid)
            continue;
        if (e.victimTag == tag) {
            out.push_back({e.victimTag, true, false});
            e.valid = false;
            ++resolved_;
            ++resolvedWon_;
            if (e.oracleVictimWins)
                ++truthMatch_;
        } else if (e.contenderTag == tag) {
            out.push_back({e.victimTag, false, false});
            e.valid = false;
            ++resolved_;
            ++resolvedLost_;
            if (!e.oracleVictimWins)
                ++truthMatch_;
        }
    }
    return out;
}

std::uint32_t
Cshr::occupancy() const
{
    std::uint32_t n = 0;
    for (const auto &e : entries_)
        n += e.valid ? 1 : 0;
    return n;
}

std::uint64_t
Cshr::storageBits() const
{
    // 2 partial tags + valid + 5-bit LRU per entry (Table I).
    return std::uint64_t{config_.entries} *
           (2 * config_.tagBits + 1 + 5);
}

CshrLifetimeProfiler::CshrLifetimeProfiler()
    : hist_({50, 100, 150, 200, 250, 300, 350, 400},
            {"0-50", "50-100", "100-150", "150-200", "200-250",
             "250-300", "300-350", "350-400", "InF"})
{
}

void
CshrLifetimeProfiler::onInsert(BlockAddr victim_blk,
                               BlockAddr contender_blk)
{
    const std::size_t idx = pairs_.size();
    pairs_.push_back({victim_blk, contender_blk, insertions_, true});
    byBlock_[victim_blk].push_back(idx);
    if (contender_blk != victim_blk)
        byBlock_[contender_blk].push_back(idx);
    ++insertions_;
}

void
CshrLifetimeProfiler::onFetch(BlockAddr blk)
{
    const auto it = byBlock_.find(blk);
    if (it == byBlock_.end())
        return;
    for (const std::size_t idx : it->second) {
        Outstanding &pair = pairs_[idx];
        if (!pair.live)
            continue;
        pair.live = false;
        hist_.record(static_cast<std::int64_t>(insertions_ -
                                               pair.insertIndex));
    }
    byBlock_.erase(it);
}

void
CshrLifetimeProfiler::finalize()
{
    for (auto &pair : pairs_) {
        if (pair.live) {
            pair.live = false;
            hist_.record(std::int64_t{1} << 40); // overflow bucket
        }
    }
    byBlock_.clear();
}

} // namespace acic
