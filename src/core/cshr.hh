/**
 * @file
 * CSHR -- Comparison Status Holding Registers (Sec. III-B/III-C).
 *
 * Each entry holds the 12-bit partial tags of an i-Filter victim and
 * its i-cache contender. The first subsequent fetch matching either
 * tag resolves the comparison: victim-tag match means the victim was
 * re-accessed sooner (train 1), contender-tag match means it was not
 * (train 0). The paper's configuration is 256 entries arranged as 8
 * sets x 32 ways, indexed by the 3 MSBs of the i-cache set index,
 * LRU-replaced; entries evicted unresolved give the benefit of the
 * doubt to the i-Filter victim. Storage: 256 x (2x12 tag + 1 valid +
 * 5 LRU) = 0.9375 KB (Table I).
 */

#ifndef ACIC_CORE_CSHR_HH
#define ACIC_CORE_CSHR_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/histogram.hh"
#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** Geometry/width knobs (Fig. 15 varies the tag width). */
struct CshrConfig
{
    std::uint32_t entries = 256;
    std::uint32_t sets = 8;
    unsigned tagBits = 12;
    /** log2 of the number of i-cache sets (64 sets -> 6 bits). */
    unsigned icacheSetBits = 6;
};

/** A resolved (or force-resolved) comparison. */
struct CshrResolution
{
    /** Partial tag of the i-Filter victim (the HRT training key). */
    std::uint32_t victimTag = 0;
    /** True when the victim was re-accessed before the contender. */
    bool victimWon = false;
    /** True when resolved by eviction (benefit of the doubt). */
    bool forced = false;
};

/** See file comment. */
class Cshr
{
  public:
    explicit Cshr(CshrConfig config = {});

    /** Partial tag of a block address under this configuration. */
    std::uint32_t partialTag(BlockAddr blk) const;

    /**
     * Insert a (victim, contender) pair keyed by the victim's i-cache
     * set. If the CSHR set is full, the LRU entry is force-resolved
     * in the victim's favour and returned.
     */
    std::vector<CshrResolution> insert(BlockAddr victim_blk,
                                       BlockAddr contender_blk,
                                       std::uint32_t icache_set,
                                       bool oracle_victim_wins = false);

    /**
     * Search on a fetch of @p blk (set-associative search in the set
     * selected by the 3 MSBs of its i-cache set index). Matching
     * entries are invalidated and their resolutions returned; a block
     * can match the contender field of several entries but the victim
     * field of at most one.
     */
    std::vector<CshrResolution> search(BlockAddr blk,
                                       std::uint32_t icache_set);

    /** Valid entries currently held. */
    std::uint32_t occupancy() const;

    std::uint64_t storageBits() const;

    const CshrConfig &config() const { return config_; }

    /** Comparisons resolved by fetch vs. forced by eviction. */
    std::uint64_t resolvedCount() const { return resolved_; }
    std::uint64_t forcedCount() const { return forced_; }

    /** Fetch-resolved outcomes by direction (instrumentation). */
    std::uint64_t resolvedWonCount() const { return resolvedWon_; }
    std::uint64_t resolvedLostCount() const { return resolvedLost_; }

    /** Fetch-resolved outcomes agreeing with the oracle annotation. */
    std::uint64_t resolvedTruthMatches() const { return truthMatch_; }

    /** Checkpoint entries and resolution counters. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    /**
     * Invalid slots hold this in both tag lanes. Partial tags are at
     * most 30 bits (config validation), so no real tag collides and
     * the every-fetch search scans the two tag arrays alone — a
     * branch-free, vectorizable sweep on the common no-match path.
     */
    static constexpr std::uint32_t kFreeTag = ~std::uint32_t{0};

    std::uint32_t cshrSetOf(std::uint32_t icache_set) const
    {
        return (icache_set >> setShift_) & (config_.sets - 1);
    }

    CshrConfig config_;
    std::uint32_t ways_;
    unsigned setShift_ = 0;
    std::uint64_t tick_ = 0;
    std::uint64_t resolved_ = 0;
    std::uint64_t forced_ = 0;
    std::uint64_t resolvedWon_ = 0;
    std::uint64_t resolvedLost_ = 0;
    std::uint64_t truthMatch_ = 0;
    /** Structure-of-arrays entry storage, indexed set*ways_+way; the
     *  hot search touches only the tag lanes. */
    std::vector<std::uint32_t> victimTag_;
    std::vector<std::uint32_t> contenderTag_;
    std::vector<std::uint8_t> oracleWins_; ///< instrumentation only
    std::vector<std::uint64_t> stamp_;     ///< 0 = slot free
};

/**
 * Unbounded-CSHR profiler for Fig. 6: for every inserted pair it
 * counts how many later insertions occur before the pair resolves.
 * A pair needing fewer than N intervening insertions would resolve
 * inside an N-entry fully-associative LRU CSHR.
 */
class CshrLifetimeProfiler
{
  public:
    CshrLifetimeProfiler();

    /** Record a pair insertion. */
    void onInsert(BlockAddr victim_blk, BlockAddr contender_blk);

    /** Record a fetch; resolves any pair either block belongs to. */
    void onFetch(BlockAddr blk);

    /** Mark everything still outstanding as unresolved (run end). */
    void finalize();

    /** Histogram over Fig. 6's buckets (50-wide up to 400, then InF). */
    const Histogram &distribution() const { return hist_; }

  private:
    struct Outstanding
    {
        BlockAddr victim;
        BlockAddr contender;
        std::uint64_t insertIndex;
        bool live;
    };

    std::uint64_t insertions_ = 0;
    std::vector<Outstanding> pairs_;
    /** block -> indices into pairs_ it can resolve. */
    std::unordered_map<BlockAddr, std::vector<std::size_t>> byBlock_;
    Histogram hist_;
};

} // namespace acic

#endif // ACIC_CORE_CSHR_HH
