#include "core/ifilter.hh"

#include "common/logging.hh"

namespace acic {

IFilter::IFilter(std::uint32_t entries)
{
    ACIC_ASSERT(entries >= 1, "i-Filter needs at least one slot");
    slots_.resize(entries);
}

bool
IFilter::lookup(const CacheAccess &access)
{
    for (auto &slot : slots_) {
        if (slot.line.valid && slot.line.blk == access.blk) {
            slot.stamp = ++tick_;
            slot.line.prefetched = false;
            slot.line.nextUse = access.nextUse;
            slot.line.lastTouch = access.seq;
            return true;
        }
    }
    return false;
}

bool
IFilter::contains(BlockAddr blk) const
{
    for (const auto &slot : slots_)
        if (slot.line.valid && slot.line.blk == blk)
            return true;
    return false;
}

std::optional<CacheLine>
IFilter::insert(const CacheAccess &access)
{
    if (contains(access.blk))
        return std::nullopt;

    Slot *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (auto &slot : slots_) {
        if (!slot.line.valid) {
            victim = &slot;
            oldest = 0;
            break;
        }
        if (slot.stamp < oldest) {
            oldest = slot.stamp;
            victim = &slot;
        }
    }

    std::optional<CacheLine> evicted;
    if (victim->line.valid)
        evicted = victim->line;

    victim->line.blk = access.blk;
    victim->line.valid = true;
    victim->line.prefetched = access.isPrefetch;
    victim->line.fillPc = access.pc;
    victim->line.nextUse = access.nextUse;
    victim->line.lastTouch = access.seq;
    victim->stamp = ++tick_;
    return evicted;
}

bool
IFilter::invalidate(BlockAddr blk)
{
    for (auto &slot : slots_) {
        if (slot.line.valid && slot.line.blk == blk) {
            slot.line.valid = false;
            return true;
        }
    }
    return false;
}

std::uint32_t
IFilter::occupancy() const
{
    std::uint32_t n = 0;
    for (const auto &slot : slots_)
        n += slot.line.valid ? 1 : 0;
    return n;
}

std::uint64_t
IFilter::storageBits() const
{
    // 58-bit tag + 1 valid + 4 LRU bits = 63 metadata bits, plus the
    // 64 B instruction block (Table I).
    return slots_.size() * (63 + kBlockBytes * 8);
}

void
IFilter::save(Serializer &s) const
{
    s.u64(slots_.size());
    for (const Slot &slot : slots_) {
        saveCacheLine(s, slot.line);
        s.u64(slot.stamp);
    }
    s.u64(tick_);
}

void
IFilter::load(Deserializer &d)
{
    d.expectGeometry("ifilter entries", slots_.size());
    for (Slot &slot : slots_) {
        loadCacheLine(d, slot.line);
        slot.stamp = d.u64();
    }
    tick_ = d.u64();
}

} // namespace acic
