#include "core/ifilter.hh"

#include <algorithm>

#include "common/logging.hh"
#include "common/tagscan.hh"

namespace acic {

IFilter::IFilter(std::uint32_t entries)
{
    ACIC_ASSERT(entries >= 1, "i-Filter needs at least one slot");
    slots_.resize(entries);
    tags_.assign(tagscan::padLanes64(entries), kInvalidTag);
}

std::optional<std::uint32_t>
IFilter::findSlot(BlockAddr blk) const
{
    // Padding lanes hold kInvalidTag, so the scan covers the padded
    // stride on the kernel's full-vector path. The filter parameter
    // range reaches 1024 entries, hence the 64-lane chunking; the
    // paper-default 16 entries is a single chunk.
    const std::uint32_t stride =
        static_cast<std::uint32_t>(tags_.size());
    for (std::uint32_t base = 0; base < stride; base += 64) {
        const std::uint32_t n =
            stride - base >= 64 ? 64 : stride - base;
        const std::uint64_t match =
            tagscan::matchMask64(tags_.data() + base, n, blk);
        if (match != 0)
            return base +
                   static_cast<std::uint32_t>(__builtin_ctzll(match));
    }
    return std::nullopt;
}

bool
IFilter::lookup(const CacheAccess &access)
{
    const auto idx = findSlot(access.blk);
    if (!idx)
        return false;
    Slot &slot = slots_[*idx];
    slot.stamp = ++tick_;
    slot.line.prefetched = false;
    slot.line.nextUse = access.nextUse;
    slot.line.lastTouch = access.seq;
    return true;
}

bool
IFilter::contains(BlockAddr blk) const
{
    return findSlot(blk).has_value();
}

std::optional<CacheLine>
IFilter::insert(const CacheAccess &access)
{
    if (contains(access.blk))
        return std::nullopt;
    return insertAbsent(access);
}

std::optional<CacheLine>
IFilter::insertAbsent(const CacheAccess &access)
{
    // First invalid slot, else the LRU stamp minimum. Kept as the
    // scalar walk over slots_: inserts are an order of magnitude
    // rarer than lookups, and this preserves victim choice exactly
    // even for checkpoints whose invalid slots carry stale stamps.
    std::uint32_t victim_idx = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t i = 0;
         i < static_cast<std::uint32_t>(slots_.size()); ++i) {
        if (!slots_[i].line.valid) {
            victim_idx = i;
            break;
        }
        if (slots_[i].stamp < oldest) {
            oldest = slots_[i].stamp;
            victim_idx = i;
        }
    }
    Slot *victim = &slots_[victim_idx];

    std::optional<CacheLine> evicted;
    if (victim->line.valid)
        evicted = victim->line;

    victim->line.blk = access.blk;
    victim->line.valid = true;
    victim->line.prefetched = access.isPrefetch;
    victim->line.fillPc = access.pc;
    victim->line.nextUse = access.nextUse;
    victim->line.lastTouch = access.seq;
    victim->stamp = ++tick_;
    tags_[victim_idx] = access.blk;
    return evicted;
}

bool
IFilter::invalidate(BlockAddr blk)
{
    const auto idx = findSlot(blk);
    if (!idx)
        return false;
    slots_[*idx].line.valid = false;
    tags_[*idx] = kInvalidTag;
    return true;
}

std::uint32_t
IFilter::occupancy() const
{
    std::uint32_t n = 0;
    for (const auto &slot : slots_)
        n += slot.line.valid ? 1 : 0;
    return n;
}

std::uint64_t
IFilter::storageBits() const
{
    // 58-bit tag + 1 valid + 4 LRU bits = 63 metadata bits, plus the
    // 64 B instruction block (Table I).
    return slots_.size() * (63 + kBlockBytes * 8);
}

void
IFilter::rebuildTags()
{
    std::fill(tags_.begin(), tags_.end(), kInvalidTag);
    for (std::size_t i = 0; i < slots_.size(); ++i)
        if (slots_[i].line.valid)
            tags_[i] = slots_[i].line.blk;
}

void
IFilter::save(Serializer &s) const
{
    s.u64(slots_.size());
    for (const Slot &slot : slots_) {
        saveCacheLine(s, slot.line);
        s.u64(slot.stamp);
    }
    s.u64(tick_);
}

void
IFilter::load(Deserializer &d)
{
    d.expectGeometry("ifilter entries", slots_.size());
    for (Slot &slot : slots_) {
        loadCacheLine(d, slot.line);
        slot.stamp = d.u64();
    }
    rebuildTags();
    tick_ = d.u64();
}

} // namespace acic
