#include "sim/energy.hh"

namespace acic {

EnergyBreakdown
computeEnergy(const SimResult &result, const EnergyParams &params,
              bool acic_structures)
{
    EnergyBreakdown out;
    const double accesses =
        static_cast<double>(result.demandAccesses);

    out.dynamicNj += accesses * params.l1iAccessNj;
    out.dynamicNj += static_cast<double>(result.instructions) *
                     params.corePerInstNj;
    out.dynamicNj += static_cast<double>(result.l2Accesses) *
                     params.l2AccessNj;
    out.dynamicNj += static_cast<double>(result.l3Accesses) *
                     params.l3AccessNj;
    out.dynamicNj += static_cast<double>(result.dramAccesses) *
                     params.dramAccessNj;

    if (acic_structures) {
        // Every fetch probes the i-Filter and searches the CSHR in
        // parallel with the i-cache; every i-Filter eviction reads
        // the HRT and PT.
        out.dynamicNj += accesses * params.ifilterAccessNj;
        out.dynamicNj += accesses * params.cshrAccessNj;
        const double victims = static_cast<double>(
            result.orgStats.get("filtered.filter_victims"));
        out.dynamicNj +=
            victims * (params.hrtAccessNj + params.ptAccessNj);
    }

    const double seconds = static_cast<double>(result.cycles) /
                           (params.clockGhz * 1e9);
    out.staticNj = params.staticPowerW * seconds * 1e9;
    return out;
}

} // namespace acic
