#include "sim/reuse.hh"

#include "common/logging.hh"

namespace acic {

ReuseProfiler::ReuseProfiler(std::size_t capacity)
    : marks_(capacity),
      hist_({0, 16, 512, 1024, 10000},
            {"0", "1-16", "16-512", "512-1024", "1024-10000",
             ">10000"}),
      capacity_(capacity)
{
}

void
ReuseProfiler::feed(BlockAddr blk)
{
    ACIC_ASSERT(time_ < capacity_, "ReuseProfiler capacity exceeded");
    const auto it = lastAccess_.find(blk);
    if (it != lastAccess_.end()) {
        const std::uint64_t prev = it->second;
        // Distinct blocks touched strictly between the two accesses:
        // marked slots in (prev, time_). The mark at `prev` is this
        // block's own, hence the open interval.
        const std::int64_t distance =
            marks_.rangeSum(prev + 1, time_ == 0 ? 0 : time_ - 1);
        lastDistance_ = distance;
        hist_.record(distance);

        const std::uint8_t bucket =
            static_cast<std::uint8_t>(hist_.bucketOf(distance));
        const auto prev_bucket = lastBucket_.find(blk);
        if (prev_bucket != lastBucket_.end())
            ++transitions_[prev_bucket->second][bucket];
        lastBucket_[blk] = bucket;

        marks_.add(prev, -1);
    }
    marks_.add(time_, +1);
    lastAccess_[blk] = time_;
    ++time_;
}

double
ReuseProfiler::transitionProb(std::size_t from, std::size_t to) const
{
    std::uint64_t row_total = 0;
    for (std::size_t c = 0; c < kBuckets; ++c)
        row_total += transitions_[from][c];
    if (row_total == 0)
        return 0.0;
    return static_cast<double>(transitions_[from][to]) /
           static_cast<double>(row_total);
}

} // namespace acic
