/**
 * @file
 * Resumable simulation engine. MachineState is every piece of per-run
 * mutable state of the front-end timing model — FTQ, branch
 * predictors, MSHRs, backing hierarchy, prefetcher, decode queue,
 * cycle/retired counters, and the warmup stat snapshot — extracted
 * from the old monolithic Simulator::run() loop so a run can be
 * stepped in phases instead of one shot:
 *
 *   SimEngine engine(config, trace, org, oracle);
 *   engine.warmUp(w);     // warm caches/predictors; stats frozen
 *   engine.measure(n);    // timed region
 *   SimResult r = engine.finish();
 *
 * warmUp() performs full timing simulation and latches a snapshot of
 * the cumulative counters when the warmup target retires; finish()
 * reports measured = cumulative - snapshot. This generalizes the old
 * inline warmupFraction snapshot hack bit-for-bit: Simulator::run()
 * is now a thin warmUp(total*warmupFraction) + measure(rest) wrapper
 * and reproduces the pre-refactor golden corpus byte-identically.
 *
 * Phases compose: the interval-parallel driver seeks a region cursor
 * to (intervalStart - W), warms W instructions, measures the
 * interval, and merges the per-interval SimResults (see
 * mergeSimResults in sim/simulator.hh).
 */

#ifndef ACIC_SIM_ENGINE_HH
#define ACIC_SIM_ENGINE_HH

#include <chrono>
#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/icache_org.hh"
#include "cache/mshr.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "frontend/btb.hh"
#include "frontend/bundle.hh"
#include "frontend/entangling.hh"
#include "frontend/tage.hh"
#include "sim/oracle.hh"
#include "sim/sim_config.hh"
#include "sim/simulator.hh"
#include "trace/trace.hh"

namespace acic {

/** One FTQ entry: a fetch bundle plus BP bookkeeping. */
struct FtqEntry
{
    Bundle bundle;
    std::uint64_t seq = 0;      ///< demand-sequence index
    Cycle redirectPenalty = 0;  ///< charged when the bundle is fetched
    bool prefetchConsidered = false;
};

/** See file comment. Owned by SimEngine; plain data + structures. */
struct MachineState
{
    MachineState(const SimConfig &config, TraceSource &trace);

    // Front-end structures.
    BundleWalker walker;
    Tage tage;
    Btb btb;
    ReturnAddressStack ras;
    MshrFile mshr;
    MemoryHierarchy hierarchy;
    EntanglingPrefetcher entangler;

    std::deque<FtqEntry> ftq;
    std::vector<MshrFile::Fill> fills; ///< reused per-cycle buffer

    // Clock and bundle supply.
    Cycle cycle = 0;
    Cycle bpResumeAt = 0;
    bool bpWaitingRedirect = false; ///< paused until bundle fetched
    bool walkerDone = false;

    std::uint64_t decodeQueue = 0; ///< instructions buffered
    std::uint64_t retired = 0;
    std::uint64_t seqCounter = 0;
    std::uint64_t lastDemandSeq = 0;

    // Demand-miss wait state: the FTQ head stalls on this block.
    // `headReady` is latched by the fill *event* (not by re-probing
    // the organization): a bypassing organization may drop the fill,
    // and a later fill may even re-evict the block, but the waiting
    // fetch group was satisfied by the returning miss either way.
    bool waiting = false;
    BlockAddr waitingBlk = 0;
    bool headReady = false;
    bool pendingAlloc = false; ///< MSHRs were full; retry allocate
    Cycle pendingLatency = 0;

    /**
     * FDP scan cursor: every FTQ entry past the head with
     * seq < prefetchCursor has already been prefetch-considered
     * (the scan marks entries front-to-back and stops at the first
     * failure, so the unconsidered entries form a suffix). Derived
     * from the per-entry flags — not checkpointed, recomputed on
     * load — it lets the per-cycle prefetch stage start at the
     * first unconsidered entry instead of rescanning the whole FTQ.
     */
    std::uint64_t prefetchCursor = 0;

    // Cumulative counters; the warmup snapshot is subtracted by
    // finish(). Handle registration happens before any snapshot
    // copy, so `raw` and `snap` share one index layout.
    StatSet raw;
    StatHandle stPrefetches;
    StatHandle stDemandAccesses;
    StatHandle stL1iMisses;
    StatHandle stLatePrefetches;
    StatHandle stMispredicts;
    StatHandle stBtbMisses;
    StatHandle stRasMispredicts;

    bool warmupSnapped = false;
    StatSet snap;
    Cycle warmupCycle = 0;
};

/** See file comment. */
class SimEngine
{
  public:
    /**
     * Bind to @p trace (reset; must outlive the engine), @p org, and
     * an optional @p oracle whose demand-sequence indices must align
     * with @p trace (build it over the same region the engine walks).
     */
    SimEngine(const SimConfig &config, TraceSource &trace,
              IcacheOrg &org, const DemandOracle *oracle = nullptr);

    /**
     * Functionally warm the long-lived machine state by replaying
     * @p prefix without detailed timing — the SMARTS-style warming
     * that makes short per-interval timed warmups accurate:
     *
     *  - Branch predictors (TAGE, BTB, RAS) see the exact update
     *    sequence of the BP-unit stage. BP training is a pure
     *    function of the instruction stream (predictions never feed
     *    back into it), so their state ends bit-equal to a timed
     *    simulation of @p prefix.
     *  - The organization and the L2/L3 hierarchy see the demand
     *    bundle stream under a coarse stall-until-fill clock,
     *    training replacement/admission metadata (SRRIP RRPVs, ACIC
     *    HRT/PT) and filling the megabyte-scale L2/L3 capacity that
     *    no affordable timed warmup reaches (~10^6 instructions for
     *    the 2 MB L3). Prefetch timeliness — late prefetches count
     *    as demand misses — rides on those hit rates. The
     *    entangling prefetcher (when configured) trains on the same
     *    access/miss stream, with its candidate queue drained.
     *
     * Warming traffic is excluded from the reported stats. Must run
     * before any stepping; the timed clock resumes from the warming
     * clock so delayed-update queues see monotonic time.
     */
    void functionalWarm(TraceSource &prefix);

    /**
     * Advance until @p n more instructions have retired, then latch
     * the warmup snapshot (freezing everything simulated so far out
     * of the measured stats). The snapshot latches exactly when the
     * cumulative retire count crosses the target — mid-cycle, in the
     * retire stage — matching the legacy inline warmupFraction hack
     * bit-for-bit. Only the first warmUp() latches; n may be 0.
     */
    void warmUp(std::uint64_t n);

    /**
     * Advance until @p n more instructions have retired. Latches the
     * warmup snapshot first (as warmUp(0)) if no warmUp() ran.
     * Callable repeatedly; measured totals accumulate.
     */
    void measure(std::uint64_t n);

    /** Assemble the post-warmup metrics. Idempotent. */
    SimResult finish() const;

    /** Cumulative instructions retired (warmup + measured). */
    std::uint64_t retired() const { return state_.retired; }

    /**
     * Nominal retire count the phases run so far extend to: warmup
     * length plus every measure(n) — unlike retired(), free of the
     * bundle-granularity overshoot of the retire stage. A chunked
     * driver must plan its next measure(n) from this value so that
     * warmUp(w) + measure(a) + measure(b) lands on the identical
     * final target as warmUp(w) + measure(a + b).
     */
    std::uint64_t plannedTarget() const { return measureTarget_; }

    /** Cumulative cycles simulated. */
    Cycle cycles() const { return state_.cycle; }

    const MachineState &state() const { return state_; }

    /** Payload tag of on-disk engine checkpoint containers. */
    static constexpr char kCheckpointTag[4] = {'E', 'N', 'G', 'N'};

    /**
     * Serialize the entire mid-run machine — trace cursor, front-end
     * structures, organization, hierarchy, cumulative and snapshot
     * stats, and the phase targets — so that an identically
     * constructed engine in a fresh process can load() and continue
     * to byte-identical final statistics. The stream starts with an
     * identity header (trace name/length, scheme name, oracle
     * presence, core config) that load() validates, so a checkpoint
     * can never resume into a mismatched run.
     */
    void save(Serializer &s) const;
    void load(Deserializer &d);

    /** save()/load() through an "ENGN" checkpoint file at @p path. */
    void saveCheckpoint(const std::string &path) const;
    void loadCheckpoint(const std::string &path);

  private:
    void stepCycle();
    void advanceUntilRetired(std::uint64_t target);
    void latchSnapshot();
    void emitHeartbeat();

    std::uint64_t nextUseOf(std::uint64_t seq) const;
    std::uint64_t nextUseAfter(BlockAddr blk,
                               std::uint64_t seq) const;
    bool issuePrefetch(BlockAddr blk, Addr pc, std::uint64_t seq);

    SimConfig config_;
    TraceSource &trace_;
    IcacheOrg &org_;
    const DemandOracle *oracle_;
    MachineState state_;

    /** Retire count at which the snapshot latches (warmup end). */
    std::uint64_t snapTarget_ = 0;
    /** Retire count the measured phases extend to (nominal). */
    std::uint64_t measureTarget_ = 0;

    /**
     * Hierarchy traffic generated by functionalWarm()'s miss
     * stream, subtracted from the reported L2/L3/DRAM counters so a
     * warmed shard reports the same traffic semantics as a legacy
     * run (which includes the *timed* warmup region, a quirk the
     * golden corpus pins). Likewise the organization's counter
     * values at the end of the warming pass, subtracted from the
     * reported orgStats.
     */
    std::uint64_t funcL2Accesses_ = 0;
    std::uint64_t funcL3Accesses_ = 0;
    std::uint64_t funcDramAccesses_ = 0;
    bool warmedFunctionally_ = false;
    std::map<std::string, std::uint64_t> orgStatsBase_;

    /**
     * Telemetry heartbeat state. When telemetry is enabled at engine
     * construction, hbNext_ is the retire count of the next heartbeat
     * snapshot; otherwise it stays at the ~0 sentinel, so the stepping
     * loop's only telemetry cost is one always-false integer compare
     * (the acceptance bound of ISSUE 6). Window deltas (instructions,
     * misses, cycles, host wall time) are taken against the previous
     * heartbeat to report rolling-window MPKI/IPC and Minst/s.
     */
    std::uint64_t hbNext_ = ~std::uint64_t{0};
    std::uint64_t hbInterval_ = 0;
    std::uint64_t hbLastRetired_ = 0;
    std::uint64_t hbLastMisses_ = 0;
    Cycle hbLastCycle_ = 0;
    std::chrono::steady_clock::time_point hbLastWall_{};
};

} // namespace acic

#endif // ACIC_SIM_ENGINE_HH
