/**
 * @file
 * The scheme registry: an open, string-keyed catalogue of L1i
 * organization builders. Every experiment row names a spec string —
 * a bare preset ("acic", "srrip", "36KB L1i") or a parameterized
 * form ("acic(filter=32,cshr=8,update=instant)", "lru(kb=40)") —
 * and the registry parses, validates, and builds the corresponding
 * IcacheOrg. The paper's 22 evaluated schemes (Table IV plus the
 * motivation/ablation variants) ship as registered presets whose
 * bare spellings keep their legacy display names, so existing spec
 * files, CSV headers, and CLI invocations keep working; new schemes
 * and sweeps land as data (a registration), not as code (an enum
 * case).
 *
 * Spec grammar (DESIGN.md section 6):
 *   list  := spec (',' spec)*          -- top-level commas
 *   spec  := name [ '(' param (',' param)* ')' ]
 *   param := key '=' value
 *   value := scalar | '{' scalar (',' scalar)* '}'   -- sweep grids
 * Names match leniently: case-insensitive, '-'/'_'/' '
 * interchangeable, legacy display names accepted as aliases.
 */

#ifndef ACIC_SIM_SCHEME_HH
#define ACIC_SIM_SCHEME_HH

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/icache_org.hh"
#include "common/kv_spec.hh"
#include "core/admission_predictor.hh"
#include "core/cshr.hh"
#include "core/filtered_icache.hh"
#include "sim/sim_config.hh"

namespace acic {

/**
 * A validated, buildable scheme instance: canonical registry key plus
 * the explicitly-given parameters. Produced by SchemeRegistry::parse
 * (or the parseScheme free function); value-semantic and cheap to
 * copy, so ExperimentSpec rows carry it directly.
 */
struct SchemeSpec
{
    /** Canonical registry key, e.g. "acic", "opt_bypass". */
    std::string key;

    /** Explicit parameters, validated, in the order given. */
    std::vector<KvPair> params;

    /**
     * Table/CSV label: the legacy display name for a bare preset
     * ("ACIC", "36KB L1i"), the canonical spec text when parameters
     * were given ("acic(filter=32)").
     */
    std::string display;

    /** Canonical spec text; parseScheme(toString()) == *this. */
    std::string toString() const;

    bool operator==(const SchemeSpec &o) const
    {
        return key == o.key && params == o.params;
    }
    bool operator!=(const SchemeSpec &o) const { return !(*this == o); }
};

/** See file comment. */
class SchemeRegistry
{
  public:
    /**
     * Organization factory: @p reader holds the validated parameter
     * list, @p display the label the built org should report.
     */
    using Builder = std::function<std::unique_ptr<IcacheOrg>(
        const SimConfig &config, ParamReader &reader,
        const std::string &display)>;

    /** One registered scheme. */
    struct Entry
    {
        /** Canonical key ("acic_instant"). */
        std::string key;
        /** Legacy display name for the bare spelling. */
        std::string display;
        /** One-line description for `acic_run list`. */
        std::string summary;
        /** Extra accepted spellings (beyond key and display). */
        std::vector<std::string> aliases;
        /** Accepted parameters, with ranges and docs. */
        std::vector<ParamSpec> params;
        Builder builder;
        /**
         * Include in allSchemes() / "--schemes all". Default on;
         * turn off for experimental registrations that should be
         * addressable by name without widening golden "all" runs.
         */
        bool listed = true;
    };

    /** Process-wide registry, pre-seeded with the paper's presets. */
    static SchemeRegistry &instance();

    /** Register @p entry; a same-key entry is replaced in place. */
    void add(Entry entry);

    /** Every registered scheme, in registration (paper) order. */
    const std::vector<Entry> &entries() const { return entries_; }

    /**
     * Lenient lookup by key, display name, or alias ('-'/'_'/case
     * folding). Null when nothing matches.
     */
    const Entry *find(const std::string &name) const;

    /** Closest registered names to @p name (near-miss suggestions). */
    std::vector<std::string> suggest(const std::string &name,
                                     std::size_t max_hits = 3) const;

    /**
     * Parse and fully validate one spec string (builds the org once
     * against a default SimConfig to run cross-parameter checks).
     * Throws SpecError — with did-you-mean suggestions on an unknown
     * name.
     */
    SchemeSpec parse(const std::string &text) const;

    /** Build the organization for a validated spec. */
    std::unique_ptr<IcacheOrg> build(const SchemeSpec &spec,
                                     const SimConfig &config) const;

  private:
    std::vector<Entry> entries_;
};

/** SchemeRegistry::instance().parse — throws SpecError. */
SchemeSpec parseScheme(const std::string &text);

/**
 * Lenient, non-throwing spec lookup (legacy schemeFromName
 * semantics: '-'/'_'/case folding, display-name aliases). Accepts
 * full parameterized specs too; nullopt on any error.
 */
std::optional<SchemeSpec> schemeFromName(const std::string &name);

/**
 * Resolve a CLI scheme list: "all" (every registered preset, paper
 * order) or comma-separated specs (commas inside parens/braces do
 * not split). Throws SpecError.
 */
std::vector<SchemeSpec> parseSchemeList(const std::string &list);

/**
 * Expand a sweep grid — specs whose values may be {a,b,c} sets —
 * into the cartesian list of concrete schemes, leftmost set varying
 * slowest. Throws SpecError.
 */
std::vector<SchemeSpec> expandSchemeGrid(const std::string &grid);

/**
 * Every listed scheme as a bare preset spec, in registration (paper)
 * order. Computed from the live registry on each call, so runtime
 * add()/replacements are reflected immediately.
 */
std::vector<SchemeSpec> allSchemes();

/** Display name used in bench tables (matches the paper's labels). */
inline const std::string &
schemeName(const SchemeSpec &spec)
{
    return spec.display;
}

/** Build the organization for @p spec under @p config. */
std::unique_ptr<IcacheOrg> makeScheme(const SchemeSpec &spec,
                                      const SimConfig &config);

/**
 * Build an ACIC organization with explicit structure parameters (the
 * primitive behind the registry's acic* builders; also used directly
 * by instrumentation-heavy benches).
 */
std::unique_ptr<FilteredIcache>
makeAcicOrg(const SimConfig &config, PredictorConfig predictor,
            CshrConfig cshr, std::uint32_t filter_entries = 16,
            bool track_accuracy = true,
            std::string display_name = "ACIC");

} // namespace acic

#endif // ACIC_SIM_SCHEME_HH
