/**
 * @file
 * The scheme catalogue: every L1i management strategy the paper
 * evaluates (Table IV plus the motivation/ablation variants), and a
 * factory building the corresponding IcacheOrg.
 */

#ifndef ACIC_SIM_SCHEME_HH
#define ACIC_SIM_SCHEME_HH

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cache/icache_org.hh"
#include "core/admission_predictor.hh"
#include "core/cshr.hh"
#include "core/filtered_icache.hh"
#include "sim/sim_config.hh"

namespace acic {

/** Every evaluated L1i scheme. */
enum class Scheme
{
    BaselineLru,  ///< 32 KB 8-way LRU (the speedup denominator)
    Srrip,
    Ship,
    Harmony,      ///< Hawkeye/Harmony
    Ghrp,
    Dsb,
    Obm,
    Vvc,
    Vc3k,
    Vc8k,
    L1i36k,       ///< 36 KB 9-way
    L1i40k,       ///< 40 KB 10-way (Table IV variant)
    Opt,          ///< Belady replacement (oracle)
    OptBypass,    ///< i-Filter + oracle admission
    Acic,         ///< the contribution (default Table I config)
    AcicInstant,  ///< ACIC with instant predictor update (Fig. 14)
    AlwaysInsert, ///< i-Filter, every victim admitted (Fig. 3a)
    IFilterOnly,  ///< i-Filter, no admission (Fig. 17)
    AccessCount,  ///< i-Filter + access-count comparison (Fig. 3a)
    RandomBypass, ///< i-Filter + 60% random admission (Fig. 12b)
    AcicGlobalHistory, ///< Fig. 17 ablation
    AcicBimodal,       ///< Fig. 17 ablation
};

/** Display name used in bench tables (matches the paper's labels). */
std::string schemeName(Scheme scheme);

/** Every catalogued scheme, in enum order. */
const std::vector<Scheme> &allSchemes();

/**
 * Inverse of schemeName, for CLI/spec parsing. Case-insensitive and
 * tolerant of '_'/'-' standing in for spaces.
 */
std::optional<Scheme> schemeFromName(const std::string &name);

/** Build the organization for @p scheme under @p config. */
std::unique_ptr<IcacheOrg> makeScheme(Scheme scheme,
                                      const SimConfig &config);

/**
 * Build an ACIC organization with explicit structure parameters
 * (Fig. 15 sensitivity sweeps).
 */
std::unique_ptr<FilteredIcache>
makeAcicOrg(const SimConfig &config, PredictorConfig predictor,
            CshrConfig cshr, std::uint32_t filter_entries = 16,
            bool track_accuracy = true,
            std::string display_name = "ACIC");

} // namespace acic

#endif // ACIC_SIM_SCHEME_HH
