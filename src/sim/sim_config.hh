/**
 * @file
 * Simulation parameters mirroring Table II (Sunny-Cove-like core,
 * 4 GHz): 6-wide fetch with a 24-entry FTQ, 60-entry decode queue,
 * TAGE + 8192-entry 4-way BTB, 32 KB/8-way L1i with 16 MSHRs, and the
 * L2/L3/DRAM hierarchy. The 352-entry ROB backend is idealized as a
 * 6-wide consumer (documented in DESIGN.md).
 */

#ifndef ACIC_SIM_SIM_CONFIG_HH
#define ACIC_SIM_SIM_CONFIG_HH

#include <cstdint>

#include "cache/hierarchy.hh"
#include "common/types.hh"

namespace acic {

/** Instruction prefetcher in front of the L1i. */
enum class PrefetcherKind : std::uint8_t
{
    None,
    Fdp,        ///< fetch-directed prefetching along the FTQ [31]
    Entangling, ///< entangling prefetcher [76] (Fig. 20/21 baseline)
};

/** See file comment. */
struct SimConfig
{
    // Front end (Table II).
    unsigned fetchWidth = 6;
    unsigned ftqEntries = 24;
    unsigned decodeQueueEntries = 60;
    unsigned retireWidth = 6;
    /**
     * Fetch-target bundles the BP unit can enqueue per cycle. Running
     * the BP ahead of fetch is what gives FDP its lookahead (the FTQ
     * fills during miss stalls and steady-state fetch-bound phases).
     */
    unsigned bpBundlesPerCycle = 2;

    // L1 instruction cache.
    std::uint32_t l1iSets = 64;
    std::uint32_t l1iWays = 8;
    std::uint32_t l1iMshrs = 16;
    Cycle l1iHitLatency = 4; ///< pipelined; constant across schemes

    // Branch prediction.
    std::uint32_t btbEntries = 8192;
    std::uint32_t btbWays = 4;
    std::uint32_t rasDepth = 32;
    Cycle mispredictPenalty = 14;
    Cycle btbMissPenalty = 8;

    // Prefetching.
    PrefetcherKind prefetcher = PrefetcherKind::Fdp;
    unsigned prefetchDegree = 2; ///< prefetch issues per cycle

    // Backing hierarchy (Table II latencies).
    HierarchyConfig hierarchy{};

    /** Fraction of the trace used to warm structures (Sec. IV-A). */
    double warmupFraction = 0.10;
};

} // namespace acic

#endif // ACIC_SIM_SIM_CONFIG_HH
