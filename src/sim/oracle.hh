/**
 * @file
 * Oracle next-use annotations. A preliminary pass walks the trace with
 * the same BundleWalker the simulator uses, records the demand
 * block-access sequence, and precomputes for every access the index of
 * the block's next access. Belady OPT, "OPT bypass", and the accuracy
 * instrumentation of Sec. IV-G all consume these annotations.
 */

#ifndef ACIC_SIM_ORACLE_HH
#define ACIC_SIM_ORACLE_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "trace/trace.hh"

namespace acic {

/** See file comment. */
class DemandOracle
{
  public:
    /**
     * Build by walking @p trace (which is reset before and after).
     * @param fetch_width must equal the simulator's fetch width so
     *        bundle indices align.
     */
    static DemandOracle build(TraceSource &trace,
                              unsigned fetch_width = 6);

    /** Length of the demand access sequence (bundle count). */
    std::uint64_t length() const { return seq_.size(); }

    /** Block accessed by demand access @p idx. */
    BlockAddr blockAt(std::uint64_t idx) const { return seq_[idx]; }

    /** Next access index of the block accessed at @p idx. */
    std::uint64_t nextUseAt(std::uint64_t idx) const
    {
        return nextUse_[idx];
    }

    /**
     * First access of @p blk strictly after @p idx (prefetch fills),
     * or kNeverAgain.
     */
    std::uint64_t nextUseAfter(BlockAddr blk, std::uint64_t idx) const;

    /** Distinct blocks in the sequence (footprint accounting). */
    std::uint64_t distinctBlocks() const { return keys_.size(); }

  private:
    std::vector<BlockAddr> seq_;
    std::vector<std::uint64_t> nextUse_;
    /**
     * Per-block occurrence lists in CSR form: block keys_[k]'s
     * ascending access indices are positions_[rowStart_[k] ..
     * rowStart_[k+1]). keys_ is sorted, so nextUseAfter() is two
     * binary searches over contiguous arrays — the hot prefetch-fill
     * path — instead of a hash-map chase through per-block vectors.
     */
    std::vector<BlockAddr> keys_;
    std::vector<std::uint64_t> rowStart_;
    std::vector<std::uint64_t> positions_;
};

} // namespace acic

#endif // ACIC_SIM_ORACLE_HH
