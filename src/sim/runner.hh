/**
 * @file
 * Bench/example convenience layer: a WorkloadContext owns one
 * workload's trace and oracle (built once) and runs any scheme
 * against it, so every bench binary is a short loop over
 * (workload x scheme).
 *
 * SharedWorkload is the thread-safe variant the experiment driver
 * uses: the trace is materialized into immutable shared storage and
 * the oracle is built once, after which any number of worker threads
 * can run() schemes concurrently — each run gets a private cursor
 * over the shared image and a private simulator/organization.
 */

#ifndef ACIC_SIM_RUNNER_HH
#define ACIC_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <string>

#include "sim/scheme.hh"
#include "sim/simulator.hh"
#include "trace/memory.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

namespace acic {

/** See file comment. */
class WorkloadContext
{
  public:
    /**
     * @param params workload definition (instructions may be
     *        overridden by the ACIC_TRACE_LEN env var for quick runs).
     * @param config simulator configuration.
     */
    WorkloadContext(WorkloadParams params, SimConfig config = {});

    /** Run a registered scheme. */
    SimResult run(const SchemeSpec &scheme);

    /** Parse-and-run convenience: any registry spec string. */
    SimResult run(const std::string &spec);

    /** Run a custom organization (sensitivity sweeps). */
    SimResult run(IcacheOrg &org);

    const DemandOracle &oracle() const { return oracle_; }
    SyntheticWorkload &trace() { return trace_; }
    const SimConfig &config() const { return config_; }

    /** Apply the ACIC_TRACE_LEN override to a parameter block. */
    static WorkloadParams withEnvOverrides(WorkloadParams params);

  private:
    SimConfig config_;
    SyntheticWorkload trace_;
    DemandOracle oracle_;
};

/** See file comment. Immutable after construction; run() is const. */
class SharedWorkload
{
  public:
    /**
     * Generate @p params synthetically as given, materialize, and
     * build the oracle once. Unlike WorkloadContext, ACIC_TRACE_LEN
     * is NOT applied here — callers owning a length precedence (the
     * experiment driver ranks explicit overrides above the env var)
     * apply withEnvOverrides() themselves.
     */
    SharedWorkload(WorkloadParams params, SimConfig config = {});

    /**
     * Adopt an existing source (e.g. a FileTraceSource): materialize
     * it and build the oracle once. @p source is reset around the
     * capture and not retained.
     */
    SharedWorkload(TraceSource &source, SimConfig config = {});

    /** Run a registered scheme. Safe to call from any thread. */
    SimResult run(const SchemeSpec &scheme) const;

    /** Parse-and-run convenience: any registry spec string. */
    SimResult run(const std::string &spec) const;

    /**
     * Run a caller-owned organization. Safe to call from any thread
     * as long as @p org itself is not shared across threads.
     */
    SimResult run(IcacheOrg &org) const;

    /** A fresh private cursor over the shared trace image. */
    MemoryTraceSource source() const
    {
        return MemoryTraceSource(image_, name_);
    }

    const DemandOracle &oracle() const { return oracle_; }
    const SimConfig &config() const { return config_; }
    const std::string &name() const { return name_; }
    std::uint64_t instructions() const { return image_->size(); }

  private:
    SimConfig config_;
    std::string name_;
    TraceImage image_;
    DemandOracle oracle_;
};

} // namespace acic

#endif // ACIC_SIM_RUNNER_HH
