/**
 * @file
 * Bench/example convenience layer: a WorkloadContext owns one
 * workload's trace and oracle (built once) and runs any scheme
 * against it, so every bench binary is a short loop over
 * (workload x scheme).
 *
 * SharedWorkload is the thread-safe variant the experiment driver
 * uses: the trace is materialized into immutable shared storage and
 * the oracle is built once, after which any number of worker threads
 * can run() schemes concurrently — each run gets a private cursor
 * over the shared image and a private simulator/organization.
 */

#ifndef ACIC_SIM_RUNNER_HH
#define ACIC_SIM_RUNNER_HH

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "sim/scheme.hh"
#include "sim/simulator.hh"
#include "trace/memory.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

namespace acic {

/**
 * One shard of an interval-parallel run: instructions
 * [funcStart, warmStart) functionally warm the long-lived state
 * (branch predictors, organization metadata, L2/L3 contents — see
 * SimEngine::functionalWarm), [warmStart, begin) warm under full
 * timing with stats frozen via the SimEngine snapshot, and
 * [begin, end) is the measured region. Shard results merge with
 * mergeSimResults().
 */
struct SimInterval
{
    std::uint64_t funcStart = 0; ///< functional-warming start
    std::uint64_t warmStart = 0; ///< first timed instruction
    std::uint64_t begin = 0;     ///< first measured instruction
    std::uint64_t end = 0;       ///< one past the last measured

    std::uint64_t measured() const { return end - begin; }
    std::uint64_t warmup() const { return begin - warmStart; }
};

/**
 * Suggested functional-warming horizon for very long traces:
 * long-lived state mostly saturates within a few million
 * instructions (the 2 MB L3 holds 32 K blocks; TAGE/BTB sooner), so
 * a bounded horizon keeps per-shard cost O(horizon + interval) as
 * traces grow — near-linear intra-workload scaling — at the price
 * of ~1-2% MPKI error on slow-warming (low-MPKI) workloads. The
 * default everywhere is 0 (warm from the trace start): sub-1% on
 * every catalog workload, with the cheap functional pass still
 * dominated by the parallelized detailed simulation.
 */
constexpr std::uint64_t kScalingWarmHorizon = 2'500'000;

/**
 * Slice the measured region [@p measureBegin, @p measureEnd) into
 * @p intervals equal shards (the remainder spread over the leading
 * shards), each preceded by up to @p warmup instructions of
 * functional warming clipped at the trace start. Passing the
 * full-run measured region (measureBegin = total * warmupFraction)
 * makes the merged shards cover exactly the instruction span a
 * monolithic run measures, so merged and full-run MPKI are directly
 * comparable. @p intervals is clamped to [1, region length]; an
 * empty region yields one empty interval. @p warmHorizon bounds the
 * functional-warming prefix per shard (0 = unbounded, warm from the
 * trace start).
 */
std::vector<SimInterval>
planIntervals(std::uint64_t measureBegin, std::uint64_t measureEnd,
              unsigned intervals, std::uint64_t warmup,
              std::uint64_t warmHorizon = 0);

/** See file comment. */
class WorkloadContext
{
  public:
    /**
     * @param params workload definition (instructions may be
     *        overridden by the ACIC_TRACE_LEN env var for quick runs).
     * @param config simulator configuration.
     */
    WorkloadContext(WorkloadParams params, SimConfig config = {});

    /** Run a registered scheme. */
    SimResult run(const SchemeSpec &scheme);

    /** Parse-and-run convenience: any registry spec string. */
    SimResult run(const std::string &spec);

    /** Run a custom organization (sensitivity sweeps). */
    SimResult run(IcacheOrg &org);

    const DemandOracle &oracle() const { return oracle_; }
    SyntheticWorkload &trace() { return trace_; }
    const SimConfig &config() const { return config_; }

    /** Apply the ACIC_TRACE_LEN override to a parameter block. */
    static WorkloadParams withEnvOverrides(WorkloadParams params);

  private:
    SimConfig config_;
    SyntheticWorkload trace_;
    DemandOracle oracle_;
};

/** See file comment. Immutable after construction; run() is const. */
class SharedWorkload
{
  public:
    /**
     * Generate @p params synthetically as given, materialize, and
     * build the oracle once. Unlike WorkloadContext, ACIC_TRACE_LEN
     * is NOT applied here — callers owning a length precedence (the
     * experiment driver ranks explicit overrides above the env var)
     * apply withEnvOverrides() themselves.
     */
    SharedWorkload(WorkloadParams params, SimConfig config = {});

    /**
     * Adopt an existing source (e.g. a FileTraceSource): materialize
     * it and build the oracle once. @p source is reset around the
     * capture and not retained.
     */
    SharedWorkload(TraceSource &source, SimConfig config = {});

    /** Run a registered scheme. Safe to call from any thread. */
    SimResult run(const SchemeSpec &scheme) const;

    /** Parse-and-run convenience: any registry spec string. */
    SimResult run(const std::string &spec) const;

    /**
     * Run a caller-owned organization. Safe to call from any thread
     * as long as @p org itself is not shared across threads.
     */
    SimResult run(IcacheOrg &org) const;

    /**
     * run(scheme) with periodic mid-measure checkpoints: every
     * @p checkpointEvery retired instructions the engine snapshots
     * itself to @p inflightPath (atomically, temp-file + rename). If
     * @p inflightPath already exists when the run starts, the engine
     * resumes from it instead of warming up from the trace start —
     * the chunked phases accumulate (warmUp + measure(a) +
     * measure(b) == warmUp + measure(a+b)), so an interrupted and
     * resumed run finishes with byte-identical statistics to an
     * uninterrupted one. A corrupt or mismatched checkpoint makes
     * loadCheckpoint() throw SerializeError; nothing is silently
     * recomputed. The caller removes @p inflightPath once the final
     * result is published. @p checkpointEvery == 0 disables the
     * in-flight snapshots (the run still resumes from an existing
     * file).
     */
    SimResult runCheckpointed(const SchemeSpec &scheme,
                              const std::string &inflightPath,
                              std::uint64_t checkpointEvery) const;

    /**
     * Simulate one interval shard: a private region cursor over
     * [interval.warmStart, interval.end) of the shared image, a
     * region-local oracle, warmUp(interval.warmup()), and
     * measure(interval.measured()). Safe to call from any thread;
     * this is the per-worker unit of interval-parallel simulation.
     * Note config().warmupFraction does NOT apply — the interval's
     * explicit warmup region replaces it.
     *
     * @param oracle optional pre-built region oracle whose indices
     *        start at interval.warmStart (see buildIntervalOracle).
     *        The oracle depends only on the region, so callers
     *        running many schemes over the same shard build it once;
     *        when null, a region-local oracle is built internally.
     */
    SimResult runInterval(const SchemeSpec &scheme,
                          const SimInterval &interval,
                          const DemandOracle *oracle = nullptr) const;

    /** As above with a caller-owned organization. */
    SimResult runInterval(IcacheOrg &org,
                          const SimInterval &interval,
                          const DemandOracle *oracle = nullptr) const;

    /**
     * Build the region-local oracle of one shard — the demand
     * sequence over [interval.warmStart, interval.end), indices
     * starting at warmStart — for sharing across runInterval()
     * calls of different schemes.
     */
    DemandOracle
    buildIntervalOracle(const SimInterval &interval) const;

    /** A fresh private cursor over the shared trace image. */
    MemoryTraceSource source() const
    {
        return MemoryTraceSource(image_, name_);
    }

    /**
     * The whole-trace oracle, built on first use (thread-safe).
     * Lazy because interval runs never consult it — they build
     * region-local oracles instead — and a full-trace pass per
     * workload would be pure overhead there.
     */
    const DemandOracle &oracle() const;

    const SimConfig &config() const { return config_; }
    const std::string &name() const { return name_; }
    std::uint64_t instructions() const { return image_->size(); }

    /**
     * Enable/disable the Belady oracle for subsequent run*() calls
     * (default on). Disabled, run()/runCheckpointed()/runInterval()
     * hand the engine a null oracle — OPT-style schemes then see
     * "never reused" for every block, and the advisory accuracy
     * counters (match_opt, acic.*_r<N>) stay zero, matching what a
     * single-pass live stream (`acic_run serve`) can compute. Set
     * before sharing across threads; not synchronized.
     */
    void setOracleEnabled(bool enabled) { oracleEnabled_ = enabled; }
    bool oracleEnabled() const { return oracleEnabled_; }

  private:
    SimConfig config_;
    std::string name_;
    TraceImage image_;
    bool oracleEnabled_ = true;
    mutable std::once_flag oracleOnce_;
    mutable DemandOracle oracle_;
};

} // namespace acic

#endif // ACIC_SIM_RUNNER_HH
