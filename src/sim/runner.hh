/**
 * @file
 * Bench/example convenience layer: a WorkloadContext owns one
 * workload's trace and oracle (built once) and runs any scheme
 * against it, so every bench binary is a short loop over
 * (workload x scheme).
 */

#ifndef ACIC_SIM_RUNNER_HH
#define ACIC_SIM_RUNNER_HH

#include <cstdint>
#include <memory>

#include "sim/scheme.hh"
#include "sim/simulator.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

namespace acic {

/** See file comment. */
class WorkloadContext
{
  public:
    /**
     * @param params workload definition (instructions may be
     *        overridden by the ACIC_TRACE_LEN env var for quick runs).
     * @param config simulator configuration.
     */
    WorkloadContext(WorkloadParams params, SimConfig config = {});

    /** Run a catalogued scheme. */
    SimResult run(Scheme scheme);

    /** Run a custom organization (sensitivity sweeps). */
    SimResult run(IcacheOrg &org);

    const DemandOracle &oracle() const { return oracle_; }
    SyntheticWorkload &trace() { return trace_; }
    const SimConfig &config() const { return config_; }

    /** Apply the ACIC_TRACE_LEN override to a parameter block. */
    static WorkloadParams withEnvOverrides(WorkloadParams params);

  private:
    SimConfig config_;
    SyntheticWorkload trace_;
    DemandOracle oracle_;
};

} // namespace acic

#endif // ACIC_SIM_RUNNER_HH
