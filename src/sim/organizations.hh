/**
 * @file
 * Concrete L1i organizations behind the IcacheOrg interface:
 *
 *  - PlainIcache: one set-associative cache with a pluggable
 *    replacement policy, optional direct bypass policy (DSB/OBM), and
 *    optional victim cache (VC3K/VC8K). Covers the baseline, the
 *    replacement-policy comparisons, bypassing comparisons, victim
 *    caches, and the larger-L1i configurations.
 *  - VvcOrg: the virtual-victim-cache organization.
 *  - (FilteredIcache, in src/core, covers the i-Filter/ACIC family.)
 */

#ifndef ACIC_SIM_ORGANIZATIONS_HH
#define ACIC_SIM_ORGANIZATIONS_HH

#include <memory>
#include <string>

#include "bypass/bypass.hh"
#include "cache/icache_org.hh"
#include "cache/opt.hh"
#include "cache/set_assoc.hh"
#include "cache/victim_cache.hh"
#include "cache/vvc.hh"

namespace acic {

/** See file comment. */
class PlainIcache : public IcacheOrg
{
  public:
    PlainIcache(std::uint32_t num_sets, std::uint32_t num_ways,
                std::unique_ptr<ReplacementPolicy> policy,
                std::string scheme_name,
                std::unique_ptr<BypassPolicy> bypass = nullptr,
                std::unique_ptr<VictimCache> victim_cache = nullptr);

    bool access(const CacheAccess &access) override;
    void fill(const CacheAccess &access) override;
    bool contains(BlockAddr blk) const override;
    std::string name() const override { return schemeName_; }
    std::uint64_t storageOverheadBits() const override;
    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

    const SetAssocCache &cache() const { return l1i_; }

  private:
    SetAssocCache l1i_;
    std::unique_ptr<BypassPolicy> bypass_;
    std::unique_ptr<VictimCache> vc_;
    std::string schemeName_;
    std::uint64_t baselineBits_;

    // Interned at construction; access() and fill() are handle-only.
    StatHandle stHit_;
    StatHandle stVcHit_;
    StatHandle stBypassed_;
    StatHandle stEvictionsJudged_;
    StatHandle stEvictionsMatchOpt_;
};

/** Wrapper exposing VvcCache through IcacheOrg. */
class VvcOrg : public IcacheOrg
{
  public:
    VvcOrg(std::uint32_t num_sets, std::uint32_t num_ways);

    bool access(const CacheAccess &access) override;
    void fill(const CacheAccess &access) override;
    bool contains(BlockAddr blk) const override;
    std::string name() const override { return "VVC"; }
    std::uint64_t storageOverheadBits() const override;
    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

    const VvcCache &vvc() const { return vvc_; }

  private:
    VvcCache vvc_;
};

} // namespace acic

#endif // ACIC_SIM_ORGANIZATIONS_HH
