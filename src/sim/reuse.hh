/**
 * @file
 * Reuse-distance (LRU stack distance) profiling over the demand block
 * sequence, feeding Fig. 1a (distribution), Fig. 1b (Markov chain of
 * successive distances), and Fig. 3b (admission-time gap analysis).
 * Uses Olken's algorithm: a Fenwick tree over access times marking
 * each block's most recent access gives the distinct-block count
 * between consecutive accesses in O(log n).
 */

#ifndef ACIC_SIM_REUSE_HH
#define ACIC_SIM_REUSE_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/fenwick.hh"
#include "common/histogram.hh"
#include "common/types.hh"

namespace acic {

/** See file comment. */
class ReuseProfiler
{
  public:
    /** Paper bucket edges: 0, (0,16], (16,512], (512,1024],
     *  (1024,10000], overflow. */
    static constexpr std::size_t kBuckets = 6;

    /** @param capacity maximum number of accesses to profile. */
    explicit ReuseProfiler(std::size_t capacity);

    /** Feed the next demand block access. */
    void feed(BlockAddr blk);

    /** Distribution over the paper's buckets. */
    const Histogram &distribution() const { return hist_; }

    /**
     * Markov transition matrix between distance buckets of
     * *successive reuse distances of the same block* (Fig. 1b).
     * Row = previous bucket, column = next bucket, values = counts.
     */
    const std::array<std::array<std::uint64_t, kBuckets>, kBuckets> &
    transitions() const
    {
        return transitions_;
    }

    /** Transition probability row-normalized; 0 for empty rows. */
    double transitionProb(std::size_t from, std::size_t to) const;

    /** Raw stack distance of the most recent fed access (or -1). */
    std::int64_t lastDistance() const { return lastDistance_; }

    /** Accesses fed so far. */
    std::uint64_t accesses() const { return time_; }

  private:
    FenwickTree marks_;
    std::unordered_map<BlockAddr, std::uint64_t> lastAccess_;
    std::unordered_map<BlockAddr, std::uint8_t> lastBucket_;
    Histogram hist_;
    std::array<std::array<std::uint64_t, kBuckets>, kBuckets>
        transitions_{};
    std::uint64_t time_ = 0;
    std::size_t capacity_;
    std::int64_t lastDistance_ = -1;
};

} // namespace acic

#endif // ACIC_SIM_REUSE_HH
