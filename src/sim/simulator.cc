#include "sim/simulator.hh"

#include "common/logging.hh"
#include "sim/engine.hh"

namespace acic {

Simulator::Simulator(SimConfig config) : config_(config) {}

SimResult
Simulator::run(TraceSource &trace, IcacheOrg &org,
               const DemandOracle *oracle)
{
    const std::uint64_t total_insts = trace.length();
    const std::uint64_t warmup_insts = static_cast<std::uint64_t>(
        static_cast<double>(total_insts) * config_.warmupFraction);

    SimEngine engine(config_, trace, org, oracle);
    engine.warmUp(warmup_insts);
    engine.measure(total_insts - warmup_insts);
    return engine.finish();
}

SimResult
mergeSimResults(const std::vector<SimResult> &parts)
{
    ACIC_ASSERT(!parts.empty(), "mergeSimResults: no partial results");
    SimResult merged;
    merged.workload = parts.front().workload;
    merged.scheme = parts.front().scheme;
    for (const SimResult &part : parts) {
        merged.instructions += part.instructions;
        merged.cycles += part.cycles;
        merged.demandAccesses += part.demandAccesses;
        merged.l1iMisses += part.l1iMisses;
        merged.branchMispredicts += part.branchMispredicts;
        merged.btbMisses += part.btbMisses;
        merged.prefetchesIssued += part.prefetchesIssued;
        merged.latePrefetches += part.latePrefetches;
        merged.l2Accesses += part.l2Accesses;
        merged.l3Accesses += part.l3Accesses;
        merged.dramAccesses += part.dramAccesses;
        for (const auto &[name, value] : part.orgStats.raw())
            merged.orgStats.bump(name, value);
    }
    return merged;
}

} // namespace acic
