#include "sim/simulator.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "sim/engine.hh"

namespace acic {

Simulator::Simulator(SimConfig config) : config_(config) {}

SimResult
Simulator::run(TraceSource &trace, IcacheOrg &org,
               const DemandOracle *oracle)
{
    const std::uint64_t total_insts = trace.length();
    const std::uint64_t warmup_insts = static_cast<std::uint64_t>(
        static_cast<double>(total_insts) * config_.warmupFraction);

    SimEngine engine(config_, trace, org, oracle);
    engine.warmUp(warmup_insts);
    engine.measure(total_insts - warmup_insts);
    return engine.finish();
}

void
SimResult::save(Serializer &s) const
{
    s.str(workload);
    s.str(scheme);
    s.u64(instructions);
    s.u64(cycles);
    s.u64(demandAccesses);
    s.u64(l1iMisses);
    s.u64(branchMispredicts);
    s.u64(btbMisses);
    s.u64(prefetchesIssued);
    s.u64(latePrefetches);
    s.u64(l2Accesses);
    s.u64(l3Accesses);
    s.u64(dramAccesses);
    orgStats.save(s);
}

void
SimResult::load(Deserializer &d)
{
    workload = d.str();
    scheme = d.str();
    instructions = d.u64();
    cycles = d.u64();
    demandAccesses = d.u64();
    l1iMisses = d.u64();
    branchMispredicts = d.u64();
    btbMisses = d.u64();
    prefetchesIssued = d.u64();
    latePrefetches = d.u64();
    l2Accesses = d.u64();
    l3Accesses = d.u64();
    dramAccesses = d.u64();
    orgStats.load(d);
}

SimResult
mergeSimResults(const std::vector<SimResult> &parts)
{
    ACIC_ASSERT(!parts.empty(), "mergeSimResults: no partial results");
    SimResult merged;
    merged.workload = parts.front().workload;
    merged.scheme = parts.front().scheme;
    for (const SimResult &part : parts) {
        merged.instructions += part.instructions;
        merged.cycles += part.cycles;
        merged.demandAccesses += part.demandAccesses;
        merged.l1iMisses += part.l1iMisses;
        merged.branchMispredicts += part.branchMispredicts;
        merged.btbMisses += part.btbMisses;
        merged.prefetchesIssued += part.prefetchesIssued;
        merged.latePrefetches += part.latePrefetches;
        merged.l2Accesses += part.l2Accesses;
        merged.l3Accesses += part.l3Accesses;
        merged.dramAccesses += part.dramAccesses;
        for (const auto &[name, value] : part.orgStats.raw())
            merged.orgStats.bump(name, value);
    }
    return merged;
}

} // namespace acic
