#include "sim/simulator.hh"

#include <deque>
#include <vector>

#include "cache/hierarchy.hh"
#include "cache/mshr.hh"
#include "common/logging.hh"
#include "frontend/btb.hh"
#include "frontend/bundle.hh"
#include "frontend/entangling.hh"
#include "frontend/tage.hh"

namespace acic {

namespace {

/** One FTQ entry: a fetch bundle plus BP bookkeeping. */
struct FtqEntry
{
    Bundle bundle;
    std::uint64_t seq = 0;      ///< demand-sequence index
    Cycle redirectPenalty = 0;  ///< charged when the bundle is fetched
    bool prefetchConsidered = false;
};

} // namespace

Simulator::Simulator(SimConfig config) : config_(config) {}

SimResult
Simulator::run(TraceSource &trace, IcacheOrg &org,
               const DemandOracle *oracle)
{
    trace.reset();
    BundleWalker walker(trace, config_.fetchWidth);
    Tage tage;
    Btb btb(config_.btbEntries, config_.btbWays);
    ReturnAddressStack ras(config_.rasDepth);
    MshrFile mshr(config_.l1iMshrs);
    MemoryHierarchy hierarchy(config_.hierarchy);
    EntanglingPrefetcher entangler;

    std::deque<FtqEntry> ftq;
    std::vector<MshrFile::Fill> fills;
    fills.reserve(config_.l1iMshrs);

    const std::uint64_t total_insts = trace.length();
    const std::uint64_t warmup_insts = static_cast<std::uint64_t>(
        static_cast<double>(total_insts) * config_.warmupFraction);

    Cycle cycle = 0;
    Cycle bp_resume_at = 0;
    bool bp_waiting_redirect = false; // paused until bundle fetched
    bool walker_done = false;

    std::uint64_t decode_queue = 0; // instructions buffered
    std::uint64_t retired = 0;
    std::uint64_t seq_counter = 0;
    std::uint64_t last_demand_seq = 0;

    // Demand-miss wait state: the FTQ head stalls on this block.
    // `head_ready` is latched by the fill *event* (not by re-probing
    // the organization): a bypassing organization may drop the fill,
    // and a later fill may even re-evict the block, but the waiting
    // fetch group was satisfied by the returning miss either way.
    bool waiting = false;
    BlockAddr waiting_blk = 0;
    bool head_ready = false;
    bool pending_alloc = false; // MSHRs were full; retry allocate
    Cycle pending_latency = 0;

    StatSet raw; // cumulative counters; warmup snapshot subtracted
    // Handle registration happens before the snapshot copy below, so
    // `raw` and `snap` share one index layout for the whole run.
    const StatHandle st_prefetches = raw.handle("sim.prefetches");
    const StatHandle st_demand_accesses =
        raw.handle("sim.demand_accesses");
    const StatHandle st_l1i_misses = raw.handle("sim.l1i_misses");
    const StatHandle st_late_prefetches =
        raw.handle("sim.late_prefetches");
    const StatHandle st_mispredicts = raw.handle("sim.mispredicts");
    const StatHandle st_btb_misses = raw.handle("sim.btb_misses");
    const StatHandle st_ras_mispredicts =
        raw.handle("sim.ras_mispredicts");
    bool warmup_snapped = false;
    StatSet snap;
    Cycle warmup_cycle = 0;

    const auto next_use_of = [&](std::uint64_t seq) -> std::uint64_t {
        return oracle == nullptr ? kNeverAgain
                                 : oracle->nextUseAt(seq);
    };
    const auto next_use_after =
        [&](BlockAddr blk, std::uint64_t seq) -> std::uint64_t {
        return oracle == nullptr ? kNeverAgain
                                 : oracle->nextUseAfter(blk, seq);
    };

    const auto issue_prefetch = [&](BlockAddr blk, Addr pc,
                                    std::uint64_t seq) -> bool {
        if (org.contains(blk) || mshr.pending(blk))
            return true; // nothing to do; counts as considered
        if (mshr.full())
            return false;
        const Cycle latency = hierarchy.serviceMiss(blk, pc);
        mshr.allocate(blk, cycle + latency, true, pc, seq);
        raw.bump(st_prefetches);
        return true;
    };

    // Guard against pathological stalls (indicates a simulator bug).
    const Cycle cycle_limit =
        total_insts * 64 + 1'000'000;

    while (retired < total_insts) {
        ACIC_ASSERT(cycle < cycle_limit,
                    "simulator wedged: cycle limit exceeded");

        // ---- 1. Structure pipelines -------------------------------
        org.tick(cycle);

        // ---- 2. Fill completions ----------------------------------
        fills.clear();
        mshr.popReady(cycle, fills);
        for (const auto &fill : fills) {
            CacheAccess access;
            access.blk = fill.blk;
            access.pc = fill.pc;
            access.seq = fill.seq;
            access.cycle = cycle;
            access.isPrefetch = fill.wasPrefetch &&
                                !fill.demandWaiting;
            access.nextUse =
                fill.demandWaiting
                    ? next_use_of(fill.seq)
                    : next_use_after(fill.blk, last_demand_seq);
            org.fill(access);
            if (waiting && fill.blk == waiting_blk)
                head_ready = true;
        }

        // ---- 3. Retire --------------------------------------------
        {
            const std::uint64_t n =
                decode_queue < config_.retireWidth ? decode_queue
                                                   : config_.retireWidth;
            decode_queue -= n;
            retired += n;
            if (!warmup_snapped && retired >= warmup_insts) {
                warmup_snapped = true;
                snap = raw;
                warmup_cycle = cycle;
            }
        }

        // ---- 4. Fetch ---------------------------------------------
        if (!ftq.empty() && !waiting) {
            FtqEntry &head = ftq.front();
            if (decode_queue + head.bundle.count <=
                config_.decodeQueueEntries) {
                if (pending_alloc) {
                    // Retry a blocked MSHR allocation.
                    const auto outcome = mshr.allocate(
                        head.bundle.blk, cycle + pending_latency,
                        false, head.bundle.pc, head.seq);
                    if (outcome != MshrOutcome::Full) {
                        pending_alloc = false;
                        waiting = true;
                        waiting_blk = head.bundle.blk;
                    }
                } else {
                    CacheAccess access;
                    access.pc = head.bundle.pc;
                    access.blk = head.bundle.blk;
                    access.seq = head.seq;
                    access.nextUse = next_use_of(head.seq);
                    access.cycle = cycle;
                    last_demand_seq = head.seq;
                    raw.bump(st_demand_accesses);
                    if (config_.prefetcher ==
                        PrefetcherKind::Entangling) {
                        entangler.onDemandAccess(access.blk, cycle);
                    }
                    const bool hit = org.access(access);
                    if (hit) {
                        decode_queue += head.bundle.count;
                        if (head.redirectPenalty > 0) {
                            bp_resume_at =
                                cycle + head.redirectPenalty;
                            bp_waiting_redirect = false;
                        }
                        ftq.pop_front();
                    } else {
                        raw.bump(st_l1i_misses);
                        const Cycle latency = hierarchy.serviceMiss(
                            access.blk, access.pc);
                        if (config_.prefetcher ==
                            PrefetcherKind::Entangling) {
                            entangler.onDemandMiss(access.blk, cycle,
                                                   latency);
                        }
                        const auto outcome = mshr.allocate(
                            access.blk, cycle + latency, false,
                            access.pc, access.seq);
                        if (outcome == MshrOutcome::Full) {
                            pending_alloc = true;
                            pending_latency = latency;
                        } else {
                            if (outcome == MshrOutcome::Merged)
                                raw.bump(st_late_prefetches);
                            waiting = true;
                            waiting_blk = access.blk;
                        }
                    }
                }
            }
        } else if (!ftq.empty() && waiting && head_ready) {
            FtqEntry &head = ftq.front();
            if (decode_queue + head.bundle.count <=
                config_.decodeQueueEntries) {
                decode_queue += head.bundle.count;
                if (head.redirectPenalty > 0) {
                    bp_resume_at = cycle + head.redirectPenalty;
                    bp_waiting_redirect = false;
                }
                ftq.pop_front();
                waiting = false;
                head_ready = false;
            }
        }

        // ---- 5. Branch-prediction unit (bundle supply) -------------
        for (unsigned bp_slot = 0;
             bp_slot < config_.bpBundlesPerCycle && !walker_done &&
             !bp_waiting_redirect && cycle >= bp_resume_at &&
             ftq.size() < config_.ftqEntries;
             ++bp_slot) {
            FtqEntry entry;
            if (!walker.next(entry.bundle)) {
                walker_done = true;
            } else {
                entry.seq = seq_counter++;
                Cycle penalty = 0;
                for (unsigned i = 0; i < entry.bundle.count; ++i) {
                    const TraceInst &inst = entry.bundle.insts[i];
                    switch (inst.kind) {
                      case BranchKind::None:
                        break;
                      case BranchKind::Cond: {
                        const bool pred = tage.predict(inst.pc);
                        tage.update(inst.pc, inst.taken);
                        if (pred != inst.taken) {
                            raw.bump(st_mispredicts);
                            penalty = config_.mispredictPenalty;
                        } else if (inst.taken) {
                            const auto target = btb.lookup(inst.pc);
                            if (!target || *target != inst.nextPc) {
                                raw.bump(st_btb_misses);
                                if (penalty < config_.btbMissPenalty)
                                    penalty = config_.btbMissPenalty;
                            }
                        }
                        if (inst.taken)
                            btb.update(inst.pc, inst.nextPc);
                        break;
                      }
                      case BranchKind::Direct:
                      case BranchKind::Call: {
                        const auto target = btb.lookup(inst.pc);
                        if (!target || *target != inst.nextPc) {
                            raw.bump(st_btb_misses);
                            if (penalty < config_.btbMissPenalty)
                                penalty = config_.btbMissPenalty;
                        }
                        btb.update(inst.pc, inst.nextPc);
                        if (inst.kind == BranchKind::Call) {
                            ras.push(inst.pc +
                                     TraceInst::kInstBytes);
                        }
                        break;
                      }
                      case BranchKind::Return: {
                        const Addr predicted = ras.pop();
                        if (predicted != inst.nextPc) {
                            raw.bump(st_ras_mispredicts);
                            penalty = config_.mispredictPenalty;
                        }
                        break;
                      }
                    }
                }
                entry.redirectPenalty = penalty;
                if (penalty > 0)
                    bp_waiting_redirect = true;
                ftq.push_back(std::move(entry));
            }
        }

        // ---- 6. Prefetch issue ------------------------------------
        if (config_.prefetcher == PrefetcherKind::Fdp) {
            unsigned issued = 0;
            for (std::size_t i = 1;
                 i < ftq.size() && issued < config_.prefetchDegree;
                 ++i) {
                FtqEntry &entry = ftq[i];
                if (entry.prefetchConsidered)
                    continue;
                if (issue_prefetch(entry.bundle.blk, entry.bundle.pc,
                                   entry.seq)) {
                    entry.prefetchConsidered = true;
                    ++issued;
                } else {
                    break; // MSHRs full; retry next cycle
                }
            }
        } else if (config_.prefetcher == PrefetcherKind::Entangling) {
            unsigned issued = 0;
            BlockAddr candidate;
            while (issued < config_.prefetchDegree &&
                   entangler.popCandidate(candidate)) {
                issue_prefetch(candidate, 0, last_demand_seq);
                ++issued;
            }
        }

        ++cycle;
    }

    // ---- Result assembly ------------------------------------------
    SimResult result;
    result.workload = trace.name();
    result.scheme = org.name();
    result.instructions = total_insts - warmup_insts;
    result.cycles = cycle - warmup_cycle;
    result.demandAccesses =
        raw.get("sim.demand_accesses") -
        snap.get("sim.demand_accesses");
    result.l1iMisses =
        raw.get("sim.l1i_misses") - snap.get("sim.l1i_misses");
    result.branchMispredicts =
        raw.get("sim.mispredicts") - snap.get("sim.mispredicts");
    result.btbMisses =
        raw.get("sim.btb_misses") - snap.get("sim.btb_misses");
    result.prefetchesIssued =
        raw.get("sim.prefetches") - snap.get("sim.prefetches");
    result.latePrefetches = raw.get("sim.late_prefetches") -
                            snap.get("sim.late_prefetches");

    const auto &hs = hierarchy.stats();
    result.l2Accesses =
        hs.get("hier.l2_hit") + hs.get("hier.l2_miss");
    result.l3Accesses =
        hs.get("hier.l3_hit") + hs.get("hier.l3_miss");
    result.dramAccesses = hs.get("hier.dram_access");
    result.orgStats = org.stats();
    return result;
}

} // namespace acic
