#include "sim/organizations.hh"

#include "common/logging.hh"

namespace acic {

PlainIcache::PlainIcache(std::uint32_t num_sets,
                         std::uint32_t num_ways,
                         std::unique_ptr<ReplacementPolicy> policy,
                         std::string scheme_name,
                         std::unique_ptr<BypassPolicy> bypass,
                         std::unique_ptr<VictimCache> victim_cache)
    : l1i_(num_sets, num_ways, std::move(policy)),
      bypass_(std::move(bypass)), vc_(std::move(victim_cache)),
      schemeName_(std::move(scheme_name))
{
    // The baseline L1i is 32 KB / 8-way; a larger geometry itself
    // counts as overhead (Table IV's 36/40 KB rows).
    const std::uint64_t baseline_blocks = 64 * 8;
    const std::uint64_t blocks =
        std::uint64_t{num_sets} * num_ways;
    baselineBits_ =
        blocks > baseline_blocks
            ? (blocks - baseline_blocks) * (kBlockBytes * 8 + 63)
            : 0;

    stHit_ = stats_.handle("plain.hit");
    stVcHit_ = stats_.handle("plain.vc_hit");
    stBypassed_ = stats_.handle("plain.bypassed");
    stEvictionsJudged_ = stats_.handle("plain.evictions_judged");
    stEvictionsMatchOpt_ = stats_.handle("plain.evictions_match_opt");
}

bool
PlainIcache::access(const CacheAccess &access)
{
    if (bypass_ != nullptr)
        bypass_->onDemandAccess(access, l1i_);

    if (l1i_.lookup(access)) {
        stats_.bump(stHit_);
        return true;
    }
    if (vc_ != nullptr && vc_->extract(access.blk)) {
        // Victim-cache hit: swap the block back into the L1i; the
        // displaced L1i victim takes its place in the VC.
        stats_.bump(stVcHit_);
        const auto result = l1i_.fill(access);
        if (result.evicted)
            vc_->insert(result.victim.blk);
        return true;
    }
    return false;
}

void
PlainIcache::fill(const CacheAccess &access)
{
    if (l1i_.probe(access.blk))
        return;

    // Replacement-accuracy instrumentation (Sec. IV-D): compare the
    // policy's victim with OPT's choice. Only meaningful when the
    // run carries oracle annotations and the set is full.
    const std::uint32_t set = l1i_.setOf(access.blk);
    const bool set_full = l1i_.setFull(set);

    if (bypass_ != nullptr && set_full) {
        CacheAccess incoming = access;
        if (bypass_->shouldBypass(incoming, l1i_)) {
            stats_.bump(stBypassed_);
            return;
        }
    }

    if (set_full && access.nextUse != kNeverAgain) {
        CacheAccess probe = access;
        const std::uint32_t chosen = l1i_.victimWay(probe);
        const std::uint32_t opt_choice = OptPolicy::optVictim(
            &l1i_.lineAt(set, 0), l1i_.numWays());
        stats_.bump(stEvictionsJudged_);
        if (chosen == opt_choice)
            stats_.bump(stEvictionsMatchOpt_);
    }

    const auto result = l1i_.fill(access);
    if (result.evicted && vc_ != nullptr)
        vc_->insert(result.victim.blk);
}

bool
PlainIcache::contains(BlockAddr blk) const
{
    if (l1i_.probe(blk))
        return true;
    return vc_ != nullptr && vc_->probe(blk);
}

std::uint64_t
PlainIcache::storageOverheadBits() const
{
    std::uint64_t bits = baselineBits_;
    bits += l1i_.policy().storageOverheadBits();
    if (bypass_ != nullptr)
        bits += bypass_->storageBits();
    if (vc_ != nullptr)
        bits += vc_->storageBits();
    return bits;
}

void
PlainIcache::save(Serializer &s) const
{
    IcacheOrg::save(s);
    l1i_.save(s);
    s.b(bypass_ != nullptr);
    if (bypass_ != nullptr)
        bypass_->save(s);
    s.b(vc_ != nullptr);
    if (vc_ != nullptr)
        vc_->save(s);
}

void
PlainIcache::load(Deserializer &d)
{
    IcacheOrg::load(d);
    l1i_.load(d);
    if (d.b() != (bypass_ != nullptr))
        throw SerializeError("checkpoint bypass-policy presence "
                             "differs from the running scheme");
    if (bypass_ != nullptr)
        bypass_->load(d);
    if (d.b() != (vc_ != nullptr))
        throw SerializeError("checkpoint victim-cache presence "
                             "differs from the running scheme");
    if (vc_ != nullptr)
        vc_->load(d);
}

VvcOrg::VvcOrg(std::uint32_t num_sets, std::uint32_t num_ways)
    : vvc_(num_sets, num_ways)
{
}

bool
VvcOrg::access(const CacheAccess &access)
{
    return vvc_.access(access);
}

void
VvcOrg::fill(const CacheAccess &access)
{
    vvc_.fill(access);
}

bool
VvcOrg::contains(BlockAddr blk) const
{
    return vvc_.contains(blk);
}

std::uint64_t
VvcOrg::storageOverheadBits() const
{
    return vvc_.storageOverheadBits();
}

void
VvcOrg::save(Serializer &s) const
{
    IcacheOrg::save(s);
    vvc_.save(s);
}

void
VvcOrg::load(Deserializer &d)
{
    IcacheOrg::load(d);
    vvc_.load(d);
}

} // namespace acic
