/**
 * @file
 * Trace-driven timing simulator of the decoupled front end (Sec.
 * IV-A infrastructure substitute). Per cycle: MSHR fills complete,
 * the backend retires up to 6 instructions from the decode queue, the
 * fetch unit services the FTQ head against the L1i organization, the
 * branch-prediction unit (TAGE + BTB + RAS) enqueues the next fetch
 * bundle, and the prefetcher (FDP along the FTQ, or the entangling
 * prefetcher) issues block prefetches. Correct-path only: a predicted-
 * wrong branch stalls bundle supply for the redirect penalty, the
 * standard ChampSim-style approximation (DESIGN.md, substitution 2).
 */

#ifndef ACIC_SIM_SIMULATOR_HH
#define ACIC_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>

#include "cache/icache_org.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/oracle.hh"
#include "sim/sim_config.hh"
#include "trace/trace.hh"

namespace acic {

/** Post-warmup metrics of one run. */
struct SimResult
{
    std::string workload;
    std::string scheme;

    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t latePrefetches = 0;

    /** L2/L3/DRAM counters (energy model inputs). */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l3Accesses = 0;
    std::uint64_t dramAccesses = 0;

    /** Organization-specific counters copied out of the run. */
    StatSet orgStats;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /** L1i misses per kilo-instruction (the paper's MPKI metric). */
    double
    mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1iMisses) /
                         static_cast<double>(instructions);
    }
};

/** See file comment. */
class Simulator
{
  public:
    explicit Simulator(SimConfig config = {});

    /**
     * Run @p trace against @p org.
     * @param oracle optional next-use annotations; required for OPT,
     *        OPT-bypass, and accuracy instrumentation.
     */
    SimResult run(TraceSource &trace, IcacheOrg &org,
                  const DemandOracle *oracle = nullptr);

    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
};

} // namespace acic

#endif // ACIC_SIM_SIMULATOR_HH
