/**
 * @file
 * Trace-driven timing simulator of the decoupled front end (Sec.
 * IV-A infrastructure substitute). Per cycle: MSHR fills complete,
 * the backend retires up to 6 instructions from the decode queue, the
 * fetch unit services the FTQ head against the L1i organization, the
 * branch-prediction unit (TAGE + BTB + RAS) enqueues the next fetch
 * bundle, and the prefetcher (FDP along the FTQ, or the entangling
 * prefetcher) issues block prefetches. Correct-path only: a predicted-
 * wrong branch stalls bundle supply for the redirect penalty, the
 * standard ChampSim-style approximation (DESIGN.md, substitution 2).
 *
 * The per-cycle stepping core lives in sim/engine.hh (SimEngine /
 * MachineState, the resumable phase API); this header keeps the
 * one-shot run() wrapper, the SimResult record, and the
 * interval-merge helper.
 */

#ifndef ACIC_SIM_SIMULATOR_HH
#define ACIC_SIM_SIMULATOR_HH

#include <cstdint>
#include <string>
#include <vector>

#include "cache/icache_org.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "sim/oracle.hh"
#include "sim/sim_config.hh"
#include "trace/trace.hh"

namespace acic {

class Serializer;
class Deserializer;

/** Post-warmup metrics of one run. */
struct SimResult
{
    std::string workload;
    std::string scheme;

    std::uint64_t instructions = 0;
    Cycle cycles = 0;
    std::uint64_t demandAccesses = 0;
    std::uint64_t l1iMisses = 0;
    std::uint64_t branchMispredicts = 0;
    std::uint64_t btbMisses = 0;
    std::uint64_t prefetchesIssued = 0;
    std::uint64_t latePrefetches = 0;

    /** L2/L3/DRAM counters (energy model inputs). */
    std::uint64_t l2Accesses = 0;
    std::uint64_t l3Accesses = 0;
    std::uint64_t dramAccesses = 0;

    /** Organization-specific counters copied out of the run. */
    StatSet orgStats;

    double
    ipc() const
    {
        return cycles == 0 ? 0.0
                           : static_cast<double>(instructions) /
                                 static_cast<double>(cycles);
    }

    /** L1i misses per kilo-instruction (the paper's MPKI metric). */
    double
    mpki() const
    {
        return instructions == 0
                   ? 0.0
                   : 1000.0 * static_cast<double>(l1iMisses) /
                         static_cast<double>(instructions);
    }

    /** Checkpoint the result record (completed-cell files). */
    void save(Serializer &s) const;
    void load(Deserializer &d);
};

/**
 * See file comment. The stepping core lives in SimEngine
 * (sim/engine.hh); this is the one-shot convenience wrapper:
 * warmUp(total * warmupFraction) then measure(the rest).
 */
class Simulator
{
  public:
    explicit Simulator(SimConfig config = {});

    /**
     * Run @p trace against @p org.
     * @param oracle optional next-use annotations; required for OPT,
     *        OPT-bypass, and accuracy instrumentation.
     */
    SimResult run(TraceSource &trace, IcacheOrg &org,
                  const DemandOracle *oracle = nullptr);

    const SimConfig &config() const { return config_; }

  private:
    SimConfig config_;
};

/**
 * Weighted merge of per-interval partial results into one whole-run
 * SimResult: every counter (instructions, cycles, misses, the org
 * stats) sums, and the derived rates recompute from the sums — so
 * merged ipc() is the instruction-weighted harmonic combination and
 * merged mpki() is total misses over total instructions. Workload and
 * scheme labels are taken from the first part.
 */
SimResult mergeSimResults(const std::vector<SimResult> &parts);

} // namespace acic

#endif // ACIC_SIM_SIMULATOR_HH
