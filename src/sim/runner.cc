#include "sim/runner.hh"

#include <cerrno>
#include <cstdlib>
#include <fstream>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "sim/engine.hh"

namespace acic {

std::vector<SimInterval>
planIntervals(std::uint64_t measureBegin, std::uint64_t measureEnd,
              unsigned intervals, std::uint64_t warmup,
              std::uint64_t warmHorizon)
{
    if (measureEnd < measureBegin)
        measureEnd = measureBegin;
    const std::uint64_t span = measureEnd - measureBegin;
    std::uint64_t k = intervals == 0 ? 1 : intervals;
    if (span > 0 && k > span)
        k = span;
    if (span == 0)
        k = 1;
    std::vector<SimInterval> plan(static_cast<std::size_t>(k));
    for (std::uint64_t i = 0; i < k; ++i) {
        SimInterval &iv = plan[static_cast<std::size_t>(i)];
        // Equal split with the remainder on the leading shards:
        // boundary j = floor(span * j / k) is monotone and exact.
        iv.begin = measureBegin + span / k * i + span % k * i / k;
        iv.end = measureBegin + span / k * (i + 1) +
                 span % k * (i + 1) / k;
        iv.warmStart = iv.begin > warmup ? iv.begin - warmup : 0;
        iv.funcStart = warmHorizon > 0 &&
                               iv.warmStart > warmHorizon
                           ? iv.warmStart - warmHorizon
                           : 0;
    }
    return plan;
}

WorkloadParams
WorkloadContext::withEnvOverrides(WorkloadParams params)
{
    const char *env = std::getenv("ACIC_TRACE_LEN");
    if (!env)
        return params;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE) {
        warn("ACIC_TRACE_LEN is not a number; ignoring override");
        return params;
    }
    if (v <= 0) {
        warn("ACIC_TRACE_LEN must be a positive instruction count; "
             "ignoring override");
        return params;
    }
    params.instructions = static_cast<std::uint64_t>(v);
    return params;
}

WorkloadContext::WorkloadContext(WorkloadParams params,
                                 SimConfig config)
    : config_(config), trace_(withEnvOverrides(std::move(params))),
      oracle_(DemandOracle::build(trace_, config.fetchWidth))
{
}

SimResult
WorkloadContext::run(const SchemeSpec &scheme)
{
    auto org = makeScheme(scheme, config_);
    return run(*org);
}

SimResult
WorkloadContext::run(const std::string &spec)
{
    return run(parseScheme(spec));
}

SimResult
WorkloadContext::run(IcacheOrg &org)
{
    Simulator simulator(config_);
    return simulator.run(trace_, org, &oracle_);
}

namespace {

/** Materialize a freshly generated synthetic trace. */
TraceImage
generateImage(const WorkloadParams &params)
{
    SyntheticWorkload trace(params);
    return materializeTrace(trace);
}

/** Build the shared oracle from an image (one pass, then immutable). */
DemandOracle
buildOracle(const TraceImage &image, const std::string &name,
            unsigned fetch_width)
{
    MemoryTraceSource cursor(image, name);
    return DemandOracle::build(cursor, fetch_width);
}

} // namespace

SharedWorkload::SharedWorkload(WorkloadParams params, SimConfig config)
    : config_(config), name_(params.name)
{
    TelemetryScope span("runner.materialize");
    span.attr("workload", name_);
    image_ = generateImage(params);
    if (span.live())
        span.attr("instructions", image_->size());
}

SharedWorkload::SharedWorkload(TraceSource &source, SimConfig config)
    : config_(config), name_(source.name())
{
    TelemetryScope span("runner.materialize");
    span.attr("workload", name_);
    image_ = materializeTrace(source);
    if (span.live())
        span.attr("instructions", image_->size());
}

const DemandOracle &
SharedWorkload::oracle() const
{
    std::call_once(oracleOnce_, [this] {
        TelemetryScope span("runner.oracle");
        span.attr("workload", name_);
        oracle_ = buildOracle(image_, name_, config_.fetchWidth);
    });
    return oracle_;
}

SimResult
SharedWorkload::run(const SchemeSpec &scheme) const
{
    auto org = makeScheme(scheme, config_);
    return run(*org);
}

SimResult
SharedWorkload::run(const std::string &spec) const
{
    return run(parseScheme(spec));
}

SimResult
SharedWorkload::run(IcacheOrg &org) const
{
    MemoryTraceSource cursor = source();
    Simulator simulator(config_);
    return simulator.run(cursor, org,
                         oracleEnabled_ ? &oracle() : nullptr);
}

SimResult
SharedWorkload::runCheckpointed(const SchemeSpec &scheme,
                                const std::string &inflightPath,
                                std::uint64_t checkpointEvery) const
{
    auto org = makeScheme(scheme, config_);
    MemoryTraceSource cursor = source();
    SimEngine engine(config_, cursor, *org,
                     oracleEnabled_ ? &oracle() : nullptr);

    const std::uint64_t total = instructions();
    const std::uint64_t warmup = static_cast<std::uint64_t>(
        static_cast<double>(total) * config_.warmupFraction);

    const bool resuming = [&] {
        std::ifstream probe(inflightPath, std::ios::binary);
        return probe.good();
    }();
    if (resuming)
        engine.loadCheckpoint(inflightPath);
    else
        engine.warmUp(warmup);

    // Chunked measure planned on nominal targets (plannedTarget()),
    // not retired(): the retire stage overshoots targets by bundle
    // granularity, and only target arithmetic makes
    // warmUp + measure(a) + measure(b) land on the same final target
    // as the monolithic warmUp + measure(a + b).
    const std::uint64_t every =
        checkpointEvery == 0 ? total : checkpointEvery;
    while (engine.plannedTarget() < total) {
        const std::uint64_t left = total - engine.plannedTarget();
        engine.measure(left < every ? left : every);
        if (checkpointEvery != 0 && engine.plannedTarget() < total)
            engine.saveCheckpoint(inflightPath);
    }
    return engine.finish();
}

DemandOracle
SharedWorkload::buildIntervalOracle(const SimInterval &interval) const
{
    TelemetryScope span("runner.oracle");
    if (span.live()) {
        span.attr("workload", name_);
        span.attr("region_begin", interval.warmStart);
        span.attr("region_end", interval.end);
    }
    // Region-local oracle: next-use indices must align with the
    // demand sequence the engine walks, which starts at warmStart.
    // OPT-style schemes therefore see Belady decisions local to the
    // interval — the standard sampled-simulation approximation.
    MemoryTraceSource cursor(image_, name_, interval.warmStart,
                             interval.end);
    return DemandOracle::build(cursor, config_.fetchWidth);
}

SimResult
SharedWorkload::runInterval(const SchemeSpec &scheme,
                            const SimInterval &interval,
                            const DemandOracle *oracle) const
{
    auto org = makeScheme(scheme, config_);
    return runInterval(*org, interval, oracle);
}

SimResult
SharedWorkload::runInterval(IcacheOrg &org,
                            const SimInterval &interval,
                            const DemandOracle *oracle) const
{
    ACIC_ASSERT(interval.funcStart <= interval.warmStart &&
                    interval.warmStart <= interval.begin &&
                    interval.begin <= interval.end,
                "malformed simulation interval");
    DemandOracle local;
    if (oracle == nullptr && oracleEnabled_) {
        local = buildIntervalOracle(interval);
        oracle = &local;
    }
    MemoryTraceSource cursor(image_, name_, interval.warmStart,
                             interval.end);
    SimEngine engine(config_, cursor, org, oracle);
    // Functionally replay the prefix (bounded by the planning
    // horizon) to warm predictors, organization metadata, and the
    // L2/L3 before the timed warmup region.
    if (interval.warmStart > interval.funcStart) {
        MemoryTraceSource prefix(image_, name_, interval.funcStart,
                                 interval.warmStart);
        engine.functionalWarm(prefix);
    }
    engine.warmUp(interval.warmup());
    engine.measure(interval.measured());
    return engine.finish();
}

} // namespace acic
