#include "sim/runner.hh"

#include <cstdlib>

namespace acic {

WorkloadParams
WorkloadContext::withEnvOverrides(WorkloadParams params)
{
    if (const char *env = std::getenv("ACIC_TRACE_LEN")) {
        const long long v = std::atoll(env);
        if (v > 1000)
            params.instructions = static_cast<std::uint64_t>(v);
    }
    return params;
}

WorkloadContext::WorkloadContext(WorkloadParams params,
                                 SimConfig config)
    : config_(config), trace_(withEnvOverrides(std::move(params))),
      oracle_(DemandOracle::build(trace_, config.fetchWidth))
{
}

SimResult
WorkloadContext::run(Scheme scheme)
{
    auto org = makeScheme(scheme, config_);
    return run(*org);
}

SimResult
WorkloadContext::run(IcacheOrg &org)
{
    Simulator simulator(config_);
    return simulator.run(trace_, org, &oracle_);
}

} // namespace acic
