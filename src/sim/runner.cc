#include "sim/runner.hh"

#include <cerrno>
#include <cstdlib>

#include "common/logging.hh"

namespace acic {

WorkloadParams
WorkloadContext::withEnvOverrides(WorkloadParams params)
{
    const char *env = std::getenv("ACIC_TRACE_LEN");
    if (!env)
        return params;
    errno = 0;
    char *end = nullptr;
    const long long v = std::strtoll(env, &end, 10);
    if (end == env || *end != '\0' || errno == ERANGE) {
        warn("ACIC_TRACE_LEN is not a number; ignoring override");
        return params;
    }
    if (v <= 0) {
        warn("ACIC_TRACE_LEN must be a positive instruction count; "
             "ignoring override");
        return params;
    }
    params.instructions = static_cast<std::uint64_t>(v);
    return params;
}

WorkloadContext::WorkloadContext(WorkloadParams params,
                                 SimConfig config)
    : config_(config), trace_(withEnvOverrides(std::move(params))),
      oracle_(DemandOracle::build(trace_, config.fetchWidth))
{
}

SimResult
WorkloadContext::run(const SchemeSpec &scheme)
{
    auto org = makeScheme(scheme, config_);
    return run(*org);
}

SimResult
WorkloadContext::run(const std::string &spec)
{
    return run(parseScheme(spec));
}

SimResult
WorkloadContext::run(IcacheOrg &org)
{
    Simulator simulator(config_);
    return simulator.run(trace_, org, &oracle_);
}

namespace {

/** Materialize a freshly generated synthetic trace. */
TraceImage
generateImage(const WorkloadParams &params)
{
    SyntheticWorkload trace(params);
    return materializeTrace(trace);
}

/** Build the shared oracle from an image (one pass, then immutable). */
DemandOracle
buildOracle(const TraceImage &image, const std::string &name,
            unsigned fetch_width)
{
    MemoryTraceSource cursor(image, name);
    return DemandOracle::build(cursor, fetch_width);
}

} // namespace

SharedWorkload::SharedWorkload(WorkloadParams params, SimConfig config)
    : config_(config), name_(params.name)
{
    image_ = generateImage(params);
    oracle_ = buildOracle(image_, name_, config_.fetchWidth);
}

SharedWorkload::SharedWorkload(TraceSource &source, SimConfig config)
    : config_(config), name_(source.name()),
      image_(materializeTrace(source)),
      oracle_(buildOracle(image_, name_, config_.fetchWidth))
{
}

SimResult
SharedWorkload::run(const SchemeSpec &scheme) const
{
    auto org = makeScheme(scheme, config_);
    return run(*org);
}

SimResult
SharedWorkload::run(const std::string &spec) const
{
    return run(parseScheme(spec));
}

SimResult
SharedWorkload::run(IcacheOrg &org) const
{
    MemoryTraceSource cursor = source();
    Simulator simulator(config_);
    return simulator.run(cursor, org, &oracle_);
}

} // namespace acic
