/**
 * @file
 * Analytic chip-energy model substituting for the paper's
 * McPAT + CACTI 7 flow (Sec. III-D). Per-access dynamic energies for
 * each structure (22 nm CACTI-flavoured constants) plus leakage/clock
 * power integrated over execution time. ACIC's saving comes from the
 * shorter execution time outweighing the added i-Filter/HRT/PT/CSHR
 * energy, exactly the trade-off the paper reports (-0.63% chip
 * energy).
 */

#ifndef ACIC_SIM_ENERGY_HH
#define ACIC_SIM_ENERGY_HH

#include "sim/simulator.hh"

namespace acic {

/** Per-event energies in nanojoules; power in watts. */
struct EnergyParams
{
    double l1iAccessNj = 0.015;    ///< 32 KB 8-way read
    double ifilterAccessNj = 0.002;///< 16-entry CAM probe
    double hrtAccessNj = 0.0006;   ///< 1024 x 4 bit read+write
    double ptAccessNj = 0.0002;    ///< 16 x 5 bit
    double cshrAccessNj = 0.0012;  ///< 32-way partial-tag search
    double l2AccessNj = 0.045;
    double l3AccessNj = 0.140;
    double dramAccessNj = 15.0;
    double corePerInstNj = 0.20;   ///< rest-of-core dynamic energy
    double staticPowerW = 1.8;     ///< chip leakage + clock tree
    double clockGhz = 4.0;
};

/** Energy split of one run. */
struct EnergyBreakdown
{
    double dynamicNj = 0.0;
    double staticNj = 0.0;
    double totalNj() const { return dynamicNj + staticNj; }
};

/**
 * Integrate the model over a run.
 * @param acic_structures when true, charges the i-Filter/HRT/PT/CSHR
 *        activity of the filtered organizations.
 */
EnergyBreakdown computeEnergy(const SimResult &result,
                              const EnergyParams &params = {},
                              bool acic_structures = false);

} // namespace acic

#endif // ACIC_SIM_ENERGY_HH
