#include "sim/oracle.hh"

#include <algorithm>
#include <unordered_map>

#include "frontend/bundle.hh"

namespace acic {

DemandOracle
DemandOracle::build(TraceSource &trace, unsigned fetch_width)
{
    DemandOracle oracle;
    trace.reset();
    BundleWalker walker(trace, fetch_width);
    Bundle bundle;
    while (walker.next(bundle))
        oracle.seq_.push_back(bundle.blk);
    trace.reset();

    const std::uint64_t n = oracle.seq_.size();
    oracle.nextUse_.assign(n, kNeverAgain);
    // Backward next-use computation.
    std::unordered_map<BlockAddr, std::uint64_t> upcoming;
    for (std::uint64_t i = n; i-- > 0;) {
        const BlockAddr blk = oracle.seq_[i];
        const auto it = upcoming.find(blk);
        if (it != upcoming.end())
            oracle.nextUse_[i] = it->second;
        upcoming[blk] = i;
    }

    // CSR occurrence lists: counting sort of the access indices by
    // block, with sorted keys (see oracle.hh).
    oracle.keys_.reserve(upcoming.size());
    for (const auto &[blk, first] : upcoming)
        oracle.keys_.push_back(blk);
    std::sort(oracle.keys_.begin(), oracle.keys_.end());
    const std::uint64_t k = oracle.keys_.size();
    oracle.rowStart_.assign(k + 1, 0);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t row =
            std::lower_bound(oracle.keys_.begin(),
                             oracle.keys_.end(), oracle.seq_[i]) -
            oracle.keys_.begin();
        ++oracle.rowStart_[row + 1];
    }
    for (std::uint64_t r = 0; r < k; ++r)
        oracle.rowStart_[r + 1] += oracle.rowStart_[r];
    oracle.positions_.resize(n);
    std::vector<std::uint64_t> cursor(oracle.rowStart_.begin(),
                                      oracle.rowStart_.end() - 1);
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t row =
            std::lower_bound(oracle.keys_.begin(),
                             oracle.keys_.end(), oracle.seq_[i]) -
            oracle.keys_.begin();
        oracle.positions_[cursor[row]++] = i;
    }
    return oracle;
}

std::uint64_t
DemandOracle::nextUseAfter(BlockAddr blk, std::uint64_t idx) const
{
    const auto key =
        std::lower_bound(keys_.begin(), keys_.end(), blk);
    if (key == keys_.end() || *key != blk)
        return kNeverAgain;
    const std::uint64_t row = key - keys_.begin();
    const auto begin = positions_.begin() + rowStart_[row];
    const auto end = positions_.begin() + rowStart_[row + 1];
    const auto pos = std::upper_bound(begin, end, idx);
    return pos == end ? kNeverAgain : *pos;
}

} // namespace acic
