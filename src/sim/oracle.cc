#include "sim/oracle.hh"

#include <algorithm>

#include "frontend/bundle.hh"

namespace acic {

DemandOracle
DemandOracle::build(TraceSource &trace, unsigned fetch_width)
{
    DemandOracle oracle;
    trace.reset();
    BundleWalker walker(trace, fetch_width);
    Bundle bundle;
    while (walker.next(bundle))
        oracle.seq_.push_back(bundle.blk);
    trace.reset();

    const std::uint64_t n = oracle.seq_.size();
    oracle.nextUse_.assign(n, kNeverAgain);
    for (std::uint64_t i = 0; i < n; ++i)
        oracle.occ_[oracle.seq_[i]].push_back(i);
    // Backward next-use computation.
    std::unordered_map<BlockAddr, std::uint64_t> upcoming;
    upcoming.reserve(oracle.occ_.size());
    for (std::uint64_t i = n; i-- > 0;) {
        const BlockAddr blk = oracle.seq_[i];
        const auto it = upcoming.find(blk);
        if (it != upcoming.end())
            oracle.nextUse_[i] = it->second;
        upcoming[blk] = i;
    }
    return oracle;
}

std::uint64_t
DemandOracle::nextUseAfter(BlockAddr blk, std::uint64_t idx) const
{
    const auto it = occ_.find(blk);
    if (it == occ_.end())
        return kNeverAgain;
    const auto &list = it->second;
    const auto pos =
        std::upper_bound(list.begin(), list.end(), idx);
    return pos == list.end() ? kNeverAgain : *pos;
}

} // namespace acic
