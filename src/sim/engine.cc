#include "sim/engine.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/telemetry.hh"

namespace acic {

MachineState::MachineState(const SimConfig &config, TraceSource &trace)
    : walker(trace, config.fetchWidth),
      btb(config.btbEntries, config.btbWays), ras(config.rasDepth),
      mshr(config.l1iMshrs), hierarchy(config.hierarchy)
{
    fills.reserve(config.l1iMshrs);
    stPrefetches = raw.handle("sim.prefetches");
    stDemandAccesses = raw.handle("sim.demand_accesses");
    stL1iMisses = raw.handle("sim.l1i_misses");
    stLatePrefetches = raw.handle("sim.late_prefetches");
    stMispredicts = raw.handle("sim.mispredicts");
    stBtbMisses = raw.handle("sim.btb_misses");
    stRasMispredicts = raw.handle("sim.ras_mispredicts");
}

SimEngine::SimEngine(const SimConfig &config, TraceSource &trace,
                     IcacheOrg &org, const DemandOracle *oracle)
    : config_(config), trace_(trace), org_(org), oracle_(oracle),
      state_(config, trace)
{
    // The walker reads lazily, so rewinding here (as the monolithic
    // run() did up front) happens before any instruction is pulled.
    trace_.reset();
    if (Telemetry::enabled()) {
        hbInterval_ = Telemetry::heartbeatInterval();
        if (hbInterval_ > 0) {
            hbNext_ = hbInterval_;
            hbLastWall_ = std::chrono::steady_clock::now();
        }
    }
}

std::uint64_t
SimEngine::nextUseOf(std::uint64_t seq) const
{
    return oracle_ == nullptr ? kNeverAgain : oracle_->nextUseAt(seq);
}

std::uint64_t
SimEngine::nextUseAfter(BlockAddr blk, std::uint64_t seq) const
{
    return oracle_ == nullptr ? kNeverAgain
                              : oracle_->nextUseAfter(blk, seq);
}

bool
SimEngine::issuePrefetch(BlockAddr blk, Addr pc, std::uint64_t seq)
{
    MachineState &m = state_;
    if (org_.contains(blk) || m.mshr.pending(blk))
        return true; // nothing to do; counts as considered
    if (m.mshr.full())
        return false;
    const Cycle latency = m.hierarchy.serviceMiss(blk, pc);
    m.mshr.allocate(blk, m.cycle + latency, true, pc, seq);
    m.raw.bump(m.stPrefetches);
    return true;
}

void
SimEngine::functionalWarm(TraceSource &prefix)
{
    MachineState &m = state_;
    ACIC_ASSERT(m.cycle == 0 && m.retired == 0 && m.ftq.empty(),
                "functionalWarm() must precede any stepping");
    TelemetryScope span("engine.functionalWarm");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
    }
    // Three kinds of long-lived state get warmed, all driven by the
    // instruction stream under a coarse stall-until-fill clock
    // (1 cycle per fetch bundle plus the miss service latency):
    //
    //  - Branch predictors: mirror stage 5 of stepCycle() call for
    //    call — predict() and lookup() mutate internal
    //    history/recency state, so skipping them would leave the
    //    predictors in a different state than a timed simulation of
    //    the same prefix would.
    //  - The organization itself: replacement/admission metadata
    //    (SRRIP RRPVs, the ACIC history and pattern tables) trains
    //    over the whole preceding trace, far longer than any
    //    affordable timed warmup.
    //  - The L2/L3 backing hierarchy (the slowest-warming capacity
    //    in the model, ~10^6 instructions for the 2 MB L3), fed by
    //    the organization's own demand-miss stream. Prefetch
    //    timeliness — and therefore the measured late-prefetch and
    //    miss counts — depends on L2/L3 hit rates, which is why a
    //    cold hierarchy inflates interval MPKI.
    //
    // The engine clock resumes from the warming clock so the
    // organization's delayed-update queues and gap trackers see
    // monotonic time across the functional/timed boundary.
    BundleWalker bundles(prefix, config_.fetchWidth);
    bundles.reset();
    Bundle bundle;
    std::uint64_t bundle_seq = 0;
    const bool entangling =
        config_.prefetcher == PrefetcherKind::Entangling;
    while (bundles.next(bundle)) {
        org_.maybeTick(m.cycle);
        CacheAccess access;
        access.pc = bundle.pc;
        access.blk = bundle.blk;
        access.seq = bundle_seq++;
        access.cycle = m.cycle;
        if (entangling)
            m.entangler.onDemandAccess(access.blk, m.cycle);
        if (!org_.access(access)) {
            const Cycle latency =
                m.hierarchy.serviceMiss(access.blk, access.pc);
            if (entangling)
                m.entangler.onDemandMiss(access.blk, m.cycle,
                                         latency);
            m.cycle += latency;
            access.cycle = m.cycle;
            org_.fill(access);
        }
        if (entangling) {
            // Train only; candidates cannot be modeled without
            // timing (and the queue is unbounded), so drain them.
            BlockAddr discard;
            while (m.entangler.popCandidate(discard)) {
            }
        }
        ++m.cycle;
        for (unsigned i = 0; i < bundle.count; ++i) {
            const TraceInst &inst = bundle.insts[i];
            switch (inst.kind) {
              case BranchKind::None:
                break;
              case BranchKind::Cond: {
                const bool pred = m.tage.predict(inst.pc);
                m.tage.update(inst.pc, inst.taken);
                if (pred == inst.taken && inst.taken)
                    (void)m.btb.lookup(inst.pc);
                if (inst.taken)
                    m.btb.update(inst.pc, inst.nextPc);
                break;
              }
              case BranchKind::Direct:
              case BranchKind::Call:
                (void)m.btb.lookup(inst.pc);
                m.btb.update(inst.pc, inst.nextPc);
                if (inst.kind == BranchKind::Call)
                    m.ras.push(inst.pc + TraceInst::kInstBytes);
                break;
              case BranchKind::Return:
                (void)m.ras.pop();
                break;
            }
        }
    }
    const StatSet &hs = m.hierarchy.stats();
    funcL2Accesses_ = hs.get("hier.l2_hit") + hs.get("hier.l2_miss");
    funcL3Accesses_ = hs.get("hier.l3_hit") + hs.get("hier.l3_miss");
    funcDramAccesses_ = hs.get("hier.dram_access");
    orgStatsBase_ = org_.stats().raw();
    warmedFunctionally_ = true;
}

void
SimEngine::latchSnapshot()
{
    state_.warmupSnapped = true;
    state_.snap = state_.raw;
    state_.warmupCycle = state_.cycle;
}

void
SimEngine::stepCycle()
{
    MachineState &m = state_;

    // ---- 1. Structure pipelines -------------------------------
    org_.maybeTick(m.cycle);

    // ---- 2. Fill completions ----------------------------------
    if (m.mshr.anyReady(m.cycle)) {
        m.fills.clear();
        m.mshr.popReady(m.cycle, m.fills);
        for (const auto &fill : m.fills) {
            CacheAccess access;
            access.blk = fill.blk;
            access.pc = fill.pc;
            access.seq = fill.seq;
            access.cycle = m.cycle;
            access.isPrefetch =
                fill.wasPrefetch && !fill.demandWaiting;
            access.nextUse = fill.demandWaiting
                                 ? nextUseOf(fill.seq)
                                 : nextUseAfter(fill.blk,
                                                m.lastDemandSeq);
            org_.fill(access);
            if (m.waiting && fill.blk == m.waitingBlk)
                m.headReady = true;
        }
    }

    // ---- 3. Retire --------------------------------------------
    {
        const std::uint64_t n = m.decodeQueue < config_.retireWidth
                                    ? m.decodeQueue
                                    : config_.retireWidth;
        m.decodeQueue -= n;
        m.retired += n;
        if (!m.warmupSnapped && m.retired >= snapTarget_)
            latchSnapshot();
    }

    // ---- 4. Fetch ---------------------------------------------
    if (!m.ftq.empty() && !m.waiting) {
        FtqEntry &head = m.ftq.front();
        if (m.decodeQueue + head.bundle.count <=
            config_.decodeQueueEntries) {
            if (m.pendingAlloc) {
                // Retry a blocked MSHR allocation.
                const auto outcome = m.mshr.allocate(
                    head.bundle.blk, m.cycle + m.pendingLatency,
                    false, head.bundle.pc, head.seq);
                if (outcome != MshrOutcome::Full) {
                    m.pendingAlloc = false;
                    m.waiting = true;
                    m.waitingBlk = head.bundle.blk;
                }
            } else {
                CacheAccess access;
                access.pc = head.bundle.pc;
                access.blk = head.bundle.blk;
                access.seq = head.seq;
                access.nextUse = nextUseOf(head.seq);
                access.cycle = m.cycle;
                m.lastDemandSeq = head.seq;
                m.raw.bump(m.stDemandAccesses);
                if (config_.prefetcher == PrefetcherKind::Entangling)
                    m.entangler.onDemandAccess(access.blk, m.cycle);
                const bool hit = org_.access(access);
                if (hit) {
                    m.decodeQueue += head.bundle.count;
                    if (head.redirectPenalty > 0) {
                        m.bpResumeAt = m.cycle + head.redirectPenalty;
                        m.bpWaitingRedirect = false;
                    }
                    m.ftq.pop_front();
                } else {
                    m.raw.bump(m.stL1iMisses);
                    const Cycle latency = m.hierarchy.serviceMiss(
                        access.blk, access.pc);
                    if (config_.prefetcher ==
                        PrefetcherKind::Entangling) {
                        m.entangler.onDemandMiss(access.blk, m.cycle,
                                                 latency);
                    }
                    const auto outcome = m.mshr.allocate(
                        access.blk, m.cycle + latency, false,
                        access.pc, access.seq);
                    if (outcome == MshrOutcome::Full) {
                        m.pendingAlloc = true;
                        m.pendingLatency = latency;
                    } else {
                        if (outcome == MshrOutcome::Merged)
                            m.raw.bump(m.stLatePrefetches);
                        m.waiting = true;
                        m.waitingBlk = access.blk;
                    }
                }
            }
        }
    } else if (!m.ftq.empty() && m.waiting && m.headReady) {
        FtqEntry &head = m.ftq.front();
        if (m.decodeQueue + head.bundle.count <=
            config_.decodeQueueEntries) {
            m.decodeQueue += head.bundle.count;
            if (head.redirectPenalty > 0) {
                m.bpResumeAt = m.cycle + head.redirectPenalty;
                m.bpWaitingRedirect = false;
            }
            m.ftq.pop_front();
            m.waiting = false;
            m.headReady = false;
        }
    }

    // ---- 5. Branch-prediction unit (bundle supply) -------------
    for (unsigned bp_slot = 0;
         bp_slot < config_.bpBundlesPerCycle && !m.walkerDone &&
         !m.bpWaitingRedirect && m.cycle >= m.bpResumeAt &&
         m.ftq.size() < config_.ftqEntries;
         ++bp_slot) {
        FtqEntry entry;
        if (!m.walker.next(entry.bundle)) {
            m.walkerDone = true;
        } else {
            entry.seq = m.seqCounter++;
            Cycle penalty = 0;
            for (unsigned i = 0; i < entry.bundle.count; ++i) {
                const TraceInst &inst = entry.bundle.insts[i];
                switch (inst.kind) {
                  case BranchKind::None:
                    break;
                  case BranchKind::Cond: {
                    const bool pred = m.tage.predict(inst.pc);
                    m.tage.update(inst.pc, inst.taken);
                    if (pred != inst.taken) {
                        m.raw.bump(m.stMispredicts);
                        penalty = config_.mispredictPenalty;
                    } else if (inst.taken) {
                        const auto target = m.btb.lookup(inst.pc);
                        if (!target || *target != inst.nextPc) {
                            m.raw.bump(m.stBtbMisses);
                            if (penalty < config_.btbMissPenalty)
                                penalty = config_.btbMissPenalty;
                        }
                    }
                    if (inst.taken)
                        m.btb.update(inst.pc, inst.nextPc);
                    break;
                  }
                  case BranchKind::Direct:
                  case BranchKind::Call: {
                    const auto target = m.btb.lookup(inst.pc);
                    if (!target || *target != inst.nextPc) {
                        m.raw.bump(m.stBtbMisses);
                        if (penalty < config_.btbMissPenalty)
                            penalty = config_.btbMissPenalty;
                    }
                    m.btb.update(inst.pc, inst.nextPc);
                    if (inst.kind == BranchKind::Call)
                        m.ras.push(inst.pc + TraceInst::kInstBytes);
                    break;
                  }
                  case BranchKind::Return: {
                    const Addr predicted = m.ras.pop();
                    if (predicted != inst.nextPc) {
                        m.raw.bump(m.stRasMispredicts);
                        penalty = config_.mispredictPenalty;
                    }
                    break;
                  }
                }
            }
            entry.redirectPenalty = penalty;
            if (penalty > 0)
                m.bpWaitingRedirect = true;
            m.ftq.push_back(std::move(entry));
        }
    }

    // ---- 6. Prefetch issue ------------------------------------
    if (config_.prefetcher == PrefetcherKind::Fdp) {
        unsigned issued = 0;
        // Resume where the last scan stopped: entries with
        // seq < prefetchCursor are already considered, and FTQ seqs
        // are consecutive, so the first candidate sits at a computed
        // index instead of behind a front-to-back flag walk.
        std::size_t i = 1;
        if (!m.ftq.empty() &&
            m.prefetchCursor > m.ftq.front().seq) {
            const std::uint64_t skip =
                m.prefetchCursor - m.ftq.front().seq;
            if (skip > i)
                i = static_cast<std::size_t>(skip);
        }
        for (; i < m.ftq.size() && issued < config_.prefetchDegree;
             ++i) {
            FtqEntry &entry = m.ftq[i];
            if (entry.prefetchConsidered)
                continue;
            if (issuePrefetch(entry.bundle.blk, entry.bundle.pc,
                              entry.seq)) {
                entry.prefetchConsidered = true;
                m.prefetchCursor = entry.seq + 1;
                ++issued;
            } else {
                break; // MSHRs full; retry next cycle
            }
        }
    } else if (config_.prefetcher == PrefetcherKind::Entangling) {
        unsigned issued = 0;
        BlockAddr candidate;
        while (issued < config_.prefetchDegree &&
               m.entangler.popCandidate(candidate)) {
            issuePrefetch(candidate, 0, m.lastDemandSeq);
            ++issued;
        }
    }

    ++m.cycle;
}

void
SimEngine::advanceUntilRetired(std::uint64_t target)
{
    MachineState &m = state_;
    if (m.retired >= target)
        return;
    // Guard against pathological stalls (indicates a simulator bug).
    const Cycle cycle_limit =
        m.cycle + (target - m.retired) * 64 + 1'000'000;
    while (m.retired < target) {
        ACIC_ASSERT(m.cycle < cycle_limit,
                    "simulator wedged: cycle limit exceeded");
        stepCycle();
        // Telemetry heartbeat: hbNext_ is ~0 when disabled, so this
        // is the stepping loop's single predictable telemetry check.
        if (m.retired >= hbNext_)
            emitHeartbeat();
    }
}

void
SimEngine::emitHeartbeat()
{
    const MachineState &m = state_;
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t misses = m.raw.get(m.stL1iMisses);
    const std::uint64_t wInsts = m.retired - hbLastRetired_;
    const std::uint64_t wMisses = misses - hbLastMisses_;
    const Cycle wCycles = m.cycle - hbLastCycle_;
    const double wallSecs =
        std::chrono::duration<double>(now - hbLastWall_).count();
    Telemetry::counter(
        "engine.heartbeat",
        {{"workload", trace_.name()},
         {"scheme", org_.name()},
         {"retired", m.retired},
         {"cycle", static_cast<std::uint64_t>(m.cycle)},
         {"window_insts", wInsts},
         {"window_mpki",
          wInsts == 0 ? 0.0
                      : 1000.0 * static_cast<double>(wMisses) /
                            static_cast<double>(wInsts)},
         {"window_ipc",
          wCycles == 0 ? 0.0
                       : static_cast<double>(wInsts) /
                             static_cast<double>(wCycles)},
         {"minst_per_s",
          wallSecs <= 0.0 ? 0.0
                          : static_cast<double>(wInsts) / 1e6 /
                                wallSecs}});
    hbLastRetired_ = m.retired;
    hbLastMisses_ = misses;
    hbLastCycle_ = m.cycle;
    hbLastWall_ = now;
    hbNext_ = m.retired + hbInterval_;
}

void
SimEngine::warmUp(std::uint64_t n)
{
    ACIC_ASSERT(!state_.warmupSnapped,
                "warmUp(): snapshot already latched (warmUp runs at "
                "most once and must precede measure)");
    TelemetryScope span("engine.warmUp");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
        span.attr("target_insts", n);
    }
    snapTarget_ = state_.retired + n;
    measureTarget_ = snapTarget_;
    if (state_.retired >= snapTarget_) {
        // Zero-length warmup: latch before the first cycle, which is
        // where the legacy retire-stage check would latch (no counter
        // moves before the first retire stage).
        latchSnapshot();
        return;
    }
    advanceUntilRetired(snapTarget_);
    ACIC_ASSERT(state_.warmupSnapped,
                "warmup completed without latching its snapshot");
}

void
SimEngine::measure(std::uint64_t n)
{
    if (!state_.warmupSnapped)
        warmUp(0);
    TelemetryScope span("engine.measure");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
        span.attr("target_insts", n);
    }
    measureTarget_ += n;
    advanceUntilRetired(measureTarget_);
}

void
SimEngine::save(Serializer &s) const
{
    const MachineState &m = state_;

    // Identity header: the checkpoint only resumes into an engine
    // built over the same trace, scheme, oracle mode, and core
    // configuration.
    s.str(trace_.name());
    s.u64(trace_.length());
    s.str(org_.name());
    s.b(oracle_ != nullptr);
    s.u64(config_.fetchWidth);
    s.u64(config_.ftqEntries);
    s.u64(config_.decodeQueueEntries);
    s.u64(config_.retireWidth);
    s.u64(config_.bpBundlesPerCycle);
    s.u64(config_.mispredictPenalty);
    s.u64(config_.btbMissPenalty);
    s.u8(static_cast<std::uint8_t>(config_.prefetcher));
    s.u64(config_.prefetchDegree);

    // Phase targets and functional-warm bookkeeping.
    s.u64(snapTarget_);
    s.u64(measureTarget_);
    s.u64(funcL2Accesses_);
    s.u64(funcL3Accesses_);
    s.u64(funcDramAccesses_);
    s.b(warmedFunctionally_);
    s.u64(orgStatsBase_.size());
    for (const auto &[name, value] : orgStatsBase_) {
        s.str(name);
        s.u64(value);
    }

    // Machine state. `fills` is per-cycle scratch (cleared before
    // every use in stepCycle) and the telemetry heartbeat is
    // host-side-only, so neither travels.
    m.walker.save(s);
    m.tage.save(s);
    m.btb.save(s);
    m.ras.save(s);
    m.mshr.save(s);
    m.hierarchy.save(s);
    m.entangler.save(s);

    s.u64(m.ftq.size());
    for (const FtqEntry &entry : m.ftq) {
        saveBundle(s, entry.bundle);
        s.u64(entry.seq);
        s.u64(entry.redirectPenalty);
        s.b(entry.prefetchConsidered);
    }

    s.u64(m.cycle);
    s.u64(m.bpResumeAt);
    s.b(m.bpWaitingRedirect);
    s.b(m.walkerDone);
    s.u64(m.decodeQueue);
    s.u64(m.retired);
    s.u64(m.seqCounter);
    s.u64(m.lastDemandSeq);
    s.b(m.waiting);
    s.u64(m.waitingBlk);
    s.b(m.headReady);
    s.b(m.pendingAlloc);
    s.u64(m.pendingLatency);

    m.raw.save(s);
    s.b(m.warmupSnapped);
    m.snap.save(s);
    s.u64(m.warmupCycle);

    org_.save(s);
}

void
SimEngine::load(Deserializer &d)
{
    MachineState &m = state_;

    const std::string trace_name = d.str();
    if (trace_name != trace_.name())
        throw SerializeError("checkpoint was taken over trace '" +
                             trace_name + "', this engine runs '" +
                             trace_.name() + "'");
    d.expectGeometry("trace length", trace_.length());
    const std::string org_name = d.str();
    if (org_name != org_.name())
        throw SerializeError("checkpoint was taken under scheme '" +
                             org_name + "', this engine runs '" +
                             org_.name() + "'");
    if (d.b() != (oracle_ != nullptr))
        throw SerializeError("checkpoint oracle presence differs "
                             "from the running configuration");
    d.expectGeometry("fetch width", config_.fetchWidth);
    d.expectGeometry("ftq entries", config_.ftqEntries);
    d.expectGeometry("decode queue entries",
                     config_.decodeQueueEntries);
    d.expectGeometry("retire width", config_.retireWidth);
    d.expectGeometry("bp bundles per cycle",
                     config_.bpBundlesPerCycle);
    d.expectGeometry("mispredict penalty",
                     config_.mispredictPenalty);
    d.expectGeometry("btb miss penalty", config_.btbMissPenalty);
    if (d.u8() != static_cast<std::uint8_t>(config_.prefetcher))
        throw SerializeError("checkpoint prefetcher kind differs "
                             "from the running configuration");
    d.expectGeometry("prefetch degree", config_.prefetchDegree);

    snapTarget_ = d.u64();
    measureTarget_ = d.u64();
    funcL2Accesses_ = d.u64();
    funcL3Accesses_ = d.u64();
    funcDramAccesses_ = d.u64();
    warmedFunctionally_ = d.b();
    orgStatsBase_.clear();
    const std::size_t n_base = d.count(9);
    for (std::size_t i = 0; i < n_base; ++i) {
        std::string name = d.str();
        const std::uint64_t value = d.u64();
        orgStatsBase_.emplace(std::move(name), value);
    }

    m.walker.load(d);
    m.tage.load(d);
    m.btb.load(d);
    m.ras.load(d);
    m.mshr.load(d);
    m.hierarchy.load(d);
    m.entangler.load(d);

    m.ftq.clear();
    const std::size_t n_ftq = d.count(34);
    for (std::size_t i = 0; i < n_ftq; ++i) {
        FtqEntry entry;
        loadBundle(d, entry.bundle);
        entry.seq = d.u64();
        entry.redirectPenalty = d.u64();
        entry.prefetchConsidered = d.b();
        m.ftq.push_back(std::move(entry));
    }
    m.fills.clear();
    // Re-derive the FDP scan cursor from the restored flags: the seq
    // of the first unconsidered entry past the head (everything
    // before it has been considered).
    m.prefetchCursor = 0;
    for (std::size_t i = 1; i < m.ftq.size(); ++i) {
        m.prefetchCursor = m.ftq[i].seq;
        if (!m.ftq[i].prefetchConsidered)
            break;
        m.prefetchCursor = m.ftq[i].seq + 1;
    }

    m.cycle = d.u64();
    m.bpResumeAt = d.u64();
    m.bpWaitingRedirect = d.b();
    m.walkerDone = d.b();
    m.decodeQueue = d.u64();
    m.retired = d.u64();
    m.seqCounter = d.u64();
    m.lastDemandSeq = d.u64();
    m.waiting = d.b();
    m.waitingBlk = d.u64();
    m.headReady = d.b();
    m.pendingAlloc = d.b();
    m.pendingLatency = d.u64();

    m.raw.load(d);
    m.warmupSnapped = d.b();
    m.snap.load(d);
    m.warmupCycle = d.u64();

    org_.load(d);

    // Restart the telemetry heartbeat window from the resume point;
    // rolling-window rates never span the process boundary.
    if (hbInterval_ > 0) {
        hbNext_ = m.retired + hbInterval_;
        hbLastRetired_ = m.retired;
        hbLastMisses_ = m.raw.get(m.stL1iMisses);
        hbLastCycle_ = m.cycle;
        hbLastWall_ = std::chrono::steady_clock::now();
    }
}

void
SimEngine::saveCheckpoint(const std::string &path) const
{
    TelemetryScope span("engine.saveCheckpoint");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
        span.attr("retired", state_.retired);
        span.attr("path", path);
    }
    Serializer s;
    save(s);
    writeCheckpointFile(path, kCheckpointTag, s.bytes());
}

void
SimEngine::loadCheckpoint(const std::string &path)
{
    TelemetryScope span("engine.loadCheckpoint");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
        span.attr("path", path);
    }
    const std::vector<std::uint8_t> payload =
        readCheckpointFile(path, kCheckpointTag);
    Deserializer d(payload);
    load(d);
    d.finish();
}

SimResult
SimEngine::finish() const
{
    TelemetryScope span("engine.finish");
    if (span.live()) {
        span.attr("workload", trace_.name());
        span.attr("scheme", org_.name());
    }
    const MachineState &m = state_;
    SimResult result;
    result.workload = trace_.name();
    result.scheme = org_.name();
    result.instructions = measureTarget_ - snapTarget_;
    result.cycles = m.cycle - m.warmupCycle;
    result.demandAccesses = m.raw.get(m.stDemandAccesses) -
                            m.snap.get("sim.demand_accesses");
    result.l1iMisses =
        m.raw.get(m.stL1iMisses) - m.snap.get("sim.l1i_misses");
    result.branchMispredicts =
        m.raw.get(m.stMispredicts) - m.snap.get("sim.mispredicts");
    result.btbMisses =
        m.raw.get(m.stBtbMisses) - m.snap.get("sim.btb_misses");
    result.prefetchesIssued =
        m.raw.get(m.stPrefetches) - m.snap.get("sim.prefetches");
    result.latePrefetches = m.raw.get(m.stLatePrefetches) -
                            m.snap.get("sim.late_prefetches");

    const auto &hs = m.hierarchy.stats();
    result.l2Accesses = hs.get("hier.l2_hit") +
                        hs.get("hier.l2_miss") - funcL2Accesses_;
    result.l3Accesses = hs.get("hier.l3_hit") +
                        hs.get("hier.l3_miss") - funcL3Accesses_;
    result.dramAccesses =
        hs.get("hier.dram_access") - funcDramAccesses_;
    if (!warmedFunctionally_) {
        result.orgStats = org_.stats();
    } else {
        // Report only the organization activity since the warming
        // pass; every org counter is a monotonic bump() count (no
        // set() gauges), so a per-name subtraction is exact.
        for (const auto &[name, value] : org_.stats().raw()) {
            const auto it = orgStatsBase_.find(name);
            const std::uint64_t base =
                it == orgStatsBase_.end() ? 0 : it->second;
            if (value > base)
                result.orgStats.bump(name, value - base);
        }
    }
    return result;
}

} // namespace acic
