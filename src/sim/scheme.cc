#include "sim/scheme.hh"

#include <algorithm>
#include <utility>

#include "bypass/dsb.hh"
#include "bypass/obm.hh"
#include "cache/ghrp.hh"
#include "cache/hawkeye.hh"
#include "cache/lru.hh"
#include "cache/opt.hh"
#include "cache/ship.hh"
#include "cache/srrip.hh"
#include "common/logging.hh"
#include "sim/organizations.hh"

namespace acic {

std::string
SchemeSpec::toString() const
{
    KvSpec kv;
    kv.name = key;
    kv.params = params;
    return kv.toString();
}

namespace {

/** PlainIcache builder for the parameterless replacement schemes. */
template <typename Policy>
SchemeRegistry::Builder
plainBuilder()
{
    return [](const SimConfig &config, ParamReader &,
              const std::string &display) {
        return std::make_unique<PlainIcache>(
            config.l1iSets, config.l1iWays,
            std::make_unique<Policy>(), display);
    };
}

/** LRU i-cache with optional capacity override (kb= or ways=). */
std::unique_ptr<IcacheOrg>
buildLru(const SimConfig &config, ParamReader &p,
         const std::string &display)
{
    std::uint32_t ways = config.l1iWays;
    if (p.given("kb") && p.given("ways"))
        throw SpecError("lru: give kb or ways, not both");
    if (p.given("ways")) {
        ways = static_cast<std::uint32_t>(p.count("ways", ways));
    } else if (p.given("kb")) {
        const std::uint64_t kb = p.count("kb", 32);
        const std::uint64_t way_bytes = config.l1iSets * 64ull;
        if ((kb * 1024) % way_bytes != 0)
            throw SpecError(
                "lru: kb=" + std::to_string(kb) +
                " is not a whole number of ways (" +
                std::to_string(config.l1iSets) +
                " sets of 64 B blocks need a multiple of " +
                std::to_string(way_bytes / 1024) + " KB)");
        ways = static_cast<std::uint32_t>(kb * 1024 / way_bytes);
    }
    return std::make_unique<PlainIcache>(
        config.l1iSets, ways, std::make_unique<LruPolicy>(),
        display);
}

/** Fixed-geometry LRU variants (the Table IV capacity rows). */
SchemeRegistry::Builder
largerLruBuilder(std::uint32_t ways)
{
    return [ways](const SimConfig &config, ParamReader &,
                  const std::string &display) {
        return std::make_unique<PlainIcache>(
            config.l1iSets, ways, std::make_unique<LruPolicy>(),
            display);
    };
}

/** LRU i-cache behind a bypass policy (DSB/OBM). */
template <typename Bypass>
SchemeRegistry::Builder
bypassBuilder()
{
    return [](const SimConfig &config, ParamReader &,
              const std::string &display) {
        return std::make_unique<PlainIcache>(
            config.l1iSets, config.l1iWays,
            std::make_unique<LruPolicy>(), display,
            std::make_unique<Bypass>());
    };
}

/** LRU i-cache with a victim cache (VC3K/VC8K presets). */
SchemeRegistry::Builder
victimCacheBuilder(bool vc8k)
{
    return [vc8k](const SimConfig &config, ParamReader &,
                  const std::string &display) {
        return std::make_unique<PlainIcache>(
            config.l1iSets, config.l1iWays,
            std::make_unique<LruPolicy>(), display, nullptr,
            std::make_unique<VictimCache>(vc8k
                                              ? VictimCache::vc8k()
                                              : VictimCache::vc3k()));
    };
}

/** Shared docs for the i-Filter size knob of the filtered family. */
ParamSpec
filterParam()
{
    return ParamSpec::count("filter", "16", 1, 1024,
                            "i-Filter entries (fully associative)");
}

/** FilteredIcache around a fixed admission-controller factory. */
SchemeRegistry::Builder
filteredBuilder(
    std::function<std::unique_ptr<AdmissionController>(ParamReader &)>
        make_admission)
{
    return [make_admission = std::move(make_admission)](
               const SimConfig &config, ParamReader &p,
               const std::string &display) {
        FilteredIcache::Config fc;
        fc.filterEntries =
            static_cast<std::uint32_t>(p.count("filter", 16));
        fc.icacheSets = config.l1iSets;
        fc.icacheWays = config.l1iWays;
        fc.trackAccuracy = true;
        return std::make_unique<FilteredIcache>(fc, make_admission(p),
                                                display);
    };
}

/** Parameter table of the ACIC family (Fig. 15/17 axes). */
std::vector<ParamSpec>
acicParams(const char *update_def, const char *predictor_def)
{
    return {
        filterParam(),
        ParamSpec::count("hrt", "1024", 1, 1u << 20,
                         "HRT (history register table) entries"),
        ParamSpec::count("history", "4", 1, 16,
                         "history register bits (PT has 2^history "
                         "entries)"),
        ParamSpec::count("counter", "5", 1, 16,
                         "PT saturating-counter bits"),
        ParamSpec::count("queue", "10", 1, 64,
                         "update-queue slots per PT entry"),
        ParamSpec::keyword("update", update_def,
                           {"pipelined", "instant"},
                           "predictor update timing (Fig. 14)"),
        ParamSpec::keyword("predictor", predictor_def,
                           {"two_level", "global_history", "bimodal"},
                           "predictor organization (Fig. 17)"),
        ParamSpec::count("cshr", "256", 1, 65536, "CSHR entries"),
        ParamSpec::count("cshr_sets", "8", 1, 4096,
                         "CSHR sets (power of two; default follows "
                         "cshr when smaller than 8)"),
        ParamSpec::count("tag", "12", 4, 30,
                         "CSHR partial-tag bits"),
        ParamSpec::integer("threshold", "0", -16, 16,
                           "admit-threshold offset from mid-scale"),
    };
}

/** ACIC family builder with per-preset predictor/update defaults. */
SchemeRegistry::Builder
acicBuilder(PredictorKind kind_def, bool instant_def)
{
    return [kind_def, instant_def](const SimConfig &config,
                                   ParamReader &p,
                                   const std::string &display) {
        PredictorConfig pc;
        pc.kind = kind_def;
        // Keyword values come back canonicalized ('_' -> ' ').
        const std::string kind = p.keyword(
            "predictor", kind_def == PredictorKind::GlobalHistory
                             ? "global history"
                             : kind_def == PredictorKind::Bimodal
                                   ? "bimodal"
                                   : "two level");
        if (kind == "global history")
            pc.kind = PredictorKind::GlobalHistory;
        else if (kind == "bimodal")
            pc.kind = PredictorKind::Bimodal;
        else
            pc.kind = PredictorKind::TwoLevel;
        pc.hrtEntries =
            static_cast<std::uint32_t>(p.count("hrt", pc.hrtEntries));
        pc.historyBits =
            static_cast<unsigned>(p.count("history", pc.historyBits));
        pc.counterBits =
            static_cast<unsigned>(p.count("counter", pc.counterBits));
        pc.updateQueueSlots = static_cast<unsigned>(
            p.count("queue", pc.updateQueueSlots));
        pc.instantUpdate =
            p.keyword("update",
                      instant_def ? "instant" : "pipelined") ==
            "instant";
        pc.thresholdDelta = static_cast<int>(
            p.integer("threshold", pc.thresholdDelta));

        CshrConfig cc;
        cc.entries =
            static_cast<std::uint32_t>(p.count("cshr", cc.entries));
        // Small CSHRs shrink the set count with them so one entry
        // per set stays buildable without an explicit cshr_sets.
        const bool sets_given = p.given("cshr_sets");
        const std::uint32_t sets_def =
            std::min<std::uint32_t>(cc.sets, cc.entries);
        cc.sets = static_cast<std::uint32_t>(
            p.count("cshr_sets", sets_def));
        cc.tagBits =
            static_cast<unsigned>(p.count("tag", cc.tagBits));
        if ((cc.sets & (cc.sets - 1)) != 0) {
            // Blame the knob the user actually set: a non-power-of-
            // two set count can come from an auto-derived cshr.
            if (sets_given)
                throw SpecError(p.subject() + ": cshr_sets=" +
                                std::to_string(cc.sets) +
                                " must be a power of two");
            throw SpecError(
                p.subject() + ": cshr=" +
                std::to_string(cc.entries) +
                " implies a non-power-of-two set count (" +
                std::to_string(cc.sets) +
                "); use a power-of-two cshr or give cshr_sets");
        }
        if (cc.entries % cc.sets != 0)
            throw SpecError(p.subject() + ": cshr=" +
                            std::to_string(cc.entries) +
                            " must be a multiple of cshr_sets=" +
                            std::to_string(cc.sets));

        return makeAcicOrg(
            config, pc, cc,
            static_cast<std::uint32_t>(p.count("filter", 16)), true,
            display);
    };
}

/** The paper's preset catalogue, in Table IV / legacy enum order. */
std::vector<SchemeRegistry::Entry>
builtinEntries()
{
    std::vector<SchemeRegistry::Entry> out;
    const auto add = [&out](SchemeRegistry::Entry e) {
        out.push_back(std::move(e));
    };

    add({"lru", "LRU",
         "32 KB 8-way LRU i-cache (the speedup denominator)",
         {"baseline", "baseline_lru"},
         {ParamSpec::count("kb", "32", 4, 4096,
                           "total capacity in KB (whole ways)"),
          ParamSpec::count("ways", "8", 1, 128, "associativity")},
         buildLru});
    add({"srrip", "SRRIP", "static re-reference interval prediction",
         {}, {}, plainBuilder<SrripPolicy>()});
    add({"ship", "SHiP", "signature-based hit prediction", {}, {},
         plainBuilder<ShipPolicy>()});
    add({"harmony", "Harmony", "Hawkeye/Harmony (OPTgen-trained)",
         {"hawkeye"}, {}, plainBuilder<HawkeyePolicy>()});
    add({"ghrp", "GHRP", "global history reuse prediction", {}, {},
         plainBuilder<GhrpPolicy>()});
    add({"dsb", "DSB", "dead-block-style selective bypass", {}, {},
         bypassBuilder<DsbBypass>()});
    add({"obm", "OBM", "optimal bypass monitor", {}, {},
         bypassBuilder<ObmBypass>()});
    add({"vvc", "VVC", "virtual victim cache", {}, {},
         [](const SimConfig &config, ParamReader &,
            const std::string &) {
             return std::make_unique<VvcOrg>(config.l1iSets,
                                             config.l1iWays);
         }});
    add({"vc3k", "VC3K", "3 KB fully-associative victim cache", {},
         {}, victimCacheBuilder(false)});
    add({"vc8k", "VC8K", "8 KB 4-way victim cache", {}, {},
         victimCacheBuilder(true)});
    add({"l1i36k", "36KB L1i", "36 KB 9-way LRU i-cache",
         {"36kb"}, {}, largerLruBuilder(9)});
    add({"l1i40k", "40KB L1i", "40 KB 10-way LRU i-cache (Table IV)",
         {"40kb"}, {}, largerLruBuilder(10)});
    add({"opt", "OPT", "Belady replacement (oracle)", {"belady"}, {},
         plainBuilder<OptPolicy>()});
    add({"opt_bypass", "OPT Bypass",
         "i-Filter + oracle admission",
         {},
         {filterParam()},
         filteredBuilder([](ParamReader &) {
             return std::make_unique<OptAdmission>();
         })});
    add({"acic", "ACIC",
         "the contribution (default Table I configuration)",
         {},
         acicParams("pipelined", "two_level"),
         acicBuilder(PredictorKind::TwoLevel, false)});
    add({"acic_instant", "ACIC (instant update)",
         "ACIC with instant predictor update (Fig. 14)",
         {},
         acicParams("instant", "two_level"),
         acicBuilder(PredictorKind::TwoLevel, true)});
    add({"always_insert", "Always insert",
         "i-Filter, every victim admitted (Fig. 3a)",
         {},
         {filterParam()},
         filteredBuilder([](ParamReader &) {
             return std::make_unique<AlwaysAdmit>();
         })});
    add({"ifilter_only", "i-Filter only",
         "i-Filter, no admission (Fig. 17)",
         {"i_filter_only"},
         {filterParam()},
         filteredBuilder([](ParamReader &) {
             return std::make_unique<NeverAdmit>();
         })});
    add({"access_count", "Access count",
         "i-Filter + access-count comparison (Fig. 3a)",
         {},
         {filterParam(),
          ParamSpec::count("entries", "16384", 1, 1u << 24,
                           "access-counter table entries"),
          ParamSpec::count("counter", "6", 1, 16,
                           "access-counter bits")},
         filteredBuilder([](ParamReader &p) {
             return std::make_unique<AccessCountAdmission>(
                 static_cast<std::size_t>(
                     p.count("entries", 1u << 14)),
                 static_cast<unsigned>(p.count("counter", 6)));
         })});
    add({"random_bypass", "Random bypass",
         "i-Filter + random admission (Fig. 12b)",
         {},
         {filterParam(),
          ParamSpec::real("rate", "0.6", 0.0, 1.0,
                          "admission probability")},
         filteredBuilder([](ParamReader &p) {
             return std::make_unique<RandomAdmission>(
                 p.real("rate", 0.6));
         })});
    add({"acic_global_history", "ACIC global-history",
         "Fig. 17 ablation: single global history register",
         {},
         acicParams("pipelined", "global_history"),
         acicBuilder(PredictorKind::GlobalHistory, false)});
    add({"acic_bimodal", "ACIC bimodal",
         "Fig. 17 ablation: PT indexed directly by the tag hash",
         {},
         acicParams("pipelined", "bimodal"),
         acicBuilder(PredictorKind::Bimodal, false)});
    return out;
}

} // namespace

SchemeRegistry &
SchemeRegistry::instance()
{
    static SchemeRegistry registry;
    static bool seeded = [] {
        for (auto &entry : builtinEntries())
            registry.add(std::move(entry));
        return true;
    }();
    (void)seeded;
    return registry;
}

void
SchemeRegistry::add(Entry entry)
{
    ACIC_ASSERT(!entry.key.empty() && entry.builder,
                "scheme registration needs a key and a builder");
    for (Entry &existing : entries_) {
        if (existing.key == entry.key) {
            existing = std::move(entry);
            return;
        }
    }
    entries_.push_back(std::move(entry));
}

const SchemeRegistry::Entry *
SchemeRegistry::find(const std::string &name) const
{
    const std::string wanted = canonicalToken(name);
    if (wanted.empty())
        return nullptr;
    for (const Entry &entry : entries_) {
        if (canonicalToken(entry.key) == wanted ||
            canonicalToken(entry.display) == wanted)
            return &entry;
        for (const std::string &alias : entry.aliases)
            if (canonicalToken(alias) == wanted)
                return &entry;
    }
    return nullptr;
}

std::vector<std::string>
SchemeRegistry::suggest(const std::string &name,
                        std::size_t max_hits) const
{
    const std::string wanted = canonicalToken(name);
    const std::size_t cutoff =
        std::max<std::size_t>(2, wanted.size() / 3);

    std::vector<std::pair<std::size_t, std::string>> scored;
    for (const Entry &entry : entries_) {
        std::size_t best =
            editDistance(wanted, canonicalToken(entry.key));
        best = std::min(
            best, editDistance(wanted, canonicalToken(entry.display)));
        for (const std::string &alias : entry.aliases)
            best = std::min(
                best, editDistance(wanted, canonicalToken(alias)));
        if (best <= cutoff)
            scored.emplace_back(best, entry.key);
    }
    std::stable_sort(scored.begin(), scored.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    std::vector<std::string> out;
    for (const auto &[dist, key] : scored) {
        (void)dist;
        if (out.size() >= max_hits)
            break;
        out.push_back(key);
    }
    return out;
}

SchemeSpec
SchemeRegistry::parse(const std::string &text) const
{
    // Whole-string lenient lookup first, so legacy display names
    // containing spaces or parens ("ACIC (instant update)") keep
    // resolving as bare presets.
    if (const Entry *entry = find(text))
        return SchemeSpec{entry->key, {}, entry->display};

    const KvSpec kv = parseKvSpec(text);
    const Entry *entry = find(kv.name);
    if (!entry) {
        std::string msg = "unknown scheme '" + kv.name + "'";
        const auto hits = suggest(kv.name);
        if (!hits.empty()) {
            msg += "; did you mean ";
            for (std::size_t i = 0; i < hits.size(); ++i)
                msg += (i ? ", " : "") + hits[i];
            msg += "?";
        }
        throw SpecError(msg);
    }
    if (hasValueSets(kv))
        throw SpecError("'" + text + "': value sets {a,b,...} are "
                        "only expanded by sweep grids (acic_run "
                        "sweep --grid)");

    SchemeSpec spec;
    spec.key = entry->key;
    spec.params = kv.params;
    spec.display =
        kv.params.empty() ? entry->display : spec.toString();
    // Full validation now (ranges via ParamReader, cross-parameter
    // checks inside the builder) so errors surface at parse time,
    // before any workload is prepared.
    build(spec, SimConfig{});
    return spec;
}

std::unique_ptr<IcacheOrg>
SchemeRegistry::build(const SchemeSpec &spec,
                      const SimConfig &config) const
{
    const Entry *entry = nullptr;
    for (const Entry &e : entries_)
        if (e.key == spec.key) {
            entry = &e;
            break;
        }
    if (!entry)
        throw SpecError("unknown scheme '" + spec.key + "'");
    ParamReader reader(entry->key, entry->params, spec.params);
    return entry->builder(config, reader, spec.display);
}

SchemeSpec
parseScheme(const std::string &text)
{
    return SchemeRegistry::instance().parse(text);
}

std::optional<SchemeSpec>
schemeFromName(const std::string &name)
{
    try {
        return SchemeRegistry::instance().parse(name);
    } catch (const SpecError &) {
        return std::nullopt;
    }
}

std::vector<SchemeSpec>
parseSchemeList(const std::string &list)
{
    if (canonicalToken(list) == "all")
        return allSchemes();
    std::vector<SchemeSpec> out;
    for (const std::string &item : splitTopLevel(list))
        out.push_back(parseScheme(item));
    if (out.empty())
        throw SpecError("empty scheme list");
    return out;
}

std::vector<SchemeSpec>
expandSchemeGrid(const std::string &grid)
{
    std::vector<SchemeSpec> out;
    for (const std::string &item : splitTopLevel(grid)) {
        const KvSpec kv = parseKvSpec(item);
        for (const KvSpec &concrete : expandValueSets(kv))
            out.push_back(parseScheme(concrete.toString()));
    }
    if (out.empty())
        throw SpecError("empty sweep grid");
    return out;
}

std::vector<SchemeSpec>
allSchemes()
{
    std::vector<SchemeSpec> out;
    for (const auto &entry : SchemeRegistry::instance().entries())
        if (entry.listed)
            out.push_back(SchemeSpec{entry.key, {}, entry.display});
    return out;
}

std::unique_ptr<IcacheOrg>
makeScheme(const SchemeSpec &spec, const SimConfig &config)
{
    return SchemeRegistry::instance().build(spec, config);
}

std::unique_ptr<FilteredIcache>
makeAcicOrg(const SimConfig &config, PredictorConfig predictor,
            CshrConfig cshr, std::uint32_t filter_entries,
            bool track_accuracy, std::string display_name)
{
    FilteredIcache::Config fc;
    fc.filterEntries = filter_entries;
    fc.icacheSets = config.l1iSets;
    fc.icacheWays = config.l1iWays;
    fc.trackAccuracy = track_accuracy;
    unsigned set_bits = 0;
    while ((1u << set_bits) < config.l1iSets)
        ++set_bits;
    cshr.icacheSetBits = set_bits;
    auto admission =
        std::make_unique<AcicAdmission>(predictor, cshr);
    return std::make_unique<FilteredIcache>(
        fc, std::move(admission), std::move(display_name));
}

} // namespace acic
