#include "sim/scheme.hh"

#include <cctype>

#include "bypass/dsb.hh"
#include "bypass/obm.hh"
#include "cache/ghrp.hh"
#include "cache/hawkeye.hh"
#include "cache/lru.hh"
#include "cache/opt.hh"
#include "cache/ship.hh"
#include "cache/srrip.hh"
#include "common/logging.hh"
#include "sim/organizations.hh"

namespace acic {

std::string
schemeName(Scheme scheme)
{
    switch (scheme) {
      case Scheme::BaselineLru: return "LRU";
      case Scheme::Srrip: return "SRRIP";
      case Scheme::Ship: return "SHiP";
      case Scheme::Harmony: return "Harmony";
      case Scheme::Ghrp: return "GHRP";
      case Scheme::Dsb: return "DSB";
      case Scheme::Obm: return "OBM";
      case Scheme::Vvc: return "VVC";
      case Scheme::Vc3k: return "VC3K";
      case Scheme::Vc8k: return "VC8K";
      case Scheme::L1i36k: return "36KB L1i";
      case Scheme::L1i40k: return "40KB L1i";
      case Scheme::Opt: return "OPT";
      case Scheme::OptBypass: return "OPT Bypass";
      case Scheme::Acic: return "ACIC";
      case Scheme::AcicInstant: return "ACIC (instant update)";
      case Scheme::AlwaysInsert: return "Always insert";
      case Scheme::IFilterOnly: return "i-Filter only";
      case Scheme::AccessCount: return "Access count";
      case Scheme::RandomBypass: return "Random bypass";
      case Scheme::AcicGlobalHistory: return "ACIC global-history";
      case Scheme::AcicBimodal: return "ACIC bimodal";
    }
    return "?";
}

const std::vector<Scheme> &
allSchemes()
{
    static const std::vector<Scheme> catalogue = {
        Scheme::BaselineLru,  Scheme::Srrip,
        Scheme::Ship,         Scheme::Harmony,
        Scheme::Ghrp,         Scheme::Dsb,
        Scheme::Obm,          Scheme::Vvc,
        Scheme::Vc3k,         Scheme::Vc8k,
        Scheme::L1i36k,       Scheme::L1i40k,
        Scheme::Opt,          Scheme::OptBypass,
        Scheme::Acic,         Scheme::AcicInstant,
        Scheme::AlwaysInsert, Scheme::IFilterOnly,
        Scheme::AccessCount,  Scheme::RandomBypass,
        Scheme::AcicGlobalHistory,
        Scheme::AcicBimodal,
    };
    return catalogue;
}

namespace {

/** Lower-case and collapse '_'/'-' to spaces for lenient matching. */
std::string
canonicalName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (const char c : name) {
        if (c == '_' || c == '-')
            out.push_back(' ');
        else
            out.push_back(static_cast<char>(
                std::tolower(static_cast<unsigned char>(c))));
    }
    return out;
}

} // namespace

std::optional<Scheme>
schemeFromName(const std::string &name)
{
    const std::string wanted = canonicalName(name);
    for (const Scheme s : allSchemes())
        if (canonicalName(schemeName(s)) == wanted)
            return s;
    return std::nullopt;
}

std::unique_ptr<FilteredIcache>
makeAcicOrg(const SimConfig &config, PredictorConfig predictor,
            CshrConfig cshr, std::uint32_t filter_entries,
            bool track_accuracy, std::string display_name)
{
    FilteredIcache::Config fc;
    fc.filterEntries = filter_entries;
    fc.icacheSets = config.l1iSets;
    fc.icacheWays = config.l1iWays;
    fc.trackAccuracy = track_accuracy;
    unsigned set_bits = 0;
    while ((1u << set_bits) < config.l1iSets)
        ++set_bits;
    cshr.icacheSetBits = set_bits;
    auto admission =
        std::make_unique<AcicAdmission>(predictor, cshr);
    return std::make_unique<FilteredIcache>(
        fc, std::move(admission), std::move(display_name));
}

namespace {

std::unique_ptr<FilteredIcache>
makeFiltered(const SimConfig &config,
             std::unique_ptr<AdmissionController> admission,
             std::string name, bool track_accuracy = true)
{
    FilteredIcache::Config fc;
    fc.filterEntries = 16;
    fc.icacheSets = config.l1iSets;
    fc.icacheWays = config.l1iWays;
    fc.trackAccuracy = track_accuracy;
    return std::make_unique<FilteredIcache>(fc, std::move(admission),
                                            std::move(name));
}

} // namespace

std::unique_ptr<IcacheOrg>
makeScheme(Scheme scheme, const SimConfig &config)
{
    const std::uint32_t sets = config.l1iSets;
    const std::uint32_t ways = config.l1iWays;
    switch (scheme) {
      case Scheme::BaselineLru:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<LruPolicy>(), "LRU");
      case Scheme::Srrip:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<SrripPolicy>(), "SRRIP");
      case Scheme::Ship:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<ShipPolicy>(), "SHiP");
      case Scheme::Harmony:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<HawkeyePolicy>(), "Harmony");
      case Scheme::Ghrp:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<GhrpPolicy>(), "GHRP");
      case Scheme::Dsb:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<LruPolicy>(), "DSB",
            std::make_unique<DsbBypass>());
      case Scheme::Obm:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<LruPolicy>(), "OBM",
            std::make_unique<ObmBypass>());
      case Scheme::Vvc:
        return std::make_unique<VvcOrg>(sets, ways);
      case Scheme::Vc3k:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<LruPolicy>(), "VC3K",
            nullptr,
            std::make_unique<VictimCache>(VictimCache::vc3k()));
      case Scheme::Vc8k:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<LruPolicy>(), "VC8K",
            nullptr,
            std::make_unique<VictimCache>(VictimCache::vc8k()));
      case Scheme::L1i36k:
        return std::make_unique<PlainIcache>(
            sets, 9, std::make_unique<LruPolicy>(), "36KB L1i");
      case Scheme::L1i40k:
        return std::make_unique<PlainIcache>(
            sets, 10, std::make_unique<LruPolicy>(), "40KB L1i");
      case Scheme::Opt:
        return std::make_unique<PlainIcache>(
            sets, ways, std::make_unique<OptPolicy>(), "OPT");
      case Scheme::OptBypass:
        return makeFiltered(config, std::make_unique<OptAdmission>(),
                            "OPT Bypass");
      case Scheme::Acic:
        return makeAcicOrg(config, PredictorConfig{}, CshrConfig{});
      case Scheme::AcicInstant: {
        PredictorConfig pc;
        pc.instantUpdate = true;
        return makeAcicOrg(config, pc, CshrConfig{}, 16, true,
                           schemeName(Scheme::AcicInstant));
      }
      case Scheme::AlwaysInsert:
        return makeFiltered(config, std::make_unique<AlwaysAdmit>(),
                            "Always insert");
      case Scheme::IFilterOnly:
        return makeFiltered(config, std::make_unique<NeverAdmit>(),
                            "i-Filter only");
      case Scheme::AccessCount:
        return makeFiltered(config,
                            std::make_unique<AccessCountAdmission>(),
                            "Access count");
      case Scheme::RandomBypass:
        return makeFiltered(config,
                            std::make_unique<RandomAdmission>(0.6),
                            "Random bypass");
      case Scheme::AcicGlobalHistory: {
        PredictorConfig pc;
        pc.kind = PredictorKind::GlobalHistory;
        return makeAcicOrg(config, pc, CshrConfig{}, 16, true,
                           schemeName(Scheme::AcicGlobalHistory));
      }
      case Scheme::AcicBimodal: {
        PredictorConfig pc;
        pc.kind = PredictorKind::Bimodal;
        return makeAcicOrg(config, pc, CshrConfig{}, 16, true,
                           schemeName(Scheme::AcicBimodal));
      }
    }
    ACIC_PANIC("unknown scheme");
}

} // namespace acic
