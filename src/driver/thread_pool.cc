#include "driver/thread_pool.hh"

#include <utility>

#include "common/logging.hh"

namespace acic {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workCv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    ACIC_ASSERT(task != nullptr, "submitted an empty task");
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ACIC_ASSERT(!stopping_, "submit() on a stopping ThreadPool");
        queue_.push_back(std::move(task));
        ++outstanding_;
    }
    workCv_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    idleCv_.wait(lock, [this] { return outstanding_ == 0; });
}

std::size_t
ThreadPool::queued() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return queue_.size();
}

std::size_t
ThreadPool::running() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return outstanding_ - queue_.size();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workCv_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mutex_);
            --outstanding_;
            if (outstanding_ == 0)
                idleCv_.notify_all();
        }
    }
}

} // namespace acic
