/**
 * @file
 * Telemetry-file summarizer behind `acic_run report`: reads the
 * JSONL event stream a `--telemetry` run wrote (common/telemetry.hh
 * schema) and renders per-phase time breakdowns, a slowest-cells
 * table (per-cell simulation seconds, aggregated over interval
 * shards), heartbeat throughput/rolling-window aggregates, and pool
 * gauge ranges.
 */

#ifndef ACIC_DRIVER_REPORT_HH
#define ACIC_DRIVER_REPORT_HH

#include <cstddef>
#include <iosfwd>
#include <string>

namespace acic {

/** Tuning knobs of writeTelemetryReport(). */
struct ReportOptions
{
    /** Rows of the slowest-cells table. */
    std::size_t topCells = 10;
};

/**
 * Summarize the telemetry JSONL stream @p in into @p out.
 * Lines that do not parse are counted and reported, not fatal, so a
 * truncated file (e.g. a killed run) still yields a report.
 * @return false when @p in contains no telemetry event at all, with
 * the reason in @p error.
 */
bool writeTelemetryReport(std::istream &in, std::ostream &out,
                          const ReportOptions &options,
                          std::string &error);

} // namespace acic

#endif // ACIC_DRIVER_REPORT_HH
