#include "driver/serve.hh"

#include <csignal>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <memory>
#include <vector>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "driver/emitters.hh"
#include "driver/thread_pool.hh"
#include "sim/engine.hh"
#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "sim/sim_config.hh"
#include "trace/catalog.hh"
#include "trace/io.hh"
#include "trace/streaming.hh"
#include "trace/synthetic.hh"

namespace acic {

namespace {

/** Shutdown token of the active serve run. SIGTERM/SIGINT call its
 *  request() — an async-signal-safe flag store plus a self-pipe
 *  write that unblocks the reader's infinite poll; ring CV waiters
 *  are then woken by the reader relaying the stop (condition
 *  variables cannot be notified from a handler). */
StopSignal *gServeStop = nullptr;

extern "C" void
serveStopHandler(int)
{
    if (gServeStop != nullptr)
        gServeStop->request();
}

void
installServeSignals()
{
    std::signal(SIGTERM, serveStopHandler);
    std::signal(SIGINT, serveStopHandler);
    // A consumer of our stats output going away must not kill the
    // service mid-update; write errors surface through the streams.
    std::signal(SIGPIPE, SIG_IGN);
}

/** Escape for the JSON string fields of the stats lines. */
std::string
jsonStr(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        if (static_cast<unsigned char>(c) < 0x20) {
            out += "\\u0020"; // control chars never appear in names
            continue;
        }
        out += c;
    }
    return out;
}

std::string
fmtFixed(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

/** Per-engine rolling-window bookkeeping: deltas between successive
 *  idempotent finish() snapshots. */
struct WindowTracker
{
    std::uint64_t seq = 0;
    std::uint64_t lastInsts = 0;
    std::uint64_t lastMisses = 0;
    std::uint64_t lastCycles = 0;
    std::chrono::steady_clock::time_point lastWall{};
};

void
emitWindowLine(std::ostream &out, const std::string &workload,
               const std::string &scheme, WindowTracker &track,
               const SimEngine &engine)
{
    const SimResult snap = engine.finish();
    const auto now = std::chrono::steady_clock::now();
    const std::uint64_t d_insts = snap.instructions - track.lastInsts;
    const std::uint64_t d_misses = snap.l1iMisses - track.lastMisses;
    const std::uint64_t d_cycles =
        static_cast<std::uint64_t>(snap.cycles) - track.lastCycles;
    const double wall =
        std::chrono::duration<double>(now - track.lastWall).count();
    const double w_mpki =
        d_insts ? 1000.0 * static_cast<double>(d_misses) /
                      static_cast<double>(d_insts)
                : 0.0;
    const double w_ipc =
        d_cycles ? static_cast<double>(d_insts) /
                       static_cast<double>(d_cycles)
                 : 0.0;
    const double rate =
        wall > 0.0
            ? static_cast<double>(d_insts) / 1e6 / wall
            : 0.0;
    out << "{\"ev\":\"serve.window\",\"workload\":\""
        << jsonStr(workload) << "\",\"scheme\":\""
        << jsonStr(scheme) << "\",\"seq\":" << track.seq
        << ",\"retired\":" << engine.retired()
        << ",\"cycle\":" << engine.cycles()
        << ",\"window_insts\":" << d_insts
        << ",\"window_mpki\":" << fmtFixed(w_mpki, 4)
        << ",\"window_ipc\":" << fmtFixed(w_ipc, 4)
        << ",\"minst_per_s\":" << fmtFixed(rate, 2) << "}\n";
    out.flush();
    ++track.seq;
    track.lastInsts = snap.instructions;
    track.lastMisses = snap.l1iMisses;
    track.lastCycles = static_cast<std::uint64_t>(snap.cycles);
    track.lastWall = now;
}

void
emitFinalLine(std::ostream &out, const SimResult &r)
{
    out << "{\"ev\":\"serve.final\",\"workload\":\""
        << jsonStr(r.workload) << "\",\"scheme\":\""
        << jsonStr(r.scheme)
        << "\",\"instructions\":" << r.instructions
        << ",\"cycles\":" << r.cycles
        << ",\"l1i_misses\":" << r.l1iMisses
        << ",\"mpki\":" << fmtFixed(r.mpki(), 4)
        << ",\"ipc\":" << fmtFixed(r.ipc(), 4) << "}\n";
    out.flush();
}

/**
 * Runs one callable per engine per round — serially inline, or one
 * task per engine on a ThreadPool with a barrier — and rethrows the
 * first per-engine exception after the barrier (never mid-round, so
 * the engines are always quiescent when an error propagates).
 */
class EngineCrew
{
  public:
    EngineCrew(std::size_t engines, unsigned threads)
        : errors_(engines)
    {
        unsigned want = threads;
        if (want == 0) {
            const unsigned hw = std::thread::hardware_concurrency();
            want = hw == 0 ? 1 : hw;
        }
        if (want > engines)
            want = static_cast<unsigned>(engines);
        if (want > 1)
            pool_ = std::make_unique<ThreadPool>(want);
    }

    unsigned threads() const
    {
        return pool_ ? pool_->threads() : 1;
    }

    /** Run fn(i) for every engine index; returns past the barrier. */
    template <typename Fn>
    void
    round(Fn &&fn)
    {
        const std::size_t n = errors_.size();
        if (!pool_) {
            for (std::size_t i = 0; i < n; ++i)
                fn(i);
            return;
        }
        for (auto &e : errors_)
            e = nullptr;
        for (std::size_t i = 0; i < n; ++i)
            pool_->submit([this, i, &fn] {
                try {
                    fn(i);
                } catch (...) {
                    errors_[i] = std::current_exception();
                }
            });
        pool_->wait();
        for (auto &e : errors_)
            if (e)
                std::rethrow_exception(e);
    }

  private:
    std::unique_ptr<ThreadPool> pool_;
    std::vector<std::exception_ptr> errors_;
};

} // namespace

LockstepResult
runLockstepRounds(StreamTee &tee,
                  std::vector<std::unique_ptr<SimEngine>> &engines,
                  const SimConfig &config,
                  const LockstepOptions &options,
                  const std::function<void(std::uint64_t)> &onWindow,
                  const std::atomic<bool> *stop,
                  StreamingTraceSource *ring_source)
{
    // Lookahead slack: the walker pulls ahead of retirement by at
    // most the FTQ + decode queue + one decode batch, so pre-buffer
    // that much beyond each round's retire target to keep every
    // engine's supply entirely within the tee buffer — which also
    // makes mid-round tee pulls (and their lock traffic) rare.
    const std::uint64_t slack =
        static_cast<std::uint64_t>(config.ftqEntries) *
            config.fetchWidth +
        config.decodeQueueEntries + InstBatch::kCapacity + 8;
    const std::uint64_t step = options.step == 0 ? 1 : options.step;

    EngineCrew crew(engines.size(), options.threads);
    const bool telemetry = Telemetry::enabled();
    std::vector<double> engine_us(engines.size(), 0.0);

    LockstepResult out;

    // Warmup: bounded by what the stream actually carries — the
    // engine must never be asked to retire records the stream cannot
    // supply (it would spin forever waiting for them).
    std::uint64_t avail = tee.ensureBuffered(options.warmup + slack);
    out.warm = options.warmup < avail ? options.warmup : avail;
    crew.round([&](std::size_t i) { engines[i]->warmUp(out.warm); });

    // Lockstep rounds: extend every engine's planned target by one
    // step, clipped to the records known to exist. Engines drift
    // apart by at most one round, so the tee backlog — and with the
    // bounded ring, total memory — stays O(step + slack) regardless
    // of stream length.
    std::uint64_t target = out.warm;
    std::uint64_t next_window =
        options.window == 0 ? ~std::uint64_t(0)
                            : out.warm + options.window;
    for (;;) {
        if (stop != nullptr &&
            stop->load(std::memory_order_relaxed)) {
            out.stopped = true;
            break;
        }
        const std::uint64_t goal = target + step;
        avail = tee.ensureBuffered(goal + slack);
        const std::uint64_t new_target = goal < avail ? goal : avail;
        if (new_target <= target) {
            if (tee.exhausted())
                break;
            continue;
        }
        const std::uint64_t delta = new_target - target;
        crew.round([&](std::size_t i) {
            if (telemetry) {
                const auto t0 = std::chrono::steady_clock::now();
                engines[i]->measure(delta);
                engine_us[i] =
                    std::chrono::duration<double, std::micro>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
            } else {
                engines[i]->measure(delta);
            }
        });
        target = new_target;
        if (telemetry) {
            if (ring_source != nullptr)
                Telemetry::gauge(
                    "serve.ring_occupancy",
                    static_cast<double>(
                        ring_source->ringOccupancy()));
            Telemetry::gauge(
                "serve.tee_backlog",
                static_cast<double>(tee.bufferedEnd() -
                                    tee.bufferedStart()));
            if (engines.size() > 1) {
                double lo = engine_us[0], hi = engine_us[0];
                for (const double us : engine_us) {
                    lo = us < lo ? us : lo;
                    hi = us > hi ? us : hi;
                }
                Telemetry::gauge("serve.round_lag_us", hi - lo);
            }
            for (std::size_t i = 0;
                 i < options.labels.size() && i < engine_us.size();
                 ++i)
                Telemetry::gauge(
                    ("serve.engine_us." + options.labels[i]).c_str(),
                    engine_us[i]);
        }
        while (target >= next_window) {
            if (onWindow)
                onWindow(next_window);
            next_window += options.window;
        }
        tee.trim();
        if (tee.exhausted() && target >= tee.bufferedEnd())
            break;
    }
    out.target = target;
    return out;
}

int
runServe(const ServeOptions &options)
{
    // Function-local so the pipe fds exist only for serve runs; the
    // handler reaches it through the pointer, and re-entry (tests
    // calling runServe twice in-process) just reuses the token.
    static StopSignal stop_signal;
    gServeStop = &stop_signal;
    stop_signal.flag.store(false, std::memory_order_relaxed);
    installServeSignals();

    const std::vector<SchemeSpec> schemes =
        parseSchemeList(options.schemes);
    const SimConfig config;

    // The stats sink: JSON lines to a file or stdout. Opened before
    // the stream attach (which can block on a FIFO) so a bad path
    // fails fast.
    std::ofstream stats_file;
    std::ostream *stats = &std::cout;
    if (!options.statsOut.empty()) {
        stats_file.open(options.statsOut,
                        std::ios::binary | std::ios::trunc);
        if (!stats_file) {
            const std::string msg =
                "serve: cannot open --stats-out " + options.statsOut;
            ACIC_FATAL(msg.c_str());
        }
        stats = &stats_file;
    }

    // Attach to the live stream (this blocks on a FIFO until the
    // producer connects, and reads the header synchronously) and fan
    // it out to one cursor per scheme.
    const std::string path =
        options.input.rfind("pipe:", 0) == 0
            ? options.input.substr(5)
            : options.input;
    auto source = StreamingTraceSource::openPath(
        path, static_cast<std::size_t>(options.ring), &stop_signal);
    StreamTee tee(*source,
                  static_cast<unsigned>(schemes.size()));

    // One resident engine per scheme, all oracle-less: Belady
    // annotations need the whole future of the trace, which a
    // single-pass stream cannot provide. `acic_run run --no-oracle`
    // is the matching batch configuration.
    std::vector<std::unique_ptr<IcacheOrg>> orgs;
    std::vector<std::unique_ptr<SimEngine>> engines;
    std::vector<WindowTracker> windows(schemes.size());
    orgs.reserve(schemes.size());
    engines.reserve(schemes.size());
    for (std::size_t i = 0; i < schemes.size(); ++i) {
        orgs.push_back(makeScheme(schemes[i], config));
        engines.push_back(std::make_unique<SimEngine>(
            config, tee.cursor(static_cast<unsigned>(i)), *orgs[i],
            nullptr));
    }

    LockstepOptions lockstep;
    lockstep.warmup = options.warmup;
    lockstep.window = options.window == 0 ? 1 : options.window;
    lockstep.step = options.step;
    lockstep.threads = options.threads;
    if (Telemetry::enabled()) {
        lockstep.labels.reserve(schemes.size());
        for (const SchemeSpec &spec : schemes)
            lockstep.labels.push_back(spec.toString());
    }

    const auto measure_start = std::chrono::steady_clock::now();
    for (auto &track : windows)
        track.lastWall = measure_start;
    const auto on_window = [&](std::uint64_t) {
        for (std::size_t i = 0; i < schemes.size(); ++i)
            emitWindowLine(*stats, source->name(),
                           schemes[i].toString(), windows[i],
                           *engines[i]);
    };

    const LockstepResult run = runLockstepRounds(
        tee, engines, config, lockstep, on_window,
        &stop_signal.flag, source.get());

    // A signal that lands while the loop is blocked inside
    // ensureBuffered() surfaces as stream exhaustion (the reader
    // aborts and the ring drains); re-check so the shutdown is
    // attributed to the signal, not mistaken for end-of-data.
    const bool stopped = run.stopped || stop_signal.requested();

    // Final statistics: one serve.final line per scheme, the
    // golden-dump fixture format on request, and a human summary on
    // stderr (stdout may be carrying the stats stream).
    const double wall =
        std::chrono::duration<double>(
            std::chrono::steady_clock::now() - measure_start)
            .count();
    std::vector<SimResult> results;
    results.reserve(engines.size());
    for (auto &engine : engines)
        results.push_back(engine->finish());
    for (const SimResult &r : results)
        emitFinalLine(*stats, r);
    if (options.dumpStats) {
        // Separator lines match `acic_run run --dump-stats` exactly
        // (canonical spec text, not the org display name), so the
        // two dumps diff byte-for-byte.
        for (std::size_t i = 0; i < results.size(); ++i) {
            std::cout << "# workload=" << results[i].workload
                      << " scheme=" << schemes[i].toString()
                      << '\n';
            writeGoldenDump(std::cout, results[i]);
        }
    }
    if (!options.quiet) {
        std::fprintf(stderr,
                     "serve: %s %s: %llu instructions (%llu warmup) "
                     "in %.2fs%s\n",
                     source->name().c_str(),
                     source->sawEndOfStream() ? "ended cleanly"
                     : stopped               ? "stopped by signal"
                                             : "ended",
                     static_cast<unsigned long long>(
                         source->delivered()),
                     static_cast<unsigned long long>(run.warm), wall,
                     stopped ? " (shutdown requested)" : "");
        for (const SimResult &r : results)
            std::fprintf(stderr,
                         "serve:   %-28s ipc %.3f  mpki %.2f\n",
                         r.scheme.c_str(), r.ipc(), r.mpki());
    }
    return 0;
}

int
runStreamGen(const StreamGenOptions &options)
{
    // The consumer disappearing mid-pipe (serve killed) must surface
    // as a stream-state error, not kill this process by signal.
    std::signal(SIGPIPE, SIG_IGN);
    // stdout may be a pipe into `serve -`; all status goes to
    // stderr.
    std::ofstream out_file;
    std::ostream *out = &std::cout;
    if (!options.out.empty()) {
        out_file.open(options.out,
                      std::ios::binary | std::ios::trunc);
        if (!out_file) {
            const std::string msg =
                "stream: cannot open --out " + options.out;
            ACIC_FATAL(msg.c_str());
        }
        out = &out_file;
    }

    std::unique_ptr<TraceSource> source;
    if (!options.trace.empty()) {
        source = std::make_unique<FileTraceSource>(options.trace);
    } else {
        const WorkloadCatalog catalog = WorkloadCatalog::builtin();
        const WorkloadEntry *entry = catalog.find(options.workload);
        if (!entry) {
            const std::string msg =
                "stream: unknown workload '" + options.workload +
                "'";
            ACIC_FATAL(msg.c_str());
        }
        WorkloadParams params =
            WorkloadContext::withEnvOverrides(entry->params);
        if (options.instructions > 0)
            params.instructions = options.instructions;
        source = std::make_unique<SyntheticWorkload>(params);
    }

    StreamTraceWriter writer(*out, source->name(),
                             options.frameRecords);
    InstBatch batch;
    while (source->decodeBatch(batch) > 0) {
        for (unsigned i = 0; i < batch.count; ++i)
            writer.append(batch.get(i));
        if (!out->good())
            break; // consumer went away (EPIPE); not an error here
    }
    if (out->good())
        writer.finish();
    if (!out->good() && !options.out.empty()) {
        const std::string msg =
            "stream: error writing " + options.out;
        ACIC_FATAL(msg.c_str());
    }
    std::fprintf(stderr, "stream: %s: %llu instructions framed\n",
                 source->name().c_str(),
                 static_cast<unsigned long long>(writer.written()));
    return 0;
}

} // namespace acic
