#include "driver/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <mutex>
#include <sstream>
#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/telemetry.hh"
#include "driver/thread_pool.hh"
#include "trace/io.hh"

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

namespace acic {

namespace {

/**
 * Pool-health gauges emitted as each cell/shard task finishes: how
 * deep the work queue is and what fraction of workers is busy. Cheap
 * (two locked size reads) and only on the cold per-task epilogue.
 */
void
emitPoolGauges(const ThreadPool &pool)
{
    if (!Telemetry::enabled())
        return;
    Telemetry::gauge("driver.queue_depth",
                     static_cast<double>(pool.queued()));
    const unsigned threads = pool.threads();
    if (threads > 0)
        Telemetry::gauge("driver.pool_utilization",
                         static_cast<double>(pool.running()) /
                             threads);
}

/** Payload tag of completed-cell checkpoint files. */
constexpr char kCellTag[4] = {'C', 'E', 'L', 'L'};

std::string
cellFilePath(const std::string &dir, std::size_t w, std::size_t s)
{
    return dir + "/cells/cell_" + std::to_string(w) + "_" +
           std::to_string(s) + ".bin";
}

std::string
inflightFilePath(const std::string &dir, std::size_t w,
                 std::size_t s)
{
    return dir + "/inflight/cell_" + std::to_string(w) + "_" +
           std::to_string(s) + ".ckpt";
}

/**
 * Publish one finished cell to its "CELL" container: the identity
 * (workload and canonical scheme spec, validated on reload), the full
 * SimResult, and the host seconds. Atomic via writeCheckpointFile.
 */
void
writeCellFile(const std::string &path, const ExperimentSpec &spec,
              const CellResult &cell)
{
    Serializer s;
    s.str(spec.workloads[cell.workloadIndex].name());
    s.str(spec.schemes[cell.schemeIndex].toString());
    cell.result.save(s);
    s.f64(cell.hostSeconds);
    writeCheckpointFile(path, kCellTag, s.take());
}

/**
 * Load a completed-cell file if present. Returns false when the file
 * does not exist; throws SerializeError on corruption or when the
 * stored identity does not match cell (w, s) of the running spec.
 */
bool
loadCellFile(const std::string &path, const ExperimentSpec &spec,
             std::size_t w, std::size_t s, CellResult &out)
{
    {
        std::ifstream probe(path, std::ios::binary);
        if (!probe.good())
            return false;
    }
    const std::vector<std::uint8_t> payload =
        readCheckpointFile(path, kCellTag);
    Deserializer d(payload);
    const std::string workload = d.str();
    const std::string scheme = d.str();
    if (workload != spec.workloads[w].name() ||
        scheme != spec.schemes[s].toString())
        throw SerializeError(
            "checkpoint cell file " + path + " holds (" + workload +
            ", " + scheme + "), but the running sweep places (" +
            spec.workloads[w].name() + ", " +
            spec.schemes[s].toString() +
            ") at that cell — the checkpoint directory belongs to a "
            "different sweep");
    out.workloadIndex = w;
    out.schemeIndex = s;
    out.result.load(d);
    out.hostSeconds = d.f64();
    d.finish();
    out.done = true;
    return true;
}

/**
 * The manifest pins everything that defines the sweep's result
 * identity — the matrix shape and the instruction budget — so a
 * restart (or a sibling shard) with a different spec is rejected
 * instead of silently mixing incompatible cells.
 */
std::string
manifestText(const ExperimentSpec &spec)
{
    std::ostringstream out;
    out << "{\n  \"format\": 1,\n  \"workloads\": [";
    for (std::size_t w = 0; w < spec.workloads.size(); ++w)
        out << (w ? ", " : "") << '"'
            << json::escape(spec.workloads[w].name()) << '"';
    out << "],\n  \"schemes\": [";
    for (std::size_t s = 0; s < spec.schemes.size(); ++s)
        out << (s ? ", " : "") << '"'
            << json::escape(spec.schemes[s].toString()) << '"';
    out << "],\n  \"instructions\": " << spec.instructions
        << ",\n  \"intervals\": " << spec.intervals
        << ",\n  \"interval_warmup\": " << spec.intervalWarmup
        << ",\n  \"warm_horizon\": " << spec.warmHorizon
        << ",\n  \"use_oracle\": "
        << (spec.useOracle ? "true" : "false") << "\n}\n";
    return out.str();
}

/**
 * Write or validate `<dir>/manifest.json`. Concurrent shard
 * processes may race to create it; both write identical content
 * through a temp-file + rename, so the race is benign.
 */
void
ensureManifest(const std::string &dir, const ExperimentSpec &spec)
{
    const std::string path = dir + "/manifest.json";
    const std::string want = manifestText(spec);
    std::ifstream in(path);
    if (in.good()) {
        std::ostringstream have;
        have << in.rdbuf();
        if (have.str() != want)
            throw SerializeError(
                "checkpoint directory " + dir +
                " was created for a different sweep (manifest.json "
                "does not match this workload x scheme matrix); use "
                "a fresh --checkpoint-dir or rerun the original "
                "spec");
        return;
    }
    std::string tmp = path + ".tmp";
#if defined(__unix__) || defined(__APPLE__)
    tmp += "." + std::to_string(static_cast<long>(getpid()));
#endif
    {
        std::ofstream out(tmp, std::ios::trunc);
        if (!out)
            throw SerializeError("cannot write sweep manifest " +
                                 tmp);
        out << want;
        out.flush();
        if (!out)
            throw SerializeError("short write to sweep manifest " +
                                 tmp);
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        throw SerializeError("cannot rename sweep manifest " + tmp +
                             " over " + path);
    }
}

} // namespace

ExperimentDriver::ExperimentDriver(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    ACIC_ASSERT(!spec_.workloads.empty(),
                "experiment spec names no workloads");
    ACIC_ASSERT(!spec_.schemes.empty(),
                "experiment spec names no schemes");
    ACIC_ASSERT(spec_.shardCount >= 1,
                "experiment shard count must be at least 1");
    ACIC_ASSERT(spec_.shardIndex < spec_.shardCount,
                "experiment shard index out of range");
}

std::shared_ptr<const SharedWorkload>
ExperimentDriver::prepareWorkload(const WorkloadEntry &entry) const
{
    std::shared_ptr<SharedWorkload> shared;
    if (entry.source == WorkloadSource::Stream) {
        // A pipe/stdin entry is single-pass: it can be neither
        // materialized for concurrent schemes nor replayed for the
        // oracle, so the batch driver cannot run it.
        const std::string msg =
            "workload '" + entry.name() +
            "' is a live stream; the batch driver needs a "
            "re-iterable trace. Drive it with 'acic_run serve " +
            entry.name() +
            " --schemes ...' instead, or materialize it to a file "
            "first";
        ACIC_FATAL(msg.c_str());
    } else if (entry.source == WorkloadSource::TraceFile) {
        FileTraceSource file(entry.path);
        shared =
            std::make_shared<SharedWorkload>(file, spec_.config);
    } else if (!spec_.traceDir.empty()) {
        const std::string path = spec_.traceDir + "/" +
                                 entry.name() +
                                 TraceFormat::suffix();
        FileTraceSource file(path);
        shared =
            std::make_shared<SharedWorkload>(file, spec_.config);
    } else {
        // Precedence: explicit spec override > ACIC_TRACE_LEN >
        // preset.
        WorkloadParams effective =
            WorkloadContext::withEnvOverrides(entry.params);
        if (spec_.instructions != 0)
            effective.instructions = spec_.instructions;
        shared = std::make_shared<SharedWorkload>(
            std::move(effective), spec_.config);
    }
    shared->setOracleEnabled(spec_.useOracle);
    return shared;
}

namespace {

/** Shared bookkeeping of one ExperimentDriver::run() invocation. */
struct RunState
{
    explicit RunState(std::size_t n_workloads)
        : remainingCells(
              std::make_unique<std::atomic<std::size_t>[]>(
                  n_workloads)),
          nextWorkload(0)
    {
    }

    /** Unfinished cells per workload; 0 releases its trace image. */
    std::unique_ptr<std::atomic<std::size_t>[]> remainingCells;
    /** Next workload index to prepare. */
    std::atomic<std::size_t> nextWorkload;
    std::mutex observerMutex;
};

/** In-flight shards of one interval-sharded cell. */
struct CellShards
{
    explicit CellShards(std::vector<SimInterval> plan_)
        : plan(std::move(plan_)), parts(plan.size()),
          seconds(plan.size(), 0.0), remaining(plan.size())
    {
    }

    std::vector<SimInterval> plan;
    std::vector<SimResult> parts;     ///< distinct slots, no lock
    std::vector<double> seconds;
    std::atomic<std::size_t> remaining;
};

/**
 * One workload's region oracles, shared by every scheme's shard
 * tasks (the oracle depends only on the region, not the scheme).
 * Built lazily inside the first shard task that needs each region,
 * so the builds run on the pool instead of serializing the prepare
 * task.
 */
struct ShardOracles
{
    explicit ShardOracles(std::size_t n)
        : once(std::make_unique<std::once_flag[]>(n)), oracles(n)
    {
    }

    const DemandOracle &get(std::size_t i, const SharedWorkload &w,
                            const SimInterval &interval)
    {
        std::call_once(once[i], [&] {
            oracles[i] = w.buildIntervalOracle(interval);
        });
        return oracles[i];
    }

    std::unique_ptr<std::once_flag[]> once;
    std::vector<DemandOracle> oracles;
};

} // namespace

std::vector<CellResult>
ExperimentDriver::run(const Observer &observer)
{
    const std::size_t n_workloads = spec_.workloads.size();
    const std::size_t n_schemes = spec_.schemes.size();
    std::vector<CellResult> cells(spec_.cellCount());

    // Checkpoint directory: create the layout, pin the sweep
    // identity, and preload every owned cell already completed by a
    // previous (crashed or finished) invocation. A corrupt cell file
    // throws here — restarts never silently recompute or mix results.
    const bool checkpointing = !spec_.checkpointDir.empty();
    if (checkpointing) {
        std::filesystem::create_directories(spec_.checkpointDir +
                                            "/cells");
        std::filesystem::create_directories(spec_.checkpointDir +
                                            "/inflight");
        ensureManifest(spec_.checkpointDir, spec_);
    }
    std::vector<bool> preloaded(spec_.cellCount(), false);
    for (std::size_t w = 0; w < n_workloads; ++w)
        for (std::size_t s = 0; s < n_schemes; ++s) {
            if (!spec_.ownsCell(w, s))
                continue;
            const std::size_t idx = w * n_schemes + s;
            if (checkpointing &&
                loadCellFile(
                    cellFilePath(spec_.checkpointDir, w, s), spec_,
                    w, s, cells[idx]))
                preloaded[idx] = true;
        }
    if (observer)
        for (const CellResult &cell : cells)
            if (cell.done)
                observer(cell);

    ThreadPool pool(spec_.threads);
    const std::size_t threads = pool.threads();
    RunState state(n_workloads);
    for (std::size_t w = 0; w < n_workloads; ++w) {
        std::size_t pending = 0;
        for (std::size_t s = 0; s < n_schemes; ++s)
            if (spec_.ownsCell(w, s) &&
                !preloaded[w * n_schemes + s])
                ++pending;
        state.remainingCells[w] = pending;
    }

    // Publish one finished cell: store it, persist it to the
    // checkpoint directory (then drop the now-stale in-flight engine
    // snapshot — publish-then-clean keeps the cell exactly-once),
    // notify the observer, and release the workload's trace image
    // (submitting the next prepare) when its row completes.
    const auto finishCell = [this, &cells, &state, &observer,
                             n_schemes, checkpointing](
                                CellResult cell,
                                const std::function<void()> &next) {
        cell.done = true;
        const std::size_t idx =
            cell.workloadIndex * n_schemes + cell.schemeIndex;
        if (checkpointing) {
            writeCellFile(cellFilePath(spec_.checkpointDir,
                                       cell.workloadIndex,
                                       cell.schemeIndex),
                          spec_, cell);
            std::remove(inflightFilePath(spec_.checkpointDir,
                                         cell.workloadIndex,
                                         cell.schemeIndex)
                            .c_str());
        }
        cells[idx] = cell;
        if (observer) {
            std::lock_guard<std::mutex> lock(state.observerMutex);
            observer(cells[idx]);
        }
        if (state.remainingCells[cell.workloadIndex].fetch_sub(1) ==
            1)
            next();
    };

    // A prepare task builds one workload's shared trace + oracle and
    // fans its row's scheme cells back into the same pool — as one
    // monolithic task per cell (intervals <= 1, the bit-identical
    // legacy path), or as one task per interval shard, so a long
    // workload's own trace is simulated by many workers at once.
    // Prepares are released in a sliding window of ~thread-count
    // workloads — the last cell of a finished workload submits the
    // next prepare — so preparation overlaps simulation while the
    // number of live (materialized) trace images stays bounded by
    // the thread count, not the workload count.
    std::function<void()> submitNextPrepare =
        [&]() {
            // Skip workloads whose owned cells all preloaded (or
            // that this shard owns no cell of): their traces need
            // not materialize at all.
            std::size_t w;
            do {
                w = state.nextWorkload.fetch_add(1);
                if (w >= n_workloads)
                    return;
            } while (state.remainingCells[w].load() == 0);
            pool.submit([this, w, n_schemes, &pool, &state,
                         &preloaded, checkpointing, &finishCell,
                         &submitNextPrepare] {
                std::shared_ptr<const SharedWorkload> shared;
                {
                    TelemetryScope span("driver.prepare");
                    span.attr("workload",
                              spec_.workloads[w].name());
                    shared = prepareWorkload(spec_.workloads[w]);
                }
                std::vector<SimInterval> plan;
                std::shared_ptr<ShardOracles> oracles;
                if (spec_.intervals > 1) {
                    // Shard the same measured region a monolithic
                    // run reports (post-warmupFraction), so merged
                    // results are directly comparable to full runs.
                    const std::uint64_t total =
                        shared->instructions();
                    const auto measure_begin =
                        static_cast<std::uint64_t>(
                            static_cast<double>(total) *
                            spec_.config.warmupFraction);
                    plan = planIntervals(measure_begin, total,
                                         spec_.intervals,
                                         spec_.intervalWarmup,
                                         spec_.warmHorizon);
                    if (plan.size() > 1 && spec_.useOracle)
                        oracles = std::make_shared<ShardOracles>(
                            plan.size());
                }
                for (std::size_t s = 0; s < n_schemes; ++s) {
                    if (!spec_.ownsCell(w, s) ||
                        preloaded[w * n_schemes + s])
                        continue;
                    if (plan.size() <= 1) {
                        pool.submit([this, w, s, shared, &pool,
                                     checkpointing, &finishCell,
                                     &submitNextPrepare] {
                            const auto start =
                                std::chrono::steady_clock::now();
                            TelemetryScope span("driver.cell");
                            if (span.live()) {
                                span.attr(
                                    "workload",
                                    spec_.workloads[w].name());
                                span.attr(
                                    "scheme",
                                    schemeName(spec_.schemes[s]));
                            }
                            CellResult cell;
                            cell.workloadIndex = w;
                            cell.schemeIndex = s;
                            try {
                                // Monolithic checkpointed cells
                                // resume from (and periodically
                                // refresh) an in-flight engine
                                // snapshot; the chunked phases are
                                // bit-identical to one-shot run().
                                cell.result =
                                    checkpointing
                                        ? shared->runCheckpointed(
                                              spec_.schemes[s],
                                              inflightFilePath(
                                                  spec_
                                                      .checkpointDir,
                                                  w, s),
                                              spec_.checkpointEvery)
                                        : shared->run(
                                              spec_.schemes[s]);
                            } catch (const std::exception &e) {
                                // Specs are pre-validated against
                                // the default SimConfig only; a
                                // builder rejecting the run-time
                                // config must fail loudly, not
                                // std::terminate the pool on an
                                // escaping exception.
                                ACIC_FATAL(e.what());
                            }
                            cell.hostSeconds =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::
                                        now() -
                                    start)
                                    .count();
                            emitPoolGauges(pool);
                            finishCell(cell, submitNextPrepare);
                        });
                        continue;
                    }
                    const auto shards =
                        std::make_shared<CellShards>(plan);
                    for (std::size_t i = 0; i < plan.size(); ++i) {
                        pool.submit([this, w, s, i, shared, shards,
                                     oracles, &pool, &finishCell,
                                     &submitNextPrepare] {
                            const auto start =
                                std::chrono::steady_clock::now();
                            TelemetryScope span("driver.shard");
                            if (span.live()) {
                                span.attr(
                                    "workload",
                                    spec_.workloads[w].name());
                                span.attr(
                                    "scheme",
                                    schemeName(spec_.schemes[s]));
                                span.attr(
                                    "shard",
                                    static_cast<std::uint64_t>(i));
                                span.attr(
                                    "shards",
                                    static_cast<std::uint64_t>(
                                        shards->plan.size()));
                            }
                            try {
                                shards->parts[i] =
                                    shared->runInterval(
                                        spec_.schemes[s],
                                        shards->plan[i],
                                        oracles
                                            ? &oracles->get(
                                                  i, *shared,
                                                  shards->plan[i])
                                            : nullptr);
                            } catch (const std::exception &e) {
                                ACIC_FATAL(e.what());
                            }
                            shards->seconds[i] =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::
                                        now() -
                                    start)
                                    .count();
                            emitPoolGauges(pool);
                            if (shards->remaining.fetch_sub(1) != 1)
                                return;
                            // Last shard: merge and publish.
                            CellResult cell;
                            cell.workloadIndex = w;
                            cell.schemeIndex = s;
                            cell.result =
                                mergeSimResults(shards->parts);
                            for (const double secs :
                                 shards->seconds)
                                cell.hostSeconds += secs;
                            finishCell(cell, submitNextPrepare);
                        });
                    }
                }
            });
        };

    const std::size_t window = std::min(
        n_workloads, std::max<std::size_t>(threads, 1));
    for (std::size_t i = 0; i < window; ++i)
        submitNextPrepare();

    pool.wait();
    return cells;
}

SimResult
runShardedCell(const SharedWorkload &workload,
               const SchemeSpec &scheme, unsigned intervals,
               std::uint64_t warmup, unsigned threads,
               std::uint64_t warmHorizon)
{
    const std::uint64_t total = workload.instructions();
    const auto measure_begin = static_cast<std::uint64_t>(
        static_cast<double>(total) *
        workload.config().warmupFraction);
    const std::vector<SimInterval> plan = planIntervals(
        measure_begin, total, intervals, warmup, warmHorizon);
    if (plan.size() <= 1)
        return workload.run(scheme);
    std::vector<SimResult> parts(plan.size());
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool.submit([&workload, &scheme, &plan, &parts, i] {
            try {
                parts[i] = workload.runInterval(scheme, plan[i]);
            } catch (const std::exception &e) {
                ACIC_FATAL(e.what());
            }
        });
    }
    pool.wait();
    return mergeSimResults(parts);
}

} // namespace acic
