#include "driver/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "driver/thread_pool.hh"
#include "trace/io.hh"

namespace acic {

ExperimentDriver::ExperimentDriver(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    ACIC_ASSERT(!spec_.workloads.empty(),
                "experiment spec names no workloads");
    ACIC_ASSERT(!spec_.schemes.empty(),
                "experiment spec names no schemes");
}

std::shared_ptr<const SharedWorkload>
ExperimentDriver::prepareWorkload(const WorkloadEntry &entry) const
{
    if (entry.source == WorkloadSource::TraceFile) {
        FileTraceSource file(entry.path);
        return std::make_shared<SharedWorkload>(file, spec_.config);
    }
    if (!spec_.traceDir.empty()) {
        const std::string path = spec_.traceDir + "/" +
                                 entry.name() +
                                 TraceFormat::suffix();
        FileTraceSource file(path);
        return std::make_shared<SharedWorkload>(file, spec_.config);
    }
    // Precedence: explicit spec override > ACIC_TRACE_LEN > preset.
    WorkloadParams effective =
        WorkloadContext::withEnvOverrides(entry.params);
    if (spec_.instructions != 0)
        effective.instructions = spec_.instructions;
    return std::make_shared<SharedWorkload>(std::move(effective),
                                            spec_.config);
}

namespace {

/** Shared bookkeeping of one ExperimentDriver::run() invocation. */
struct RunState
{
    explicit RunState(std::size_t n_workloads)
        : remainingCells(
              std::make_unique<std::atomic<std::size_t>[]>(
                  n_workloads)),
          nextWorkload(0)
    {
    }

    /** Unfinished cells per workload; 0 releases its trace image. */
    std::unique_ptr<std::atomic<std::size_t>[]> remainingCells;
    /** Next workload index to prepare. */
    std::atomic<std::size_t> nextWorkload;
    std::mutex observerMutex;
};

} // namespace

std::vector<CellResult>
ExperimentDriver::run(const Observer &observer)
{
    const std::size_t n_workloads = spec_.workloads.size();
    const std::size_t n_schemes = spec_.schemes.size();
    std::vector<CellResult> cells(spec_.cellCount());

    ThreadPool pool(spec_.threads);
    const std::size_t threads = pool.threads();
    RunState state(n_workloads);
    for (std::size_t w = 0; w < n_workloads; ++w)
        state.remainingCells[w] = n_schemes;

    // A prepare task builds one workload's shared trace + oracle and
    // fans its row's scheme cells back into the same pool. Prepares
    // are released in a sliding window of ~thread-count workloads —
    // the last cell of a finished workload submits the next prepare —
    // so preparation overlaps simulation while the number of live
    // (materialized) trace images stays bounded by the thread count,
    // not the workload count.
    std::function<void()> submitNextPrepare =
        [&]() {
            const std::size_t w = state.nextWorkload.fetch_add(1);
            if (w >= n_workloads)
                return;
            pool.submit([this, w, n_schemes, &cells, &pool,
                         &observer, &state, &submitNextPrepare] {
                const auto shared =
                    prepareWorkload(spec_.workloads[w]);
                for (std::size_t s = 0; s < n_schemes; ++s) {
                    pool.submit([this, w, s, n_schemes, shared,
                                 &cells, &observer, &state,
                                 &submitNextPrepare] {
                        const auto start =
                            std::chrono::steady_clock::now();
                        CellResult cell;
                        cell.workloadIndex = w;
                        cell.schemeIndex = s;
                        try {
                            cell.result =
                                shared->run(spec_.schemes[s]);
                        } catch (const std::exception &e) {
                            // Specs are pre-validated against the
                            // default SimConfig only; a builder
                            // rejecting the run-time config must
                            // fail loudly, not std::terminate the
                            // pool on an escaping exception.
                            ACIC_FATAL(e.what());
                        }
                        cell.hostSeconds =
                            std::chrono::duration<double>(
                                std::chrono::steady_clock::now() -
                                start)
                                .count();
                        cells[w * n_schemes + s] = cell;
                        if (observer) {
                            std::lock_guard<std::mutex> lock(
                                state.observerMutex);
                            observer(cells[w * n_schemes + s]);
                        }
                        if (state.remainingCells[w].fetch_sub(1) ==
                            1)
                            submitNextPrepare();
                    });
                }
            });
        };

    const std::size_t window = std::min(
        n_workloads, std::max<std::size_t>(threads, 1));
    for (std::size_t i = 0; i < window; ++i)
        submitNextPrepare();

    pool.wait();
    return cells;
}

} // namespace acic
