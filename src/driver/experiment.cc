#include "driver/experiment.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>

#include "common/logging.hh"
#include "common/telemetry.hh"
#include "driver/thread_pool.hh"
#include "trace/io.hh"

namespace acic {

namespace {

/**
 * Pool-health gauges emitted as each cell/shard task finishes: how
 * deep the work queue is and what fraction of workers is busy. Cheap
 * (two locked size reads) and only on the cold per-task epilogue.
 */
void
emitPoolGauges(const ThreadPool &pool)
{
    if (!Telemetry::enabled())
        return;
    Telemetry::gauge("driver.queue_depth",
                     static_cast<double>(pool.queued()));
    const unsigned threads = pool.threads();
    if (threads > 0)
        Telemetry::gauge("driver.pool_utilization",
                         static_cast<double>(pool.running()) /
                             threads);
}

} // namespace

ExperimentDriver::ExperimentDriver(ExperimentSpec spec)
    : spec_(std::move(spec))
{
    ACIC_ASSERT(!spec_.workloads.empty(),
                "experiment spec names no workloads");
    ACIC_ASSERT(!spec_.schemes.empty(),
                "experiment spec names no schemes");
}

std::shared_ptr<const SharedWorkload>
ExperimentDriver::prepareWorkload(const WorkloadEntry &entry) const
{
    if (entry.source == WorkloadSource::TraceFile) {
        FileTraceSource file(entry.path);
        return std::make_shared<SharedWorkload>(file, spec_.config);
    }
    if (!spec_.traceDir.empty()) {
        const std::string path = spec_.traceDir + "/" +
                                 entry.name() +
                                 TraceFormat::suffix();
        FileTraceSource file(path);
        return std::make_shared<SharedWorkload>(file, spec_.config);
    }
    // Precedence: explicit spec override > ACIC_TRACE_LEN > preset.
    WorkloadParams effective =
        WorkloadContext::withEnvOverrides(entry.params);
    if (spec_.instructions != 0)
        effective.instructions = spec_.instructions;
    return std::make_shared<SharedWorkload>(std::move(effective),
                                            spec_.config);
}

namespace {

/** Shared bookkeeping of one ExperimentDriver::run() invocation. */
struct RunState
{
    explicit RunState(std::size_t n_workloads)
        : remainingCells(
              std::make_unique<std::atomic<std::size_t>[]>(
                  n_workloads)),
          nextWorkload(0)
    {
    }

    /** Unfinished cells per workload; 0 releases its trace image. */
    std::unique_ptr<std::atomic<std::size_t>[]> remainingCells;
    /** Next workload index to prepare. */
    std::atomic<std::size_t> nextWorkload;
    std::mutex observerMutex;
};

/** In-flight shards of one interval-sharded cell. */
struct CellShards
{
    explicit CellShards(std::vector<SimInterval> plan_)
        : plan(std::move(plan_)), parts(plan.size()),
          seconds(plan.size(), 0.0), remaining(plan.size())
    {
    }

    std::vector<SimInterval> plan;
    std::vector<SimResult> parts;     ///< distinct slots, no lock
    std::vector<double> seconds;
    std::atomic<std::size_t> remaining;
};

/**
 * One workload's region oracles, shared by every scheme's shard
 * tasks (the oracle depends only on the region, not the scheme).
 * Built lazily inside the first shard task that needs each region,
 * so the builds run on the pool instead of serializing the prepare
 * task.
 */
struct ShardOracles
{
    explicit ShardOracles(std::size_t n)
        : once(std::make_unique<std::once_flag[]>(n)), oracles(n)
    {
    }

    const DemandOracle &get(std::size_t i, const SharedWorkload &w,
                            const SimInterval &interval)
    {
        std::call_once(once[i], [&] {
            oracles[i] = w.buildIntervalOracle(interval);
        });
        return oracles[i];
    }

    std::unique_ptr<std::once_flag[]> once;
    std::vector<DemandOracle> oracles;
};

} // namespace

std::vector<CellResult>
ExperimentDriver::run(const Observer &observer)
{
    const std::size_t n_workloads = spec_.workloads.size();
    const std::size_t n_schemes = spec_.schemes.size();
    std::vector<CellResult> cells(spec_.cellCount());

    ThreadPool pool(spec_.threads);
    const std::size_t threads = pool.threads();
    RunState state(n_workloads);
    for (std::size_t w = 0; w < n_workloads; ++w)
        state.remainingCells[w] = n_schemes;

    // Publish one finished cell: store it, notify the observer, and
    // release the workload's trace image (submitting the next
    // prepare) when its row completes.
    const auto finishCell = [&cells, &state, &observer, n_schemes](
                                const CellResult &cell,
                                const std::function<void()> &next) {
        const std::size_t idx =
            cell.workloadIndex * n_schemes + cell.schemeIndex;
        cells[idx] = cell;
        if (observer) {
            std::lock_guard<std::mutex> lock(state.observerMutex);
            observer(cells[idx]);
        }
        if (state.remainingCells[cell.workloadIndex].fetch_sub(1) ==
            1)
            next();
    };

    // A prepare task builds one workload's shared trace + oracle and
    // fans its row's scheme cells back into the same pool — as one
    // monolithic task per cell (intervals <= 1, the bit-identical
    // legacy path), or as one task per interval shard, so a long
    // workload's own trace is simulated by many workers at once.
    // Prepares are released in a sliding window of ~thread-count
    // workloads — the last cell of a finished workload submits the
    // next prepare — so preparation overlaps simulation while the
    // number of live (materialized) trace images stays bounded by
    // the thread count, not the workload count.
    std::function<void()> submitNextPrepare =
        [&]() {
            const std::size_t w = state.nextWorkload.fetch_add(1);
            if (w >= n_workloads)
                return;
            pool.submit([this, w, n_schemes, &pool, &state,
                         &finishCell, &submitNextPrepare] {
                std::shared_ptr<const SharedWorkload> shared;
                {
                    TelemetryScope span("driver.prepare");
                    span.attr("workload",
                              spec_.workloads[w].name());
                    shared = prepareWorkload(spec_.workloads[w]);
                }
                std::vector<SimInterval> plan;
                std::shared_ptr<ShardOracles> oracles;
                if (spec_.intervals > 1) {
                    // Shard the same measured region a monolithic
                    // run reports (post-warmupFraction), so merged
                    // results are directly comparable to full runs.
                    const std::uint64_t total =
                        shared->instructions();
                    const auto measure_begin =
                        static_cast<std::uint64_t>(
                            static_cast<double>(total) *
                            spec_.config.warmupFraction);
                    plan = planIntervals(measure_begin, total,
                                         spec_.intervals,
                                         spec_.intervalWarmup,
                                         spec_.warmHorizon);
                    if (plan.size() > 1)
                        oracles = std::make_shared<ShardOracles>(
                            plan.size());
                }
                for (std::size_t s = 0; s < n_schemes; ++s) {
                    if (plan.size() <= 1) {
                        pool.submit([this, w, s, shared, &pool,
                                     &finishCell,
                                     &submitNextPrepare] {
                            const auto start =
                                std::chrono::steady_clock::now();
                            TelemetryScope span("driver.cell");
                            if (span.live()) {
                                span.attr(
                                    "workload",
                                    spec_.workloads[w].name());
                                span.attr(
                                    "scheme",
                                    schemeName(spec_.schemes[s]));
                            }
                            CellResult cell;
                            cell.workloadIndex = w;
                            cell.schemeIndex = s;
                            try {
                                cell.result =
                                    shared->run(spec_.schemes[s]);
                            } catch (const std::exception &e) {
                                // Specs are pre-validated against
                                // the default SimConfig only; a
                                // builder rejecting the run-time
                                // config must fail loudly, not
                                // std::terminate the pool on an
                                // escaping exception.
                                ACIC_FATAL(e.what());
                            }
                            cell.hostSeconds =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::
                                        now() -
                                    start)
                                    .count();
                            emitPoolGauges(pool);
                            finishCell(cell, submitNextPrepare);
                        });
                        continue;
                    }
                    const auto shards =
                        std::make_shared<CellShards>(plan);
                    for (std::size_t i = 0; i < plan.size(); ++i) {
                        pool.submit([this, w, s, i, shared, shards,
                                     oracles, &pool, &finishCell,
                                     &submitNextPrepare] {
                            const auto start =
                                std::chrono::steady_clock::now();
                            TelemetryScope span("driver.shard");
                            if (span.live()) {
                                span.attr(
                                    "workload",
                                    spec_.workloads[w].name());
                                span.attr(
                                    "scheme",
                                    schemeName(spec_.schemes[s]));
                                span.attr(
                                    "shard",
                                    static_cast<std::uint64_t>(i));
                                span.attr(
                                    "shards",
                                    static_cast<std::uint64_t>(
                                        shards->plan.size()));
                            }
                            try {
                                shards->parts[i] =
                                    shared->runInterval(
                                        spec_.schemes[s],
                                        shards->plan[i],
                                        &oracles->get(
                                            i, *shared,
                                            shards->plan[i]));
                            } catch (const std::exception &e) {
                                ACIC_FATAL(e.what());
                            }
                            shards->seconds[i] =
                                std::chrono::duration<double>(
                                    std::chrono::steady_clock::
                                        now() -
                                    start)
                                    .count();
                            emitPoolGauges(pool);
                            if (shards->remaining.fetch_sub(1) != 1)
                                return;
                            // Last shard: merge and publish.
                            CellResult cell;
                            cell.workloadIndex = w;
                            cell.schemeIndex = s;
                            cell.result =
                                mergeSimResults(shards->parts);
                            for (const double secs :
                                 shards->seconds)
                                cell.hostSeconds += secs;
                            finishCell(cell, submitNextPrepare);
                        });
                    }
                }
            });
        };

    const std::size_t window = std::min(
        n_workloads, std::max<std::size_t>(threads, 1));
    for (std::size_t i = 0; i < window; ++i)
        submitNextPrepare();

    pool.wait();
    return cells;
}

SimResult
runShardedCell(const SharedWorkload &workload,
               const SchemeSpec &scheme, unsigned intervals,
               std::uint64_t warmup, unsigned threads,
               std::uint64_t warmHorizon)
{
    const std::uint64_t total = workload.instructions();
    const auto measure_begin = static_cast<std::uint64_t>(
        static_cast<double>(total) *
        workload.config().warmupFraction);
    const std::vector<SimInterval> plan = planIntervals(
        measure_begin, total, intervals, warmup, warmHorizon);
    if (plan.size() <= 1)
        return workload.run(scheme);
    std::vector<SimResult> parts(plan.size());
    ThreadPool pool(threads);
    for (std::size_t i = 0; i < plan.size(); ++i) {
        pool.submit([&workload, &scheme, &plan, &parts, i] {
            try {
                parts[i] = workload.runInterval(scheme, plan[i]);
            } catch (const std::exception &e) {
                ACIC_FATAL(e.what());
            }
        });
    }
    pool.wait();
    return mergeSimResults(parts);
}

} // namespace acic
