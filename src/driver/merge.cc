#include "driver/merge.hh"

#include <cstdint>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "common/json.hh"

namespace acic {

namespace {

[[noreturn]] void
fail(const std::string &path, const std::string &what)
{
    throw std::runtime_error("merge: " + path + ": " + what);
}

std::vector<std::string>
stringArray(const std::string &path, const json::Value &doc,
            const std::string &key)
{
    const json::Value *arr = doc.find(key);
    if (arr == nullptr || arr->kind != json::Value::Kind::Array)
        fail(path, "missing \"" + key + "\" array");
    std::vector<std::string> out;
    out.reserve(arr->items.size());
    for (const json::Value &item : arr->items) {
        if (item.kind != json::Value::Kind::String)
            fail(path, "\"" + key + "\" holds a non-string entry");
        out.push_back(item.str);
    }
    return out;
}

/** Counter field as u64; sweep counters stay far below 2^53, so the
 *  double round-trip through JSON is exact. */
std::uint64_t
u64Field(const std::string &path, const json::Value &cell,
         const std::string &key)
{
    const json::Value *v = cell.find(key);
    if (v == nullptr || v->kind != json::Value::Kind::Number)
        fail(path, "cell is missing numeric field \"" + key + "\"");
    return static_cast<std::uint64_t>(v->number);
}

} // namespace

MergedSweep
mergeShardOutputs(const std::vector<std::string> &paths)
{
    if (paths.empty())
        throw std::runtime_error("merge: no shard files given");

    MergedSweep merged;
    std::map<std::string, std::size_t> workloadIndex;
    std::map<std::string, std::size_t> schemeIndex;
    std::vector<ResultRow> slots;
    std::vector<bool> filled;
    std::vector<std::string> filledBy;

    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in)
            fail(path, "cannot open file");
        std::ostringstream text;
        text << in.rdbuf();

        json::Value doc;
        std::string err;
        if (!json::parse(text.str(), doc, &err))
            fail(path, "malformed JSON (" + err + ")");
        const json::Value *format = doc.find("format");
        if (format == nullptr ||
            format->kind != json::Value::Kind::Number ||
            format->number != 1.0)
            fail(path, "unsupported results format (this build "
                       "merges format 1)");

        const std::vector<std::string> workloads =
            stringArray(path, doc, "workloads");
        const std::vector<std::string> schemes =
            stringArray(path, doc, "schemes");
        if (merged.workloads.empty() && merged.schemes.empty()) {
            merged.workloads = workloads;
            merged.schemes = schemes;
            for (std::size_t i = 0; i < workloads.size(); ++i)
                workloadIndex[workloads[i]] = i;
            for (std::size_t i = 0; i < schemes.size(); ++i)
                schemeIndex[schemes[i]] = i;
            const std::size_t cells =
                workloads.size() * schemes.size();
            slots.resize(cells);
            filled.assign(cells, false);
            filledBy.assign(cells, std::string());
        } else if (workloads != merged.workloads ||
                   schemes != merged.schemes) {
            fail(path, "shard describes a different sweep matrix "
                       "than " +
                           paths.front() +
                           " (workload/scheme lists differ)");
        }

        const json::Value *cells = doc.find("cells");
        if (cells == nullptr ||
            cells->kind != json::Value::Kind::Array)
            fail(path, "missing \"cells\" array");
        for (const json::Value &cell : cells->items) {
            if (!cell.isObject())
                fail(path, "\"cells\" holds a non-object entry");
            const std::string workload = cell.text("workload");
            const std::string scheme = cell.text("scheme");
            const auto wIt = workloadIndex.find(workload);
            const auto sIt = schemeIndex.find(scheme);
            if (wIt == workloadIndex.end() ||
                sIt == schemeIndex.end())
                fail(path, "cell (" + workload + ", " + scheme +
                               ") is not in the sweep matrix");
            const std::size_t idx =
                wIt->second * merged.schemes.size() + sIt->second;
            if (filled[idx])
                fail(path, "cell (" + workload + ", " + scheme +
                               ") already provided by " +
                               filledBy[idx] +
                               " (duplicate shard output?)");

            ResultRow row;
            row.workload = workload;
            row.scheme = scheme;
            SimResult &r = row.result;
            r.instructions = u64Field(path, cell, "instructions");
            r.cycles = u64Field(path, cell, "cycles");
            r.demandAccesses =
                u64Field(path, cell, "demand_accesses");
            r.l1iMisses = u64Field(path, cell, "l1i_misses");
            r.branchMispredicts =
                u64Field(path, cell, "branch_mispredicts");
            r.btbMisses = u64Field(path, cell, "btb_misses");
            r.prefetchesIssued =
                u64Field(path, cell, "prefetches_issued");
            r.latePrefetches =
                u64Field(path, cell, "late_prefetches");
            r.l2Accesses = u64Field(path, cell, "l2_accesses");
            r.l3Accesses = u64Field(path, cell, "l3_accesses");
            r.dramAccesses = u64Field(path, cell, "dram_accesses");
            const json::Value *host = cell.find("host_seconds");
            if (host == nullptr ||
                host->kind != json::Value::Kind::Number)
                fail(path, "cell is missing \"host_seconds\"");
            row.hostSeconds = host->number;
            const json::Value *org = cell.find("org_stats");
            if (org == nullptr || !org->isObject())
                fail(path, "cell is missing \"org_stats\"");
            for (const auto &[name, value] : org->fields) {
                if (value.kind != json::Value::Kind::Number)
                    fail(path, "org_stats counter \"" + name +
                                   "\" is not a number");
                r.orgStats.bump(
                    name,
                    static_cast<std::uint64_t>(value.number));
            }

            slots[idx] = std::move(row);
            filled[idx] = true;
            filledBy[idx] = path;
        }
    }

    std::size_t missing = 0;
    std::string firstMissing;
    for (std::size_t w = 0; w < merged.workloads.size(); ++w)
        for (std::size_t s = 0; s < merged.schemes.size(); ++s) {
            const std::size_t idx = w * merged.schemes.size() + s;
            if (filled[idx])
                continue;
            ++missing;
            if (firstMissing.empty())
                firstMissing = "(" + merged.workloads[w] + ", " +
                               merged.schemes[s] + ")";
        }
    if (missing != 0)
        throw std::runtime_error(
            "merge: " + std::to_string(missing) +
            " cell(s) of the sweep matrix are missing from the "
            "given shards, first " +
            firstMissing +
            " — pass every shard's output (one --shard i/N run per "
            "i)");

    merged.rows = std::move(slots);
    return merged;
}

} // namespace acic
