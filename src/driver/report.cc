#include "driver/report.hh"

#include <algorithm>
#include <cstdint>
#include <istream>
#include <map>
#include <ostream>
#include <vector>

#include "common/json.hh"
#include "common/table.hh"

namespace acic {

namespace {

/** Aggregate of every span sharing one name. */
struct SpanStats
{
    std::uint64_t count = 0;
    std::uint64_t totalUs = 0;
    std::uint64_t maxUs = 0;
};

/** Aggregate of one (workload, scheme) cell's simulation spans. */
struct CellStats
{
    std::string workload;
    std::string scheme;
    std::uint64_t totalUs = 0;
    std::uint64_t spans = 0; ///< 1 monolithic, else shard count
};

/** Running min/mean/max of one gauge name. */
struct GaugeStats
{
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    void add(double v)
    {
        if (count == 0) {
            min = max = v;
        } else {
            min = std::min(min, v);
            max = std::max(max, v);
        }
        sum += v;
        ++count;
    }
};

std::string
fmtSeconds(double us)
{
    return TablePrinter::fmt(us / 1e6, 3);
}

} // namespace

bool
writeTelemetryReport(std::istream &in, std::ostream &out,
                     const ReportOptions &options,
                     std::string &error)
{
    std::map<std::string, SpanStats> spans;
    std::map<std::pair<std::string, std::string>, CellStats> cells;
    std::map<std::string, GaugeStats> gauges;

    // Heartbeat aggregates, instruction-weighted where a mean over
    // windows would over-count short ones.
    std::uint64_t heartbeats = 0;
    double hbInsts = 0.0;
    double hbWallSecs = 0.0; ///< re-derived: window_insts/minst_per_s
    double hbMpkiWeighted = 0.0;
    double hbIpcWeighted = 0.0;

    std::uint64_t events = 0;
    std::uint64_t badLines = 0;
    std::uint64_t minT = ~std::uint64_t{0};
    std::uint64_t maxT = 0;

    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        json::Value ev;
        if (!json::parse(line, ev) || !ev.isObject()) {
            ++badLines;
            continue;
        }
        const std::string kind = ev.text("ev");
        if (kind.empty()) {
            ++badLines;
            continue;
        }
        ++events;
        const auto tUs =
            static_cast<std::uint64_t>(ev.num("t_us", 0.0));
        const auto durUs =
            static_cast<std::uint64_t>(ev.num("dur_us", 0.0));
        minT = std::min(minT, tUs);
        maxT = std::max(maxT, tUs + durUs);

        if (kind == "span") {
            const std::string name = ev.text("name");
            SpanStats &s = spans[name];
            ++s.count;
            s.totalUs += durUs;
            s.maxUs = std::max(s.maxUs, durUs);
            if (name == "driver.cell" || name == "driver.shard") {
                const json::Value *attrs = ev.find("attrs");
                if (attrs) {
                    const std::string workload =
                        attrs->text("workload");
                    const std::string scheme = attrs->text("scheme");
                    CellStats &c = cells[{workload, scheme}];
                    c.workload = workload;
                    c.scheme = scheme;
                    c.totalUs += durUs;
                    ++c.spans;
                }
            }
        } else if (kind == "count") {
            if (ev.text("name") == "engine.heartbeat") {
                const json::Value *attrs = ev.find("attrs");
                if (attrs) {
                    const double wInsts =
                        attrs->num("window_insts");
                    const double rate =
                        attrs->num("minst_per_s");
                    ++heartbeats;
                    hbInsts += wInsts;
                    if (rate > 0.0)
                        hbWallSecs += wInsts / 1e6 / rate;
                    hbMpkiWeighted +=
                        attrs->num("window_mpki") * wInsts;
                    hbIpcWeighted +=
                        attrs->num("window_ipc") * wInsts;
                }
            }
        } else if (kind == "gauge") {
            gauges[ev.text("name")].add(ev.num("value"));
        }
        // "meta" and unknown kinds only count toward `events`.
    }

    if (events == 0) {
        error = badLines > 0
                    ? "no parseable telemetry event (is this a "
                      "telemetry JSONL file?)"
                    : "empty telemetry file";
        return false;
    }

    const double wallUs =
        maxT >= minT ? static_cast<double>(maxT - minT) : 0.0;
    out << "telemetry: " << events << " events";
    if (badLines > 0)
        out << " (" << badLines << " unparseable lines skipped)";
    out << ", spanning " << TablePrinter::fmt(wallUs / 1e6, 3)
        << "s\n\n";

    if (!spans.empty()) {
        // Order phases by where the time went. Percentages are of
        // the observed wall span; nested spans overlap on purpose
        // (engine.* time is inside driver.* time), so columns do not
        // sum to 100%.
        std::vector<std::pair<std::string, SpanStats>> ordered(
            spans.begin(), spans.end());
        std::sort(ordered.begin(), ordered.end(),
                  [](const auto &a, const auto &b) {
                      return a.second.totalUs > b.second.totalUs;
                  });
        TablePrinter table("Phase time breakdown");
        table.setHeader({"span", "count", "total s", "mean ms",
                         "max ms", "% of wall"});
        for (const auto &[name, s] : ordered) {
            table.addRow(
                {name, std::to_string(s.count),
                 fmtSeconds(static_cast<double>(s.totalUs)),
                 TablePrinter::fmt(
                     static_cast<double>(s.totalUs) / 1e3 /
                         static_cast<double>(s.count),
                     2),
                 TablePrinter::fmt(
                     static_cast<double>(s.maxUs) / 1e3, 2),
                 wallUs > 0.0
                     ? TablePrinter::fmt(
                           100.0 * static_cast<double>(s.totalUs) /
                               wallUs,
                           1)
                     : "-"});
        }
        table.addNote("spans nest (engine phases run inside driver "
                      "cells), so percentages overlap");
        out << table.str() << "\n";
    }

    if (!cells.empty()) {
        std::vector<CellStats> slowest;
        slowest.reserve(cells.size());
        for (const auto &[key, c] : cells)
            slowest.push_back(c);
        std::sort(slowest.begin(), slowest.end(),
                  [](const CellStats &a, const CellStats &b) {
                      return a.totalUs > b.totalUs;
                  });
        if (slowest.size() > options.topCells)
            slowest.resize(options.topCells);
        TablePrinter table(
            "Slowest cells (summed simulation seconds)");
        table.setHeader({"workload", "scheme", "sim s", "spans"});
        for (const CellStats &c : slowest)
            table.addRow({c.workload, c.scheme,
                          fmtSeconds(static_cast<double>(c.totalUs)),
                          std::to_string(c.spans)});
        table.addNote("interval-sharded cells sum their shard spans "
                      "(work, not elapsed span)");
        out << table.str() << "\n";
    }

    if (heartbeats > 0) {
        TablePrinter table("Heartbeats (rolling-window snapshots)");
        table.setHeader({"heartbeats", "insts covered",
                         "aggregate Minst/s", "mean window MPKI",
                         "mean window IPC"});
        table.addRow(
            {std::to_string(heartbeats),
             TablePrinter::fmt(hbInsts / 1e6, 2) + "M",
             hbWallSecs > 0.0
                 ? TablePrinter::fmt(hbInsts / 1e6 / hbWallSecs, 2)
                 : "-",
             hbInsts > 0.0
                 ? TablePrinter::fmt(hbMpkiWeighted / hbInsts, 2)
                 : "-",
             hbInsts > 0.0
                 ? TablePrinter::fmt(hbIpcWeighted / hbInsts, 3)
                 : "-"});
        table.addNote("window means are instruction-weighted; "
                      "aggregate rate sums concurrent engines");
        out << table.str() << "\n";
    }

    if (!gauges.empty()) {
        TablePrinter table("Gauges");
        table.setHeader({"gauge", "samples", "min", "mean", "max"});
        for (const auto &[name, g] : gauges)
            table.addRow({name, std::to_string(g.count),
                          TablePrinter::fmt(g.min, 2),
                          TablePrinter::fmt(
                              g.sum / static_cast<double>(g.count),
                              2),
                          TablePrinter::fmt(g.max, 2)});
        out << table.str() << "\n";
    }

    return true;
}

} // namespace acic
