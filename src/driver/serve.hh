/**
 * @file
 * `acic_run serve` — streaming live-traffic simulation service
 * (DESIGN.md section 12) — and `acic_run stream`, the matching
 * framed-stream producer.
 *
 * serve attaches one resident SimEngine per scheme to a single-pass
 * framed instruction stream (stdin, a FIFO, or any readable path),
 * fans the stream out through a StreamTee so every engine sees the
 * identical record sequence, steps the engines in bounded lockstep
 * rounds (memory stays bounded by the ring + tee backlog, not the
 * stream length), and periodically emits rolling-window statistics
 * as JSON lines. Rounds run one-engine-per-task on a thread pool
 * with a barrier at each round boundary, so N resident schemes cost
 * about one scheme of wall time on N cores while every output stays
 * deterministic (the engines are independent and each round's input
 * is pre-buffered). On a clean end-of-stream it prints the same
 * final statistics `acic_run run` computes over the equivalent
 * materialized trace — byte-identical when run is given
 * --no-oracle, since a single-pass stream can never build the
 * Belady oracle.
 *
 * stream is the producer side: it frames a synthetic workload or an
 * existing `.acictrace` file onto stdout (or --out), so
 *
 *   acic_run stream --workloads web_search | acic_run serve - \
 *       --schemes acic,lru
 *
 * is a complete live pipeline.
 */

#ifndef ACIC_DRIVER_SERVE_HH
#define ACIC_DRIVER_SERVE_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

namespace acic {

class SimEngine;
class StreamTee;
class StreamingTraceSource;
struct SimConfig;

/** Options of `acic_run serve` (defaults match the CLI help). */
struct ServeOptions
{
    /** Stream input: "-" (stdin), "pipe:PATH", or a path. */
    std::string input;
    /** Comma-separated scheme list (registry spec strings). */
    std::string schemes;
    /** Warmup instructions before measurement starts (absolute
     *  count; a live stream has no known length to take a fraction
     *  of). */
    std::uint64_t warmup = 0;
    /** Rolling-window width in instructions. */
    std::uint64_t window = 1'000'000;
    /** Lockstep round granularity in instructions. */
    std::uint64_t step = 65'536;
    /** Ingest ring capacity in records. */
    std::uint64_t ring = 65'536;
    /** Engine-round worker threads: 0 = one per scheme up to the
     *  hardware concurrency; 1 = serial rounds. Any value produces
     *  identical output — threads trade wall time only. */
    unsigned threads = 0;
    /** Rolling-stats JSONL destination ("" = stdout). */
    std::string statsOut;
    /** Print the golden-corpus stats dump after the final stats. */
    bool dumpStats = false;
    /** Suppress the human-readable summary on stderr. */
    bool quiet = false;
};

/** Tuning of one lockstep-round run (see runLockstepRounds). */
struct LockstepOptions
{
    /** Warmup instructions (clipped to what the stream carries). */
    std::uint64_t warmup = 0;
    /** Window width for the onWindow callback; 0 = no windows. */
    std::uint64_t window = 0;
    /** Round granularity in instructions. */
    std::uint64_t step = 65'536;
    /** Worker threads: 0 = one per engine up to the hardware
     *  concurrency; 1 = serial rounds on the calling thread. */
    unsigned threads = 0;
    /** Per-engine labels for the round-lag telemetry gauges
     *  (optional; sized like the engine vector when present). */
    std::vector<std::string> labels;
};

/** What a lockstep-round run actually did. */
struct LockstepResult
{
    /** Warmup instructions applied (= options.warmup unless the
     *  stream ended first). */
    std::uint64_t warm = 0;
    /** Absolute retire target every engine reached. */
    std::uint64_t target = 0;
    /** True when the stop flag ended the run. */
    bool stopped = false;
};

/**
 * Drive every engine over the tee'd stream in clipped lockstep
 * rounds: warm up, then repeatedly pre-buffer one step (plus the
 * walker's lookahead slack) and measure() it on every engine — in
 * parallel on a thread pool when options.threads allows — with a
 * barrier per round. @p onWindow, when set, fires at each window
 * boundary (at a barrier, engines quiescent) with the absolute
 * boundary target. @p stop aborts between rounds; @p ring_source,
 * when set, feeds the ring-occupancy telemetry gauge. Engine
 * exceptions and upstream stream errors propagate to the caller.
 *
 * This is the shared core of `acic_run serve` and the bench serve
 * scaling lane.
 */
LockstepResult
runLockstepRounds(StreamTee &tee,
                  std::vector<std::unique_ptr<SimEngine>> &engines,
                  const SimConfig &config,
                  const LockstepOptions &options,
                  const std::function<void(std::uint64_t)> &onWindow,
                  const std::atomic<bool> *stop,
                  StreamingTraceSource *ring_source);

/**
 * Run the serve loop. @return process exit code: 0 on clean
 * end-of-stream or SIGTERM/SIGINT shutdown; throws (mapped to exit
 * 1 by main's catch-all) on a malformed or truncated stream.
 */
int runServe(const ServeOptions &options);

/** Options of `acic_run stream`. */
struct StreamGenOptions
{
    /** Synthetic catalog workload to generate ("" with trace set). */
    std::string workload;
    /** Existing .acictrace file to re-frame ("" with workload set). */
    std::string trace;
    /** Instruction-count override for synthetic workloads (0 =
     *  preset length). */
    std::uint64_t instructions = 0;
    /** Output path ("" = stdout). */
    std::string out;
    /** Records per frame. */
    std::uint32_t frameRecords = 4096;
};

/** Produce a framed stream. @return process exit code. */
int runStreamGen(const StreamGenOptions &options);

} // namespace acic

#endif // ACIC_DRIVER_SERVE_HH
