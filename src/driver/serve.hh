/**
 * @file
 * `acic_run serve` — streaming live-traffic simulation service
 * (DESIGN.md section 12) — and `acic_run stream`, the matching
 * framed-stream producer.
 *
 * serve attaches one resident SimEngine per scheme to a single-pass
 * framed instruction stream (stdin, a FIFO, or any readable path),
 * fans the stream out through a StreamTee so every engine sees the
 * identical record sequence, steps the engines in bounded lockstep
 * rounds (memory stays bounded by the ring + tee backlog, not the
 * stream length), and periodically emits rolling-window statistics
 * as JSON lines. On a clean end-of-stream it prints the same final
 * statistics `acic_run run` computes over the equivalent
 * materialized trace — byte-identical when run is given
 * --no-oracle, since a single-pass stream can never build the
 * Belady oracle.
 *
 * stream is the producer side: it frames a synthetic workload or an
 * existing `.acictrace` file onto stdout (or --out), so
 *
 *   acic_run stream --workloads web_search | acic_run serve - \
 *       --schemes acic,lru
 *
 * is a complete live pipeline.
 */

#ifndef ACIC_DRIVER_SERVE_HH
#define ACIC_DRIVER_SERVE_HH

#include <cstdint>
#include <string>

namespace acic {

/** Options of `acic_run serve` (defaults match the CLI help). */
struct ServeOptions
{
    /** Stream input: "-" (stdin), "pipe:PATH", or a path. */
    std::string input;
    /** Comma-separated scheme list (registry spec strings). */
    std::string schemes;
    /** Warmup instructions before measurement starts (absolute
     *  count; a live stream has no known length to take a fraction
     *  of). */
    std::uint64_t warmup = 0;
    /** Rolling-window width in instructions. */
    std::uint64_t window = 1'000'000;
    /** Lockstep round granularity in instructions. */
    std::uint64_t step = 65'536;
    /** Ingest ring capacity in records. */
    std::uint64_t ring = 65'536;
    /** Rolling-stats JSONL destination ("" = stdout). */
    std::string statsOut;
    /** Print the golden-corpus stats dump after the final stats. */
    bool dumpStats = false;
    /** Suppress the human-readable summary on stderr. */
    bool quiet = false;
};

/**
 * Run the serve loop. @return process exit code: 0 on clean
 * end-of-stream or SIGTERM/SIGINT shutdown; throws (mapped to exit
 * 1 by main's catch-all) on a malformed or truncated stream.
 */
int runServe(const ServeOptions &options);

/** Options of `acic_run stream`. */
struct StreamGenOptions
{
    /** Synthetic catalog workload to generate ("" with trace set). */
    std::string workload;
    /** Existing .acictrace file to re-frame ("" with workload set). */
    std::string trace;
    /** Instruction-count override for synthetic workloads (0 =
     *  preset length). */
    std::uint64_t instructions = 0;
    /** Output path ("" = stdout). */
    std::string out;
    /** Records per frame. */
    std::uint32_t frameRecords = 4096;
};

/** Produce a framed stream. @return process exit code. */
int runStreamGen(const StreamGenOptions &options);

} // namespace acic

#endif // ACIC_DRIVER_SERVE_HH
