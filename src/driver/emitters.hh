/**
 * @file
 * Result emitters for the experiment driver: a flat CSV (one row per
 * cell, the shape the paper's plotting scripts want) and a structured
 * JSON document including every organization-specific counter. Both
 * write to any std::ostream.
 */

#ifndef ACIC_DRIVER_EMITTERS_HH
#define ACIC_DRIVER_EMITTERS_HH

#include <iosfwd>
#include <string>
#include <vector>

#include "driver/experiment.hh"

namespace acic {

/**
 * Emit one CSV row per cell, workload-major, with a header row.
 * Columns: workload, scheme, instructions, cycles, ipc, mpki,
 * demand_accesses, l1i_misses, branch_mispredicts, btb_misses,
 * prefetches_issued, late_prefetches, l2_accesses, l3_accesses,
 * dram_accesses, host_seconds.
 */
void writeResultsCsv(std::ostream &out, const ExperimentSpec &spec,
                     const std::vector<CellResult> &cells);

/**
 * Emit a JSON document:
 * {"format": 1, "workloads": [...], "schemes": [...],
 *  "cells": [{... per-cell metrics ..., "org_stats": {...}}]}
 */
void writeResultsJson(std::ostream &out, const ExperimentSpec &spec,
                      const std::vector<CellResult> &cells);

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/**
 * Emit the complete, deterministic statistics dump of one run: the
 * headline SimResult counters in a fixed order followed by every
 * organization counter ("org."-prefixed, sorted by name). This is the
 * golden-corpus format — `acic_run run --dump-stats` writes it and
 * tests/test_golden_runs.cc diffs live runs against fixtures captured
 * with it — so any change to a line here invalidates tests/golden/.
 */
void writeGoldenDump(std::ostream &out, const SimResult &result);

} // namespace acic

#endif // ACIC_DRIVER_EMITTERS_HH
