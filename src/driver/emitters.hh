/**
 * @file
 * Result emitters for the experiment driver: a flat CSV (one row per
 * cell, the shape the paper's plotting scripts want) and a structured
 * JSON document including every organization-specific counter. Both
 * write to any std::ostream.
 */

#ifndef ACIC_DRIVER_EMITTERS_HH
#define ACIC_DRIVER_EMITTERS_HH

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "driver/experiment.hh"

namespace acic {

/**
 * One emitted result row: the display labels plus the metrics. The
 * spec-based writers build rows from (spec, cells); `acic_run merge`
 * rebuilds them from per-shard JSON documents — both paths feed the
 * same row writers, so a merged sweep is byte-identical to a
 * monolithic one.
 */
struct ResultRow
{
    std::string workload; ///< display name (CSV/JSON label)
    std::string scheme;   ///< display name (CSV/JSON label)
    SimResult result;
    double hostSeconds = 0.0;
};

/**
 * The completed cells of a run as emission rows, in the stored
 * (workload-major) order. Cells with done == false — the cells a
 * sharded process does not own — are skipped.
 */
std::vector<ResultRow>
resultRows(const ExperimentSpec &spec,
           const std::vector<CellResult> &cells);

/**
 * Emit one CSV row per entry, with a header row. Columns: workload,
 * scheme, instructions, cycles, ipc, mpki, demand_accesses,
 * l1i_misses, branch_mispredicts, btb_misses, prefetches_issued,
 * late_prefetches, l2_accesses, l3_accesses, dram_accesses,
 * host_seconds.
 */
void writeCsvRows(std::ostream &out,
                  const std::vector<ResultRow> &rows);

/**
 * Emit a JSON document:
 * {"format": 1, "workloads": [...], "schemes": [...],
 *  "cells": [{... per-row metrics ..., "org_stats": {...}}]}
 * @p workloads / @p schemes are the header arrays (display names,
 * full matrix), independent of which rows are present.
 */
void writeJsonRows(std::ostream &out,
                   const std::vector<std::string> &workloads,
                   const std::vector<std::string> &schemes,
                   const std::vector<ResultRow> &rows);

/** writeCsvRows over resultRows(spec, cells). */
void writeResultsCsv(std::ostream &out, const ExperimentSpec &spec,
                     const std::vector<CellResult> &cells);

/** writeJsonRows over resultRows(spec, cells). */
void writeResultsJson(std::ostream &out, const ExperimentSpec &spec,
                      const std::vector<CellResult> &cells);

/** Escape @p s for inclusion in a JSON string literal. */
std::string jsonEscape(const std::string &s);

/** One measurement row of a bench binary (writeBenchJson). */
struct BenchRow
{
    /** Row label, e.g. the scheme display name. */
    std::string label;
    /** Host seconds of the measured run (best repetition). */
    double seconds = 0.0;
    /** Simulated instructions per host second, in millions. */
    double minstPerSec = 0.0;
};

/**
 * Emit a machine-readable bench result document so the performance
 * trajectory is tracked across PRs (CI archives BENCH_*.json):
 * {"format": 1, "bench": ..., "meta": {...}, "rows": [
 *   {"label": ..., "seconds": ..., "minst_per_sec": ...}]}
 * @p meta carries free-form context (workload, instructions,
 * repetitions, threads), emitted in the given order.
 */
void writeBenchJson(
    std::ostream &out, const std::string &bench,
    const std::vector<std::pair<std::string, std::string>> &meta,
    const std::vector<BenchRow> &rows);

/**
 * Emit the complete, deterministic statistics dump of one run: the
 * headline SimResult counters in a fixed order followed by every
 * organization counter ("org."-prefixed, sorted by name). This is the
 * golden-corpus format — `acic_run run --dump-stats` writes it and
 * tests/test_golden_runs.cc diffs live runs against fixtures captured
 * with it — so any change to a line here invalidates tests/golden/.
 */
void writeGoldenDump(std::ostream &out, const SimResult &result);

} // namespace acic

#endif // ACIC_DRIVER_EMITTERS_HH
