/**
 * @file
 * acic_run — experiment-driver CLI.
 *
 *   acic_run list    [--trace-dir D]
 *   acic_run record  --workloads W [--out-dir D] [--instructions N]
 *   acic_run run     --workloads W --schemes S [--threads N]
 *                    [--instructions N] [--intervals K] [--warmup W]
 *                    [--warm-horizon H] [--trace-dir D]
 *                    [--baseline SCHEME] [--csv FILE] [--json FILE]
 *                    [--dump-stats] [--quiet] [--progress]
 *                    [--telemetry FILE] [--heartbeat N]
 *                    [--shard I/N] [--checkpoint-dir D]
 *                    [--checkpoint-every N]
 *   acic_run sweep   --grid G --workloads W [same options as run]
 *   acic_run serve   <input> --schemes S [--warmup N] [--window N]
 *                    [--step N] [--ring N] [--stats-out FILE]
 *                    [--dump-stats] [--quiet] [--telemetry FILE]
 *                    [--heartbeat N]
 *   acic_run stream  --workloads W [--instructions N] |
 *                    --trace FILE  [--out PATH] [--frame-records N]
 *   acic_run merge   <shard.json>... [--csv FILE] [--json FILE]
 *   acic_run import  <input> <output> [--format F] [--name N]
 *   acic_run stat    <trace>
 *   acic_run report  <telemetry.jsonl>... [--top N]
 *   acic_run help    [command]
 *
 * Workload lists are resolved against the WorkloadCatalog: synthetic
 * presets plus, when --trace-dir is given, the `.acictrace` files
 * under that directory. Scheme lists are registry spec strings
 * (DESIGN.md section 6): preset names — Table IV display names with
 * "-"/"_" standing in for spaces, case-insensitive — optionally
 * parameterized, e.g. "acic(filter=32,update=instant)", or "all".
 * `sweep` additionally expands {a,b,c} value sets into a cartesian
 * grid. Every subcommand answers --help; exit codes are 0 (success),
 * 1 (runtime error), 2 (usage error).
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.hh"
#include "common/table.hh"
#include "common/telemetry.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "driver/merge.hh"
#include "driver/report.hh"
#include "driver/serve.hh"
#include "trace/catalog.hh"
#include "trace/import/importer.hh"
#include "trace/io.hh"
#include "trace/stats.hh"

using namespace acic;

namespace {

/** Exit status of a malformed command line. */
constexpr int kUsageError = 2;

const char *const kMainHelp =
    "usage: acic_run <command> [options]\n"
    "\n"
    "commands:\n"
    "  list      show the workload catalog and scheme registry\n"
    "  record    capture synthetic workloads to .acictrace files\n"
    "  run       execute a workloads x schemes experiment matrix\n"
    "  sweep     expand a {a,b,c} parameter grid and run the matrix\n"
    "  serve     simulate a live framed instruction stream (stdin /\n"
    "            FIFO) with resident per-scheme engines and rolling\n"
    "            window stats\n"
    "  stream    frame a workload or .acictrace file as a live\n"
    "            stream (the producer side of serve)\n"
    "  merge     reassemble one sweep from per-shard JSON outputs\n"
    "  import    convert an external instruction trace to "
    ".acictrace\n"
    "  stat      print trace-intrinsic statistics of a .acictrace "
    "file\n"
    "  report    summarize a --telemetry JSONL file (phase times,\n"
    "            slowest cells, heartbeats)\n"
    "  help      show help for a command\n"
    "\n"
    "Run 'acic_run help <command>' or 'acic_run <command> --help'\n"
    "for details. Exit codes: 0 success, 1 runtime error, 2 usage\n"
    "error.\n";

const char *const kListHelp =
    "usage: acic_run list [--trace-dir D]\n"
    "\n"
    "Show every catalog workload and every registered scheme with\n"
    "its accepted parameters (key=default [range] description).\n"
    "Workloads name their suite (datacenter/spec/imported) and\n"
    "source (synthetic generator or on-disk trace file).\n"
    "\n"
    "options:\n"
    "  --trace-dir D   overlay the .acictrace files under D onto\n"
    "                  the synthetic presets (same-named files\n"
    "                  replace a preset; new names join the\n"
    "                  'imported' suite)\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kRecordHelp =
    "usage: acic_run record --workloads W [--out-dir D]\n"
    "                       [--instructions N]\n"
    "\n"
    "Generate synthetic workloads and capture them to\n"
    "<out-dir>/<name>.acictrace (DESIGN.md section 2 format).\n"
    "\n"
    "options:\n"
    "  --workloads W      comma-separated preset names, or one of\n"
    "                     all | all-datacenter | all-spec\n"
    "  --out-dir D        output directory (default '.')\n"
    "  --instructions N   per-workload trace-length override\n"
    "\n"
    "Trace-length precedence: --instructions beats the\n"
    "ACIC_TRACE_LEN environment variable, which beats the preset\n"
    "length.\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kRunHelp =
    "usage: acic_run run --workloads W --schemes S [--threads N]\n"
    "                    [--instructions N] [--intervals K]\n"
    "                    [--warmup W] [--warm-horizon H]\n"
    "                    [--trace-dir D] [--baseline SCHEME]\n"
    "                    [--csv FILE] [--json FILE] [--quiet]\n"
    "                    [--progress] [--telemetry FILE]\n"
    "                    [--heartbeat N] [--shard I/N]\n"
    "                    [--checkpoint-dir D]\n"
    "                    [--checkpoint-every N]\n"
    "\n"
    "Execute the workloads x schemes matrix on a thread pool and\n"
    "print paper-shaped IPC/MPKI/speedup tables.\n"
    "\n"
    "options:\n"
    "  --workloads W      comma-separated catalog names, or one of\n"
    "                     all | all-datacenter | all-spec |\n"
    "                     all-imported\n"
    "  --schemes S        comma-separated registry specs — preset\n"
    "                     names or parameterized forms like\n"
    "                     acic(filter=32,update=instant) — or all\n"
    "  --threads N        worker threads (default: hardware\n"
    "                     concurrency)\n"
    "  --instructions N   trace-length override for synthetic\n"
    "                     workloads (trace files always replay in\n"
    "                     full)\n"
    "  --intervals K      shard each cell's trace into K regions\n"
    "                     simulated concurrently (sampled interval\n"
    "                     simulation; merged MPKI/IPC recompute\n"
    "                     from the summed shards). Default 1: one\n"
    "                     monolithic pass, bit-identical to the\n"
    "                     serial path\n"
    "  --warmup W         timed-warmup instructions before each\n"
    "                     measured interval (default 100000; only\n"
    "                     used with --intervals > 1)\n"
    "  --warm-horizon H   bound the per-shard functional warming to\n"
    "                     the last H instructions before the timed\n"
    "                     warmup (default 0 = warm from the trace\n"
    "                     start, most accurate; bound it on very\n"
    "                     long traces to keep shard cost flat)\n"
    "  --trace-dir D      overlay the .acictrace files under D onto\n"
    "                     the catalog before resolving --workloads\n"
    "  --baseline SCHEME  speedup denominator (default: first\n"
    "                     scheme; must be in --schemes)\n"
    "  --csv FILE         write per-cell results as CSV\n"
    "  --json FILE        write per-cell results (including every\n"
    "                     org-stats counter) as JSON\n"
    "  --dump-stats       after the tables, print every cell's\n"
    "                     complete statistics dump (headline\n"
    "                     counters + sorted org counters) — the\n"
    "                     golden-corpus fixture format; cells are\n"
    "                     separated by '# workload=... scheme=...'\n"
    "                     comment lines (strip with grep -v '^#')\n"
    "  --no-oracle        skip building the Belady next-use oracle.\n"
    "                     OPT-style schemes then see 'never reused'\n"
    "                     for every block and the advisory accuracy\n"
    "                     counters (match_opt, acic.*_r*) stay zero\n"
    "                     — the same statistics a single-pass live\n"
    "                     stream ('acic_run serve') can compute, so\n"
    "                     serve output diffs byte-identically\n"
    "                     against this mode\n"
    "  --quiet            suppress per-cell progress on stderr\n"
    "  --progress         one live progress line on stderr (cells\n"
    "                     done/total, percent, aggregate Minst/s,\n"
    "                     ETA) instead of per-cell lines\n"
    "  --telemetry FILE   append-free JSONL telemetry event stream\n"
    "                     (phase spans, engine heartbeats, pool\n"
    "                     gauges; DESIGN.md section 9). Off by\n"
    "                     default with zero overhead; summarize the\n"
    "                     file with 'acic_run report'\n"
    "  --heartbeat N      instructions between engine heartbeat\n"
    "                     snapshots (default 1000000; only\n"
    "                     meaningful with --telemetry)\n"
    "  --shard I/N        run only this process's cells of the\n"
    "                     matrix (cell k belongs to shard k mod N;\n"
    "                     0 <= I < N). All N shards must name the\n"
    "                     identical matrix. Tables and --dump-stats\n"
    "                     are suppressed; write --json per shard and\n"
    "                     reassemble with 'acic_run merge'\n"
    "  --checkpoint-dir D persist completed cells (and periodic\n"
    "                     in-flight engine snapshots) under D; a\n"
    "                     restart with the same spec skips finished\n"
    "                     cells and resumes interrupted ones from\n"
    "                     the last snapshot, bit-identically.\n"
    "                     Shards may share one directory\n"
    "  --checkpoint-every N\n"
    "                     instructions between in-flight engine\n"
    "                     snapshots of a monolithic cell (default\n"
    "                     5000000; 0 keeps only completed-cell\n"
    "                     checkpoints; ignored with --intervals>1)\n"
    "\n"
    "Trace-length precedence: --instructions beats the\n"
    "ACIC_TRACE_LEN environment variable, which beats the preset\n"
    "length; both are ignored by trace-file workloads.\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kSweepHelp =
    "usage: acic_run sweep --grid G --workloads W [--threads N]\n"
    "                      [--instructions N] [--intervals K]\n"
    "                      [--warmup W] [--warm-horizon H]\n"
    "                      [--trace-dir D] [--baseline SPEC]\n"
    "                      [--csv FILE] [--json FILE] [--quiet]\n"
    "                      [--progress] [--telemetry FILE]\n"
    "                      [--heartbeat N] [--shard I/N]\n"
    "                      [--checkpoint-dir D]\n"
    "                      [--checkpoint-every N]\n"
    "\n"
    "Expand a parameter grid into concrete schemes and run the\n"
    "workloads x schemes matrix on the thread pool (identical\n"
    "execution and output to 'acic_run run'; only the scheme list\n"
    "construction differs).\n"
    "\n"
    "The grid is a comma-separated list of registry specs whose\n"
    "parameter values may be {a,b,c} sets; every set is expanded\n"
    "cartesianly, leftmost set varying slowest. Example:\n"
    "\n"
    "  --grid 'acic(filter={8,16,32},cshr={64,256}),lru(ways={8,9})'\n"
    "\n"
    "yields 3x2 ACIC variants plus 2 LRU variants = 8 schemes.\n"
    "Quote the grid: braces and parens are shell metacharacters.\n"
    "\n"
    "options:\n"
    "  --grid G           the sweep grid (see above)\n"
    "  --workloads W      comma-separated catalog names, or one of\n"
    "                     all | all-datacenter | all-spec |\n"
    "                     all-imported\n"
    "  --threads N        worker threads (default: hardware\n"
    "                     concurrency)\n"
    "  --instructions N   trace-length override for synthetic\n"
    "                     workloads\n"
    "  --intervals K      shard each cell into K concurrently\n"
    "                     simulated regions (see 'acic_run help\n"
    "                     run'; default 1)\n"
    "  --warmup W         timed-warmup instructions per interval\n"
    "                     (default 100000)\n"
    "  --warm-horizon H   bound per-shard functional warming to the\n"
    "                     last H instructions (default 0 = from the\n"
    "                     trace start; see 'acic_run help run')\n"
    "  --trace-dir D      overlay the .acictrace files under D onto\n"
    "                     the catalog before resolving --workloads\n"
    "  --baseline SPEC    speedup denominator (default: first\n"
    "                     expanded scheme; must be in the grid)\n"
    "  --csv FILE         write per-cell results as CSV\n"
    "  --json FILE        write per-cell results as JSON\n"
    "  --dump-stats       print every cell's complete statistics\n"
    "                     dump (see 'acic_run help run')\n"
    "  --no-oracle        skip the Belady oracle (see 'acic_run\n"
    "                     help run')\n"
    "  --quiet            suppress per-cell progress on stderr\n"
    "  --progress         one live progress line on stderr instead\n"
    "                     of per-cell lines (see 'acic_run help "
    "run')\n"
    "  --telemetry FILE   write a JSONL telemetry event stream (see\n"
    "                     'acic_run help run')\n"
    "  --heartbeat N      instructions between engine heartbeat\n"
    "                     snapshots (default 1000000)\n"
    "  --shard I/N        run only this process's cells; merge the\n"
    "                     per-shard --json outputs with 'acic_run\n"
    "                     merge' (see 'acic_run help run')\n"
    "  --checkpoint-dir D persist completed cells and in-flight\n"
    "                     engine snapshots for crash-safe restarts\n"
    "                     (see 'acic_run help run')\n"
    "  --checkpoint-every N\n"
    "                     instructions between in-flight snapshots\n"
    "                     (default 5000000; 0 disables)\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kServeHelp =
    "usage: acic_run serve <input> --schemes S [--warmup N]\n"
    "                      [--window N] [--step N] [--ring N]\n"
    "                      [--threads N] [--stats-out FILE]\n"
    "                      [--dump-stats] [--quiet]\n"
    "                      [--telemetry FILE] [--heartbeat N]\n"
    "\n"
    "Simulate a live framed instruction stream (the 'acic_run\n"
    "stream' format, DESIGN.md section 12) with one resident engine\n"
    "per scheme. The stream is single-pass: a bounded ingest ring\n"
    "plus a lockstep fan-out buffer keep peak memory independent of\n"
    "stream length (the producer blocks in write(2) when the\n"
    "service falls behind — pipe backpressure is the flow control).\n"
    "Rolling-window statistics are emitted as JSON lines while the\n"
    "stream runs; on end-of-stream the final per-scheme statistics\n"
    "match 'acic_run run --no-oracle' over the equivalent\n"
    "materialized trace byte-for-byte (a single-pass stream cannot\n"
    "build the Belady oracle).\n"
    "\n"
    "  <input>   '-' for stdin, 'pipe:PATH' or PATH for a FIFO or\n"
    "            file carrying the framed stream\n"
    "\n"
    "examples:\n"
    "  acic_run stream --workloads web_search |\n"
    "      acic_run serve - --schemes acic,lru\n"
    "  mkfifo /tmp/insts && acic_run serve pipe:/tmp/insts \\\n"
    "      --schemes acic &\n"
    "  acic_run stream --workloads web_search --out /tmp/insts\n"
    "\n"
    "options:\n"
    "  --schemes S       comma-separated registry specs (required)\n"
    "  --warmup N        warmup instructions before measurement\n"
    "                    (default 0; a live stream has no known\n"
    "                    length to take a fraction of)\n"
    "  --window N        rolling-window width in instructions\n"
    "                    (default 1000000); each window emits one\n"
    "                    serve.window JSON line per scheme\n"
    "  --step N          lockstep round granularity in instructions\n"
    "                    (default 65536); bounds how far engines\n"
    "                    drift apart and thus the fan-out backlog\n"
    "  --ring N          ingest ring capacity in records (default\n"
    "                    65536); bounds decoded-but-unconsumed\n"
    "                    buffering and thus peak memory\n"
    "  --threads N       engine-round worker threads (default 0 =\n"
    "                    one per scheme up to the hardware\n"
    "                    concurrency; 1 = serial rounds). Output is\n"
    "                    identical for every value — threads trade\n"
    "                    wall time only\n"
    "  --stats-out FILE  write the JSON stats lines to FILE instead\n"
    "                    of stdout\n"
    "  --dump-stats      after the final stats, print the\n"
    "                    golden-corpus statistics dump per scheme\n"
    "                    ('# workload=... scheme=...' separators),\n"
    "                    exactly as 'acic_run run --dump-stats'\n"
    "  --quiet           suppress the human summary on stderr\n"
    "  --telemetry FILE  JSONL telemetry event stream (engine\n"
    "                    heartbeats; see 'acic_run help run')\n"
    "  --heartbeat N     instructions between heartbeats (default\n"
    "                    1000000; only with --telemetry)\n"
    "\n"
    "Shutdown: a clean end-of-stream frame, SIGTERM, or SIGINT end\n"
    "the service with exit 0 (final stats are still emitted); a\n"
    "malformed or truncated stream — e.g. the producer died\n"
    "mid-frame — exits 1 with the byte offset of the damage.\n"
    "\n"
    "exit codes: 0 clean end-of-stream or signal shutdown, 1\n"
    "runtime/stream error, 2 usage error\n";

const char *const kStreamHelp =
    "usage: acic_run stream --workloads W [--instructions N]\n"
    "                       [--out PATH] [--frame-records N]\n"
    "       acic_run stream --trace FILE [--out PATH]\n"
    "                       [--frame-records N]\n"
    "\n"
    "Produce a framed live instruction stream (DESIGN.md section\n"
    "12) on stdout — the producer side of 'acic_run serve'. Unlike\n"
    "the on-disk .acictrace container (whose header count is\n"
    "patched on close and therefore needs a seekable file), the\n"
    "framed stream works through pipes and FIFOs: each frame\n"
    "carries its own length and decoder seed, and the total record\n"
    "count rides in the trailing end-of-stream frame.\n"
    "\n"
    "options:\n"
    "  --workloads W      synthetic catalog workload to generate\n"
    "                     (exactly one name)\n"
    "  --instructions N   trace-length override for the synthetic\n"
    "                     workload\n"
    "  --trace FILE       frame an existing .acictrace file instead\n"
    "                     of generating\n"
    "  --out PATH         write to PATH (e.g. a FIFO) instead of\n"
    "                     stdout\n"
    "  --frame-records N  records per frame (default 4096)\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kMergeHelp =
    "usage: acic_run merge <shard.json>... [--csv FILE] "
    "[--json FILE]\n"
    "\n"
    "Reassemble a sweep from per-shard JSON results written by\n"
    "'acic_run run/sweep --shard i/N --json'. Every shard must\n"
    "describe the identical workloads x schemes matrix; duplicate\n"
    "cells, cells outside the matrix, and missing cells are errors\n"
    "— a partial or double-counted sweep is never emitted. The\n"
    "merged CSV/JSON is byte-identical to what a monolithic\n"
    "(unsharded) run of the same matrix writes.\n"
    "\n"
    "options:\n"
    "  --csv FILE    write the reassembled matrix as CSV\n"
    "  --json FILE   write the reassembled matrix as JSON\n"
    "\n"
    "With neither flag, the merged CSV is written to stdout.\n"
    "\n"
    "exit codes: 0 success, 1 runtime error (unreadable, malformed,\n"
    "mismatched, duplicate, or incomplete shard outputs), 2 usage\n"
    "error\n";

const char *const kImportHelp =
    "usage: acic_run import <input> <output> [--format F] "
    "[--name N]\n"
    "\n"
    "Convert an external instruction trace into the .acictrace v1\n"
    "container (DESIGN.md section 5). Gzip-compressed input is\n"
    "detected by magic and inflated transparently. The converted\n"
    "file replays through 'acic_run run --trace-dir' exactly like a\n"
    "recorded synthetic trace.\n"
    "\n"
    "options:\n"
    "  --format F   auto | acictrace | champsim | qemu\n"
    "               (default auto: probe the input head)\n"
    "  --name N     workload name stored in the output header\n"
    "               (default: the input's own stored name if any,\n"
    "               else the output file name)\n"
    "\n"
    "formats:\n"
    "  champsim    64-byte binary records (ip, is_branch,\n"
    "              branch_taken, register lists)\n"
    "  qemu        text logs: execlog-plugin lines\n"
    "              (cpu, 0xPC, 0xOP, \"disasm\") or -d exec lines\n"
    "              (Trace N: ... [.../PC/...])\n"
    "  acictrace   native re-encode (decompress / re-frame)\n"
    "\n"
    "exit codes: 0 success, 1 runtime or malformed-input error,\n"
    "2 usage error\n";

const char *const kStatHelp =
    "usage: acic_run stat <trace>\n"
    "\n"
    "Print trace-intrinsic statistics of a .acictrace file:\n"
    "instruction count, branch mix and density, code footprint, and\n"
    "the block-reuse-distance histogram over the paper's buckets\n"
    "{0, [1,16], (16,512], (512,1024], (1024,10000], >10000}.\n"
    "These are the statistics the synthetic generator is calibrated\n"
    "to (DESIGN.md section 1.1), so imported traces can be\n"
    "sanity-checked against the presets; the output contains no\n"
    "file paths, so two identical streams print identically.\n"
    "\n"
    "exit codes: 0 success, 1 runtime error, 2 usage error\n";

const char *const kReportHelp =
    "usage: acic_run report <telemetry.jsonl>... [--top N]\n"
    "\n"
    "Summarize one or more telemetry files written by 'run'/'sweep'\n"
    "--telemetry. Multiple files — e.g. one per shard of a\n"
    "distributed sweep — are concatenated into one event stream and\n"
    "summarized together.\n"
    "\n"
    "Reports per-phase time breakdowns (span totals, means,\n"
    "maxima, share of wall), the slowest (workload, scheme) cells\n"
    "by summed simulation seconds, heartbeat rolling-window\n"
    "aggregates (instruction-weighted window MPKI/IPC, aggregate\n"
    "Minst/s), and pool-gauge ranges. Lines that do not parse —\n"
    "e.g. the truncated tail of a killed run — are skipped and\n"
    "counted, not fatal.\n"
    "\n"
    "options:\n"
    "  --top N   rows of the slowest-cells table (default 10)\n"
    "\n"
    "exit codes: 0 success, 1 runtime error (unreadable file or no\n"
    "telemetry events), 2 usage error\n";

int
usage(const char *text, bool requested)
{
    std::fputs(text, requested ? stdout : stderr);
    return requested ? 0 : kUsageError;
}

/** Pull "--flag value" style options out of argv. */
class OptionParser
{
  public:
    OptionParser(int argc, char **argv) : argc_(argc), argv_(argv) {}

    const char *value(const char *flag) const
    {
        for (int i = 2; i + 1 < argc_; ++i)
            if (std::strcmp(argv_[i], flag) == 0)
                return argv_[i + 1];
        return nullptr;
    }

    bool present(const char *flag) const
    {
        for (int i = 2; i < argc_; ++i)
            if (std::strcmp(argv_[i], flag) == 0)
                return true;
        return false;
    }

    /**
     * The @p n-th (0-based) positional argument — one that neither
     * starts with "--" nor is the value of a preceding flag.
     */
    const char *positional(std::size_t n) const
    {
        std::size_t seen = 0;
        for (int i = 2; i < argc_; ++i) {
            if (std::strncmp(argv_[i], "--", 2) == 0) {
                ++i; // skip the flag's value slot
                continue;
            }
            if (seen++ == n)
                return argv_[i];
        }
        return nullptr;
    }

  private:
    int argc_;
    char **argv_;
};

std::uint64_t
parseCount(const char *text, const char *what,
           bool allow_zero = false)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v < 0 ||
        (v == 0 && !allow_zero)) {
        std::fprintf(stderr, "%s must be a %s integer\n", what,
                     allow_zero ? "non-negative" : "positive");
        std::exit(kUsageError);
    }
    return static_cast<std::uint64_t>(v);
}

/** parseCount for flags stored in 32-bit fields: a value that a
 *  static_cast<unsigned> would silently wrap is a usage error, not
 *  a different (smaller) run. */
unsigned
parseCount32(const char *text, const char *what)
{
    const std::uint64_t v = parseCount(text, what);
    if (v > 0xffffffffu) {
        std::fprintf(stderr, "%s is out of range\n", what);
        std::exit(kUsageError);
    }
    return static_cast<unsigned>(v);
}

/** Builtin catalog, with --trace-dir overlaid when present. */
WorkloadCatalog
buildCatalog(const OptionParser &opts)
{
    WorkloadCatalog catalog = WorkloadCatalog::builtin();
    if (const char *dir = opts.value("--trace-dir"))
        catalog.addTraceDir(dir);
    return catalog;
}

int
cmdList(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kListHelp, true);
    const WorkloadCatalog catalog = buildCatalog(opts);

    TablePrinter workloads("Workload catalog");
    workloads.setHeader({"name", "suite", "source", "instructions",
                         "paper MPKI"});
    for (const auto &entry : catalog.entries()) {
        const bool synthetic =
            entry.source == WorkloadSource::Synthetic;
        workloads.addRow(
            {entry.name(), entry.suite,
             synthetic ? "synthetic" : "trace file",
             std::to_string(entry.params.instructions),
             synthetic && entry.params.paperMpki > 0.0
                 ? TablePrinter::fmt(entry.params.paperMpki, 1)
                 : "-"});
    }
    workloads.print();

    TablePrinter schemes("Scheme registry");
    schemes.setHeader({"name", "spec", "description"});
    for (const auto &entry : SchemeRegistry::instance().entries())
        schemes.addRow({entry.display, entry.key, entry.summary});
    schemes.print();

    // Parameter docs, one line per (scheme, parameter): the sweep
    // grammar's vocabulary. Spec strings accept any subset, e.g.
    // acic(filter=32,update=instant).
    std::printf("Scheme parameters (key=default [range]):\n");
    for (const auto &entry : SchemeRegistry::instance().entries()) {
        if (entry.params.empty())
            continue;
        std::printf("  %s:\n", entry.key.c_str());
        for (const auto &param : entry.params)
            std::printf("    %s=%s  %s  %s\n", param.key.c_str(),
                        param.defaultText.c_str(),
                        param.rangeText().c_str(),
                        param.summary.c_str());
    }
    std::printf("\nSpec grammar: name | name(key=value,...); names "
                "match case-insensitively\nwith '-'/'_'/' ' "
                "interchangeable. 'acic_run sweep' expands "
                "{a,b,c}\nvalue sets cartesianly.\n");
    return 0;
}

int
cmdRecord(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kRecordHelp, true);
    const char *list = opts.value("--workloads");
    if (!list) {
        std::fprintf(stderr, "record: --workloads is required\n");
        return usage(kRecordHelp, false);
    }
    const std::string out_dir =
        opts.value("--out-dir") ? opts.value("--out-dir") : ".";
    const WorkloadCatalog catalog = WorkloadCatalog::builtin();
    for (const auto &entry : catalog.resolve(list)) {
        // Precedence: explicit flag > ACIC_TRACE_LEN > preset.
        WorkloadParams params =
            WorkloadContext::withEnvOverrides(entry.params);
        if (const char *n = opts.value("--instructions"))
            params.instructions = parseCount(n, "--instructions");
        const std::string path =
            out_dir + "/" + params.name + TraceFormat::suffix();
        SyntheticWorkload trace(params);
        const std::uint64_t written = recordTrace(trace, path);
        std::printf("recorded %s: %llu instructions\n", path.c_str(),
                    static_cast<unsigned long long>(written));
    }
    return 0;
}

int
cmdImport(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kImportHelp, true);
    const char *in_path = opts.positional(0);
    const char *out_path = opts.positional(1);
    if (!in_path || !out_path) {
        std::fprintf(stderr,
                     "import: <input> and <output> are required\n");
        return usage(kImportHelp, false);
    }

    ImportOptions options;
    if (const char *format = opts.value("--format"))
        options.format = format;
    if (const char *name = opts.value("--name"))
        options.name = name;
    if (options.format != "auto" &&
        !importerByFormat(options.format)) {
        std::fprintf(stderr, "import: unknown --format '%s'\n",
                     options.format.c_str());
        return usage(kImportHelp, false);
    }

    const ImportSummary summary =
        importTraceFile(in_path, out_path, options);
    std::printf("imported %s -> %s: %llu instructions "
                "(format %s%s, workload '%s')\n",
                in_path, out_path,
                static_cast<unsigned long long>(
                    summary.instructions),
                summary.format.c_str(),
                summary.compressed ? ", gzip" : "",
                summary.name.c_str());
    return 0;
}

int
cmdStat(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kStatHelp, true);
    const char *path = opts.positional(0);
    if (!path) {
        std::fprintf(stderr, "stat: <trace> is required\n");
        return usage(kStatHelp, false);
    }
    FileTraceSource trace(path);
    if (trace.length() == 0) {
        // Percentages and per-instruction densities are meaningless
        // at n = 0; an empty trace is an ingestion failure the user
        // should hear about, not a page of zero rows.
        std::fprintf(stderr,
                     "stat: %s is an empty trace (0 instructions); "
                     "nothing to report\n",
                     path);
        return 1;
    }
    printTraceStats(std::cout, computeTraceStats(trace));
    return 0;
}

/**
 * Execute a workloads x schemes matrix and print/emit results — the
 * shared back half of `run` (schemes from --schemes) and `sweep`
 * (schemes from an expanded --grid).
 */
int
runMatrix(const OptionParser &opts, const char *workload_list,
          std::vector<SchemeSpec> schemes)
{
    ExperimentSpec spec;
    spec.workloads = buildCatalog(opts).resolve(workload_list);
    spec.schemes = std::move(schemes);
    // The overlay tolerates missing files (so matrices can mix
    // sources on purpose), but falling back to synthesis must be
    // loud: results would otherwise be mistaken for trace replays.
    if (opts.value("--trace-dir")) {
        for (const auto &entry : spec.workloads)
            if (entry.source == WorkloadSource::Synthetic)
                warn("workload '%s' has no trace in --trace-dir; "
                     "simulating the synthetic preset instead",
                     entry.name().c_str());
    }
    if (const char *t = opts.value("--threads"))
        spec.threads = parseCount32(t, "--threads");
    if (const char *n = opts.value("--instructions"))
        spec.instructions = parseCount(n, "--instructions");
    if (const char *k = opts.value("--intervals"))
        spec.intervals = parseCount32(k, "--intervals");
    if (const char *w = opts.value("--warmup"))
        spec.intervalWarmup = parseCount(w, "--warmup", true);
    if (const char *h = opts.value("--warm-horizon"))
        spec.warmHorizon = parseCount(h, "--warm-horizon", true);
    if (const char *sh = opts.value("--shard")) {
        unsigned index = 0, count = 0;
        char extra = 0;
        if (std::sscanf(sh, "%u/%u%c", &index, &count, &extra) !=
                2 ||
            count == 0 || index >= count) {
            std::fprintf(stderr,
                         "--shard must be I/N with 0 <= I < N "
                         "(got '%s')\n",
                         sh);
            return kUsageError;
        }
        spec.shardIndex = index;
        spec.shardCount = count;
    }
    if (const char *d = opts.value("--checkpoint-dir"))
        spec.checkpointDir = d;
    if (const char *n = opts.value("--checkpoint-every"))
        spec.checkpointEvery =
            parseCount(n, "--checkpoint-every", true);
    if (opts.present("--no-oracle"))
        spec.useOracle = false;

    SchemeSpec baseline = spec.schemes.front();
    if (const char *b = opts.value("--baseline")) {
        baseline = parseScheme(b);
        bool in_matrix = false;
        for (const SchemeSpec &s : spec.schemes)
            in_matrix = in_matrix || s == baseline;
        if (!in_matrix) {
            std::fprintf(stderr,
                         "--baseline %s is not in the scheme list; "
                         "add it\n",
                         b);
            return kUsageError;
        }
    }

    const bool quiet = opts.present("--quiet");
    const bool progress = opts.present("--progress");
    const bool sharded = spec.shardCount > 1;
    std::size_t total = spec.cellCount();
    if (sharded) {
        // The progress denominator is this shard's share only.
        total = 0;
        for (std::size_t w = 0; w < spec.workloads.size(); ++w)
            for (std::size_t s = 0; s < spec.schemes.size(); ++s)
                if (spec.ownsCell(w, s))
                    ++total;
    }
    std::size_t done = 0;
    std::uint64_t insts_done = 0;

    if (const char *hb = opts.value("--heartbeat"))
        Telemetry::setHeartbeatInterval(
            parseCount(hb, "--heartbeat"));
    const char *telemetry_path = opts.value("--telemetry");
    if (telemetry_path && !Telemetry::open(telemetry_path)) {
        std::fprintf(stderr, "failed opening --telemetry %s\n",
                     telemetry_path);
        return 1;
    }

    ExperimentDriver driver(spec);
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<CellResult> cells;
    {
        // The matrix-wide span must end before Telemetry::close();
        // its scope is the whole driver run, workers included (the
        // pool joins inside driver.run()).
        TelemetryScope run_span("driver.run");
        if (run_span.live()) {
            run_span.attr(
                "workloads",
                static_cast<std::uint64_t>(spec.workloads.size()));
            run_span.attr(
                "schemes",
                static_cast<std::uint64_t>(spec.schemes.size()));
            run_span.attr("cells",
                          static_cast<std::uint64_t>(total));
            run_span.attr("threads",
                          static_cast<std::uint64_t>(spec.threads));
            run_span.attr(
                "intervals",
                static_cast<std::uint64_t>(spec.intervals));
        }
        // The observer runs under the driver's observer mutex, so
        // the done/insts_done updates need no extra synchronization.
        cells = driver.run([&](const CellResult &cell) {
            ++done;
            insts_done += cell.result.instructions;
            if (progress) {
                const double elapsed =
                    std::chrono::duration<double>(
                        std::chrono::steady_clock::now() -
                        wall_start)
                        .count();
                const double rate =
                    elapsed > 0.0
                        ? static_cast<double>(insts_done) / 1e6 /
                              elapsed
                        : 0.0;
                const double eta =
                    static_cast<double>(total - done) * elapsed /
                    static_cast<double>(done);
                std::fprintf(stderr,
                             "\r[%zu/%zu] %3.0f%% | %.1f Minst/s | "
                             "ETA %.0fs   ",
                             done, total,
                             100.0 * static_cast<double>(done) /
                                 static_cast<double>(total),
                             rate, eta);
                std::fflush(stderr);
                return;
            }
            if (quiet)
                return;
            std::fprintf(
                stderr,
                "[%zu/%zu] %s / %s: ipc %.3f, mpki %.2f (%.2fs)\n",
                done, total,
                driver.spec()
                    .workloads[cell.workloadIndex]
                    .name()
                    .c_str(),
                schemeName(driver.spec().schemes[cell.schemeIndex])
                    .c_str(),
                cell.result.ipc(), cell.result.mpki(),
                cell.hostSeconds);
        });
    }
    if (progress)
        std::fputc('\n', stderr);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            wall_start)
                            .count();

    if (sharded) {
        // A shard holds a partial matrix: cross-scheme tables and
        // the golden dump would show zero-filled cells, so they are
        // suppressed; the per-shard CSV/JSON carries the owned
        // cells for 'acic_run merge'.
        double cell_seconds = 0.0;
        for (const auto &cell : cells)
            cell_seconds += cell.hostSeconds;
        std::printf("\nshard %u/%u: %zu of %zu cells in %.2fs wall "
                    "(%.2fs of simulation); tables suppressed — "
                    "reassemble the per-shard --json outputs with "
                    "'acic_run merge'\n",
                    spec.shardIndex, spec.shardCount, total,
                    spec.cellCount(), wall, cell_seconds);
    } else {
        // Per-workload baseline cycles for the speedup table.
        const std::size_t n_schemes = spec.schemes.size();
        std::map<std::size_t, double> baseline_cycles;
        for (const auto &cell : cells)
            if (spec.schemes[cell.schemeIndex] == baseline)
                baseline_cycles[cell.workloadIndex] =
                    static_cast<double>(cell.result.cycles);

        TablePrinter ipc_table("IPC");
        TablePrinter mpki_table("L1i MPKI");
        TablePrinter speedup_table("Speedup over " +
                                   schemeName(baseline));
        std::vector<std::string> header{"workload"};
        for (const SchemeSpec &s : spec.schemes)
            header.push_back(schemeName(s));
        ipc_table.setHeader(header);
        mpki_table.setHeader(header);
        speedup_table.setHeader(header);
        const bool have_baseline =
            baseline_cycles.size() == spec.workloads.size();

        for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
            std::vector<std::string> ipc_row{
                spec.workloads[w].name()};
            std::vector<std::string> mpki_row{
                spec.workloads[w].name()};
            std::vector<std::string> speedup_row{
                spec.workloads[w].name()};
            for (std::size_t s = 0; s < n_schemes; ++s) {
                const SimResult &r =
                    cells[w * n_schemes + s].result;
                ipc_row.push_back(TablePrinter::fmt(r.ipc(), 3));
                mpki_row.push_back(TablePrinter::fmt(r.mpki(), 2));
                if (have_baseline)
                    speedup_row.push_back(TablePrinter::fmt(
                        baseline_cycles[w] /
                            static_cast<double>(r.cycles),
                        4));
            }
            ipc_table.addRow(ipc_row);
            mpki_table.addRow(mpki_row);
            if (have_baseline)
                speedup_table.addRow(speedup_row);
        }
        ipc_table.print();
        mpki_table.print();
        if (have_baseline)
            speedup_table.print();

        double cell_seconds = 0.0;
        for (const auto &cell : cells)
            cell_seconds += cell.hostSeconds;
        const unsigned hw = std::thread::hardware_concurrency();
        std::printf("\n%zu cells in %.2fs wall (%.2fs of "
                    "simulation; parallel speedup %.2fx on %u "
                    "threads)\n",
                    total, wall, cell_seconds,
                    wall > 0.0 ? cell_seconds / wall : 0.0,
                    spec.threads ? spec.threads : (hw ? hw : 1));

        if (opts.present("--dump-stats")) {
            // Workload-major, matching the result ordering above;
            // the per-cell body is exactly the golden-fixture
            // format (tests/golden/, DESIGN.md section 7).
            for (const CellResult &cell : cells) {
                std::cout
                    << "# workload="
                    << spec.workloads[cell.workloadIndex].name()
                    << " scheme="
                    << spec.schemes[cell.schemeIndex].toString()
                    << '\n';
                writeGoldenDump(std::cout, cell.result);
            }
        }
    }
    if (const char *path = opts.value("--csv")) {
        std::ofstream out(path);
        writeResultsCsv(out, driver.spec(), cells);
        if (!out)
            std::fprintf(stderr, "failed writing %s\n", path);
        else
            std::printf("wrote %s\n", path);
    }
    if (const char *path = opts.value("--json")) {
        std::ofstream out(path);
        writeResultsJson(out, driver.spec(), cells);
        if (!out)
            std::fprintf(stderr, "failed writing %s\n", path);
        else
            std::printf("wrote %s\n", path);
    }
    if (telemetry_path) {
        // All emitters are quiescent: the pool joined inside
        // driver.run() and this thread's spans have closed.
        Telemetry::close();
        std::printf("wrote %s\n", telemetry_path);
    }
    return 0;
}

int
cmdRun(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kRunHelp, true);
    const char *workload_list = opts.value("--workloads");
    const char *scheme_list = opts.value("--schemes");
    if (!workload_list || !scheme_list) {
        std::fprintf(stderr,
                     "run: --workloads and --schemes are required\n");
        return usage(kRunHelp, false);
    }
    return runMatrix(opts, workload_list,
                     parseSchemeList(scheme_list));
}

int
cmdSweep(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kSweepHelp, true);
    const char *workload_list = opts.value("--workloads");
    const char *grid = opts.value("--grid");
    if (!workload_list || !grid) {
        std::fprintf(stderr,
                     "sweep: --grid and --workloads are required\n");
        return usage(kSweepHelp, false);
    }
    std::vector<SchemeSpec> schemes = expandSchemeGrid(grid);
    std::fprintf(stderr, "sweep: grid expands to %zu schemes\n",
                 schemes.size());
    return runMatrix(opts, workload_list, std::move(schemes));
}

int
cmdServe(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kServeHelp, true);
    const char *input = opts.positional(0);
    const char *schemes = opts.value("--schemes");
    if (!input || !schemes) {
        std::fprintf(stderr,
                     "serve: <input> and --schemes are required\n");
        return usage(kServeHelp, false);
    }

    ServeOptions options;
    options.input = input;
    options.schemes = schemes;
    if (const char *w = opts.value("--warmup"))
        options.warmup = parseCount(w, "--warmup", true);
    if (const char *w = opts.value("--window"))
        options.window = parseCount(w, "--window");
    if (const char *s = opts.value("--step"))
        options.step = parseCount(s, "--step");
    if (const char *r = opts.value("--ring"))
        options.ring = parseCount(r, "--ring");
    if (const char *t = opts.value("--threads"))
        options.threads = parseCount32(t, "--threads");
    if (const char *p = opts.value("--stats-out"))
        options.statsOut = p;
    options.dumpStats = opts.present("--dump-stats");
    options.quiet = opts.present("--quiet");

    // Telemetry must be live before runServe constructs its engines
    // — SimEngine latches the heartbeat interval at construction.
    if (const char *hb = opts.value("--heartbeat"))
        Telemetry::setHeartbeatInterval(
            parseCount(hb, "--heartbeat"));
    const char *telemetry_path = opts.value("--telemetry");
    if (telemetry_path && !Telemetry::open(telemetry_path)) {
        std::fprintf(stderr, "failed opening --telemetry %s\n",
                     telemetry_path);
        return 1;
    }
    const int rc = runServe(options);
    if (telemetry_path) {
        Telemetry::close();
        std::fprintf(stderr, "wrote %s\n", telemetry_path);
    }
    return rc;
}

int
cmdStream(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kStreamHelp, true);
    const char *workload = opts.value("--workloads");
    const char *trace = opts.value("--trace");
    if (!workload == !trace) {
        std::fprintf(stderr,
                     "stream: exactly one of --workloads or "
                     "--trace is required\n");
        return usage(kStreamHelp, false);
    }

    StreamGenOptions options;
    if (workload)
        options.workload = workload;
    if (trace)
        options.trace = trace;
    if (const char *n = opts.value("--instructions"))
        options.instructions = parseCount(n, "--instructions");
    if (const char *o = opts.value("--out"))
        options.out = o;
    if (const char *f = opts.value("--frame-records"))
        options.frameRecords = parseCount32(f, "--frame-records");
    return runStreamGen(options);
}

int
cmdMerge(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kMergeHelp, true);
    std::vector<std::string> paths;
    for (std::size_t n = 0; const char *p = opts.positional(n); ++n)
        paths.push_back(p);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "merge: at least one <shard.json> is "
                     "required\n");
        return usage(kMergeHelp, false);
    }

    const MergedSweep merged = mergeShardOutputs(paths);
    std::fprintf(stderr,
                 "merge: %zu shard file(s), %zu workloads x %zu "
                 "schemes = %zu cells\n",
                 paths.size(), merged.workloads.size(),
                 merged.schemes.size(), merged.rows.size());

    const char *csv_path = opts.value("--csv");
    const char *json_path = opts.value("--json");
    bool ok = true;
    if (csv_path) {
        std::ofstream out(csv_path);
        writeCsvRows(out, merged.rows);
        if (!out) {
            std::fprintf(stderr, "failed writing %s\n", csv_path);
            ok = false;
        } else {
            std::printf("wrote %s\n", csv_path);
        }
    }
    if (json_path) {
        std::ofstream out(json_path);
        writeJsonRows(out, merged.workloads, merged.schemes,
                      merged.rows);
        if (!out) {
            std::fprintf(stderr, "failed writing %s\n", json_path);
            ok = false;
        } else {
            std::printf("wrote %s\n", json_path);
        }
    }
    if (!csv_path && !json_path)
        writeCsvRows(std::cout, merged.rows);
    return ok ? 0 : 1;
}

int
cmdReport(const OptionParser &opts)
{
    if (opts.present("--help"))
        return usage(kReportHelp, true);
    std::vector<std::string> paths;
    for (std::size_t n = 0; const char *p = opts.positional(n); ++n)
        paths.push_back(p);
    if (paths.empty()) {
        std::fprintf(stderr,
                     "report: <telemetry.jsonl> is required\n");
        return usage(kReportHelp, false);
    }
    ReportOptions options;
    if (const char *n = opts.value("--top"))
        options.topCells =
            static_cast<std::size_t>(parseCount(n, "--top"));
    // Concatenate the given files — typically one per shard of a
    // distributed sweep — into one event stream; the report layer
    // treats the events uniformly regardless of emitting process.
    std::stringstream events;
    for (const std::string &path : paths) {
        std::ifstream in(path);
        if (!in) {
            std::fprintf(stderr, "report: cannot open %s\n",
                         path.c_str());
            return 1;
        }
        events << in.rdbuf();
        // Guard against a final line missing its newline (e.g. the
        // torn tail of a killed shard) splicing into the next
        // file's first event.
        events << '\n';
    }
    std::string error;
    if (!writeTelemetryReport(events, std::cout, options, error)) {
        std::fprintf(stderr, "report: %s: %s\n",
                     paths.front().c_str(), error.c_str());
        return 1;
    }
    return 0;
}

int
cmdHelp(int argc, char **argv)
{
    if (argc < 3)
        return usage(kMainHelp, true);
    const std::string topic = argv[2];
    if (topic == "list")
        return usage(kListHelp, true);
    if (topic == "record")
        return usage(kRecordHelp, true);
    if (topic == "run")
        return usage(kRunHelp, true);
    if (topic == "sweep")
        return usage(kSweepHelp, true);
    if (topic == "serve")
        return usage(kServeHelp, true);
    if (topic == "stream")
        return usage(kStreamHelp, true);
    if (topic == "merge")
        return usage(kMergeHelp, true);
    if (topic == "import")
        return usage(kImportHelp, true);
    if (topic == "stat")
        return usage(kStatHelp, true);
    if (topic == "report")
        return usage(kReportHelp, true);
    std::fprintf(stderr, "unknown command '%s'\n", topic.c_str());
    return usage(kMainHelp, false);
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(kMainHelp, false);
    const OptionParser opts(argc, argv);
    const std::string command = argv[1];
    try {
        if (command == "list")
            return cmdList(opts);
        if (command == "record")
            return cmdRecord(opts);
        if (command == "run")
            return cmdRun(opts);
        if (command == "sweep")
            return cmdSweep(opts);
        if (command == "serve")
            return cmdServe(opts);
        if (command == "stream")
            return cmdStream(opts);
        if (command == "merge")
            return cmdMerge(opts);
        if (command == "import")
            return cmdImport(opts);
        if (command == "stat")
            return cmdStat(opts);
        if (command == "report")
            return cmdReport(opts);
        if (command == "help" || command == "--help" ||
            command == "-h")
            return cmdHelp(argc, argv);
    } catch (const SpecError &e) {
        // Bad spec strings (unknown scheme with did-you-mean
        // suggestions, out-of-range parameters, grid grammar).
        std::fprintf(stderr, "%s: %s\n", command.c_str(), e.what());
        return kUsageError;
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s: %s\n", command.c_str(), e.what());
        return 1;
    }
    std::fprintf(stderr, "unknown command '%s'\n", command.c_str());
    return usage(kMainHelp, false);
}
