/**
 * @file
 * acic_run — experiment-driver CLI.
 *
 *   acic_run list
 *       Show every workload preset and every catalogued scheme.
 *
 *   acic_run record --workloads W [--out-dir D] [--instructions N]
 *       Capture synthetic workloads to .acictrace files.
 *
 *   acic_run run --workloads W --schemes S [--threads N]
 *            [--instructions N] [--trace-dir D] [--baseline SCHEME]
 *            [--csv FILE] [--json FILE] [--quiet]
 *       Execute the workloads x schemes matrix on a thread pool and
 *       print paper-shaped IPC/MPKI/speedup tables.
 *
 * Workload lists are comma-separated preset names, or the groups
 * "all", "all-datacenter", "all-spec". Scheme lists accept the
 * display names of Table IV ("-"/"_" may stand in for spaces, case
 * does not matter), or "all".
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "trace/io.hh"

using namespace acic;

namespace {

int
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s <command> [options]\n"
        "\n"
        "commands:\n"
        "  list                     show workload presets and "
        "schemes\n"
        "  record --workloads W [--out-dir D] [--instructions N]\n"
        "                           capture synthetic traces to "
        "disk\n"
        "  run --workloads W --schemes S [--threads N]\n"
        "      [--instructions N] [--trace-dir D] "
        "[--baseline SCHEME]\n"
        "      [--csv FILE] [--json FILE] [--quiet]\n"
        "                           execute the experiment matrix\n"
        "\n"
        "W: comma-separated preset names, or all | all-datacenter | "
        "all-spec\n"
        "S: comma-separated scheme names, or all\n",
        argv0);
    return 2;
}

std::vector<std::string>
splitCommas(const std::string &list)
{
    std::vector<std::string> out;
    std::size_t start = 0;
    while (start <= list.size()) {
        const std::size_t comma = list.find(',', start);
        const std::string item =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (!item.empty())
            out.push_back(item);
        if (comma == std::string::npos)
            break;
        start = comma + 1;
    }
    return out;
}

std::vector<WorkloadParams>
parseWorkloads(const std::string &list)
{
    if (list == "all" || list == "all-datacenter") {
        auto out = Workloads::datacenter();
        if (list == "all") {
            for (auto &p : Workloads::spec())
                out.push_back(p);
        }
        return out;
    }
    if (list == "all-spec")
        return Workloads::spec();
    std::vector<WorkloadParams> out;
    for (const auto &name : splitCommas(list))
        out.push_back(Workloads::byName(name)); // fatals on unknown
    return out;
}

std::vector<Scheme>
parseSchemes(const std::string &list)
{
    if (list == "all")
        return allSchemes();
    std::vector<Scheme> out;
    for (const auto &name : splitCommas(list)) {
        const auto scheme = schemeFromName(name);
        if (!scheme) {
            std::fprintf(stderr, "unknown scheme '%s'\n",
                         name.c_str());
            std::exit(2);
        }
        out.push_back(*scheme);
    }
    return out;
}

/** Pull "--flag value" style options out of argv. */
class OptionParser
{
  public:
    OptionParser(int argc, char **argv) : argc_(argc), argv_(argv) {}

    const char *value(const char *flag) const
    {
        for (int i = 2; i + 1 < argc_; ++i)
            if (std::strcmp(argv_[i], flag) == 0)
                return argv_[i + 1];
        return nullptr;
    }

    bool present(const char *flag) const
    {
        for (int i = 2; i < argc_; ++i)
            if (std::strcmp(argv_[i], flag) == 0)
                return true;
        return false;
    }

  private:
    int argc_;
    char **argv_;
};

std::uint64_t
parseCount(const char *text, const char *what)
{
    char *end = nullptr;
    const long long v = std::strtoll(text, &end, 10);
    if (end == text || *end != '\0' || v <= 0) {
        std::fprintf(stderr, "%s must be a positive integer\n", what);
        std::exit(2);
    }
    return static_cast<std::uint64_t>(v);
}

int
cmdList()
{
    TablePrinter workloads("Workload presets");
    workloads.setHeader(
        {"name", "suite", "instructions", "paper MPKI"});
    for (const auto &p : Workloads::datacenter())
        workloads.addRow({p.name, "datacenter",
                          std::to_string(p.instructions),
                          TablePrinter::fmt(p.paperMpki, 1)});
    for (const auto &p : Workloads::spec())
        workloads.addRow({p.name, "spec",
                          std::to_string(p.instructions),
                          TablePrinter::fmt(p.paperMpki, 1)});
    workloads.print();

    TablePrinter schemes("Scheme catalogue");
    schemes.setHeader({"name"});
    for (const Scheme s : allSchemes())
        schemes.addRow({schemeName(s)});
    schemes.print();
    return 0;
}

int
cmdRecord(const OptionParser &opts)
{
    const char *list = opts.value("--workloads");
    if (!list) {
        std::fprintf(stderr, "record: --workloads is required\n");
        return 2;
    }
    const std::string out_dir =
        opts.value("--out-dir") ? opts.value("--out-dir") : ".";
    auto presets = parseWorkloads(list);
    for (auto &params : presets) {
        // Precedence: explicit flag > ACIC_TRACE_LEN > preset.
        params = WorkloadContext::withEnvOverrides(params);
        if (const char *n = opts.value("--instructions"))
            params.instructions = parseCount(n, "--instructions");
        const std::string path =
            out_dir + "/" + params.name + TraceFormat::suffix();
        SyntheticWorkload trace(params);
        const std::uint64_t written = recordTrace(trace, path);
        std::printf("recorded %s: %llu instructions\n", path.c_str(),
                    static_cast<unsigned long long>(written));
    }
    return 0;
}

int
cmdRun(const OptionParser &opts)
{
    const char *workload_list = opts.value("--workloads");
    const char *scheme_list = opts.value("--schemes");
    if (!workload_list || !scheme_list) {
        std::fprintf(stderr,
                     "run: --workloads and --schemes are required\n");
        return 2;
    }

    ExperimentSpec spec;
    spec.workloads = parseWorkloads(workload_list);
    spec.schemes = parseSchemes(scheme_list);
    if (const char *t = opts.value("--threads"))
        spec.threads =
            static_cast<unsigned>(parseCount(t, "--threads"));
    if (const char *n = opts.value("--instructions"))
        spec.instructions = parseCount(n, "--instructions");
    if (const char *d = opts.value("--trace-dir"))
        spec.traceDir = d;

    Scheme baseline = spec.schemes.front();
    if (const char *b = opts.value("--baseline")) {
        const auto parsed = schemeFromName(b);
        if (!parsed) {
            std::fprintf(stderr, "unknown scheme '%s'\n", b);
            return 2;
        }
        baseline = *parsed;
        bool in_matrix = false;
        for (const Scheme s : spec.schemes)
            in_matrix = in_matrix || s == baseline;
        if (!in_matrix) {
            std::fprintf(stderr,
                         "--baseline %s is not in --schemes; add it "
                         "to the scheme list\n",
                         b);
            return 2;
        }
    }

    const bool quiet = opts.present("--quiet");
    const std::size_t total = spec.cellCount();
    std::size_t done = 0;

    ExperimentDriver driver(spec);
    const auto wall_start = std::chrono::steady_clock::now();
    const auto cells = driver.run([&](const CellResult &cell) {
        ++done;
        if (quiet)
            return;
        std::fprintf(
            stderr,
            "[%zu/%zu] %s / %s: ipc %.3f, mpki %.2f (%.2fs)\n", done,
            total,
            driver.spec().workloads[cell.workloadIndex].name.c_str(),
            schemeName(driver.spec().schemes[cell.schemeIndex])
                .c_str(),
            cell.result.ipc(), cell.result.mpki(),
            cell.hostSeconds);
    });
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() -
                            wall_start)
                            .count();

    // Per-workload baseline cycles for the speedup table.
    const std::size_t n_schemes = spec.schemes.size();
    std::map<std::size_t, double> baseline_cycles;
    for (const auto &cell : cells)
        if (spec.schemes[cell.schemeIndex] == baseline)
            baseline_cycles[cell.workloadIndex] =
                static_cast<double>(cell.result.cycles);

    TablePrinter ipc_table("IPC");
    TablePrinter mpki_table("L1i MPKI");
    TablePrinter speedup_table("Speedup over " +
                               schemeName(baseline));
    std::vector<std::string> header{"workload"};
    for (const Scheme s : spec.schemes)
        header.push_back(schemeName(s));
    ipc_table.setHeader(header);
    mpki_table.setHeader(header);
    speedup_table.setHeader(header);
    const bool have_baseline =
        baseline_cycles.size() == spec.workloads.size();

    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        std::vector<std::string> ipc_row{spec.workloads[w].name};
        std::vector<std::string> mpki_row{spec.workloads[w].name};
        std::vector<std::string> speedup_row{spec.workloads[w].name};
        for (std::size_t s = 0; s < n_schemes; ++s) {
            const SimResult &r = cells[w * n_schemes + s].result;
            ipc_row.push_back(TablePrinter::fmt(r.ipc(), 3));
            mpki_row.push_back(TablePrinter::fmt(r.mpki(), 2));
            if (have_baseline)
                speedup_row.push_back(TablePrinter::fmt(
                    baseline_cycles[w] /
                        static_cast<double>(r.cycles),
                    4));
        }
        ipc_table.addRow(ipc_row);
        mpki_table.addRow(mpki_row);
        if (have_baseline)
            speedup_table.addRow(speedup_row);
    }
    ipc_table.print();
    mpki_table.print();
    if (have_baseline)
        speedup_table.print();

    double cell_seconds = 0.0;
    for (const auto &cell : cells)
        cell_seconds += cell.hostSeconds;
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("\n%zu cells in %.2fs wall (%.2fs of simulation; "
                "parallel speedup %.2fx on %u threads)\n",
                total, wall, cell_seconds,
                wall > 0.0 ? cell_seconds / wall : 0.0,
                spec.threads ? spec.threads : (hw ? hw : 1));

    if (const char *path = opts.value("--csv")) {
        std::ofstream out(path);
        writeResultsCsv(out, driver.spec(), cells);
        if (!out)
            std::fprintf(stderr, "failed writing %s\n", path);
        else
            std::printf("wrote %s\n", path);
    }
    if (const char *path = opts.value("--json")) {
        std::ofstream out(path);
        writeResultsJson(out, driver.spec(), cells);
        if (!out)
            std::fprintf(stderr, "failed writing %s\n", path);
        else
            std::printf("wrote %s\n", path);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2)
        return usage(argv[0]);
    const OptionParser opts(argc, argv);
    const std::string command = argv[1];
    if (command == "list")
        return cmdList();
    if (command == "record")
        return cmdRecord(opts);
    if (command == "run")
        return cmdRun(opts);
    return usage(argv[0]);
}
