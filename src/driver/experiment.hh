/**
 * @file
 * Parallel experiment driver: a declarative ExperimentSpec names a
 * workloads x schemes matrix (the shape of the paper's Table IV and
 * Figs. 10-17) and the driver executes every cell on a thread pool.
 * Each workload's trace is materialized and its Belady oracle built
 * exactly once, shared read-only by all workers; per-cell state (the
 * cache organization and simulator) is private to the worker, so
 * results are bit-identical to the serial WorkloadContext path at any
 * thread count.
 */

#ifndef ACIC_DRIVER_EXPERIMENT_HH
#define ACIC_DRIVER_EXPERIMENT_HH

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.hh"
#include "sim/scheme.hh"
#include "sim/sim_config.hh"
#include "trace/catalog.hh"
#include "trace/workload_params.hh"

namespace acic {

/** Default timed-warmup instructions per measured interval — the
 *  `--warmup` default the CLI help cites. */
constexpr std::uint64_t kDefaultIntervalWarmup = 100'000;

/** Declarative description of one experiment matrix. */
struct ExperimentSpec
{
    /**
     * Workloads forming the rows of the matrix. Entries name either
     * a synthetic preset or an on-disk trace (WorkloadEntry), so
     * imported and generated workloads mix freely in one matrix; a
     * bare WorkloadParams converts implicitly to a synthetic entry.
     */
    std::vector<WorkloadEntry> workloads;

    /**
     * Schemes forming the columns: validated registry specs (see
     * sim/scheme.hh), so presets and parameterized variants mix
     * freely in one matrix. Build with parseSchemeList() /
     * expandSchemeGrid() or parseScheme() per entry.
     */
    std::vector<SchemeSpec> schemes;

    /** Simulator configuration shared by every cell. */
    SimConfig config{};

    /** Worker threads; 0 means hardware concurrency. */
    unsigned threads = 0;

    /**
     * Intervals each cell's trace is sharded into (intra-workload
     * parallelism). 1 (the default) runs the legacy monolithic pass,
     * bit-identical to the serial path. K > 1 slices the trace into
     * K equal regions simulated concurrently on the same pool —
     * each warmed by `intervalWarmup` instructions with stats frozen
     * — and merges shard results with mergeSimResults(), so the
     * longest workload no longer sets the wall-clock floor.
     */
    unsigned intervals = 1;

    /**
     * Timed-warmup instructions preceding each measured interval
     * (clipped at the trace start; the first interval warms from a
     * cold machine exactly like a full run). Only consulted when
     * intervals > 1; full runs keep config.warmupFraction.
     */
    std::uint64_t intervalWarmup = kDefaultIntervalWarmup;

    /**
     * Functional-warming horizon per shard; 0 (default) warms from
     * the trace start — most accurate, with per-shard cost
     * O(shard start). Bound it (kScalingWarmHorizon) for very long
     * traces where shard cost must stay O(horizon + interval). Only
     * consulted when intervals > 1.
     */
    std::uint64_t warmHorizon = 0;

    /**
     * Build and pass the Belady demand oracle to every cell (the
     * default). OPT-style schemes need it to make decisions; for the
     * others it only feeds advisory accuracy counters (match_opt,
     * acic.*_r<N>) in the org-stats dump. Turning it off skips the
     * oracle pass entirely and zeroes those counters — which is also
     * what `acic_run serve` reports, since a live stream cannot be
     * replayed for an oracle — so `run --no-oracle` output is the
     * byte-comparison currency between served and file-based runs.
     */
    bool useOracle = true;

    /**
     * Per-workload trace-length override; 0 keeps preset lengths.
     * Applies to synthetic entries only — trace-file entries always
     * replay their recorded stream in full.
     */
    std::uint64_t instructions = 0;

    /**
     * When non-empty, load `<traceDir>/<name>.acictrace` recorded by
     * `acic_run record` instead of regenerating synthetically.
     * Strict: every *synthetic* entry must have its file present.
     * (TraceFile entries carry their own path and ignore this; the
     * `acic_run --trace-dir` flag instead overlays the directory
     * onto the catalog, which tolerates missing files.)
     */
    std::string traceDir;

    /**
     * Shard selection for distributed sweeps: this process runs only
     * the cells it owns under the deterministic round-robin
     * partition ownsCell(). shardIndex must be < shardCount;
     * shardCount == 1 (the default) owns every cell. Shards of one
     * sweep must agree on the full matrix — each process names the
     * complete workload x scheme grid and the same instruction
     * budget, and only execution is partitioned, so per-shard
     * outputs reassemble with `acic_run merge`.
     */
    unsigned shardIndex = 0;
    unsigned shardCount = 1;

    /**
     * When non-empty, the sweep checkpoints into this directory:
     * completed cells are published to
     * `<dir>/cells/cell_<w>_<s>.bin` ("CELL" containers) and
     * skipped on restart, and monolithic (intervals == 1) cells
     * snapshot their mid-run engine to
     * `<dir>/inflight/cell_<w>_<s>.ckpt` every `checkpointEvery`
     * retired instructions, resuming from the snapshot after a
     * crash. A `manifest.json` pins the matrix shape so a restart
     * with a different spec is rejected instead of mixing results.
     */
    std::string checkpointDir;

    /**
     * Instructions between in-flight engine snapshots of a
     * monolithic cell; 0 disables mid-cell snapshots (completed-cell
     * checkpointing still applies). Ignored when intervals > 1 —
     * interval shards are short; the completed-cell granularity
     * bounds lost work by one shard.
     */
    std::uint64_t checkpointEvery = 5'000'000;

    /** Matrix size (cells). */
    std::size_t cellCount() const
    {
        return workloads.size() * schemes.size();
    }

    /**
     * Deterministic cell partition: cell (w, s) belongs to shard
     * (w * n_schemes + s) mod shardCount — round-robin in
     * workload-major cell order, so every shard gets a near-equal
     * slice of every workload's row.
     */
    bool ownsCell(std::size_t w, std::size_t s) const
    {
        return (w * schemes.size() + s) % shardCount == shardIndex;
    }
};

/** Outcome of one (workload, scheme) cell. */
struct CellResult
{
    std::size_t workloadIndex = 0;
    std::size_t schemeIndex = 0;
    SimResult result;
    /**
     * Host wall-clock seconds the cell's simulation took; for an
     * interval-sharded cell, the summed simulation seconds of its
     * shards (the work, not the elapsed span).
     */
    double hostSeconds = 0.0;
    /**
     * True once the cell has a result. Cells not owned by this
     * process's shard stay false and are skipped by the emitters;
     * a single-shard run marks every cell done.
     */
    bool done = false;
};

/**
 * Shard one (workload x scheme) cell into @p intervals regions, run
 * them concurrently on a private pool of @p threads workers, and
 * merge — the standalone intra-workload parallel primitive (benches,
 * one-cell tools). The ExperimentDriver schedules the same shards
 * inline on its own pool instead, so matrix- and interval-level
 * parallelism share one set of workers.
 */
SimResult runShardedCell(const SharedWorkload &workload,
                         const SchemeSpec &scheme,
                         unsigned intervals, std::uint64_t warmup,
                         unsigned threads = 0,
                         std::uint64_t warmHorizon = 0);

/** See file comment. */
class ExperimentDriver
{
  public:
    explicit ExperimentDriver(ExperimentSpec spec);

    /**
     * Streaming-aggregation callback, invoked as each cell finishes
     * (from worker threads, serialized by the driver). Completion
     * order is nondeterministic; cell indices identify the work.
     */
    using Observer = std::function<void(const CellResult &)>;

    /**
     * Execute the full matrix.
     * @return every cell, ordered workload-major (row by row),
     *         independent of completion order.
     */
    std::vector<CellResult> run(const Observer &observer = {});

    const ExperimentSpec &spec() const { return spec_; }

  private:
    /** Build one workload's shared trace + oracle. */
    std::shared_ptr<const SharedWorkload>
    prepareWorkload(const WorkloadEntry &entry) const;

    ExperimentSpec spec_;
};

} // namespace acic

#endif // ACIC_DRIVER_EXPERIMENT_HH
