/**
 * @file
 * Fixed-size worker pool for the experiment driver. Tasks may submit
 * further tasks (the driver's per-workload prepare tasks fan out into
 * per-scheme run tasks), and wait() blocks until the whole transitive
 * task graph has drained.
 */

#ifndef ACIC_DRIVER_THREAD_POOL_HH
#define ACIC_DRIVER_THREAD_POOL_HH

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace acic {

/** See file comment. */
class ThreadPool
{
  public:
    /**
     * @param threads worker count; 0 means
     *        std::thread::hardware_concurrency() (at least 1).
     */
    explicit ThreadPool(unsigned threads);

    /** Drains outstanding work, then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Enqueue @p task. Safe to call from worker threads. */
    void submit(std::function<void()> task);

    /**
     * Block until every submitted task — including tasks submitted by
     * running tasks — has finished.
     */
    void wait();

    /** Worker-thread count. */
    unsigned threads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Tasks queued but not yet picked up (telemetry gauge). */
    std::size_t queued() const;

    /** Tasks currently executing on a worker (telemetry gauge). */
    std::size_t running() const;

  private:
    void workerLoop();

    mutable std::mutex mutex_;
    std::condition_variable workCv_;  ///< workers wait for tasks
    std::condition_variable idleCv_;  ///< wait() waits for drain
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> workers_;
    std::size_t outstanding_ = 0; ///< queued + currently running
    bool stopping_ = false;
};

} // namespace acic

#endif // ACIC_DRIVER_THREAD_POOL_HH
