#include "driver/emitters.hh"

#include <cstdio>
#include <ostream>

namespace acic {

namespace {

/** Fixed-point double formatting without locale surprises. */
std::string
fmtDouble(double v, int digits)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
    return buf;
}

/**
 * RFC 4180 field quoting. Preset names are plain identifiers, but
 * trace-file catalog entries are named after arbitrary file stems,
 * which may carry commas or quotes.
 */
std::string
csvField(const std::string &s)
{
    if (s.find_first_of(",\"\n\r") == std::string::npos)
        return s;
    std::string out = "\"";
    for (const char c : s) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += '"';
    return out;
}

std::vector<std::string>
workloadNames(const ExperimentSpec &spec)
{
    std::vector<std::string> names;
    names.reserve(spec.workloads.size());
    for (const WorkloadEntry &entry : spec.workloads)
        names.push_back(entry.name());
    return names;
}

std::vector<std::string>
schemeNames(const ExperimentSpec &spec)
{
    std::vector<std::string> names;
    names.reserve(spec.schemes.size());
    for (const SchemeSpec &scheme : spec.schemes)
        names.push_back(schemeName(scheme));
    return names;
}

} // namespace

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 8);
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(c);
            }
        }
    }
    return out;
}

std::vector<ResultRow>
resultRows(const ExperimentSpec &spec,
           const std::vector<CellResult> &cells)
{
    std::vector<ResultRow> rows;
    rows.reserve(cells.size());
    for (const CellResult &cell : cells) {
        if (!cell.done)
            continue;
        ResultRow row;
        row.workload = spec.workloads[cell.workloadIndex].name();
        row.scheme = schemeName(spec.schemes[cell.schemeIndex]);
        row.result = cell.result;
        row.hostSeconds = cell.hostSeconds;
        rows.push_back(std::move(row));
    }
    return rows;
}

void
writeCsvRows(std::ostream &out, const std::vector<ResultRow> &rows)
{
    out << "workload,scheme,instructions,cycles,ipc,mpki,"
           "demand_accesses,l1i_misses,branch_mispredicts,"
           "btb_misses,prefetches_issued,late_prefetches,"
           "l2_accesses,l3_accesses,dram_accesses,host_seconds\n";
    for (const ResultRow &row : rows) {
        const SimResult &r = row.result;
        out << csvField(row.workload) << ','
            << csvField(row.scheme) << ',' << r.instructions << ','
            << r.cycles << ',' << fmtDouble(r.ipc(), 6) << ','
            << fmtDouble(r.mpki(), 6) << ',' << r.demandAccesses
            << ',' << r.l1iMisses << ',' << r.branchMispredicts
            << ',' << r.btbMisses << ',' << r.prefetchesIssued << ','
            << r.latePrefetches << ',' << r.l2Accesses << ','
            << r.l3Accesses << ',' << r.dramAccesses << ','
            << fmtDouble(row.hostSeconds, 3) << '\n';
    }
}

void
writeResultsCsv(std::ostream &out, const ExperimentSpec &spec,
                const std::vector<CellResult> &cells)
{
    writeCsvRows(out, resultRows(spec, cells));
}

void
writeBenchJson(
    std::ostream &out, const std::string &bench,
    const std::vector<std::pair<std::string, std::string>> &meta,
    const std::vector<BenchRow> &rows)
{
    out << "{\n  \"format\": 1,\n  \"bench\": \""
        << jsonEscape(bench) << "\",\n  \"meta\": {";
    for (std::size_t i = 0; i < meta.size(); ++i)
        out << (i ? ", " : "") << '"' << jsonEscape(meta[i].first)
            << "\": \"" << jsonEscape(meta[i].second) << '"';
    out << "},\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        out << "    {\"label\": \"" << jsonEscape(rows[i].label)
            << "\", \"seconds\": " << fmtDouble(rows[i].seconds, 4)
            << ", \"minst_per_sec\": "
            << fmtDouble(rows[i].minstPerSec, 3) << '}'
            << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
}

void
writeGoldenDump(std::ostream &out, const SimResult &r)
{
    out << "workload " << r.workload << '\n'
        << "scheme " << r.scheme << '\n'
        << "instructions " << r.instructions << '\n'
        << "cycles " << r.cycles << '\n'
        << "demand_accesses " << r.demandAccesses << '\n'
        << "l1i_misses " << r.l1iMisses << '\n'
        << "branch_mispredicts " << r.branchMispredicts << '\n'
        << "btb_misses " << r.btbMisses << '\n'
        << "prefetches_issued " << r.prefetchesIssued << '\n'
        << "late_prefetches " << r.latePrefetches << '\n'
        << "l2_accesses " << r.l2Accesses << '\n'
        << "l3_accesses " << r.l3Accesses << '\n'
        << "dram_accesses " << r.dramAccesses << '\n';
    r.orgStats.dump(out, "org.");
}

void
writeJsonRows(std::ostream &out,
              const std::vector<std::string> &workloads,
              const std::vector<std::string> &schemes,
              const std::vector<ResultRow> &rows)
{
    out << "{\n  \"format\": 1,\n  \"workloads\": [";
    for (std::size_t i = 0; i < workloads.size(); ++i)
        out << (i ? ", " : "") << '"' << jsonEscape(workloads[i])
            << '"';
    out << "],\n  \"schemes\": [";
    for (std::size_t i = 0; i < schemes.size(); ++i)
        out << (i ? ", " : "") << '"' << jsonEscape(schemes[i])
            << '"';
    out << "],\n  \"cells\": [\n";
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const ResultRow &row = rows[i];
        const SimResult &r = row.result;
        out << "    {\"workload\": \"" << jsonEscape(row.workload)
            << "\", \"scheme\": \"" << jsonEscape(row.scheme)
            << "\",\n     \"instructions\": " << r.instructions
            << ", \"cycles\": " << r.cycles
            << ", \"ipc\": " << fmtDouble(r.ipc(), 6)
            << ", \"mpki\": " << fmtDouble(r.mpki(), 6)
            << ",\n     \"demand_accesses\": " << r.demandAccesses
            << ", \"l1i_misses\": " << r.l1iMisses
            << ", \"branch_mispredicts\": " << r.branchMispredicts
            << ", \"btb_misses\": " << r.btbMisses
            << ",\n     \"prefetches_issued\": " << r.prefetchesIssued
            << ", \"late_prefetches\": " << r.latePrefetches
            << ", \"l2_accesses\": " << r.l2Accesses
            << ", \"l3_accesses\": " << r.l3Accesses
            << ", \"dram_accesses\": " << r.dramAccesses
            << ",\n     \"host_seconds\": "
            << fmtDouble(row.hostSeconds, 3)
            << ",\n     \"org_stats\": {";
        bool first = true;
        for (const auto &[name, value] : r.orgStats.raw()) {
            out << (first ? "" : ", ") << '"' << jsonEscape(name)
                << "\": " << value;
            first = false;
        }
        out << "}}" << (i + 1 < rows.size() ? "," : "") << '\n';
    }
    out << "  ]\n}\n";
}

void
writeResultsJson(std::ostream &out, const ExperimentSpec &spec,
                 const std::vector<CellResult> &cells)
{
    writeJsonRows(out, workloadNames(spec), schemeNames(spec),
                  resultRows(spec, cells));
}

} // namespace acic
