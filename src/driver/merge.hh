/**
 * @file
 * Shard-output merging for distributed sweeps: each shard process
 * (`acic_run sweep --shard i/N --json ...`) emits the full matrix
 * header but only its owned cells; `acic_run merge` reassembles the
 * complete sweep. The merge validates that every shard describes the
 * same matrix, that no cell appears twice, and that no cell is
 * missing, then re-emits through the same row writers the monolithic
 * sweep uses — so the merged CSV/JSON is byte-identical to a
 * single-process run of the whole matrix.
 */

#ifndef ACIC_DRIVER_MERGE_HH
#define ACIC_DRIVER_MERGE_HH

#include <string>
#include <vector>

#include "driver/emitters.hh"

namespace acic {

/** A reassembled sweep: the matrix labels plus every cell's row. */
struct MergedSweep
{
    std::vector<std::string> workloads; ///< display names, in order
    std::vector<std::string> schemes;   ///< display names, in order
    /** Full matrix, workload-major — exactly one row per cell. */
    std::vector<ResultRow> rows;
};

/**
 * Parse and combine per-shard sweep JSON documents (the
 * writeResultsJson format). Throws std::runtime_error naming the
 * offending file on: unreadable input, malformed JSON, an
 * unsupported format version, shards describing different matrices,
 * a cell labeled outside the matrix, a duplicate cell, or missing
 * cells — partial or double-counted sweeps are never emitted
 * silently.
 */
MergedSweep mergeShardOutputs(const std::vector<std::string> &paths);

} // namespace acic

#endif // ACIC_DRIVER_MERGE_HH
