/**
 * @file
 * GHRP (Mirbagher Ajorpaz et al., ISCA 2018): global-history-based
 * predictive replacement for instruction caches. A 16-bit global
 * history of recent i-cache access signatures, combined with the
 * accessing signature, indexes three skewed 4096-entry tables of 2-bit
 * counters; a majority vote predicts whether a line is *dead*. Dead
 * lines are preferred victims; fills predicted dead insert with a
 * dead mark so they age out first.
 * Table IV: 3 x 4096 x 2-bit tables, 16-bit signature per line, 1-bit
 * prediction, 16-bit history register = 4.06 KB.
 */

#ifndef ACIC_CACHE_GHRP_HH
#define ACIC_CACHE_GHRP_HH

#include <vector>

#include "cache/replacement.hh"
#include "common/sat_counter.hh"

namespace acic {

/** See file comment. */
class GhrpPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param table_entries entries per predictor table (paper: 4096).
     * @param history_bits width of the global history (paper: 16).
     */
    explicit GhrpPolicy(std::size_t table_entries = 4096,
                        unsigned history_bits = 16);

    void bind(std::uint32_t num_sets, std::uint32_t num_ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const CacheLine &line) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "GHRP"; }
    std::uint64_t storageOverheadBits() const override;

    /** Dead prediction for a signature under the current history. */
    bool predictDead(std::uint32_t signature) const;

    /** Current history register value (tests). */
    std::uint32_t history() const { return history_; }

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    struct LineMeta
    {
        std::uint32_t signature = 0; ///< signature recorded at fill
        bool predictedDead = false;  ///< prediction bit stored per line
        bool reused = false;         ///< touched since fill (training)
        std::uint8_t lruStamp = 0;   ///< small per-set recency
    };

    LineMeta &at(std::uint32_t set, std::uint32_t way)
    {
        return meta_[static_cast<std::size_t>(set) * ways_ + way];
    }
    const LineMeta &at(std::uint32_t set, std::uint32_t way) const
    {
        return meta_[static_cast<std::size_t>(set) * ways_ + way];
    }

    std::uint32_t signatureOf(Addr pc) const;
    std::size_t indexOf(std::uint32_t signature,
                        std::size_t table) const;
    void train(std::uint32_t signature, bool dead);
    void pushHistory(std::uint32_t signature);
    void touchLru(std::uint32_t set, std::uint32_t way);

    std::size_t tableEntries_;
    unsigned historyBits_;
    std::uint32_t history_ = 0;
    std::vector<SatCounter> tables_[3];
    std::vector<LineMeta> meta_;
    /** Vote threshold: predict dead when >= 2 of 3 counters agree. */
    static constexpr unsigned kVoteNeeded = 2;
};

} // namespace acic

#endif // ACIC_CACHE_GHRP_HH
