/**
 * @file
 * Miss Status Holding Registers (Kroft, ISCA 1981). Tracks outstanding
 * misses so duplicate requests merge and fills release their entry at
 * the due cycle. The paper gives the L1i 16 MSHRs (Table II); ACIC's
 * CSHR structure is explicitly "inspired by the design of MSHR".
 */

#ifndef ACIC_CACHE_MSHR_HH
#define ACIC_CACHE_MSHR_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/** Outcome of an allocation attempt. */
enum class MshrOutcome : std::uint8_t
{
    Allocated, ///< new entry created
    Merged,    ///< request folded into an in-flight miss
    Full,      ///< no entry free; caller must retry
};

/** See file comment. */
class MshrFile
{
  public:
    explicit MshrFile(std::uint32_t entries);

    /**
     * Request servicing of @p blk, due back at @p ready_cycle.
     * Merging keeps the earlier ready cycle. @p pc and @p seq
     * describe the requesting access and ride along to the fill.
     */
    MshrOutcome allocate(BlockAddr blk, Cycle ready_cycle,
                         bool is_prefetch, Addr pc = 0,
                         std::uint64_t seq = 0);

    /** True when a miss on @p blk is in flight. */
    bool pending(BlockAddr blk) const;

    /** Ready cycle of a pending miss (kInvalidAddr-safe: 0 if none). */
    Cycle readyCycle(BlockAddr blk) const;

    /**
     * Pop every entry due at or before @p now into @p out.
     * @return number of fills popped.
     */
    struct Fill
    {
        BlockAddr blk;
        bool wasPrefetch;
        bool demandWaiting; ///< a demand merged into/created this miss
        Addr pc;            ///< requesting PC (policy signatures)
        std::uint64_t seq;  ///< requesting demand-sequence index
    };
    std::size_t popReady(Cycle now, std::vector<Fill> &out);

    /** Inline gate for popReady(): false guarantees no entry is due,
     *  letting the per-cycle caller skip the call and its fill-loop
     *  setup entirely. (True only promises a fill *may* be due:
     *  minReady_ is a lower bound.) */
    bool anyReady(Cycle now) const
    {
        return used_ != 0 && now >= minReady_;
    }

    /** In-flight entry count. */
    std::uint32_t inFlight() const { return used_; }

    /** Capacity. */
    std::uint32_t capacity() const
    {
        return static_cast<std::uint32_t>(entries_.size());
    }

    /** True when no entry is free. */
    bool full() const { return used_ == capacity(); }

    /** Drop everything (between benchmark runs). */
    void clear();

    /** Checkpoint in-flight misses (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Entry
    {
        BlockAddr blk = 0;
        Cycle ready = 0;
        bool valid = false;
        bool wasPrefetch = false;
        bool demandWaiting = false;
        Addr pc = 0;
        std::uint64_t seq = 0;
    };

    /** Unmatchable tag-mirror value for free slots (blk < 2^58). */
    static constexpr std::uint64_t kFreeTag = ~std::uint64_t{0};

    /** Index of the live entry holding @p blk, or npos. */
    std::size_t findTag(BlockAddr blk) const;
    /** Index of the first free entry, or npos. */
    std::size_t findFree() const;

    std::vector<Entry> entries_;
    /**
     * SoA mirror of the entry block tags (kFreeTag when invalid),
     * padded to the tag-scan lane stride so pending()/allocate()
     * resolve with one SIMD sweep instead of walking the entry
     * structs. Derived state: rebuilt on load().
     */
    std::vector<std::uint64_t> tags_;
    std::uint32_t used_ = 0;
    /** Lower bound on the earliest in-flight ready cycle (never above
     *  the true minimum), so the per-cycle popReady() sweep is skipped
     *  while nothing can complete. */
    Cycle minReady_ = ~Cycle{0};
};

} // namespace acic

#endif // ACIC_CACHE_MSHR_HH
