#include "cache/hawkeye.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acic {

HawkeyePolicy::HawkeyePolicy(std::size_t predictor_entries,
                             unsigned sample_shift)
    : predictorEntries_(predictor_entries), sampleShift_(sample_shift)
{
    ACIC_ASSERT(predictor_entries >= 64,
                "Hawkeye predictor too small");
    // Start weakly friendly so cold code is cached until proven averse.
    predictor_.assign(predictorEntries_, SatCounter(3, 4));
}

void
HawkeyePolicy::bind(std::uint32_t num_sets, std::uint32_t num_ways)
{
    ReplacementPolicy::bind(num_sets, num_ways);
    meta_.assign(static_cast<std::size_t>(num_sets) * num_ways, {});
    window_ = 8 * num_ways; // Table IV: 64 entries at 8 ways
    samples_.clear();
}

std::size_t
HawkeyePolicy::pcIndex(Addr pc) const
{
    std::uint64_t x = pc >> 2;
    x ^= x >> 13;
    x *= 0x9e3779b97f4a7c15ull;
    x ^= x >> 31;
    return static_cast<std::size_t>(x % predictorEntries_);
}

bool
HawkeyePolicy::predictFriendly(Addr pc) const
{
    return predictor_[pcIndex(pc)].msbSet();
}

void
HawkeyePolicy::optGenAccess(std::uint32_t set,
                            const CacheAccess &access)
{
    if ((set & ((1u << sampleShift_) - 1)) != 0 || access.isPrefetch)
        return;
    OptGenSet &gen = samples_[set];
    if (gen.occupancy.empty())
        gen.occupancy.assign(window_, 0);

    const std::uint64_t now = gen.time++;
    gen.occupancy[now % window_] = 0; // new quantum opens empty

    const auto it = gen.last.find(access.blk);
    if (it != gen.last.end()) {
        const std::uint64_t prev = it->second.first;
        const Addr prev_pc = it->second.second;
        if (now - prev < window_) {
            bool fits = true;
            for (std::uint64_t t = prev; t < now; ++t) {
                if (gen.occupancy[t % window_] >= ways_) {
                    fits = false;
                    break;
                }
            }
            if (fits) {
                for (std::uint64_t t = prev; t < now; ++t)
                    ++gen.occupancy[t % window_];
                predictor_[pcIndex(prev_pc)].increment();
            } else {
                predictor_[pcIndex(prev_pc)].decrement();
            }
        } else {
            // Out of OPTgen reach: cannot have been an OPT hit.
            predictor_[pcIndex(prev_pc)].decrement();
        }
    }
    gen.last[access.blk] = {now, access.pc};
    // Bound the per-set map: drop entries far outside the window.
    if (gen.last.size() > 8 * window_) {
        for (auto iter = gen.last.begin(); iter != gen.last.end();) {
            if (now - iter->second.first >= 4 * window_)
                iter = gen.last.erase(iter);
            else
                ++iter;
        }
    }
}

void
HawkeyePolicy::onHit(std::uint32_t set, std::uint32_t way,
                     const CacheAccess &access)
{
    optGenAccess(set, access);
    LineMeta &m = at(set, way);
    m.friendly = predictFriendly(access.pc);
    m.fillPc = access.pc;
    if (m.friendly) {
        m.rrpv = 0;
        // Age everyone else below saturation-1 (Hawkeye aging rule).
        for (std::uint32_t other = 0; other < ways_; ++other) {
            if (other == way)
                continue;
            LineMeta &o = at(set, other);
            if (o.rrpv < kMaxRrpv - 1)
                ++o.rrpv;
        }
    } else {
        m.rrpv = kMaxRrpv;
    }
}

void
HawkeyePolicy::onFill(std::uint32_t set, std::uint32_t way,
                      const CacheAccess &access)
{
    optGenAccess(set, access);
    LineMeta &m = at(set, way);
    m.fillPc = access.pc;
    m.friendly = predictFriendly(access.pc);
    if (m.friendly) {
        m.rrpv = 0;
        for (std::uint32_t other = 0; other < ways_; ++other) {
            if (other == way)
                continue;
            LineMeta &o = at(set, other);
            if (o.rrpv < kMaxRrpv - 1)
                ++o.rrpv;
        }
    } else {
        m.rrpv = kMaxRrpv;
    }
}

void
HawkeyePolicy::onEvict(std::uint32_t set, std::uint32_t way,
                       const CacheLine &)
{
    const LineMeta &m = at(set, way);
    // Evicting a friendly line means OPT would have kept it: detrain.
    if (m.friendly)
        predictor_[pcIndex(m.fillPc)].decrement();
}

std::uint32_t
HawkeyePolicy::victimWay(std::uint32_t set, const CacheAccess &,
                         const CacheLine *)
{
    std::uint32_t victim = 0;
    std::uint8_t highest = 0;
    for (std::uint32_t way = 0; way < ways_; ++way) {
        const LineMeta &m = at(set, way);
        if (m.rrpv == kMaxRrpv)
            return way;
        if (m.rrpv >= highest) {
            highest = m.rrpv;
            victim = way;
        }
    }
    return victim;
}

std::uint64_t
HawkeyePolicy::storageOverheadBits() const
{
    const std::uint64_t lines = std::uint64_t{sets_} * ways_;
    const std::uint64_t sampled_sets = sets_ >> sampleShift_;
    // Predictor + 3-bit RRPV per line + occupancy vectors (4 bits per
    // quantum) + OPTgen sampler tag/PC store (20 bits per window
    // entry) for sampled sets -- Table IV's 4.69 KB recipe.
    return predictorEntries_ * 3 + lines * 3 +
           sampled_sets * window_ * 4 + sampled_sets * window_ * 20;
}

void
HawkeyePolicy::save(Serializer &s) const
{
    s.vecSat(predictor_);
    s.u64(meta_.size());
    for (const LineMeta &m : meta_) {
        s.u8(m.rrpv);
        s.u64(m.fillPc);
        s.b(m.friendly);
    }
    // Hash maps have no deterministic iteration order; serialize
    // sorted by key so identical state yields identical bytes.
    std::vector<std::uint32_t> sets;
    sets.reserve(samples_.size());
    for (const auto &kv : samples_)
        sets.push_back(kv.first);
    std::sort(sets.begin(), sets.end());
    s.u64(sets.size());
    for (std::uint32_t set : sets) {
        const OptGenSet &gen = samples_.at(set);
        s.u32(set);
        s.vecU8(gen.occupancy);
        std::vector<BlockAddr> blks;
        blks.reserve(gen.last.size());
        for (const auto &kv : gen.last)
            blks.push_back(kv.first);
        std::sort(blks.begin(), blks.end());
        s.u64(blks.size());
        for (BlockAddr blk : blks) {
            const auto &rec = gen.last.at(blk);
            s.u64(blk);
            s.u64(rec.first);
            s.u64(rec.second);
        }
        s.u64(gen.time);
    }
}

void
HawkeyePolicy::load(Deserializer &d)
{
    d.vecSat(predictor_);
    d.expectGeometry("hawkeye line metadata", meta_.size());
    for (LineMeta &m : meta_) {
        m.rrpv = d.u8();
        m.fillPc = d.u64();
        m.friendly = d.b();
    }
    const std::size_t n_sets = d.count(8);
    samples_.clear();
    for (std::size_t i = 0; i < n_sets; ++i) {
        const std::uint32_t set = d.u32();
        OptGenSet gen;
        gen.occupancy = d.vecU8();
        const std::size_t n_blks = d.count(24);
        for (std::size_t j = 0; j < n_blks; ++j) {
            const BlockAddr blk = d.u64();
            const std::uint64_t time = d.u64();
            const Addr pc = d.u64();
            gen.last.emplace(blk, std::make_pair(time, pc));
        }
        gen.time = d.u64();
        samples_.emplace(set, std::move(gen));
    }
}

} // namespace acic
