#include "cache/ghrp.hh"

#include "common/logging.hh"

namespace acic {

GhrpPolicy::GhrpPolicy(std::size_t table_entries, unsigned history_bits)
    : tableEntries_(table_entries), historyBits_(history_bits)
{
    ACIC_ASSERT(table_entries >= 16 && (table_entries &
                (table_entries - 1)) == 0,
                "GHRP table entries must be a power of two");
    ACIC_ASSERT(history_bits >= 4 && history_bits <= 32,
                "GHRP history bits");
    for (auto &table : tables_)
        table.assign(tableEntries_, SatCounter(2, 0));
}

void
GhrpPolicy::bind(std::uint32_t num_sets, std::uint32_t num_ways)
{
    ReplacementPolicy::bind(num_sets, num_ways);
    meta_.assign(static_cast<std::size_t>(num_sets) * num_ways, {});
}

std::uint32_t
GhrpPolicy::signatureOf(Addr pc) const
{
    // 16-bit fold of the accessing PC's block address.
    const std::uint64_t v = pc >> kBlockShift;
    return static_cast<std::uint32_t>(
        (v ^ (v >> 16) ^ (v >> 32)) & 0xffff);
}

std::size_t
GhrpPolicy::indexOf(std::uint32_t signature, std::size_t table) const
{
    // Three skewed hashes of (signature, history), one per table.
    std::uint64_t x =
        (static_cast<std::uint64_t>(signature) << 16) ^ history_;
    x *= 0x9e3779b97f4a7c15ull + 0x40ull * table;
    x ^= x >> 29;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 32;
    return static_cast<std::size_t>(x & (tableEntries_ - 1));
}

bool
GhrpPolicy::predictDead(std::uint32_t signature) const
{
    unsigned votes = 0;
    for (std::size_t t = 0; t < 3; ++t)
        if (tables_[t][indexOf(signature, t)].msbSet())
            ++votes;
    return votes >= kVoteNeeded;
}

void
GhrpPolicy::train(std::uint32_t signature, bool dead)
{
    for (std::size_t t = 0; t < 3; ++t) {
        SatCounter &ctr = tables_[t][indexOf(signature, t)];
        if (dead)
            ctr.increment();
        else
            ctr.decrement();
    }
}

void
GhrpPolicy::pushHistory(std::uint32_t signature)
{
    const std::uint32_t mask = (1u << historyBits_) - 1;
    history_ = ((history_ << 4) ^ signature) & mask;
}

void
GhrpPolicy::touchLru(std::uint32_t set, std::uint32_t way)
{
    LineMeta &m = at(set, way);
    const std::uint8_t old = m.lruStamp;
    for (std::uint32_t other = 0; other < ways_; ++other) {
        LineMeta &o = at(set, other);
        if (other != way && o.lruStamp > old)
            --o.lruStamp;
    }
    m.lruStamp = static_cast<std::uint8_t>(ways_ - 1);
}

void
GhrpPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const CacheAccess &access)
{
    LineMeta &m = at(set, way);
    const std::uint32_t sig = signatureOf(access.pc);
    // The line proved live: detrain its fill signature.
    if (!m.reused) {
        m.reused = true;
        train(m.signature, false);
    }
    // Re-predict under the current history for the new access.
    m.signature = sig;
    m.predictedDead = predictDead(sig);
    touchLru(set, way);
    pushHistory(sig);
}

void
GhrpPolicy::onFill(std::uint32_t set, std::uint32_t way,
                   const CacheAccess &access)
{
    LineMeta &m = at(set, way);
    const std::uint32_t sig = signatureOf(access.pc);
    m.signature = sig;
    m.reused = false;
    m.predictedDead = predictDead(sig);
    touchLru(set, way);
    pushHistory(sig);
}

void
GhrpPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                    const CacheLine &)
{
    LineMeta &m = at(set, way);
    // Evicted without reuse -> the signature led to a dead block.
    if (!m.reused)
        train(m.signature, true);
}

std::uint32_t
GhrpPolicy::victimWay(std::uint32_t set, const CacheAccess &,
                      const CacheLine *)
{
    // Prefer the least-recent predicted-dead line; else strict LRU.
    std::uint32_t victim = 0;
    bool haveDead = false;
    std::uint8_t deadStamp = 0xff;
    std::uint8_t lruStamp = 0xff;
    std::uint32_t lruWay = 0;
    for (std::uint32_t way = 0; way < ways_; ++way) {
        const LineMeta &m = at(set, way);
        if (m.predictedDead && m.lruStamp < deadStamp) {
            deadStamp = m.lruStamp;
            victim = way;
            haveDead = true;
        }
        if (m.lruStamp < lruStamp) {
            lruStamp = m.lruStamp;
            lruWay = way;
        }
    }
    return haveDead ? victim : lruWay;
}

std::uint64_t
GhrpPolicy::storageOverheadBits() const
{
    const std::uint64_t lines = std::uint64_t{sets_} * ways_;
    // 3 tables of 2-bit counters, 16-bit per-line signature, 1-bit
    // prediction, 16-bit history register (Table IV).
    return 3 * tableEntries_ * 2 + lines * (16 + 1) + historyBits_;
}

void
GhrpPolicy::save(Serializer &s) const
{
    s.u32(history_);
    for (const auto &table : tables_)
        s.vecSat(table);
    s.u64(meta_.size());
    for (const LineMeta &m : meta_) {
        s.u32(m.signature);
        s.b(m.predictedDead);
        s.b(m.reused);
        s.u8(m.lruStamp);
    }
}

void
GhrpPolicy::load(Deserializer &d)
{
    history_ = d.u32();
    for (auto &table : tables_)
        d.vecSat(table);
    d.expectGeometry("ghrp line metadata", meta_.size());
    for (LineMeta &m : meta_) {
        m.signature = d.u32();
        m.predictedDead = d.b();
        m.reused = d.b();
        m.lruStamp = d.u8();
    }
}

} // namespace acic
