#include "cache/hierarchy.hh"

#include "cache/lru.hh"

namespace acic {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config),
      l2_(SetAssocCache::bySize(config.l2Bytes, config.l2Ways,
                                std::make_unique<LruPolicy>())),
      l3_(SetAssocCache::bySize(config.l3Bytes, config.l3Ways,
                                std::make_unique<LruPolicy>()))
{
    stL2Hit_ = stats_.handle("hier.l2_hit");
    stL2Miss_ = stats_.handle("hier.l2_miss");
    stL3Hit_ = stats_.handle("hier.l3_hit");
    stL3Miss_ = stats_.handle("hier.l3_miss");
    stDramAccess_ = stats_.handle("hier.dram_access");
}

Cycle
MemoryHierarchy::serviceMiss(BlockAddr blk, Addr pc)
{
    CacheAccess access;
    access.blk = blk;
    access.pc = pc;

    if (l2_.lookup(access)) {
        stats_.bump(stL2Hit_);
        return config_.l2Latency;
    }
    stats_.bump(stL2Miss_);

    if (l3_.lookup(access)) {
        stats_.bump(stL3Hit_);
        l2_.fill(access);
        return config_.l3Latency;
    }
    stats_.bump(stL3Miss_);
    stats_.bump(stDramAccess_);

    l3_.fill(access);
    l2_.fill(access);
    return config_.l3Latency + config_.dramLatency;
}

void
MemoryHierarchy::save(Serializer &s) const
{
    l2_.save(s);
    l3_.save(s);
    stats_.save(s);
}

void
MemoryHierarchy::load(Deserializer &d)
{
    l2_.load(d);
    l3_.load(d);
    stats_.load(d);
}

} // namespace acic
