#include "cache/hierarchy.hh"

#include "cache/lru.hh"

namespace acic {

MemoryHierarchy::MemoryHierarchy(const HierarchyConfig &config)
    : config_(config),
      l2_(SetAssocCache::bySize(config.l2Bytes, config.l2Ways,
                                std::make_unique<LruPolicy>())),
      l3_(SetAssocCache::bySize(config.l3Bytes, config.l3Ways,
                                std::make_unique<LruPolicy>()))
{
}

Cycle
MemoryHierarchy::serviceMiss(BlockAddr blk, Addr pc)
{
    CacheAccess access;
    access.blk = blk;
    access.pc = pc;

    if (l2_.lookup(access)) {
        stats_.bump("hier.l2_hit");
        return config_.l2Latency;
    }
    stats_.bump("hier.l2_miss");

    if (l3_.lookup(access)) {
        stats_.bump("hier.l3_hit");
        l2_.fill(access);
        return config_.l3Latency;
    }
    stats_.bump("hier.l3_miss");
    stats_.bump("hier.dram_access");

    l3_.fill(access);
    l2_.fill(access);
    return config_.l3Latency + config_.dramLatency;
}

} // namespace acic
