/**
 * @file
 * Victim cache (Jouppi, ISCA 1990): a small buffer holding blocks
 * evicted from L1i for a second chance. The paper compares against a
 * 3 KB fully-associative VC3K (Sec. IV-F / Fig. 10) and lists an 8 KB
 * 4-way, 128-block VC8K in Table IV; both are configurations of this
 * class.
 */

#ifndef ACIC_CACHE_VICTIM_CACHE_HH
#define ACIC_CACHE_VICTIM_CACHE_HH

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hh"

namespace acic {

class Serializer;
class Deserializer;

/**
 * Set-associative (or fully associative with one set) victim buffer
 * with per-set LRU.
 */
class VictimCache
{
  public:
    /**
     * @param blocks total capacity in blocks.
     * @param ways associativity; equal to @p blocks (and sets == 1)
     *        makes it fully associative.
     */
    VictimCache(std::uint32_t blocks, std::uint32_t ways);

    /** Fully-associative 3 KB configuration of Sec. IV-F. */
    static VictimCache vc3k() { return VictimCache(48, 48); }

    /** 4-way, 128-block, 8 KB configuration of Table IV. */
    static VictimCache vc8k() { return VictimCache(128, 4); }

    /**
     * Probe for @p blk and remove it on hit (a victim hit swaps the
     * block back into L1i).
     * @return true when present.
     */
    bool extract(BlockAddr blk);

    /** State-preserving presence test. */
    bool probe(BlockAddr blk) const;

    /** Insert an evicted block, displacing per-set LRU. */
    void insert(BlockAddr blk);

    std::uint32_t capacityBlocks() const { return blocks_; }

    /** Data + tag storage in bits (Table IV accounting). */
    std::uint64_t storageBits() const;

    /** Checkpoint buffer contents (checkpoint/resume). */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Entry
    {
        BlockAddr blk = 0;
        bool valid = false;
        std::uint64_t stamp = 0;
    };

    std::uint32_t setOf(BlockAddr blk) const
    {
        return static_cast<std::uint32_t>(blk) & (sets_ - 1);
    }

    std::uint32_t blocks_;
    std::uint32_t ways_;
    std::uint32_t sets_;
    std::uint64_t tick_ = 0;
    std::vector<Entry> entries_;
};

} // namespace acic

#endif // ACIC_CACHE_VICTIM_CACHE_HH
