/**
 * @file
 * SHiP (Wu et al., MICRO 2011): Signature-based Hit Predictor on an
 * SRRIP substrate. Each line remembers the 13-bit PC signature that
 * filled it plus an outcome bit; a Signature History Counter Table
 * (SHCT, 8K x 2-bit) learns whether fills from a signature are
 * re-referenced. Zero-counter signatures insert at distant RRPV.
 * Table IV: 13-bit signature, 8K-entry SHCT, 2-bit counters = 2.88 KB.
 */

#ifndef ACIC_CACHE_SHIP_HH
#define ACIC_CACHE_SHIP_HH

#include <vector>

#include "cache/replacement.hh"
#include "common/sat_counter.hh"

namespace acic {

/** See file comment. */
class ShipPolicy : public ReplacementPolicy
{
  public:
    /**
     * @param signature_bits width of the PC signature (paper: 13).
     * @param shct_entries SHCT size (paper: 8192).
     */
    explicit ShipPolicy(unsigned signature_bits = 13,
                        std::size_t shct_entries = 8192);

    void bind(std::uint32_t num_sets, std::uint32_t num_ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const CacheLine &line) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "SHiP"; }
    std::uint64_t storageOverheadBits() const override;

    /** Signature of a PC (exposed for tests). */
    std::uint32_t signatureOf(Addr pc) const;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    struct LineMeta
    {
        std::uint8_t rrpv = 3;
        std::uint32_t signature = 0;
        bool outcome = false; ///< re-referenced since fill
    };

    LineMeta &at(std::uint32_t set, std::uint32_t way)
    {
        return meta_[static_cast<std::size_t>(set) * ways_ + way];
    }

    unsigned sigBits_;
    std::vector<LineMeta> meta_;
    std::vector<SatCounter> shct_;
    static constexpr std::uint8_t kMaxRrpv = 3;
};

} // namespace acic

#endif // ACIC_CACHE_SHIP_HH
