#include "cache/victim_cache.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

VictimCache::VictimCache(std::uint32_t blocks, std::uint32_t ways)
    : blocks_(blocks), ways_(ways), sets_(blocks / ways)
{
    ACIC_ASSERT(ways >= 1 && blocks % ways == 0,
                "victim cache geometry");
    ACIC_ASSERT((sets_ & (sets_ - 1)) == 0,
                "victim cache sets must be a power of two");
    entries_.resize(blocks_);
}

bool
VictimCache::probe(BlockAddr blk) const
{
    const std::uint32_t set = setOf(blk);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        const Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.blk == blk)
            return true;
    }
    return false;
}

bool
VictimCache::extract(BlockAddr blk)
{
    const std::uint32_t set = setOf(blk);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (e.valid && e.blk == blk) {
            e.valid = false;
            return true;
        }
    }
    return false;
}

void
VictimCache::insert(BlockAddr blk)
{
    const std::uint32_t set = setOf(blk);
    Entry *victim = nullptr;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Entry &e = entries_[set * ways_ + w];
        if (!e.valid) {
            victim = &e;
            break;
        }
        if (e.stamp < oldest) {
            oldest = e.stamp;
            victim = &e;
        }
    }
    victim->valid = true;
    victim->blk = blk;
    victim->stamp = ++tick_;
}

std::uint64_t
VictimCache::storageBits() const
{
    // Full data blocks plus ~58-bit tags, valid, and LRU bits.
    const std::uint64_t per_entry =
        kBlockBytes * 8 + 58 + 1 + 6;
    return per_entry * blocks_;
}

void
VictimCache::save(Serializer &s) const
{
    s.u64(blocks_);
    s.u64(ways_);
    s.u64(tick_);
    for (const Entry &e : entries_) {
        s.u64(e.blk);
        s.b(e.valid);
        s.u64(e.stamp);
    }
}

void
VictimCache::load(Deserializer &d)
{
    d.expectGeometry("victim-cache blocks", blocks_);
    d.expectGeometry("victim-cache ways", ways_);
    tick_ = d.u64();
    for (Entry &e : entries_) {
        e.blk = d.u64();
        e.valid = d.b();
        e.stamp = d.u64();
    }
}

} // namespace acic
