/**
 * @file
 * Baseline replacement policies: true LRU (the paper's conventional
 * i-cache baseline) and Random (tests and sanity baselines).
 */

#ifndef ACIC_CACHE_LRU_HH
#define ACIC_CACHE_LRU_HH

#include <vector>

#include "cache/replacement.hh"
#include "common/rng.hh"

namespace acic {

/** True LRU via per-line monotonically increasing timestamps. */
class LruPolicy : public ReplacementPolicy
{
  public:
    void bind(std::uint32_t num_sets, std::uint32_t num_ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "LRU"; }
    std::uint64_t storageOverheadBits() const override { return 0; }

    /**
     * Way holding the least-recently-used line (the ACIC *contender*
     * query); identical to victimWay but callable without an access.
     */
    std::uint32_t lruWay(std::uint32_t set) const;

    /** Recency rank of a way: 0 = MRU, ways-1 = LRU (tests). */
    std::uint32_t rankOf(std::uint32_t set, std::uint32_t way) const;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    std::uint64_t &stampOf(std::uint32_t set, std::uint32_t way)
    {
        return stamps_[static_cast<std::size_t>(set) * ways_ + way];
    }
    const std::uint64_t &stampOf(std::uint32_t set,
                                 std::uint32_t way) const
    {
        return stamps_[static_cast<std::size_t>(set) * ways_ + way];
    }

    std::vector<std::uint64_t> stamps_;
    std::uint64_t tick_ = 0;
};

/** Uniform-random victim selection. */
class RandomPolicy : public ReplacementPolicy
{
  public:
    explicit RandomPolicy(std::uint64_t seed = 0xACDC);
    void onHit(std::uint32_t, std::uint32_t,
               const CacheAccess &) override
    {
    }
    void onFill(std::uint32_t, std::uint32_t,
                const CacheAccess &) override
    {
    }
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "Random"; }
    std::uint64_t storageOverheadBits() const override { return 0; }

    void save(Serializer &s) const override { rng_.save(s); }
    void load(Deserializer &d) override { rng_.load(d); }

  private:
    Rng rng_;
};

} // namespace acic

#endif // ACIC_CACHE_LRU_HH
