#include "cache/set_assoc.hh"

#include "common/logging.hh"

namespace acic {

namespace {

bool
isPowerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::uint32_t num_sets,
                             std::uint32_t num_ways,
                             std::unique_ptr<ReplacementPolicy> policy)
    : numSets_(num_sets), numWays_(num_ways), policy_(std::move(policy))
{
    ACIC_ASSERT(isPowerOfTwo(numSets_), "sets must be a power of two");
    ACIC_ASSERT(numWays_ >= 1, "cache needs at least one way");
    ACIC_ASSERT(policy_ != nullptr, "cache needs a replacement policy");
    lines_.resize(static_cast<std::size_t>(numSets_) * numWays_);
    policy_->bind(numSets_, numWays_);
}

SetAssocCache
SetAssocCache::bySize(std::uint64_t size_bytes, std::uint32_t num_ways,
                      std::unique_ptr<ReplacementPolicy> p)
{
    const std::uint64_t line_bytes =
        static_cast<std::uint64_t>(num_ways) * kBlockBytes;
    ACIC_ASSERT(size_bytes % line_bytes == 0,
                "size must be a multiple of ways*64B");
    const std::uint64_t sets = size_bytes / line_bytes;
    return SetAssocCache(static_cast<std::uint32_t>(sets), num_ways,
                         std::move(p));
}

std::optional<std::uint32_t>
SetAssocCache::lookup(const CacheAccess &access)
{
    const std::uint32_t set = setOf(access.blk);
    CacheLine *base = setBase(set);
    for (std::uint32_t way = 0; way < numWays_; ++way) {
        CacheLine &line = base[way];
        if (line.valid && line.blk == access.blk) {
            line.prefetched = false;
            line.nextUse = access.nextUse;
            line.lastTouch = access.seq;
            policy_->onHit(set, way, access);
            return way;
        }
    }
    return std::nullopt;
}

bool
SetAssocCache::probe(BlockAddr blk) const
{
    return probeWay(blk).has_value();
}

std::optional<std::uint32_t>
SetAssocCache::probeWay(BlockAddr blk) const
{
    const std::uint32_t set = setOf(blk);
    const CacheLine *base = setBase(set);
    for (std::uint32_t way = 0; way < numWays_; ++way)
        if (base[way].valid && base[way].blk == blk)
            return way;
    return std::nullopt;
}

std::uint32_t
SetAssocCache::victimWay(const CacheAccess &incoming)
{
    const std::uint32_t set = setOf(incoming.blk);
    const CacheLine *base = setBase(set);
    for (std::uint32_t way = 0; way < numWays_; ++way)
        if (!base[way].valid)
            return way;
    return policy_->victimWay(set, incoming, base);
}

SetAssocCache::FillResult
SetAssocCache::fill(const CacheAccess &access)
{
    if (probe(access.blk))
        return {};
    const std::uint32_t set = setOf(access.blk);
    const std::uint32_t way = victimWay(access);
    return fillAt(set, way, access);
}

SetAssocCache::FillResult
SetAssocCache::fillAt(std::uint32_t set, std::uint32_t way,
                      const CacheAccess &access)
{
    ACIC_ASSERT(set < numSets_ && way < numWays_,
                "fillAt out of range");
    CacheLine &line = setBase(set)[way];
    FillResult result;
    if (line.valid) {
        result.evicted = true;
        result.victim = line;
        policy_->onEvict(set, way, line);
    }
    line.blk = access.blk;
    line.valid = true;
    line.prefetched = access.isPrefetch;
    line.fillPc = access.pc;
    line.nextUse = access.nextUse;
    line.lastTouch = access.seq;
    policy_->onFill(set, way, access);
    return result;
}

bool
SetAssocCache::invalidate(BlockAddr blk)
{
    const auto way = probeWay(blk);
    if (!way)
        return false;
    const std::uint32_t set = setOf(blk);
    CacheLine &line = setBase(set)[*way];
    policy_->onEvict(set, *way, line);
    line.valid = false;
    return true;
}

const CacheLine &
SetAssocCache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    ACIC_ASSERT(set < numSets_ && way < numWays_,
                "lineAt out of range");
    return setBase(set)[way];
}

CacheLine &
SetAssocCache::lineAtMut(std::uint32_t set, std::uint32_t way)
{
    ACIC_ASSERT(set < numSets_ && way < numWays_,
                "lineAtMut out of range");
    return setBase(set)[way];
}

std::uint64_t
SetAssocCache::validLines() const
{
    std::uint64_t n = 0;
    for (const auto &line : lines_)
        n += line.valid ? 1 : 0;
    return n;
}

void
SetAssocCache::save(Serializer &s) const
{
    s.u64(numSets_);
    s.u64(numWays_);
    for (const CacheLine &line : lines_)
        saveCacheLine(s, line);
    policy_->save(s);
}

void
SetAssocCache::load(Deserializer &d)
{
    d.expectGeometry("cache sets", numSets_);
    d.expectGeometry("cache ways", numWays_);
    for (CacheLine &line : lines_)
        loadCacheLine(d, line);
    policy_->load(d);
}

} // namespace acic
