#include "cache/set_assoc.hh"

#include "common/logging.hh"
#include "common/tagscan.hh"

namespace acic {

namespace {

bool
isPowerOfTwo(std::uint32_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

} // namespace

SetAssocCache::SetAssocCache(std::uint32_t num_sets,
                             std::uint32_t num_ways,
                             std::unique_ptr<ReplacementPolicy> policy)
    : numSets_(num_sets), numWays_(num_ways),
      wayStride_(tagscan::padLanes64(num_ways)),
      maskWords_((num_ways + 63) / 64), policy_(std::move(policy))
{
    ACIC_ASSERT(isPowerOfTwo(numSets_), "sets must be a power of two");
    ACIC_ASSERT(numWays_ >= 1, "cache needs at least one way");
    ACIC_ASSERT(policy_ != nullptr, "cache needs a replacement policy");
    lines_.resize(static_cast<std::size_t>(numSets_) * numWays_);
    tags_.assign(static_cast<std::size_t>(numSets_) * wayStride_,
                 kInvalidTag);
    valid_.assign(static_cast<std::size_t>(numSets_) * maskWords_, 0);
    policy_->bind(numSets_, numWays_);
}

SetAssocCache
SetAssocCache::bySize(std::uint64_t size_bytes, std::uint32_t num_ways,
                      std::unique_ptr<ReplacementPolicy> p)
{
    const std::uint64_t line_bytes =
        static_cast<std::uint64_t>(num_ways) * kBlockBytes;
    ACIC_ASSERT(size_bytes % line_bytes == 0,
                "size must be a multiple of ways*64B");
    const std::uint64_t sets = size_bytes / line_bytes;
    return SetAssocCache(static_cast<std::uint32_t>(sets), num_ways,
                         std::move(p));
}

std::optional<std::uint32_t>
SetAssocCache::findWay(std::uint32_t set, BlockAddr blk) const
{
    // Scanning the padded stride (not numWays_) keeps the kernel on
    // its full-vector path; padding lanes hold kInvalidTag and can
    // never contribute a match bit. Configs beyond 64 ways (the
    // registry allows up to 128) take extra 64-lane chunks.
    const std::uint64_t *tags = tagBase(set);
    for (std::uint32_t base = 0; base < wayStride_; base += 64) {
        const std::uint32_t n =
            wayStride_ - base >= 64 ? 64 : wayStride_ - base;
        const std::uint64_t match =
            tagscan::matchMask64(tags + base, n, blk);
        if (match != 0)
            return base +
                   static_cast<std::uint32_t>(__builtin_ctzll(match));
    }
    return std::nullopt;
}

std::optional<std::uint32_t>
SetAssocCache::firstFreeWay(std::uint32_t set) const
{
    const std::uint64_t *v =
        valid_.data() + static_cast<std::size_t>(set) * maskWords_;
    for (std::uint32_t w = 0; w < maskWords_; ++w) {
        const std::uint64_t free = ~v[w] & wordMask(w);
        if (free != 0)
            return w * 64 +
                   static_cast<std::uint32_t>(__builtin_ctzll(free));
    }
    return std::nullopt;
}

std::optional<std::uint32_t>
SetAssocCache::lookup(const CacheAccess &access)
{
    const std::uint32_t set = setOf(access.blk);
    const auto way = findWay(set, access.blk);
    if (!way)
        return std::nullopt;
    CacheLine &line = setBase(set)[*way];
    line.prefetched = false;
    line.nextUse = access.nextUse;
    line.lastTouch = access.seq;
    policy_->onHit(set, *way, access);
    return way;
}

bool
SetAssocCache::probe(BlockAddr blk) const
{
    return findWay(setOf(blk), blk).has_value();
}

std::optional<std::uint32_t>
SetAssocCache::probeWay(BlockAddr blk) const
{
    return findWay(setOf(blk), blk);
}

std::uint32_t
SetAssocCache::victimWay(const CacheAccess &incoming)
{
    const std::uint32_t set = setOf(incoming.blk);
    const auto free = firstFreeWay(set);
    if (free)
        return *free;
    return policy_->victimWay(set, incoming, setBase(set));
}

SetAssocCache::FillResult
SetAssocCache::fill(const CacheAccess &access)
{
    const std::uint32_t set = setOf(access.blk);
    // One sweep answers both questions the old probe+victimWay pair
    // asked: the tag scan for presence, the valid mask for the first
    // free way.
    if (findWay(set, access.blk))
        return {};
    const auto free = firstFreeWay(set);
    const std::uint32_t way =
        free ? *free : policy_->victimWay(set, access, setBase(set));
    return fillAt(set, way, access);
}

SetAssocCache::FillResult
SetAssocCache::fillAt(std::uint32_t set, std::uint32_t way,
                      const CacheAccess &access)
{
    ACIC_ASSERT(set < numSets_ && way < numWays_,
                "fillAt out of range");
    ACIC_ASSERT(access.blk != kInvalidTag,
                "block address collides with the invalid sentinel");
    CacheLine &line = setBase(set)[way];
    FillResult result;
    if (line.valid) {
        result.evicted = true;
        result.victim = line;
        policy_->onEvict(set, way, line);
    }
    line.blk = access.blk;
    line.valid = true;
    line.prefetched = access.isPrefetch;
    line.fillPc = access.pc;
    line.nextUse = access.nextUse;
    line.lastTouch = access.seq;
    tags_[static_cast<std::size_t>(set) * wayStride_ + way] = access.blk;
    validWord(set, way) |= std::uint64_t{1} << (way % 64);
    policy_->onFill(set, way, access);
    return result;
}

bool
SetAssocCache::invalidate(BlockAddr blk)
{
    const std::uint32_t set = setOf(blk);
    const auto way = findWay(set, blk);
    if (!way)
        return false;
    CacheLine &line = setBase(set)[*way];
    policy_->onEvict(set, *way, line);
    line.valid = false;
    tags_[static_cast<std::size_t>(set) * wayStride_ + *way] =
        kInvalidTag;
    validWord(set, *way) &= ~(std::uint64_t{1} << (*way % 64));
    return true;
}

const CacheLine &
SetAssocCache::lineAt(std::uint32_t set, std::uint32_t way) const
{
    ACIC_ASSERT(set < numSets_ && way < numWays_,
                "lineAt out of range");
    return setBase(set)[way];
}

std::uint64_t
SetAssocCache::validLines() const
{
    // Straight accumulation over the valid-mask words — no per-line
    // branch.
    std::uint64_t n = 0;
    for (const std::uint64_t mask : valid_)
        n += static_cast<std::uint64_t>(__builtin_popcountll(mask));
    return n;
}

void
SetAssocCache::rebuildMirrors()
{
    tags_.assign(static_cast<std::size_t>(numSets_) * wayStride_,
                 kInvalidTag);
    valid_.assign(static_cast<std::size_t>(numSets_) * maskWords_, 0);
    for (std::uint32_t set = 0; set < numSets_; ++set) {
        const CacheLine *base = setBase(set);
        for (std::uint32_t way = 0; way < numWays_; ++way) {
            if (!base[way].valid)
                continue;
            tags_[static_cast<std::size_t>(set) * wayStride_ + way] =
                base[way].blk;
            validWord(set, way) |= std::uint64_t{1} << (way % 64);
        }
    }
}

void
SetAssocCache::save(Serializer &s) const
{
    s.u64(numSets_);
    s.u64(numWays_);
    for (const CacheLine &line : lines_)
        saveCacheLine(s, line);
    policy_->save(s);
}

void
SetAssocCache::load(Deserializer &d)
{
    d.expectGeometry("cache sets", numSets_);
    d.expectGeometry("cache ways", numWays_);
    for (CacheLine &line : lines_)
        loadCacheLine(d, line);
    rebuildMirrors();
    policy_->load(d);
}

} // namespace acic
