#include "cache/vvc.hh"

#include "common/logging.hh"

namespace acic {

namespace {
constexpr std::size_t kTableEntries = 1u << 14;
} // namespace

VvcCache::VvcCache(std::uint32_t num_sets, std::uint32_t num_ways)
    : sets_(num_sets), ways_(num_ways)
{
    ACIC_ASSERT((sets_ & (sets_ - 1)) == 0 && sets_ >= 2,
                "VVC sets must be a power of two >= 2");
    lines_.resize(static_cast<std::size_t>(sets_) * ways_);
    for (auto &table : tables_)
        table.assign(kTableEntries, SatCounter(2, 0));

    stNativeHit_ = stats_.handle("vvc.native_hit");
    stVirtualHit_ = stats_.handle("vvc.virtual_hit");
    stVictimDropped_ = stats_.handle("vvc.victim_dropped");
    stDeadDisplaced_ = stats_.handle("vvc.dead_displaced");
    stBadDisplacement_ = stats_.handle("vvc.bad_displacement");
    stVictimParked_ = stats_.handle("vvc.victim_parked");
}

std::uint16_t
VvcCache::traceStep(std::uint16_t trace, Addr pc)
{
    // Truncated-sum trace signature as in the dead-block predictor
    // lineage VVC builds on, folded to 15 bits.
    const std::uint32_t step =
        static_cast<std::uint32_t>((pc >> 2) & 0x7fff);
    return static_cast<std::uint16_t>((trace + step) & 0x7fff);
}

std::size_t
VvcCache::tableIndex(std::uint16_t trace, std::size_t table) const
{
    std::uint64_t x = trace;
    x *= table == 0 ? 0x9e3779b97f4a7c15ull : 0xc2b2ae3d27d4eb4full;
    x ^= x >> 29;
    return static_cast<std::size_t>(x & (kTableEntries - 1));
}

bool
VvcCache::predictDead(std::uint16_t trace) const
{
    return tables_[0][tableIndex(trace, 0)].msbSet() &&
           tables_[1][tableIndex(trace, 1)].msbSet();
}

void
VvcCache::train(std::uint16_t trace, bool dead)
{
    for (std::size_t t = 0; t < 2; ++t) {
        SatCounter &ctr = tables_[t][tableIndex(trace, t)];
        if (dead)
            ctr.increment();
        else
            ctr.decrement();
    }
}

void
VvcCache::touch(Line &line, const CacheAccess &access)
{
    line.stamp = ++tick_;
    line.nextUse = access.nextUse;
    if (!line.reused) {
        line.reused = true;
        train(line.trace, false);
    }
    line.trace = traceStep(line.trace, access.pc);
}

std::uint32_t
VvcCache::lruWay(std::uint32_t set) const
{
    const Line *base = setBase(set);
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!base[w].valid)
            return w;
        if (base[w].stamp < oldest) {
            oldest = base[w].stamp;
            victim = w;
        }
    }
    return victim;
}

bool
VvcCache::access(const CacheAccess &access)
{
    const std::uint32_t native = setOf(access.blk);
    Line *base = setBase(native);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].blk == access.blk) {
            touch(base[w], access);
            stats_.bump(stNativeHit_);
            return true;
        }
    }
    // Probe the partner set for a parked virtual victim.
    const std::uint32_t partner = partnerOf(native);
    Line *pbase = setBase(partner);
    for (std::uint32_t w = 0; w < ways_; ++w) {
        Line &parked = pbase[w];
        if (parked.valid && parked.isVirtual &&
            parked.blk == access.blk) {
            stats_.bump(stVirtualHit_);
            // Swap back: displaced native LRU takes the parked slot.
            const std::uint32_t victim_way = lruWay(native);
            Line &nat = base[victim_way];
            Line displaced = nat;
            nat = parked;
            nat.isVirtual = false;
            touch(nat, access);
            if (displaced.valid && !displaced.isVirtual) {
                parked = displaced;
                parked.isVirtual = true;
                parked.stamp = ++tick_;
            } else {
                parked.valid = false;
            }
            return true;
        }
    }
    return false;
}

void
VvcCache::fill(const CacheAccess &access)
{
    if (contains(access.blk))
        return;
    const std::uint32_t native = setOf(access.blk);
    const std::uint32_t victim_way = lruWay(native);
    Line &slot = setBase(native)[victim_way];
    const Line old = slot;

    if (old.valid && !old.reused)
        train(old.trace, true);

    slot.blk = access.blk;
    slot.valid = true;
    slot.isVirtual = false;
    slot.reused = false;
    slot.trace = traceStep(0, access.pc);
    slot.stamp = ++tick_;
    slot.nextUse = access.nextUse;

    // Park the real (non-virtual) victim in a predicted-dead line of
    // the partner set.
    if (!old.valid || old.isVirtual)
        return;
    const std::uint32_t partner = partnerOf(native);
    Line *pbase = setBase(partner);
    std::int32_t park_way = -1;
    for (std::uint32_t w = 0; w < ways_; ++w) {
        if (!pbase[w].valid) {
            park_way = static_cast<std::int32_t>(w);
            break;
        }
    }
    if (park_way < 0) {
        // Oldest predicted-dead (or already-virtual) line.
        std::uint64_t oldest = ~std::uint64_t{0};
        for (std::uint32_t w = 0; w < ways_; ++w) {
            const Line &cand = pbase[w];
            const bool sacrificial =
                cand.isVirtual || predictDead(cand.trace);
            if (sacrificial && cand.stamp < oldest) {
                oldest = cand.stamp;
                park_way = static_cast<std::int32_t>(w);
            }
        }
    }
    if (park_way < 0) {
        stats_.bump(stVictimDropped_);
        return;
    }
    Line &park = pbase[static_cast<std::uint32_t>(park_way)];
    if (park.valid && !park.isVirtual) {
        stats_.bump(stDeadDisplaced_);
        if (park.nextUse < old.nextUse)
            stats_.bump(stBadDisplacement_);
    }
    park = old;
    park.isVirtual = true;
    park.stamp = ++tick_;
    stats_.bump(stVictimParked_);
}

bool
VvcCache::contains(BlockAddr blk) const
{
    const std::uint32_t native = setOf(blk);
    const Line *base = setBase(native);
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (base[w].valid && base[w].blk == blk)
            return true;
    const Line *pbase = setBase(partnerOf(native));
    for (std::uint32_t w = 0; w < ways_; ++w)
        if (pbase[w].valid && pbase[w].isVirtual &&
            pbase[w].blk == blk)
            return true;
    return false;
}

std::uint64_t
VvcCache::storageOverheadBits() const
{
    const std::uint64_t lines = std::uint64_t{sets_} * ways_;
    // Two 2^14-entry tables of 2-bit counters plus 15-bit traces and
    // the virtual/reused marks per line (Table IV: 9.06 KB).
    return 2 * kTableEntries * 2 + lines * (15 + 2);
}

void
VvcCache::save(Serializer &s) const
{
    s.u64(sets_);
    s.u64(ways_);
    s.u64(tick_);
    for (const Line &line : lines_) {
        s.u64(line.blk);
        s.b(line.valid);
        s.b(line.isVirtual);
        s.b(line.reused);
        s.u16(line.trace);
        s.u64(line.stamp);
        s.u64(line.nextUse);
    }
    for (const auto &table : tables_)
        s.vecSat(table);
    stats_.save(s);
}

void
VvcCache::load(Deserializer &d)
{
    d.expectGeometry("vvc sets", sets_);
    d.expectGeometry("vvc ways", ways_);
    tick_ = d.u64();
    for (Line &line : lines_) {
        line.blk = d.u64();
        line.valid = d.b();
        line.isVirtual = d.b();
        line.reused = d.b();
        line.trace = d.u16();
        line.stamp = d.u64();
        line.nextUse = d.u64();
    }
    for (auto &table : tables_)
        d.vecSat(table);
    stats_.load(d);
}

} // namespace acic
