/**
 * @file
 * VVC -- using dead blocks as a Virtual Victim Cache (Khan et al.,
 * PACT 2010). Victims evicted from a set are parked in lines of the
 * *partner* set that a trace-based dead-block predictor declares dead;
 * misses probe the partner set for such virtual victims and swap them
 * back on a hit. The ACIC paper finds VVC can hurt i-caches because
 * ~60% of parked victims have longer reuse than the "dead" blocks they
 * displace -- this implementation reproduces that failure mode.
 * Table IV: 15-bit trace, 2 x 2^14-entry tables, 2-bit counters
 * = 9.06 KB.
 */

#ifndef ACIC_CACHE_VVC_HH
#define ACIC_CACHE_VVC_HH

#include <cstdint>
#include <vector>

#include "cache/cache_types.hh"
#include "common/sat_counter.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace acic {

/**
 * Self-contained L1i organization implementing VVC on an LRU cache.
 * (Standalone rather than a ReplacementPolicy because placement and
 * lookup cross set boundaries.)
 */
class VvcCache
{
  public:
    VvcCache(std::uint32_t num_sets, std::uint32_t num_ways);

    /** Demand lookup in native and partner sets. @return hit. */
    bool access(const CacheAccess &access);

    /** Fill after a serviced miss; may park the evicted victim. */
    void fill(const CacheAccess &access);

    /** Presence in either native or partner location. */
    bool contains(BlockAddr blk) const;

    /** Dead-block prediction for a line's current trace (tests). */
    bool predictDead(std::uint16_t trace) const;

    /** Extra storage vs. a plain LRU i-cache, in bits (Table IV). */
    std::uint64_t storageOverheadBits() const;

    /** Instrumentation counters (virtual hits, parks, displacement). */
    const StatSet &stats() const { return stats_; }

    /** Checkpoint lines, predictor tables, and counters. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    struct Line
    {
        BlockAddr blk = 0;
        bool valid = false;
        bool isVirtual = false;  ///< parked victim from partner set
        bool reused = false;     ///< touched since fill
        std::uint16_t trace = 0; ///< 15-bit PC trace signature
        std::uint64_t stamp = 0; ///< recency
        std::uint64_t nextUse = kNeverAgain;
    };

    std::uint32_t setOf(BlockAddr blk) const
    {
        return static_cast<std::uint32_t>(blk) & (sets_ - 1);
    }
    std::uint32_t partnerOf(std::uint32_t set) const
    {
        return set ^ 1;
    }
    Line *setBase(std::uint32_t set)
    {
        return lines_.data() + static_cast<std::size_t>(set) * ways_;
    }
    const Line *setBase(std::uint32_t set) const
    {
        return lines_.data() + static_cast<std::size_t>(set) * ways_;
    }

    static std::uint16_t traceStep(std::uint16_t trace, Addr pc);
    void train(std::uint16_t trace, bool dead);
    std::size_t tableIndex(std::uint16_t trace,
                           std::size_t table) const;
    std::uint32_t lruWay(std::uint32_t set) const;
    void touch(Line &line, const CacheAccess &access);

    std::uint32_t sets_;
    std::uint32_t ways_;
    std::uint64_t tick_ = 0;
    std::vector<Line> lines_;
    std::vector<SatCounter> tables_[2];
    StatSet stats_;

    // Interned at construction; access() and fill() are handle-only.
    StatHandle stNativeHit_;
    StatHandle stVirtualHit_;
    StatHandle stVictimDropped_;
    StatHandle stDeadDisplaced_;
    StatHandle stBadDisplacement_;
    StatHandle stVictimParked_;
};

} // namespace acic

#endif // ACIC_CACHE_VVC_HH
