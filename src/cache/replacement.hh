/**
 * @file
 * Replacement-policy interface for SetAssocCache, plus the identifiers
 * of the policies the paper compares (Table IV).
 */

#ifndef ACIC_CACHE_REPLACEMENT_HH
#define ACIC_CACHE_REPLACEMENT_HH

#include <cstdint>
#include <memory>
#include <string>

#include "cache/cache_types.hh"

namespace acic {

/**
 * Per-cache replacement policy. The cache invokes the hooks on every
 * hit/fill/eviction; victimWay() must return a way index in
 * [0, ways); the cache prefers invalid ways itself, so victimWay() is
 * only consulted when the set is full.
 */
class ReplacementPolicy
{
  public:
    virtual ~ReplacementPolicy() = default;

    /** Geometry callback invoked once by the owning cache. */
    virtual void bind(std::uint32_t num_sets, std::uint32_t num_ways)
    {
        sets_ = num_sets;
        ways_ = num_ways;
    }

    /** A lookup hit way @p way of set @p set. */
    virtual void onHit(std::uint32_t set, std::uint32_t way,
                       const CacheAccess &access) = 0;

    /** A new block was filled into way @p way of set @p set. */
    virtual void onFill(std::uint32_t set, std::uint32_t way,
                        const CacheAccess &access) = 0;

    /** The line at (set, way) is being evicted. */
    virtual void
    onEvict(std::uint32_t set, std::uint32_t way, const CacheLine &line)
    {
        (void)set;
        (void)way;
        (void)line;
    }

    /**
     * Pick the victim way of a full set for the incoming access.
     * @param lines pointer to the set's `ways()` lines.
     */
    virtual std::uint32_t victimWay(std::uint32_t set,
                                    const CacheAccess &incoming,
                                    const CacheLine *lines) = 0;

    /** Policy name as used in bench tables. */
    virtual std::string name() const = 0;

    /**
     * Metadata bits the policy adds on top of a plain tag store,
     * reproducing the Table IV storage-overhead column.
     */
    virtual std::uint64_t storageOverheadBits() const = 0;

    /**
     * Checkpoint hooks. Stateless policies (OPT) keep the no-op
     * defaults; stateful ones serialize every replacement-relevant
     * field so a resumed run replays identical victim choices.
     */
    virtual void save(Serializer &s) const { (void)s; }
    virtual void load(Deserializer &d) { (void)d; }

  protected:
    std::uint32_t sets_ = 0;
    std::uint32_t ways_ = 0;
};

} // namespace acic

#endif // ACIC_CACHE_REPLACEMENT_HH
