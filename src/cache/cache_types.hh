/**
 * @file
 * Shared cache-side value types: the access descriptor threaded through
 * every lookup/fill, and the per-line bookkeeping state.
 */

#ifndef ACIC_CACHE_CACHE_TYPES_HH
#define ACIC_CACHE_CACHE_TYPES_HH

#include <cstdint>

#include "common/serialize.hh"
#include "common/types.hh"

namespace acic {

/**
 * One cache access. `seq` is the index in the demand block-access
 * sequence and `nextUse` the oracle-provided index of this block's
 * next demand access (kNeverAgain when absent); oracle fields are only
 * populated when a run needs OPT / accuracy instrumentation.
 */
struct CacheAccess
{
    /** PC of the fetch group that generated this access. */
    Addr pc = 0;
    /** Block (line) address. */
    BlockAddr blk = 0;
    /** Demand-access sequence index (oracle key). */
    std::uint64_t seq = 0;
    /** Next demand access of this block, or kNeverAgain. */
    std::uint64_t nextUse = kNeverAgain;
    /** Current simulated cycle. */
    Cycle cycle = 0;
    /** True for prefetcher-generated fills/probes. */
    bool isPrefetch = false;
};

/** State of one cache line (tag store entry). */
struct CacheLine
{
    BlockAddr blk = 0;
    bool valid = false;
    /** Filled by a prefetch and not yet demanded. */
    bool prefetched = false;
    /** PC that caused the fill (policy signatures). */
    Addr fillPc = 0;
    /** Oracle next-use as of the last touch (OPT replacement). */
    std::uint64_t nextUse = kNeverAgain;
    /** Demand-sequence index of the last touch. */
    std::uint64_t lastTouch = 0;
};

/** Field-by-field checkpoint of one line (checkpoint/resume). */
inline void
saveCacheLine(Serializer &s, const CacheLine &line)
{
    s.u64(line.blk);
    s.b(line.valid);
    s.b(line.prefetched);
    s.u64(line.fillPc);
    s.u64(line.nextUse);
    s.u64(line.lastTouch);
}

/** Inverse of saveCacheLine(). */
inline void
loadCacheLine(Deserializer &d, CacheLine &line)
{
    line.blk = d.u64();
    line.valid = d.b();
    line.prefetched = d.b();
    line.fillPc = d.u64();
    line.nextUse = d.u64();
    line.lastTouch = d.u64();
}

} // namespace acic

#endif // ACIC_CACHE_CACHE_TYPES_HH
