#include "cache/ship.hh"

#include "common/logging.hh"

namespace acic {

ShipPolicy::ShipPolicy(unsigned signature_bits,
                       std::size_t shct_entries)
    : sigBits_(signature_bits)
{
    ACIC_ASSERT(signature_bits >= 4 && signature_bits <= 20,
                "SHiP signature bits");
    shct_.assign(shct_entries, SatCounter(2, 1));
}

void
ShipPolicy::bind(std::uint32_t num_sets, std::uint32_t num_ways)
{
    ReplacementPolicy::bind(num_sets, num_ways);
    meta_.assign(static_cast<std::size_t>(num_sets) * num_ways, {});
}

std::uint32_t
ShipPolicy::signatureOf(Addr pc) const
{
    // Fold the word-aligned PC into sigBits_ bits.
    std::uint64_t v = pc >> 2;
    std::uint64_t sig = 0;
    const std::uint64_t mask = (1ull << sigBits_) - 1;
    while (v != 0) {
        sig ^= v & mask;
        v >>= sigBits_;
    }
    return static_cast<std::uint32_t>(sig);
}

void
ShipPolicy::onHit(std::uint32_t set, std::uint32_t way,
                  const CacheAccess &)
{
    LineMeta &m = at(set, way);
    m.rrpv = 0;
    if (!m.outcome) {
        m.outcome = true;
        shct_[m.signature % shct_.size()].increment();
    }
}

void
ShipPolicy::onFill(std::uint32_t set, std::uint32_t way,
                   const CacheAccess &access)
{
    LineMeta &m = at(set, way);
    m.signature = signatureOf(access.pc);
    m.outcome = false;
    const bool distant =
        shct_[m.signature % shct_.size()].value() == 0;
    m.rrpv = distant ? kMaxRrpv
                     : static_cast<std::uint8_t>(kMaxRrpv - 1);
}

void
ShipPolicy::onEvict(std::uint32_t set, std::uint32_t way,
                    const CacheLine &)
{
    const LineMeta &m = at(set, way);
    if (!m.outcome)
        shct_[m.signature % shct_.size()].decrement();
}

std::uint32_t
ShipPolicy::victimWay(std::uint32_t set, const CacheAccess &,
                      const CacheLine *)
{
    for (;;) {
        for (std::uint32_t way = 0; way < ways_; ++way)
            if (at(set, way).rrpv == kMaxRrpv)
                return way;
        for (std::uint32_t way = 0; way < ways_; ++way) {
            LineMeta &m = at(set, way);
            if (m.rrpv < kMaxRrpv)
                ++m.rrpv;
        }
    }
}

std::uint64_t
ShipPolicy::storageOverheadBits() const
{
    // Per line: 2-bit RRPV + signature + outcome bit; plus the SHCT.
    const std::uint64_t lines = std::uint64_t{sets_} * ways_;
    return lines * (2 + sigBits_ + 1) + shct_.size() * 2;
}

void
ShipPolicy::save(Serializer &s) const
{
    s.u64(meta_.size());
    for (const LineMeta &m : meta_) {
        s.u8(m.rrpv);
        s.u32(m.signature);
        s.b(m.outcome);
    }
    s.vecSat(shct_);
}

void
ShipPolicy::load(Deserializer &d)
{
    d.expectGeometry("ship line metadata", meta_.size());
    for (LineMeta &m : meta_) {
        m.rrpv = d.u8();
        m.signature = d.u32();
        m.outcome = d.b();
    }
    d.vecSat(shct_);
}

} // namespace acic
