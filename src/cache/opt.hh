/**
 * @file
 * Belady's OPT/MIN replacement (1966): evict the line whose next use
 * is farthest in the future. Not implementable in hardware; the paper
 * (and this repo) uses it as the upper bound all policies are measured
 * against. Requires the oracle next-use annotation threaded through
 * CacheAccess::nextUse and mirrored on CacheLine::nextUse.
 */

#ifndef ACIC_CACHE_OPT_HH
#define ACIC_CACHE_OPT_HH

#include "cache/replacement.hh"

namespace acic {

/** See file comment. */
class OptPolicy : public ReplacementPolicy
{
  public:
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "OPT"; }
    std::uint64_t storageOverheadBits() const override { return 0; }

    /**
     * The way OPT would evict given only line state -- shared with the
     * replacement-accuracy instrumentation (Sec. IV-D) that compares
     * other policies' victims against OPT's choice.
     */
    static std::uint32_t optVictim(const CacheLine *lines,
                                   std::uint32_t ways);
};

} // namespace acic

#endif // ACIC_CACHE_OPT_HH
