/**
 * @file
 * Hawkeye (Jain & Lin, ISCA 2016) / Harmony (ISCA 2018) replacement.
 *
 * OPTgen simulates Belady's OPT on sampled sets using an occupancy
 * vector over a sliding window of 8*assoc accesses; each OPT hit/miss
 * trains a PC-indexed predictor (8K entries, 3-bit counters). Fills
 * whose PC predicts cache-friendly insert at RRPV 0, averse fills at
 * RRPV 7 (3-bit RRIP); evicting a friendly line detrains its PC.
 * Harmony extends Hawkeye to prefetching; as in the paper's usage we
 * train OPTgen on demand accesses only, which is the Harmony demand
 * policy, and label the scheme "Harmony" in benches.
 * Table IV: 64-entry occupancy vectors, 8K-entry predictor, 3-bit
 * training counters, 3-bit RRIP = 4.69 KB.
 */

#ifndef ACIC_CACHE_HAWKEYE_HH
#define ACIC_CACHE_HAWKEYE_HH

#include <unordered_map>
#include <vector>

#include "cache/replacement.hh"
#include "common/sat_counter.hh"

namespace acic {

/** See file comment. */
class HawkeyePolicy : public ReplacementPolicy
{
  public:
    /**
     * @param predictor_entries PC predictor size (paper: 8192).
     * @param sample_shift sample sets where (set % (1<<shift)) == 0.
     */
    explicit HawkeyePolicy(std::size_t predictor_entries = 8192,
                           unsigned sample_shift = 3);

    void bind(std::uint32_t num_sets, std::uint32_t num_ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    void onEvict(std::uint32_t set, std::uint32_t way,
                 const CacheLine &line) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "Harmony"; }
    std::uint64_t storageOverheadBits() const override;

    /** Friendly/averse prediction for a PC (tests). */
    bool predictFriendly(Addr pc) const;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    /** Per-sampled-set OPTgen state. */
    struct OptGenSet
    {
        /** Occupancy per time quantum, circular over the window. */
        std::vector<std::uint8_t> occupancy;
        /** Last access time and PC per block. */
        std::unordered_map<BlockAddr, std::pair<std::uint64_t, Addr>>
            last;
        std::uint64_t time = 0;
    };

    struct LineMeta
    {
        std::uint8_t rrpv = 7;
        Addr fillPc = 0;
        bool friendly = false;
    };

    LineMeta &at(std::uint32_t set, std::uint32_t way)
    {
        return meta_[static_cast<std::size_t>(set) * ways_ + way];
    }

    std::size_t pcIndex(Addr pc) const;
    void optGenAccess(std::uint32_t set, const CacheAccess &access);

    std::size_t predictorEntries_;
    unsigned sampleShift_;
    std::uint32_t window_ = 64;
    std::vector<SatCounter> predictor_;
    std::vector<LineMeta> meta_;
    std::unordered_map<std::uint32_t, OptGenSet> samples_;
    static constexpr std::uint8_t kMaxRrpv = 7;
};

} // namespace acic

#endif // ACIC_CACHE_HAWKEYE_HH
