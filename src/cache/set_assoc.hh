/**
 * @file
 * Generic set-associative cache tag store with pluggable replacement.
 * Only tags are modeled (trace-driven simulation never needs data).
 */

#ifndef ACIC_CACHE_SET_ASSOC_HH
#define ACIC_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_types.hh"
#include "cache/replacement.hh"

namespace acic {

/**
 * Set-associative tag store. Sets must be a power of two; ways may be
 * any positive count (the paper's 36 KB/9-way and 40 KB/10-way
 * configurations keep 64 sets with non-power-of-two ways).
 */
class SetAssocCache
{
  public:
    /** Result of a fill: whether a valid line was displaced. */
    struct FillResult
    {
        bool evicted = false;
        CacheLine victim{};
    };

    SetAssocCache(std::uint32_t num_sets, std::uint32_t num_ways,
                  std::unique_ptr<ReplacementPolicy> policy);

    /** Build by capacity: sizeBytes / (ways * 64B) sets. */
    static SetAssocCache bySize(std::uint64_t size_bytes,
                                std::uint32_t num_ways,
                                std::unique_ptr<ReplacementPolicy> p);

    /**
     * Demand lookup. Updates replacement state on hit.
     * @return the hit way, or nullopt on miss.
     */
    std::optional<std::uint32_t> lookup(const CacheAccess &access);

    /** State-preserving presence check. */
    bool probe(BlockAddr blk) const;

    /** State-preserving tag search returning the way. */
    std::optional<std::uint32_t> probeWay(BlockAddr blk) const;

    /**
     * Insert @p access.blk, evicting the policy victim when the set is
     * full. No-op (reported as non-eviction) if the block is present.
     */
    FillResult fill(const CacheAccess &access);

    /** Insert into an explicit way (victim caches, VVC placement). */
    FillResult fillAt(std::uint32_t set, std::uint32_t way,
                      const CacheAccess &access);

    /**
     * The way the policy would evict for @p incoming if the set is
     * full; the first invalid way otherwise. Pure query: the ACIC
     * admission path uses it to identify the *contender* block.
     */
    std::uint32_t victimWay(const CacheAccess &incoming);

    /** Drop a block; @return true when it was present. */
    bool invalidate(BlockAddr blk);

    /** Set index of a block address. */
    std::uint32_t setOf(BlockAddr blk) const
    {
        return static_cast<std::uint32_t>(blk) & (numSets_ - 1);
    }

    /** Line at an explicit location. */
    const CacheLine &lineAt(std::uint32_t set, std::uint32_t way) const;

    /** Mutable line access for organizations that tweak line state. */
    CacheLine &lineAtMut(std::uint32_t set, std::uint32_t way);

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return numWays_; }
    std::uint64_t capacityBytes() const
    {
        return std::uint64_t{numSets_} * numWays_ * kBlockBytes;
    }

    /** The bound replacement policy. */
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** Count of currently valid lines (tests, warm-up checks). */
    std::uint64_t validLines() const;

    /** Checkpoint the tag store plus the bound policy's state. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    CacheLine *setBase(std::uint32_t set)
    {
        return lines_.data() +
               static_cast<std::size_t>(set) * numWays_;
    }
    const CacheLine *setBase(std::uint32_t set) const
    {
        return lines_.data() +
               static_cast<std::size_t>(set) * numWays_;
    }

    std::uint32_t numSets_;
    std::uint32_t numWays_;
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheLine> lines_;
};

} // namespace acic

#endif // ACIC_CACHE_SET_ASSOC_HH
