/**
 * @file
 * Generic set-associative cache tag store with pluggable replacement.
 * Only tags are modeled (trace-driven simulation never needs data).
 *
 * Hot-path layout: the per-way search state is mirrored
 * struct-of-arrays — a contiguous `tags_` row per set (stride-padded
 * to the SIMD lane count) plus a per-set valid bitmask — so the way
 * compare in lookup/probeWay/fill is a single vectorized tag scan
 * (common/tagscan.hh) instead of a branchy per-way walk over
 * `CacheLine`. The `CacheLine` array stays canonical: replacement
 * policies (notably OPT, which reads `nextUse` per way) and the ACKP
 * checkpoint format see exactly the layout they always did; every
 * writer keeps the mirrors in sync. Invalid ways hold the
 * unmatchable sentinel tag (block addresses are pc >> 6 and can
 * never reach 2^64-1), which folds the `valid &&` term of the old
 * scalar compare into the tag match itself.
 */

#ifndef ACIC_CACHE_SET_ASSOC_HH
#define ACIC_CACHE_SET_ASSOC_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "cache/cache_types.hh"
#include "cache/replacement.hh"

namespace acic {

/**
 * Set-associative tag store. Sets must be a power of two; ways may be
 * any positive count (the paper's 36 KB/9-way and 40 KB/10-way
 * configurations keep 64 sets with non-power-of-two ways).
 */
class SetAssocCache
{
  public:
    /** Tag stored in invalid/padding lanes; provably unmatchable
     *  because block addresses are full PCs shifted right by 6. */
    static constexpr std::uint64_t kInvalidTag = ~std::uint64_t{0};

    /** Result of a fill: whether a valid line was displaced. */
    struct FillResult
    {
        bool evicted = false;
        CacheLine victim{};
    };

    SetAssocCache(std::uint32_t num_sets, std::uint32_t num_ways,
                  std::unique_ptr<ReplacementPolicy> policy);

    /** Build by capacity: sizeBytes / (ways * 64B) sets. */
    static SetAssocCache bySize(std::uint64_t size_bytes,
                                std::uint32_t num_ways,
                                std::unique_ptr<ReplacementPolicy> p);

    /**
     * Demand lookup. Updates replacement state on hit.
     * @return the hit way, or nullopt on miss.
     */
    std::optional<std::uint32_t> lookup(const CacheAccess &access);

    /** State-preserving presence check. */
    bool probe(BlockAddr blk) const;

    /** State-preserving tag search returning the way. */
    std::optional<std::uint32_t> probeWay(BlockAddr blk) const;

    /**
     * Insert @p access.blk, evicting the policy victim when the set is
     * full. No-op (reported as non-eviction) if the block is present.
     * Single sweep: one tag scan answers both "already present?" and,
     * via the valid mask, "first free way?".
     */
    FillResult fill(const CacheAccess &access);

    /** Insert into an explicit way (victim caches, VVC placement). */
    FillResult fillAt(std::uint32_t set, std::uint32_t way,
                      const CacheAccess &access);

    /**
     * The way the policy would evict for @p incoming if the set is
     * full; the first invalid way otherwise. Pure query: the ACIC
     * admission path uses it to identify the *contender* block.
     */
    std::uint32_t victimWay(const CacheAccess &incoming);

    /** Drop a block; @return true when it was present. */
    bool invalidate(BlockAddr blk);

    /** Set index of a block address. */
    std::uint32_t setOf(BlockAddr blk) const
    {
        return static_cast<std::uint32_t>(blk) & (numSets_ - 1);
    }

    /** Line at an explicit location. */
    const CacheLine &lineAt(std::uint32_t set, std::uint32_t way) const;

    /**
     * Bitmask of valid ways in word @p word of @p set (bit w = way
     * word*64+w valid). Realistic configs have one word; the registry
     * allows up to 128 ways, hence the word index.
     */
    std::uint64_t validMask(std::uint32_t set,
                            std::uint32_t word = 0) const
    {
        return valid_[static_cast<std::size_t>(set) * maskWords_ +
                      word];
    }

    /** True when every way of @p set holds a valid line. */
    bool setFull(std::uint32_t set) const
    {
        const std::uint64_t *v =
            valid_.data() +
            static_cast<std::size_t>(set) * maskWords_;
        for (std::uint32_t w = 0; w < maskWords_; ++w)
            if (v[w] != wordMask(w))
                return false;
        return true;
    }

    std::uint32_t numSets() const { return numSets_; }
    std::uint32_t numWays() const { return numWays_; }
    std::uint64_t capacityBytes() const
    {
        return std::uint64_t{numSets_} * numWays_ * kBlockBytes;
    }

    /** The bound replacement policy. */
    ReplacementPolicy &policy() { return *policy_; }
    const ReplacementPolicy &policy() const { return *policy_; }

    /** Count of currently valid lines (tests, warm-up checks). */
    std::uint64_t validLines() const;

    /** Checkpoint the tag store plus the bound policy's state. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    CacheLine *setBase(std::uint32_t set)
    {
        return lines_.data() +
               static_cast<std::size_t>(set) * numWays_;
    }
    const CacheLine *setBase(std::uint32_t set) const
    {
        return lines_.data() +
               static_cast<std::size_t>(set) * numWays_;
    }
    const std::uint64_t *tagBase(std::uint32_t set) const
    {
        return tags_.data() +
               static_cast<std::size_t>(set) * wayStride_;
    }

    /** Vectorized tag scan over one set returning the matching way.
     *  Padding lanes hold kInvalidTag, so the scan covers the full
     *  stride (no tail) without false matches. One 64-lane chunk per
     *  iteration; every realistic config is a single chunk. */
    std::optional<std::uint32_t> findWay(std::uint32_t set,
                                         BlockAddr blk) const;

    /** First invalid way of @p set, or nullopt when full. */
    std::optional<std::uint32_t> firstFreeWay(std::uint32_t set) const;

    /** Valid-mask bits covering ways of mask word @p word. */
    std::uint64_t wordMask(std::uint32_t word) const
    {
        const std::uint32_t lo = word * 64;
        const std::uint32_t n = numWays_ - lo >= 64 ? 64
                                                    : numWays_ - lo;
        return n == 64 ? ~std::uint64_t{0}
                       : (std::uint64_t{1} << n) - 1;
    }

    std::uint64_t &validWord(std::uint32_t set, std::uint32_t way)
    {
        return valid_[static_cast<std::size_t>(set) * maskWords_ +
                      way / 64];
    }

    /** Rebuild tags_/valid_ from the canonical lines_ (after load). */
    void rebuildMirrors();

    std::uint32_t numSets_;
    std::uint32_t numWays_;
    std::uint32_t wayStride_;  ///< numWays_ padded to the SIMD stride
    std::uint32_t maskWords_;  ///< u64 valid-mask words per set
    std::unique_ptr<ReplacementPolicy> policy_;
    std::vector<CacheLine> lines_;     ///< canonical per-line metadata
    std::vector<std::uint64_t> tags_;  ///< SoA tag mirror, per-set rows
    std::vector<std::uint64_t> valid_; ///< per-set valid-way bitmasks
};

} // namespace acic

#endif // ACIC_CACHE_SET_ASSOC_HH
