#include "cache/mshr.hh"

#include "common/logging.hh"
#include "common/serialize.hh"
#include "common/tagscan.hh"

namespace acic {

namespace {

constexpr std::size_t kNpos = ~std::size_t{0};

} // namespace

MshrFile::MshrFile(std::uint32_t entries)
{
    ACIC_ASSERT(entries >= 1, "MSHR file needs entries");
    entries_.resize(entries);
    tags_.assign(tagscan::padLanes64(entries), kFreeTag);
}

std::size_t
MshrFile::findTag(BlockAddr blk) const
{
    const std::uint64_t *tags = tags_.data();
    const std::size_t stride = tags_.size();
    for (std::size_t base = 0; base < stride; base += 64) {
        const std::size_t n =
            stride - base < 64 ? stride - base : 64;
        const std::uint64_t mask =
            tagscan::matchMask64(tags + base, n, blk);
        if (mask != 0)
            return base + static_cast<std::size_t>(
                              __builtin_ctzll(mask));
    }
    return kNpos;
}

std::size_t
MshrFile::findFree() const
{
    // Padding lanes also hold kFreeTag; clamp each chunk's match
    // mask to the real entry lanes.
    const std::uint64_t *tags = tags_.data();
    const std::size_t stride = tags_.size();
    const std::size_t count = entries_.size();
    for (std::size_t base = 0; base < stride; base += 64) {
        const std::size_t n =
            stride - base < 64 ? stride - base : 64;
        std::uint64_t mask =
            tagscan::matchMask64(tags + base, n, kFreeTag);
        const std::size_t live = count > base ? count - base : 0;
        if (live < 64)
            mask &= (std::uint64_t{1} << live) - 1;
        if (mask != 0)
            return base + static_cast<std::size_t>(
                              __builtin_ctzll(mask));
    }
    return kNpos;
}

MshrOutcome
MshrFile::allocate(BlockAddr blk, Cycle ready_cycle, bool is_prefetch,
                   Addr pc, std::uint64_t seq)
{
    const std::size_t hit = findTag(blk);
    if (hit != kNpos) {
        Entry &e = entries_[hit];
        // Merge; a demand joining a prefetch promotes the miss.
        if (!is_prefetch) {
            e.demandWaiting = true;
            e.pc = pc;
            e.seq = seq;
        }
        if (ready_cycle < e.ready)
            e.ready = ready_cycle;
        if (e.ready < minReady_)
            minReady_ = e.ready;
        return MshrOutcome::Merged;
    }
    const std::size_t free_idx = findFree();
    if (free_idx == kNpos)
        return MshrOutcome::Full;
    Entry &e = entries_[free_idx];
    e.valid = true;
    e.blk = blk;
    e.ready = ready_cycle;
    e.wasPrefetch = is_prefetch;
    e.demandWaiting = !is_prefetch;
    e.pc = pc;
    e.seq = seq;
    tags_[free_idx] = blk;
    ++used_;
    if (ready_cycle < minReady_)
        minReady_ = ready_cycle;
    return MshrOutcome::Allocated;
}

bool
MshrFile::pending(BlockAddr blk) const
{
    return findTag(blk) != kNpos;
}

Cycle
MshrFile::readyCycle(BlockAddr blk) const
{
    const std::size_t idx = findTag(blk);
    return idx == kNpos ? 0 : entries_[idx].ready;
}

std::size_t
MshrFile::popReady(Cycle now, std::vector<Fill> &out)
{
    if (used_ == 0 || now < minReady_)
        return 0;
    std::size_t popped = 0;
    Cycle next_ready = ~Cycle{0};
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        Entry &e = entries_[i];
        if (!e.valid)
            continue;
        if (e.ready <= now) {
            out.push_back({e.blk, e.wasPrefetch, e.demandWaiting,
                           e.pc, e.seq});
            e.valid = false;
            tags_[i] = kFreeTag;
            --used_;
            ++popped;
        } else if (e.ready < next_ready) {
            next_ready = e.ready;
        }
    }
    minReady_ = next_ready;
    return popped;
}

void
MshrFile::clear()
{
    for (std::size_t i = 0; i < entries_.size(); ++i) {
        entries_[i].valid = false;
        tags_[i] = kFreeTag;
    }
    used_ = 0;
    minReady_ = ~Cycle{0};
}

void
MshrFile::save(Serializer &s) const
{
    s.u64(entries_.size());
    for (const Entry &e : entries_) {
        s.u64(e.blk);
        s.u64(e.ready);
        s.b(e.valid);
        s.b(e.wasPrefetch);
        s.b(e.demandWaiting);
        s.u64(e.pc);
        s.u64(e.seq);
    }
    s.u32(used_);
    s.u64(minReady_);
}

void
MshrFile::load(Deserializer &d)
{
    d.expectGeometry("mshr entries", entries_.size());
    for (Entry &e : entries_) {
        e.blk = d.u64();
        e.ready = d.u64();
        e.valid = d.b();
        e.wasPrefetch = d.b();
        e.demandWaiting = d.b();
        e.pc = d.u64();
        e.seq = d.u64();
    }
    used_ = d.u32();
    minReady_ = d.u64();
    if (used_ > entries_.size())
        throw SerializeError("checkpoint MSHR occupancy exceeds "
                             "capacity (corrupt payload)");
    for (std::size_t i = 0; i < entries_.size(); ++i)
        tags_[i] = entries_[i].valid ? entries_[i].blk : kFreeTag;
}

} // namespace acic
