#include "cache/mshr.hh"

#include "common/logging.hh"
#include "common/serialize.hh"

namespace acic {

MshrFile::MshrFile(std::uint32_t entries)
{
    ACIC_ASSERT(entries >= 1, "MSHR file needs entries");
    entries_.resize(entries);
}

MshrOutcome
MshrFile::allocate(BlockAddr blk, Cycle ready_cycle, bool is_prefetch,
                   Addr pc, std::uint64_t seq)
{
    Entry *free_entry = nullptr;
    for (auto &e : entries_) {
        if (e.valid && e.blk == blk) {
            // Merge; a demand joining a prefetch promotes the miss.
            if (!is_prefetch) {
                e.demandWaiting = true;
                e.pc = pc;
                e.seq = seq;
            }
            if (ready_cycle < e.ready)
                e.ready = ready_cycle;
            if (e.ready < minReady_)
                minReady_ = e.ready;
            return MshrOutcome::Merged;
        }
        if (!e.valid && free_entry == nullptr)
            free_entry = &e;
    }
    if (free_entry == nullptr)
        return MshrOutcome::Full;
    free_entry->valid = true;
    free_entry->blk = blk;
    free_entry->ready = ready_cycle;
    free_entry->wasPrefetch = is_prefetch;
    free_entry->demandWaiting = !is_prefetch;
    free_entry->pc = pc;
    free_entry->seq = seq;
    ++used_;
    if (ready_cycle < minReady_)
        minReady_ = ready_cycle;
    return MshrOutcome::Allocated;
}

bool
MshrFile::pending(BlockAddr blk) const
{
    for (const auto &e : entries_)
        if (e.valid && e.blk == blk)
            return true;
    return false;
}

Cycle
MshrFile::readyCycle(BlockAddr blk) const
{
    for (const auto &e : entries_)
        if (e.valid && e.blk == blk)
            return e.ready;
    return 0;
}

std::size_t
MshrFile::popReady(Cycle now, std::vector<Fill> &out)
{
    if (used_ == 0 || now < minReady_)
        return 0;
    std::size_t popped = 0;
    Cycle next_ready = ~Cycle{0};
    for (auto &e : entries_) {
        if (!e.valid)
            continue;
        if (e.ready <= now) {
            out.push_back({e.blk, e.wasPrefetch, e.demandWaiting,
                           e.pc, e.seq});
            e.valid = false;
            --used_;
            ++popped;
        } else if (e.ready < next_ready) {
            next_ready = e.ready;
        }
    }
    minReady_ = next_ready;
    return popped;
}

void
MshrFile::clear()
{
    for (auto &e : entries_)
        e.valid = false;
    used_ = 0;
    minReady_ = ~Cycle{0};
}

void
MshrFile::save(Serializer &s) const
{
    s.u64(entries_.size());
    for (const Entry &e : entries_) {
        s.u64(e.blk);
        s.u64(e.ready);
        s.b(e.valid);
        s.b(e.wasPrefetch);
        s.b(e.demandWaiting);
        s.u64(e.pc);
        s.u64(e.seq);
    }
    s.u32(used_);
    s.u64(minReady_);
}

void
MshrFile::load(Deserializer &d)
{
    d.expectGeometry("mshr entries", entries_.size());
    for (Entry &e : entries_) {
        e.blk = d.u64();
        e.ready = d.u64();
        e.valid = d.b();
        e.wasPrefetch = d.b();
        e.demandWaiting = d.b();
        e.pc = d.u64();
        e.seq = d.u64();
    }
    used_ = d.u32();
    minReady_ = d.u64();
    if (used_ > entries_.size())
        throw SerializeError("checkpoint MSHR occupancy exceeds "
                             "capacity (corrupt payload)");
}

} // namespace acic
