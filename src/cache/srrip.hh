/**
 * @file
 * SRRIP (Jaleel et al., ISCA 2010): 2-bit re-reference prediction
 * values per line. Insert at "long" (RRPV max-1), promote to 0 on hit,
 * evict the first line at RRPV max, aging all lines when none is.
 * Table IV: 2-bit RRPV -> 0.125 KB over a 32 KB / 512-line i-cache.
 */

#ifndef ACIC_CACHE_SRRIP_HH
#define ACIC_CACHE_SRRIP_HH

#include <vector>

#include "cache/replacement.hh"

namespace acic {

/** See file comment. */
class SrripPolicy : public ReplacementPolicy
{
  public:
    /** @param rrpv_bits width of the RRPV field (paper uses 2). */
    explicit SrripPolicy(unsigned rrpv_bits = 2);

    void bind(std::uint32_t num_sets, std::uint32_t num_ways) override;
    void onHit(std::uint32_t set, std::uint32_t way,
               const CacheAccess &access) override;
    void onFill(std::uint32_t set, std::uint32_t way,
                const CacheAccess &access) override;
    std::uint32_t victimWay(std::uint32_t set,
                            const CacheAccess &incoming,
                            const CacheLine *lines) override;
    std::string name() const override { return "SRRIP"; }
    std::uint64_t storageOverheadBits() const override;

    /** RRPV of a line (tests). */
    std::uint8_t rrpvOf(std::uint32_t set, std::uint32_t way) const;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    std::uint8_t &at(std::uint32_t set, std::uint32_t way)
    {
        return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
    }

    unsigned bits_;
    std::uint8_t maxRrpv_;
    std::vector<std::uint8_t> rrpv_;
};

} // namespace acic

#endif // ACIC_CACHE_SRRIP_HH
