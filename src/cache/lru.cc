#include "cache/lru.hh"

#include "common/logging.hh"

namespace acic {

void
LruPolicy::bind(std::uint32_t num_sets, std::uint32_t num_ways)
{
    ReplacementPolicy::bind(num_sets, num_ways);
    stamps_.assign(static_cast<std::size_t>(num_sets) * num_ways, 0);
    tick_ = 0;
}

void
LruPolicy::onHit(std::uint32_t set, std::uint32_t way,
                 const CacheAccess &)
{
    stampOf(set, way) = ++tick_;
}

void
LruPolicy::onFill(std::uint32_t set, std::uint32_t way,
                  const CacheAccess &)
{
    stampOf(set, way) = ++tick_;
}

std::uint32_t
LruPolicy::victimWay(std::uint32_t set, const CacheAccess &,
                     const CacheLine *)
{
    return lruWay(set);
}

std::uint32_t
LruPolicy::lruWay(std::uint32_t set) const
{
    // Branch-free min-scan: both updates compile to cmov, so the
    // loop carries no data-dependent branches (stamps are
    // effectively random, the old `if` was a 50/50 misprediction).
    std::uint32_t victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    const std::uint64_t *stamps =
        stamps_.data() + static_cast<std::size_t>(set) * ways_;
    for (std::uint32_t way = 0; way < ways_; ++way) {
        const bool older = stamps[way] < oldest;
        victim = older ? way : victim;
        oldest = older ? stamps[way] : oldest;
    }
    return victim;
}

std::uint32_t
LruPolicy::rankOf(std::uint32_t set, std::uint32_t way) const
{
    std::uint32_t rank = 0;
    for (std::uint32_t other = 0; other < ways_; ++other)
        if (other != way && stampOf(set, other) > stampOf(set, way))
            ++rank;
    return rank;
}

void
LruPolicy::save(Serializer &s) const
{
    s.vecU64(stamps_);
    s.u64(tick_);
}

void
LruPolicy::load(Deserializer &d)
{
    std::vector<std::uint64_t> stamps = d.vecU64();
    if (stamps.size() != stamps_.size())
        throw SerializeError("checkpoint LRU stamp-table size "
                             "mismatch (geometry differs)");
    stamps_ = std::move(stamps);
    tick_ = d.u64();
}

RandomPolicy::RandomPolicy(std::uint64_t seed) : rng_(seed) {}

std::uint32_t
RandomPolicy::victimWay(std::uint32_t, const CacheAccess &,
                        const CacheLine *)
{
    return static_cast<std::uint32_t>(rng_.nextBelow(ways_));
}

} // namespace acic
