/**
 * @file
 * Unified L2 / L3 / DRAM backing hierarchy behind the L1i (Table II:
 * 512 KB 8-way 15-cycle L2, 2 MB 16-way 35-cycle L3, 1-channel
 * 3200 MT/s DRAM). Trace-driven: an L1i miss walks the levels, fills
 * them, and returns the total service latency.
 */

#ifndef ACIC_CACHE_HIERARCHY_HH
#define ACIC_CACHE_HIERARCHY_HH

#include <cstdint>
#include <memory>

#include "cache/set_assoc.hh"
#include "common/stats.hh"
#include "common/types.hh"

namespace acic {

/** Latency and geometry knobs of the backing hierarchy. */
struct HierarchyConfig
{
    std::uint64_t l2Bytes = 512 * 1024;
    std::uint32_t l2Ways = 8;
    Cycle l2Latency = 15;

    std::uint64_t l3Bytes = 2 * 1024 * 1024;
    std::uint32_t l3Ways = 16;
    Cycle l3Latency = 35;

    /** DRAM round-trip on top of the L3 latency (4 GHz cycles). */
    Cycle dramLatency = 200;
};

/** See file comment. */
class MemoryHierarchy
{
  public:
    explicit MemoryHierarchy(const HierarchyConfig &config = {});

    /**
     * Service an L1i miss for @p blk: probes and fills L2/L3.
     * @return total miss-to-fill latency in cycles.
     */
    Cycle serviceMiss(BlockAddr blk, Addr pc);

    /** Hit/miss counters per level. */
    const StatSet &stats() const { return stats_; }
    StatSet &stats() { return stats_; }

    const HierarchyConfig &config() const { return config_; }

    /** Checkpoint L2/L3 tag stores and the level counters. */
    void save(Serializer &s) const;
    void load(Deserializer &d);

  private:
    HierarchyConfig config_;
    SetAssocCache l2_;
    SetAssocCache l3_;
    StatSet stats_;

    // Interned at construction; serviceMiss() is handle-only.
    StatHandle stL2Hit_;
    StatHandle stL2Miss_;
    StatHandle stL3Hit_;
    StatHandle stL3Miss_;
    StatHandle stDramAccess_;
};

} // namespace acic

#endif // ACIC_CACHE_HIERARCHY_HH
