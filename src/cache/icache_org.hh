/**
 * @file
 * Interface every L1i organization implements: the plain policy-driven
 * cache, victim-cache variants, VVC, and the i-Filter/ACIC family.
 * The timing simulator talks to the front end's instruction supply
 * exclusively through this interface.
 */

#ifndef ACIC_CACHE_ICACHE_ORG_HH
#define ACIC_CACHE_ICACHE_ORG_HH

#include <string>

#include "cache/cache_types.hh"
#include "common/stats.hh"

namespace acic {

/** See file comment. */
class IcacheOrg
{
  public:
    /** tickWake_ value meaning "no pending pipeline work". */
    static constexpr Cycle kNeverTick = ~Cycle{0};

    virtual ~IcacheOrg() = default;

    /**
     * Demand access (one fetch bundle).
     * @return true on hit in any constituent structure.
     */
    virtual bool access(const CacheAccess &access) = 0;

    /** A serviced miss (demand or prefetch) arrives from L2+. */
    virtual void fill(const CacheAccess &access) = 0;

    /** Presence test covering every constituent structure. */
    virtual bool contains(BlockAddr blk) const = 0;

    /**
     * Advance internal pipelines (predictor update latency).
     * Contract: an organization overriding this must keep tickWake_
     * at or below the next cycle on which tick() would do work (0 is
     * always safe: tick every cycle); the base leaves it at
     * kNeverTick because this default tick() does nothing.
     */
    virtual void tick(Cycle now) { (void)now; }

    /**
     * The engine's per-cycle entry point: dispatches to tick() only
     * when pipeline work can be due, so the many organizations with
     * no update pipeline (and ACIC between training bursts) cost
     * nothing per cycle instead of a virtual-call chain.
     */
    void maybeTick(Cycle now)
    {
        if (now >= tickWake_)
            tick(now);
    }

    /** Scheme name as used in bench tables. */
    virtual std::string name() const = 0;

    /** Storage added relative to the baseline 32 KB LRU i-cache. */
    virtual std::uint64_t storageOverheadBits() const = 0;

    /** Organization-specific counters. */
    virtual const StatSet &stats() const { return stats_; }
    StatSet &statsMut() { return stats_; }

    /**
     * Checkpoint the organization (checkpoint/resume). The base
     * serializes stats_; overrides must call the base first and then
     * their own structures, in a fixed order.
     */
    virtual void save(Serializer &s) const { stats_.save(s); }
    virtual void load(Deserializer &d) { stats_.load(d); }

  protected:
    StatSet stats_;
    /** Earliest cycle at which tick() can have work; see tick(). */
    Cycle tickWake_ = kNeverTick;
};

} // namespace acic

#endif // ACIC_CACHE_ICACHE_ORG_HH
