#include "cache/srrip.hh"

#include "common/logging.hh"

namespace acic {

SrripPolicy::SrripPolicy(unsigned rrpv_bits)
    : bits_(rrpv_bits),
      maxRrpv_(static_cast<std::uint8_t>((1u << rrpv_bits) - 1))
{
    ACIC_ASSERT(rrpv_bits >= 1 && rrpv_bits <= 7, "SRRIP rrpv bits");
}

void
SrripPolicy::bind(std::uint32_t num_sets, std::uint32_t num_ways)
{
    ReplacementPolicy::bind(num_sets, num_ways);
    rrpv_.assign(static_cast<std::size_t>(num_sets) * num_ways,
                 maxRrpv_);
}

void
SrripPolicy::onHit(std::uint32_t set, std::uint32_t way,
                   const CacheAccess &)
{
    at(set, way) = 0;
}

void
SrripPolicy::onFill(std::uint32_t set, std::uint32_t way,
                    const CacheAccess &)
{
    at(set, way) = static_cast<std::uint8_t>(maxRrpv_ - 1);
}

std::uint32_t
SrripPolicy::victimWay(std::uint32_t set, const CacheAccess &,
                       const CacheLine *)
{
    for (;;) {
        for (std::uint32_t way = 0; way < ways_; ++way)
            if (at(set, way) == maxRrpv_)
                return way;
        for (std::uint32_t way = 0; way < ways_; ++way)
            ++at(set, way);
    }
}

std::uint64_t
SrripPolicy::storageOverheadBits() const
{
    return std::uint64_t{bits_} * sets_ * ways_;
}

std::uint8_t
SrripPolicy::rrpvOf(std::uint32_t set, std::uint32_t way) const
{
    return rrpv_[static_cast<std::size_t>(set) * ways_ + way];
}

void
SrripPolicy::save(Serializer &s) const
{
    s.vecU8(rrpv_);
}

void
SrripPolicy::load(Deserializer &d)
{
    std::vector<std::uint8_t> rrpv = d.vecU8();
    if (rrpv.size() != rrpv_.size())
        throw SerializeError("checkpoint SRRIP table size mismatch "
                             "(geometry differs)");
    rrpv_ = std::move(rrpv);
}

} // namespace acic
