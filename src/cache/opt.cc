#include "cache/opt.hh"

namespace acic {

void
OptPolicy::onHit(std::uint32_t, std::uint32_t, const CacheAccess &)
{
    // CacheLine::nextUse is refreshed by the cache on every touch;
    // OPT keeps no state of its own.
}

void
OptPolicy::onFill(std::uint32_t, std::uint32_t, const CacheAccess &)
{
}

std::uint32_t
OptPolicy::optVictim(const CacheLine *lines, std::uint32_t ways)
{
    std::uint32_t victim = 0;
    std::uint64_t farthest = 0;
    for (std::uint32_t way = 0; way < ways; ++way) {
        if (!lines[way].valid)
            return way;
        if (lines[way].nextUse >= farthest) {
            farthest = lines[way].nextUse;
            victim = way;
        }
    }
    return victim;
}

std::uint32_t
OptPolicy::victimWay(std::uint32_t, const CacheAccess &,
                     const CacheLine *lines)
{
    return optVictim(lines, ways_);
}

} // namespace acic
