/**
 * @file
 * On-disk trace format (.acictrace): a compact, versioned binary
 * encoding of TraceInst records, plus a buffered writer and a
 * re-iterable reader. Captured synthetic workloads replay bit-exactly
 * from disk, and the same container is the landing pad for imported
 * QEMU/ChampSim-style instruction traces.
 *
 * Layout (little-endian):
 *
 *   offset  size  field
 *   0       4     magic "ACIC"
 *   4       2     version (currently 1)
 *   6       2     flags (reserved, 0)
 *   8       8     instruction count (patched on close)
 *   16      4     workload-name length N
 *   20      N     workload name (no terminator)
 *   20+N    ...   records
 *
 * Each record starts with a tag byte:
 *
 *   bits 0-2  BranchKind
 *   bit  3    taken
 *   bit  4    pc-linked: pc equals the previous record's nextPc
 *   bit  5    sequential: nextPc equals pc + 4
 *
 * followed by up to two zigzag-varint deltas: the pc delta from the
 * previous record's nextPc (absent when pc-linked) and the nextPc
 * delta from pc + 4 (absent when sequential). Synthetic streams are
 * connected chains of mostly sequential instructions, so the common
 * record is the tag byte alone: ~1.1 B/instruction vs. 18 B in
 * memory.
 *
 * Version 2 appends an optional *index footer* after the records so
 * readers can seek to an instruction without decoding everything
 * before it (interval-parallel simulation, DESIGN.md section 8).
 * The varint chain makes a record undecodable without the previous
 * record's nextPc, so each checkpoint stores that decoder state:
 *
 *   checkpoint[j] (j = 1..M, at instruction j*N):
 *     u64  byte offset of the record, relative to payload start
 *     u64  prevNext decoder state at that record
 *   trailer (last 16 bytes of the file):
 *     u64  index interval N (instructions per checkpoint)
 *     u32  checkpoint count M
 *     u32  index magic "INDX"
 *
 * The footer is announced by the kFlagHasIndex header flag and is
 * strictly additive: version-1 files (no footer) still load, and
 * seekToInstruction() on them falls back to linear decode. Readers
 * locate the footer from the end of the file, so the record payload
 * needs no length prefix.
 */

#ifndef ACIC_TRACE_IO_HH
#define ACIC_TRACE_IO_HH

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "trace/memory.hh"
#include "trace/trace.hh"

namespace acic {

/** Format constants shared by writer, reader, and tests. */
struct TraceFormat
{
    static constexpr std::uint32_t kMagic = 0x43494341; // "ACIC"
    /** Version written by TraceWriter (record payload + index
     *  footer). */
    static constexpr std::uint16_t kVersion = 2;
    /** Oldest version readers still accept (footerless payload). */
    static constexpr std::uint16_t kMinVersion = 1;

    static constexpr std::uint8_t kKindMask = 0x07;
    static constexpr std::uint8_t kTakenBit = 0x08;
    static constexpr std::uint8_t kLinkedBit = 0x10;
    static constexpr std::uint8_t kSequentialBit = 0x20;

    /** Header flag: an index footer follows the records. */
    static constexpr std::uint16_t kFlagHasIndex = 0x0001;
    /** Trailer magic "INDX" closing the index footer. */
    static constexpr std::uint32_t kIndexMagic = 0x58444e49;
    /** Instructions per index checkpoint (writer default). */
    static constexpr std::uint64_t kIndexInterval = 1u << 16;
    /** Bytes of one checkpoint entry / of the footer trailer. */
    static constexpr std::size_t kCheckpointBytes = 16;
    static constexpr std::size_t kTrailerBytes = 16;

    /** Canonical file suffix. */
    static const char *suffix() { return ".acictrace"; }
};

/** One index-footer entry: decoder state at instruction j*N. */
struct TraceCheckpoint
{
    /** Byte offset of the record, relative to the payload start. */
    std::uint64_t offset = 0;
    /** nextPc of the preceding record (the varint-chain state). */
    std::uint64_t prevNext = 0;
};

/**
 * Streaming trace writer. Buffered; append() never seeks, the
 * instruction count is patched into the header by close() — which
 * requires a seekable output, so the constructor rejects pipes,
 * FIFOs, and other non-seekable targets up front instead of leaving
 * a corrupt (count = 0) header behind.
 */
class TraceWriter
{
  public:
    /**
     * Open @p path for writing and emit the header.
     * ACIC_FATALs when @p path cannot be opened or is not seekable.
     * @param name workload name stored in the file.
     * @param index_interval instructions per index checkpoint
     *        (close() appends the footer); 0 writes a footerless
     *        file, which readers treat like version 1.
     */
    TraceWriter(const std::string &path, const std::string &name,
                std::uint64_t index_interval =
                    TraceFormat::kIndexInterval);

    /** close()s if still open. */
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Encode and buffer one instruction. */
    void append(const TraceInst &inst);

    /** Records appended so far. */
    std::uint64_t written() const { return count_; }

    /** Flush, patch the header count, and close the file. */
    void close();

  private:
    void putByte(std::uint8_t b);
    void putVarint(std::uint64_t v);
    void flush();

    /** Bytes emitted so far (header + records), flushed or buffered. */
    std::uint64_t bytesOut() const;

    std::ofstream out_;
    std::string path_;
    std::vector<std::uint8_t> buf_;
    std::uint64_t count_ = 0;
    Addr prevNext_ = 0;
    bool open_ = false;

    std::uint64_t indexInterval_ = 0;
    std::uint64_t headerBytes_ = 0;
    std::uint64_t flushedBytes_ = 0;
    std::vector<TraceCheckpoint> checkpoints_;
};

/**
 * Buffered reader over a .acictrace file, exposing the TraceSource
 * re-iterability contract: reset() seeks back to the first record and
 * next() replays the identical stream.
 */
class FileTraceSource : public TraceSource
{
  public:
    /** Open and validate @p path; ACIC_FATALs on a malformed file. */
    explicit FileTraceSource(const std::string &path);

    void reset() override;

    /**
     * Decode the next record. Throws TraceTruncatedError when the
     * file ends mid-record or short of the header count (the message
     * carries the absolute byte offset and expected/got bytes), and
     * TraceFormatError on a corrupt record (runaway varint chain,
     * invalid branch kind) — the same failure contract the streaming
     * frame parser uses (trace/errors.hh).
     */
    bool next(TraceInst &out) override;

    /**
     * Batched decode: up to 64 records in one call, decoded with a
     * raw pointer over the read buffer (no per-byte bounds checks —
     * the buffer is guaranteed to hold a worst-case batch up front).
     * Interleaves freely with next()/seekToInstruction(); the stream
     * position and varint-chain state stay shared. Shares next()'s
     * failure contract: TraceTruncatedError / TraceFormatError on a
     * file that ends mid-record or decodes to garbage.
     */
    unsigned decodeBatch(InstBatch &out) override;

    std::uint64_t length() const override { return count_; }
    const std::string &name() const override { return name_; }

    /**
     * Position the cursor so the following next() emits instruction
     * @p index (clamped to the record count). Jumps to the nearest
     * preceding index-footer checkpoint and decodes forward from
     * there; on a footerless (version 1) file this degrades to a
     * linear decode from the start, so it is always available.
     */
    void seekToInstruction(std::uint64_t index);

    /**
     * TraceSource seek override backed by the v2 index footer (the
     * decoder state stored every 64K instructions), so checkpoint
     * resume re-aligns a file cursor without replaying the prefix.
     */
    bool seekTo(std::uint64_t index) override
    {
        if (index > count_)
            return false;
        seekToInstruction(index);
        return true;
    }

    /** File-format version of the opened trace. */
    std::uint16_t version() const { return version_; }

    /** True when the file carries an index footer (a short indexed
     *  file may hold zero checkpoints — the payload start is the
     *  implicit checkpoint 0). */
    bool hasIndex() const { return indexInterval_ != 0; }

    /** Instructions per checkpoint (0 when footerless). */
    std::uint64_t indexInterval() const { return indexInterval_; }

  private:
    bool getByte(std::uint8_t &b);
    std::uint64_t getVarint();
    void loadIndexFooter();

    /** Absolute file offset of the next unread payload byte (error
     *  reporting: pinpoints where a truncated/corrupt decode died). */
    std::uint64_t byteOffset() const
    {
        return static_cast<std::uint64_t>(payloadOff_) + bufBase_ +
               bufPos_;
    }

    /** Compact the unread buffer tail to the front and top the
     *  buffer up from the file (decodeBatch fast-path supply). */
    void refillBuffer();

    std::ifstream in_;
    std::string path_;
    std::string name_;
    std::uint16_t version_ = 0;
    std::uint64_t count_ = 0;
    std::uint64_t emitted_ = 0;
    std::streamoff payloadOff_ = 0;
    std::vector<std::uint8_t> buf_;
    std::size_t bufPos_ = 0;
    std::size_t bufEnd_ = 0;
    /** Payload-relative file offset of buf_[0]. */
    std::uint64_t bufBase_ = 0;
    Addr prevNext_ = 0;

    std::uint64_t indexInterval_ = 0;
    std::vector<TraceCheckpoint> checkpoints_;
};

/**
 * Record @p src to @p path (the capture path of `acic_run record`).
 * @p src is reset before and after.
 * @return instructions written.
 */
std::uint64_t recordTrace(TraceSource &src, const std::string &path);

/** Header metadata of an on-disk trace, read without the payload. */
struct TraceFileInfo
{
    std::uint16_t version = 0;
    std::uint64_t instructions = 0;
    std::string name;
};

/**
 * Read just the header of @p path into @p out.
 * @return false (leaving @p out untouched) when the file cannot be
 *         opened, is not a valid `.acictrace` header, or is an
 *         unsupported format version — unlike FileTraceSource, this
 *         never fatals, so directory scans can skip foreign files.
 */
bool readTraceHeader(const std::string &path, TraceFileInfo &out);

/** Zigzag encode a signed delta into an unsigned varint payload. */
constexpr std::uint64_t
zigzagEncode(std::int64_t v)
{
    return (static_cast<std::uint64_t>(v) << 1) ^
           static_cast<std::uint64_t>(v >> 63);
}

/** Inverse of zigzagEncode. */
constexpr std::int64_t
zigzagDecode(std::uint64_t v)
{
    return static_cast<std::int64_t>(v >> 1) ^
           -static_cast<std::int64_t>(v & 1);
}

} // namespace acic

#endif // ACIC_TRACE_IO_HH
