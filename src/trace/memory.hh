/**
 * @file
 * In-memory trace source. Materializes any TraceSource into an
 * immutable, shareable instruction vector; each MemoryTraceSource is
 * then a private cursor over that shared vector. This is the
 * thread-safe sharing primitive of the experiment driver: one
 * materialized trace per workload, one cursor per worker.
 */

#ifndef ACIC_TRACE_MEMORY_HH
#define ACIC_TRACE_MEMORY_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace acic {

/** Shared immutable instruction storage. */
using TraceImage = std::shared_ptr<const std::vector<TraceInst>>;

/**
 * Drain @p src (reset before and after) into a shared image.
 * One instruction is 18 bytes, so a 5M-instruction workload costs
 * ~90 MB — materialize once per workload, never per run.
 */
TraceImage materializeTrace(TraceSource &src);

/** See file comment. Copyable; copies share the image. */
class MemoryTraceSource : public TraceSource
{
  public:
    MemoryTraceSource(TraceImage image, std::string name)
        : image_(std::move(image)), name_(std::move(name))
    {
    }

    /** Materialize @p src and wrap the result. */
    static MemoryTraceSource capture(TraceSource &src)
    {
        return MemoryTraceSource(materializeTrace(src), src.name());
    }

    void reset() override { pos_ = 0; }

    bool next(TraceInst &out) override
    {
        if (pos_ >= image_->size())
            return false;
        out = (*image_)[pos_++];
        return true;
    }

    std::uint64_t length() const override { return image_->size(); }
    const std::string &name() const override { return name_; }

    /** The shared storage, for further cursors over the same trace. */
    const TraceImage &image() const { return image_; }

  private:
    TraceImage image_;
    std::string name_;
    std::size_t pos_ = 0;
};

} // namespace acic

#endif // ACIC_TRACE_MEMORY_HH
