/**
 * @file
 * In-memory trace source. Materializes any TraceSource into an
 * immutable, shareable instruction vector; each MemoryTraceSource is
 * then a private cursor over that shared vector. This is the
 * thread-safe sharing primitive of the experiment driver: one
 * materialized trace per workload, one cursor per worker.
 */

#ifndef ACIC_TRACE_MEMORY_HH
#define ACIC_TRACE_MEMORY_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "trace/trace.hh"

namespace acic {

/** Shared immutable instruction storage. */
using TraceImage = std::shared_ptr<const std::vector<TraceInst>>;

/**
 * Drain @p src (reset before and after) into a shared image.
 * One instruction is 18 bytes, so a 5M-instruction workload costs
 * ~90 MB — materialize once per workload, never per run.
 */
TraceImage materializeTrace(TraceSource &src);

/**
 * See file comment. Copyable; copies share the image. A cursor may
 * view a [begin, end) *region* of the image — the interval-parallel
 * driver hands each worker a region cursor over one interval (plus
 * its warmup prefix) of the same shared image.
 */
class MemoryTraceSource : public TraceSource
{
  public:
    MemoryTraceSource(TraceImage image, std::string name)
        : MemoryTraceSource(std::move(image), std::move(name), 0,
                            ~std::uint64_t{0})
    {
    }

    /**
     * Cursor over instructions [@p begin, @p end) of @p image, both
     * clamped to the image size. reset() rewinds to @p begin and
     * length() is the region length, so the region behaves like a
     * complete TraceSource (oracle builds, BundleWalker, SimEngine).
     */
    MemoryTraceSource(TraceImage image, std::string name,
                      std::uint64_t begin, std::uint64_t end)
        : image_(std::move(image)), name_(std::move(name))
    {
        const std::uint64_t size = image_->size();
        begin_ = begin < size ? begin : size;
        end_ = end < size ? end : size;
        if (end_ < begin_)
            end_ = begin_;
        pos_ = begin_;
    }

    /** Materialize @p src and wrap the result. */
    static MemoryTraceSource capture(TraceSource &src)
    {
        return MemoryTraceSource(materializeTrace(src), src.name());
    }

    void reset() override { pos_ = begin_; }

    bool next(TraceInst &out) override
    {
        if (pos_ >= end_)
            return false;
        out = (*image_)[pos_++];
        return true;
    }

    /** Batched copy straight out of the image — one bounds check per
     *  64 instructions instead of one virtual call per instruction. */
    unsigned decodeBatch(InstBatch &out) override
    {
        const std::uint64_t avail = end_ - pos_;
        const unsigned n =
            avail < InstBatch::kCapacity
                ? static_cast<unsigned>(avail)
                : InstBatch::kCapacity;
        const TraceInst *src = image_->data() + pos_;
        for (unsigned i = 0; i < n; ++i)
            out.set(i, src[i]);
        out.count = n;
        pos_ += n;
        return n;
    }

    /** Zero-copy run straight out of the shared image: the hottest
     *  consumer (BundleWalker) reads instructions in place, paying
     *  one virtual call per region instead of per 64 records. */
    const TraceInst *
    acquireRun(std::uint64_t max, std::uint64_t &n) override
    {
        const std::uint64_t avail = end_ - pos_;
        n = avail < max ? avail : max;
        if (n == 0)
            return nullptr;
        const TraceInst *run = image_->data() + pos_;
        pos_ += n;
        return run;
    }

    std::uint64_t length() const override { return end_ - begin_; }
    const std::string &name() const override { return name_; }

    /** Position the cursor at region-relative instruction @p index
     *  (clamped), so the following next() emits it. */
    void seekToInstruction(std::uint64_t index)
    {
        pos_ = index < length() ? begin_ + index : end_;
    }

    /** O(1) random-access override of the generic replay seek. */
    bool seekTo(std::uint64_t index) override
    {
        if (index > length())
            return false;
        pos_ = begin_ + index;
        return true;
    }

    /** A cursor over [@p begin, @p end) of the same image, indexed
     *  relative to this cursor's own region start. */
    MemoryTraceSource region(std::uint64_t begin,
                             std::uint64_t end) const
    {
        const std::uint64_t cap = end < length() ? end : length();
        return MemoryTraceSource(image_, name_, begin_ + begin,
                                 begin_ + cap);
    }

    /** The shared storage, for further cursors over the same trace. */
    const TraceImage &image() const { return image_; }

  private:
    TraceImage image_;
    std::string name_;
    std::uint64_t begin_ = 0;
    std::uint64_t end_ = 0;
    std::size_t pos_ = 0;
};

} // namespace acic

#endif // ACIC_TRACE_MEMORY_HH
