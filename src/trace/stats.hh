/**
 * @file
 * Trace-intrinsic statistics: instruction count, branch mix, code
 * footprint, and the block-reuse-distance distribution over the
 * paper's buckets — the same statistics the synthetic generator is
 * calibrated against (DESIGN.md section 1.1), so `acic_run stat` can
 * sanity-check an imported trace against the synthetic presets.
 *
 * The reuse distribution is computed over the demand block-access
 * sequence the simulator actually sees (DemandOracle's BundleWalker
 * pass), making the numbers directly comparable to Fig. 1a /
 * `bench_fig01_reuse`.
 */

#ifndef ACIC_TRACE_STATS_HH
#define ACIC_TRACE_STATS_HH

#include <array>
#include <cstdint>
#include <ostream>
#include <string>

#include "sim/reuse.hh"
#include "trace/trace.hh"

namespace acic {

/** See file comment. Every field is intrinsic to the instruction
 *  stream, so two traces with identical streams print identically
 *  (the property the CI import smoke test diffs). */
struct TraceStats
{
    std::string name;
    std::uint64_t instructions = 0;

    /** Dynamic count per BranchKind (index = enum value). */
    std::array<std::uint64_t, 5> kinds{};
    std::uint64_t taken = 0;
    /** Instructions whose nextPc is not pc + 4. */
    std::uint64_t redirects = 0;

    /** Distinct 64 B blocks touched (static code footprint). */
    std::uint64_t uniqueBlocks = 0;

    /** Demand block accesses (fetch bundles) underlying the reuse
     *  distribution. */
    std::uint64_t demandAccesses = 0;
    /** Counts per paper bucket {0, [1,16], (16,512], (512,1024],
     *  (1024,10000], >10000}. */
    std::array<std::uint64_t, ReuseProfiler::kBuckets> reuse{};

    std::uint64_t branches() const
    {
        std::uint64_t n = 0;
        for (std::size_t i = 1; i < kinds.size(); ++i)
            n += kinds[i];
        return n;
    }

    /** Branch sites per instruction. */
    double branchDensity() const
    {
        return instructions
                   ? static_cast<double>(branches()) /
                         static_cast<double>(instructions)
                   : 0.0;
    }

    double footprintKb() const
    {
        return static_cast<double>(uniqueBlocks) * 64.0 / 1024.0;
    }

    double reusePercent(std::size_t bucket) const
    {
        return demandAccesses
                   ? 100.0 * static_cast<double>(reuse[bucket]) /
                         static_cast<double>(demandAccesses)
                   : 0.0;
    }
};

/** Compute the stats of @p trace (reset before and after). */
TraceStats computeTraceStats(TraceSource &trace);

/**
 * Render @p stats in the fixed `acic_run stat` text layout. The
 * output is deterministic and file-path free, so the same stream
 * always prints byte-identically.
 */
void printTraceStats(std::ostream &out, const TraceStats &stats);

} // namespace acic

#endif // ACIC_TRACE_STATS_HH
