#include "trace/synthetic.hh"

#include <algorithm>

#include "common/logging.hh"

namespace acic {

namespace {

/** Code image starts here; value is arbitrary but stable. */
constexpr Addr kCodeBase = 0x400000;

/** Distinct stream for layout so reset() never rebuilds the image. */
constexpr std::uint64_t kLayoutSalt = 0x1afed00dcafeull;

/** Distinct stream for dynamic behaviour. */
constexpr std::uint64_t kRunSalt = 0x5eedf00dull;

} // namespace

SyntheticWorkload::SyntheticWorkload(WorkloadParams params)
    : params_(std::move(params)), rng_(params_.seed ^ kRunSalt)
{
    ACIC_ASSERT(params_.minFnSize >= 8, "functions must hold >= 8 insts");
    ACIC_ASSERT(params_.maxFnSize >= params_.minFnSize,
                "bad function size range");
    ACIC_ASSERT(params_.numPhases >= 1, "need at least one phase");
    ACIC_ASSERT(params_.phaseFunctions >= 2, "need >= 2 fns per phase");
    buildStaticImage();
    startRun();
}

void
SyntheticWorkload::buildStaticImage()
{
    Rng layout(params_.seed ^ kLayoutSalt);

    // Phases own disjoint slices of non-library functions except for a
    // phaseOverlap fraction shared with the cyclically-next phase.
    const std::uint32_t own = static_cast<std::uint32_t>(
        params_.phaseFunctions * (1.0 - params_.phaseOverlap));
    const std::uint32_t shared = params_.phaseFunctions - own;
    const std::uint32_t poolFns =
        params_.numPhases * own + params_.numPhases * shared;
    const std::uint32_t totalFns = params_.libFunctions + poolFns;

    functions_.resize(totalFns);
    Addr cursor = kCodeBase;
    for (auto &fn : functions_) {
        fn.size = static_cast<std::uint32_t>(
            layout.nextRange(params_.minFnSize, params_.maxFnSize));
        fn.base = cursor;
        // Random sub-block skew so function starts hit every block
        // offset, as a real linker layout would.
        cursor += static_cast<Addr>(fn.size) * TraceInst::kInstBytes;
        cursor += layout.nextBelow(kBlockBytes / TraceInst::kInstBytes) *
                  TraceInst::kInstBytes;

        fn.siteAt.assign(fn.size, -1);
        const double norm =
            params_.condFrac + params_.loopFrac + params_.callFrac;
        // Loop spans are kept disjoint (a span never contains another
        // loop site); otherwise re-running an outer span re-draws the
        // inner loops and the walk time explodes multiplicatively.
        std::uint32_t last_loop_off = 0;
        // Slot 0 is never a site (entry), the last slot is the return.
        for (std::uint32_t off = 1; off + 1 < fn.size; ++off) {
            if (!layout.chance(params_.branchDensity))
                continue;
            Site site{};
            const double kindDraw = layout.nextDouble() * norm;
            if (kindDraw < params_.condFrac) {
                site.kind = SiteKind::CondFwd;
                if (layout.chance(params_.earlyExitFrac)) {
                    site.target = fn.size - 1;
                    site.takenProb = 0.06f;
                } else {
                    const std::uint32_t maxSkip =
                        std::min<std::uint32_t>(16, fn.size - 2 - off);
                    if (maxSkip < 2)
                        continue;
                    site.target = off + 1 + static_cast<std::uint32_t>(
                        layout.nextRange(1, maxSkip));
                    // Real branches are strongly biased: most rarely
                    // taken, some nearly always, few genuinely mixed.
                    // This keeps TAGE in its realistic 2-6 MPKI range.
                    const double bias_class = layout.nextDouble();
                    if (bias_class < 0.70) {
                        site.takenProb = static_cast<float>(
                            0.02 + 0.06 * layout.nextDouble());
                    } else if (bias_class < 0.85) {
                        site.takenProb = static_cast<float>(
                            0.90 + 0.08 * layout.nextDouble());
                    } else {
                        site.takenProb = static_cast<float>(
                            0.25 + 0.50 * layout.nextDouble());
                    }
                }
            } else if (kindDraw < params_.condFrac + params_.loopFrac) {
                if (off < 4)
                    continue;
                const std::uint32_t max_span = std::min<std::uint32_t>(
                    {off - last_loop_off >= 1 ? off - last_loop_off - 1
                                              : 0,
                     off - 1, 12});
                if (max_span < 2)
                    continue;
                site.kind = SiteKind::LoopBack;
                site.target = off - static_cast<std::uint32_t>(
                    layout.nextRange(2, max_span));
                site.takenProb = 0.0f;
                // Static trip count: real loop bounds repeat, which is
                // what lets TAGE predict the exit.
                const double mean = params_.loopTripMean;
                const double p = mean <= 1.0 ? 1.0 : 1.0 / mean;
                site.tripCount = static_cast<std::uint16_t>(
                    layout.geometric(p, params_.maxLoopTrip));
                last_loop_off = off;
            } else {
                site.kind = SiteKind::Call;
                site.target = 0;
                site.takenProb = 0.0f;
            }
            fn.siteAt[off] =
                static_cast<std::int32_t>(fn.sites.size());
            fn.sites.push_back(site);
        }
    }
    footprintBytes_ = cursor - kCodeBase;

    // Assemble phase working sets over the non-library pool.
    phaseFns_.assign(params_.numPhases, {});
    const std::uint32_t firstPool = params_.libFunctions;
    for (std::uint32_t p = 0; p < params_.numPhases; ++p) {
        auto &set = phaseFns_[p];
        const std::uint32_t ownBase = firstPool + p * own;
        for (std::uint32_t i = 0; i < own; ++i)
            set.push_back(ownBase + i);
        // Shared tail borrowed from the next phase's shared slice.
        const std::uint32_t sharedBase =
            firstPool + params_.numPhases * own +
            ((p + 1) % params_.numPhases) * shared;
        for (std::uint32_t i = 0; i < shared; ++i)
            set.push_back(sharedBase + i);
    }

    libZipf_ = std::make_unique<ZipfSampler>(
        std::max<std::size_t>(params_.libFunctions, 1),
        params_.zipfSkew);
    phaseZipf_ = std::make_unique<ZipfSampler>(params_.phaseFunctions,
                                               params_.zipfSkew);
    // The first hotCount_ functions of every phase list form its hot
    // kernel; the sweep cursor walks the peripheral remainder.
    hotCount_ = std::max<std::uint32_t>(
        1, static_cast<std::uint32_t>(params_.hotFrac *
                                      params_.phaseFunctions));
    hotZipf_ = std::make_unique<ZipfSampler>(hotCount_, 0.4);
}

void
SyntheticWorkload::startRun()
{
    rng_ = Rng(params_.seed ^ kRunSalt);
    sweepCursor_.assign(params_.numPhases, 0);
    stack_.clear();
    curLoops_.clear();
    phase_ = 0;
    phaseBudget_ = static_cast<std::int64_t>(params_.phaseMeanLen);
    curFn_ = choosePhaseEntry();
    curOff_ = 0;
    emitted_ = 0;
}

void
SyntheticWorkload::reset()
{
    startRun();
}

Addr
SyntheticWorkload::pcOf(std::uint32_t fn, std::uint32_t off) const
{
    return functions_[fn].base +
           static_cast<Addr>(off) * TraceInst::kInstBytes;
}

std::uint32_t
SyntheticWorkload::chooseCallee(std::uint32_t caller)
{
    if (params_.libFunctions > 0 && rng_.chance(params_.libCallFrac)) {
        const std::uint32_t callee =
            static_cast<std::uint32_t>(libZipf_->sample(rng_));
        if (callee != caller)
            return callee;
    }
    const auto &set = phaseFns_[phase_];
    // Hot-kernel call: short re-reference distance, cache-worthy.
    if (rng_.chance(params_.hotCallFrac)) {
        const std::uint32_t callee =
            set[hotZipf_->sample(rng_)];
        if (callee != caller)
            return callee;
    }
    // Peripheral sweep: once-per-request touch at ~ws distance.
    const std::uint32_t peripheral =
        static_cast<std::uint32_t>(set.size()) - hotCount_;
    if (peripheral > 0 && rng_.chance(params_.sweepBias)) {
        std::uint32_t &cursor = sweepCursor_[phase_];
        const std::uint32_t callee =
            set[hotCount_ + (cursor % peripheral)];
        ++cursor;
        if (callee != caller)
            return callee;
    }
    for (int attempt = 0; attempt < 4; ++attempt) {
        const std::uint32_t callee = set[phaseZipf_->sample(rng_)];
        if (callee != caller)
            return callee;
    }
    return set[0] != caller ? set[0] : set[1];
}

std::uint32_t
SyntheticWorkload::choosePhaseEntry()
{
    const auto &set = phaseFns_[phase_];
    const std::uint32_t peripheral =
        static_cast<std::uint32_t>(set.size()) - hotCount_;
    if (peripheral > 0 && rng_.chance(params_.sweepBias)) {
        std::uint32_t &cursor = sweepCursor_[phase_];
        const std::uint32_t entry =
            set[hotCount_ + (cursor % peripheral)];
        ++cursor;
        return entry;
    }
    return set[phaseZipf_->sample(rng_)];
}

void
SyntheticWorkload::enterNextPhase()
{
    phase_ = (phase_ + 1) % params_.numPhases;
    // +/- 25% jitter keeps phase boundaries from beating against the
    // request loop deterministically.
    const double jitter = 0.75 + 0.5 * rng_.nextDouble();
    phaseBudget_ = static_cast<std::int64_t>(
        static_cast<double>(params_.phaseMeanLen) * jitter);
}

void
SyntheticWorkload::step(TraceInst &rec)
{
    Function &fn = functions_[curFn_];
    --phaseBudget_;

    // Return slot: last instruction of every function.
    if (curOff_ + 1 >= fn.size) {
        rec.kind = BranchKind::Return;
        rec.taken = true;
        if (phaseBudget_ <= 0) {
            // Request complete: unwind and start the next phase.
            stack_.clear();
            curLoops_.clear();
            enterNextPhase();
            curFn_ = choosePhaseEntry();
            curOff_ = 0;
        } else if (!stack_.empty()) {
            curFn_ = stack_.back().fn;
            curOff_ = stack_.back().retOff;
            curLoops_ = std::move(stack_.back().loops);
            stack_.pop_back();
        } else {
            curLoops_.clear();
            curFn_ = choosePhaseEntry();
            curOff_ = 0;
        }
        return;
    }

    const std::int32_t siteIdx = fn.siteAt[curOff_];
    if (siteIdx < 0) {
        rec.kind = BranchKind::None;
        rec.taken = false;
        ++curOff_;
        return;
    }

    const Site &site = fn.sites[static_cast<std::size_t>(siteIdx)];
    switch (site.kind) {
      case SiteKind::CondFwd: {
        rec.kind = BranchKind::Cond;
        rec.taken = rng_.chance(site.takenProb);
        curOff_ = rec.taken ? site.target : curOff_ + 1;
        return;
      }
      case SiteKind::LoopBack: {
        rec.kind = BranchKind::Cond;
        auto it = std::find_if(curLoops_.begin(), curLoops_.end(),
                               [&](const auto &e) {
                                   return e.first == curOff_;
                               });
        if (it == curLoops_.end()) {
            // First encounter in this execution of the span: arm the
            // site's static trip count.
            curLoops_.push_back(
                {curOff_, static_cast<std::uint32_t>(site.tripCount)});
            it = curLoops_.end() - 1;
        }
        if (it->second > 0) {
            rec.taken = true;
            --it->second;
            curOff_ = site.target;
        } else {
            rec.taken = false;
            curLoops_.erase(it);
            ++curOff_;
        }
        return;
      }
      case SiteKind::Call: {
        if (stack_.size() >= params_.maxCallDepth) {
            rec.kind = BranchKind::None;
            rec.taken = false;
            ++curOff_;
            return;
        }
        rec.kind = BranchKind::Call;
        rec.taken = true;
        stack_.push_back(Frame{curFn_, curOff_ + 1,
                               std::move(curLoops_)});
        curLoops_.clear();
        curFn_ = chooseCallee(curFn_);
        curOff_ = 0;
        return;
      }
    }
    ACIC_PANIC("unreachable branch site kind");
}

bool
SyntheticWorkload::next(TraceInst &out)
{
    if (emitted_ >= params_.instructions)
        return false;
    out.pc = pcOf(curFn_, curOff_);
    step(out);
    out.nextPc = pcOf(curFn_, curOff_);
    ++emitted_;
    return true;
}

} // namespace acic
