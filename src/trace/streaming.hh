/**
 * @file
 * Live-traffic trace streaming (DESIGN.md section 12): a framed
 * variant of the `.acictrace` record encoding that flows through
 * pipes, FIFOs, and stdin, and a TraceSource that consumes it with
 * bounded memory.
 *
 * Stream layout (little-endian):
 *
 *   stream header:
 *     u32  magic "ACIS"
 *     u16  version (currently 1)
 *     u16  flags (reserved, 0)
 *     u32  workload-name length N
 *     N    workload name (no terminator)
 *   frame (repeated):
 *     u32  frame magic "AFRM"
 *     u32  payload bytes P
 *     u32  record count R
 *     u64  prevNext decoder seed (varint-chain state before the
 *          frame's first record)
 *     P    record payload — the exact `.acictrace` tag-byte +
 *          zigzag-varint encoding (trace/io.hh), decodable from the
 *          seed alone, so every frame is self-contained
 *   end-of-stream frame (exactly once, last):
 *     u32  frame magic "AFRM"
 *     u32  0
 *     u32  0
 *     u64  total records streamed (must match the sum of frame
 *          record counts)
 *
 * The on-disk header cannot be used here: TraceWriter patches the
 * instruction count back into the header on close, which needs a
 * seekable output. Frames carry their own lengths instead and the
 * count rides in the EOS frame, so nothing is ever patched. An fd
 * that ends without the EOS frame is a *truncated* stream (the
 * producer died) and raises TraceTruncatedError; a frame whose
 * magic, bounds, or record accounting is wrong raises
 * TraceFormatError — the same failure contract as FileTraceSource
 * (trace/errors.hh).
 *
 * Backpressure: StreamingTraceSource runs a reader thread that
 * decodes frames into a bounded single-producer/single-consumer
 * ring of TraceInst records. When the ring is full the reader stops
 * reading — the pipe fills, and the producer process blocks in
 * write(2); when the ring is empty the consumer blocks until
 * records, EOF, or an error arrive. Peak memory is therefore set by
 * the ring capacity, not the stream length.
 */

#ifndef ACIC_TRACE_STREAMING_HH
#define ACIC_TRACE_STREAMING_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "trace/errors.hh"
#include "trace/trace.hh"

namespace acic {

/** Stream-format constants shared by writer, reader, and tests. */
struct StreamFormat
{
    static constexpr std::uint32_t kMagic = 0x53494341; // "ACIS"
    static constexpr std::uint16_t kVersion = 1;
    static constexpr std::uint32_t kFrameMagic = 0x4d524641; // "AFRM"

    /** Bytes of the stream header before the workload name. */
    static constexpr std::size_t kHeaderBytes = 12;
    /** Bytes of one frame header (and of the EOS frame). */
    static constexpr std::size_t kFrameHeaderBytes = 20;

    /** Sanity bounds a well-formed producer never exceeds; a frame
     *  past them is garbage, not data. */
    static constexpr std::uint32_t kMaxFramePayload = 1u << 26;
    static constexpr std::uint32_t kMaxFrameRecords = 1u << 22;

    /** Default records per frame for writers. */
    static constexpr std::uint32_t kDefaultFrameRecords = 4096;
};

/**
 * Frame the record stream of a TraceSource onto any std::ostream —
 * no seeking, so pipes and stdout work. finish() flushes the last
 * partial frame and appends the EOS frame; a stream that ends
 * without it reads as truncated, which is exactly right for a
 * writer killed mid-flight.
 */
class StreamTraceWriter
{
  public:
    StreamTraceWriter(std::ostream &out, const std::string &name,
                      std::uint32_t frame_records =
                          StreamFormat::kDefaultFrameRecords);

    /** finish()es if still open (a destructor on the unwind path
     *  after an output error must not throw; errors are left to the
     *  caller's stream-state check). */
    ~StreamTraceWriter();

    StreamTraceWriter(const StreamTraceWriter &) = delete;
    StreamTraceWriter &operator=(const StreamTraceWriter &) = delete;

    /** Encode and buffer one instruction. */
    void append(const TraceInst &inst);

    /** Flush the partial frame and emit the EOS frame. */
    void finish();

    /** Records appended so far. */
    std::uint64_t written() const { return count_; }

  private:
    void putVarint(std::uint64_t v);
    void flushFrame();

    std::ostream &out_;
    std::vector<std::uint8_t> payload_;
    std::uint32_t frameRecords_;
    std::uint32_t inFrame_ = 0;
    Addr prevNext_ = 0;
    Addr frameSeed_ = 0;
    std::uint64_t count_ = 0;
    bool finished_ = false;
};

/**
 * Bounded single-producer/single-consumer record ring with blocking
 * backpressure on both sides (see file comment). The optional stop
 * flag aborts both sides' waits: condition variables are not
 * async-signal-safe, so signal handlers set the flag and the waits
 * poll it on a short timeout.
 */
class SpscRing
{
  public:
    explicit SpscRing(std::size_t capacity,
                      const std::atomic<bool> *stop = nullptr);

    /**
     * Producer: append @p n records, blocking while the ring is
     * full. @return false when the consumer closed or the stop flag
     * rose before every record was accepted.
     */
    bool push(const TraceInst *recs, std::size_t n);

    /** Producer: mark clean end-of-stream. */
    void closeProducer();

    /**
     * Producer: mark the stream failed. The consumer drains the
     * records buffered before the failure, then pop() rethrows
     * @p error — so the error surfaces at the exact record position
     * where the stream went bad.
     */
    void fail(std::exception_ptr error);

    /**
     * Consumer: take up to @p max records, blocking while the ring
     * is empty and the producer is alive. @return records taken; 0
     * means end-of-stream (or the stop flag rose with the ring
     * empty). Throws the producer's stored error once the buffered
     * records before it are drained.
     */
    std::size_t pop(TraceInst *out, std::size_t max);

    /** Consumer: abandon the stream; push() starts returning false. */
    void closeConsumer();

    bool consumerClosed() const;

    std::size_t capacity() const { return capacity_; }

    /** High-water mark of buffered records (backpressure tests pin
     *  this at <= capacity()). */
    std::size_t maxOccupancy() const;

  private:
    bool stopped() const
    {
        return stop_ != nullptr &&
               stop_->load(std::memory_order_relaxed);
    }

    const std::size_t capacity_;
    const std::atomic<bool> *stop_;
    std::vector<TraceInst> buf_;
    std::size_t head_ = 0; ///< index of the oldest record
    std::size_t size_ = 0;
    std::size_t maxOcc_ = 0;
    bool producerDone_ = false;
    bool consumerDone_ = false;
    std::exception_ptr error_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
};

/**
 * TraceSource over a live framed stream: a reader thread pulls and
 * decodes frames from an fd into a bounded SpscRing; next() and
 * decodeBatch() block on the ring until records, end-of-stream, or
 * a stream error arrive. Single-pass — reset() is only valid before
 * the first record is consumed (the SimEngine constructor's
 * defensive reset), and seeking is unsupported.
 *
 * The constructor reads the stream header synchronously on the
 * calling thread (so name() is valid immediately); on a FIFO this
 * blocks until the producer connects, which is the intended serve
 * startup behavior.
 */
class StreamingTraceSource : public TraceSource
{
  public:
    static constexpr std::size_t kDefaultRingRecords = 1u << 16;

    /**
     * Attach to @p path: "-" for stdin, otherwise any readable path
     * (FIFO, regular file, /dev/fd/N). @p stop, when given, aborts
     * blocked reads and ring waits (signal-handler shutdown).
     */
    static std::unique_ptr<StreamingTraceSource>
    openPath(const std::string &path,
             std::size_t ring_records = kDefaultRingRecords,
             const std::atomic<bool> *stop = nullptr);

    /**
     * Adopt @p fd (closed on destruction when @p own_fd). Reads the
     * stream header before returning; throws TraceFormatError /
     * TraceTruncatedError when the header is not a framed ACIS
     * stream.
     */
    StreamingTraceSource(int fd, bool own_fd,
                         std::size_t ring_records =
                             kDefaultRingRecords,
                         const std::atomic<bool> *stop = nullptr);

    /** Joins the reader thread (closing the ring unblocks it). */
    ~StreamingTraceSource() override;

    void reset() override;
    bool next(TraceInst &out) override;
    unsigned decodeBatch(InstBatch &out) override;

    /** Total records once the EOS frame arrived; until then, the
     *  count delivered so far (a monotonic lower bound — a live
     *  stream's length is unknowable up front). */
    std::uint64_t length() const override;

    const std::string &name() const override { return name_; }

    /** Records handed to the consumer so far. */
    std::uint64_t delivered() const { return delivered_; }

    /** Total announced by the EOS frame; 0 before it arrives. */
    std::uint64_t streamTotal() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** True once the EOS frame was parsed (clean shutdown). */
    bool sawEndOfStream() const
    {
        return cleanEos_.load(std::memory_order_acquire);
    }

    std::size_t ringCapacity() const { return ring_.capacity(); }
    std::size_t ringMaxOccupancy() const
    {
        return ring_.maxOccupancy();
    }

  private:
    enum class ReadStatus
    {
        Full,    ///< all requested bytes read
        Eof,     ///< fd ended first (got < wanted)
        Aborted, ///< stop flag / consumer close while waiting
    };

    /** Read exactly @p n bytes, polling so the stop flag and a
     *  closed ring can abort a wait on a silent producer. */
    ReadStatus readFully(void *dst, std::size_t n, std::size_t &got);

    void readHeader();
    void readerMain();

    /** Decode one frame payload; throws TraceFormatError when the
     *  declared record count and payload bytes disagree. */
    void decodeFrame(const std::uint8_t *payload,
                     std::size_t payload_bytes,
                     std::uint32_t records, Addr seed,
                     std::uint64_t frame_off,
                     std::vector<TraceInst> &out);

    int fd_;
    bool ownFd_;
    const std::atomic<bool> *stop_;
    std::string name_;
    SpscRing ring_;
    std::thread reader_;

    /** Bytes consumed from the stream so far (error offsets). */
    std::uint64_t streamOff_ = 0;
    /** Records decoded and pushed by the reader thread. */
    std::uint64_t decoded_ = 0;

    std::atomic<std::uint64_t> total_{0};
    std::atomic<bool> cleanEos_{false};

    // Consumer-side carry buffer feeding next() between ring pops.
    TraceInst carry_[InstBatch::kCapacity];
    std::size_t carryPos_ = 0;
    std::size_t carryLen_ = 0;
    std::uint64_t delivered_ = 0;
};

/**
 * Single-threaded fan-out of one single-pass TraceSource to N
 * cursor views — `acic_run serve` keeps one resident engine per
 * scheme, and every engine must see the identical record sequence
 * of the one live stream. Records pulled from upstream are buffered
 * in chunks; trim() drops every chunk all cursors have fully
 * consumed, so the backlog stays bounded by how far the engines
 * drift apart (the serve loop steps them in lockstep), not by the
 * stream length.
 *
 * Not thread-safe: the serve loop drives engines sequentially.
 * Cursors pull from upstream on demand, so a cursor never reports a
 * premature end-of-stream (BundleWalker latches exhaustion
 * permanently); ensureBuffered() exists to prefetch a round's
 * records up front and to learn where the stream actually ended.
 */
class StreamTee
{
  public:
    class Cursor;

    explicit StreamTee(TraceSource &upstream, unsigned cursors,
                       std::size_t chunk_records = 16384);
    ~StreamTee();

    StreamTee(const StreamTee &) = delete;
    StreamTee &operator=(const StreamTee &) = delete;

    /**
     * Pull from upstream until @p target records (absolute, from
     * the stream start) are buffered or the stream ends.
     * @return the absolute buffered end — >= target unless the
     *         stream ended first. Rethrows upstream stream errors.
     */
    std::uint64_t ensureBuffered(std::uint64_t target);

    /** True once upstream reported end-of-stream. */
    bool exhausted() const { return eof_; }

    /** Absolute record index one past the last buffered record. */
    std::uint64_t bufferedEnd() const { return end_; }

    /** Absolute record index of the oldest buffered record; the
     *  backlog bound tests pin bufferedEnd() - bufferedStart(). */
    std::uint64_t bufferedStart() const { return start_; }

    /** Drop chunks every cursor has fully consumed. */
    void trim();

    Cursor &cursor(unsigned i) { return *cursors_[i]; }
    unsigned cursorCount() const
    {
        return static_cast<unsigned>(cursors_.size());
    }

  private:
    struct Chunk
    {
        std::uint64_t base = 0; ///< absolute index of data[0]
        std::vector<TraceInst> data;
    };

    /** One upstream batch into the tail chunk; false at EOF. */
    bool pullBatch();

    std::shared_ptr<Chunk> chunkAt(std::uint64_t pos) const;

    TraceSource &upstream_;
    std::size_t chunkRecords_;
    std::deque<std::shared_ptr<Chunk>> chunks_;
    std::uint64_t start_ = 0;
    std::uint64_t end_ = 0;
    bool eof_ = false;
    InstBatch scratch_;
    std::vector<std::unique_ptr<Cursor>> cursors_;
};

/**
 * One cursor view of the tee'd stream. Implements the full
 * TraceSource supply surface — next(), decodeBatch(), and zero-copy
 * acquireRun() out of the tee's chunk storage (the walker's fast
 * path) — pulling from upstream on demand. The chunk backing the
 * most recent acquireRun() is pinned, so trim() never invalidates a
 * run the walker still reads.
 */
class StreamTee::Cursor : public TraceSource
{
  public:
    Cursor(StreamTee &tee, unsigned index);

    /** Valid only before the first record is consumed. */
    void reset() override;

    bool next(TraceInst &out) override;
    unsigned decodeBatch(InstBatch &out) override;
    const TraceInst *acquireRun(std::uint64_t max,
                                std::uint64_t &n) override;

    /** Upstream's view: the announced total once known, else the
     *  monotonic lower bound (see StreamingTraceSource::length). */
    std::uint64_t length() const override;

    const std::string &name() const override;

    /** Absolute records this cursor has consumed. */
    std::uint64_t position() const { return pos_; }

  private:
    friend class StreamTee;

    StreamTee &tee_;
    unsigned index_;
    std::uint64_t pos_ = 0;
    /** Cached chunk containing pos_ (fast path). */
    std::shared_ptr<Chunk> cur_;
    /** Chunk backing the last acquireRun() (kept alive past trim). */
    std::shared_ptr<Chunk> pin_;
};

} // namespace acic

#endif // ACIC_TRACE_STREAMING_HH
