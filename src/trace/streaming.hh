/**
 * @file
 * Live-traffic trace streaming (DESIGN.md section 12): a framed
 * variant of the `.acictrace` record encoding that flows through
 * pipes, FIFOs, and stdin, and a TraceSource that consumes it with
 * bounded memory.
 *
 * Stream layout (little-endian):
 *
 *   stream header:
 *     u32  magic "ACIS"
 *     u16  version (currently 1)
 *     u16  flags (reserved, 0)
 *     u32  workload-name length N
 *     N    workload name (no terminator)
 *   frame (repeated):
 *     u32  frame magic "AFRM"
 *     u32  payload bytes P
 *     u32  record count R
 *     u64  prevNext decoder seed (varint-chain state before the
 *          frame's first record)
 *     P    record payload — the exact `.acictrace` tag-byte +
 *          zigzag-varint encoding (trace/io.hh), decodable from the
 *          seed alone, so every frame is self-contained
 *   end-of-stream frame (exactly once, last):
 *     u32  frame magic "AFRM"
 *     u32  0
 *     u32  0
 *     u64  total records streamed (must match the sum of frame
 *          record counts)
 *
 * The on-disk header cannot be used here: TraceWriter patches the
 * instruction count back into the header on close, which needs a
 * seekable output. Frames carry their own lengths instead and the
 * count rides in the EOS frame, so nothing is ever patched. An fd
 * that ends without the EOS frame is a *truncated* stream (the
 * producer died) and raises TraceTruncatedError; a frame whose
 * magic, bounds, or record accounting is wrong raises
 * TraceFormatError — the same failure contract as FileTraceSource
 * (trace/errors.hh).
 *
 * Backpressure and wakeups: StreamingTraceSource runs a reader
 * thread that decodes each frame into one immutable StreamChunk and
 * hands the chunk (a shared_ptr, never the records) through a
 * bounded SPSC ring. When the ring is full the reader stops
 * reading — the pipe fills, and the producer process blocks in
 * write(2); when the ring is empty the consumer blocks on a
 * condition variable until a chunk, end-of-stream, or an error
 * arrives. All blocking is event-driven: ring waits are pure
 * condition-variable sleeps and fd reads poll(2) with an infinite
 * timeout on {data fd, wake pipe}, so an idle serve process burns
 * no CPU. Shutdown (signal handlers, destructors) writes the wake
 * pipe — write(2) is async-signal-safe where condition variables
 * are not — and the woken side relays the stop into the ring's CV
 * world. Peak memory is set by the ring capacity (in records), not
 * the stream length.
 */

#ifndef ACIC_TRACE_STREAMING_HH
#define ACIC_TRACE_STREAMING_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <thread>
#include <vector>

#include "trace/errors.hh"
#include "trace/trace.hh"

namespace acic {

/** Stream-format constants shared by writer, reader, and tests. */
struct StreamFormat
{
    static constexpr std::uint32_t kMagic = 0x53494341; // "ACIS"
    static constexpr std::uint16_t kVersion = 1;
    static constexpr std::uint32_t kFrameMagic = 0x4d524641; // "AFRM"

    /** Bytes of the stream header before the workload name. */
    static constexpr std::size_t kHeaderBytes = 12;
    /** Bytes of one frame header (and of the EOS frame). */
    static constexpr std::size_t kFrameHeaderBytes = 20;

    /** Sanity bounds a well-formed producer never exceeds; a frame
     *  past them is garbage, not data. */
    static constexpr std::uint32_t kMaxFramePayload = 1u << 26;
    static constexpr std::uint32_t kMaxFrameRecords = 1u << 22;

    /** Default records per frame for writers: a multiple of
     *  InstBatch::kCapacity, so chunks decoded 1:1 from frames
     *  batch-align downstream. */
    static constexpr std::uint32_t kDefaultFrameRecords = 4096;
};

/**
 * Frame the record stream of a TraceSource onto any std::ostream —
 * no seeking, so pipes and stdout work. finish() flushes the last
 * partial frame and appends the EOS frame; a stream that ends
 * without it reads as truncated, which is exactly right for a
 * writer killed mid-flight.
 */
class StreamTraceWriter
{
  public:
    StreamTraceWriter(std::ostream &out, const std::string &name,
                      std::uint32_t frame_records =
                          StreamFormat::kDefaultFrameRecords);

    /** finish()es if still open (a destructor on the unwind path
     *  after an output error must not throw; errors are left to the
     *  caller's stream-state check). */
    ~StreamTraceWriter();

    StreamTraceWriter(const StreamTraceWriter &) = delete;
    StreamTraceWriter &operator=(const StreamTraceWriter &) = delete;

    /** Encode and buffer one instruction. */
    void append(const TraceInst &inst);

    /** Flush the partial frame and emit the EOS frame. */
    void finish();

    /** Records appended so far. */
    std::uint64_t written() const { return count_; }

  private:
    void putVarint(std::uint64_t v);
    void flushFrame();

    std::ostream &out_;
    std::vector<std::uint8_t> payload_;
    std::uint32_t frameRecords_;
    std::uint32_t inFrame_ = 0;
    Addr prevNext_ = 0;
    Addr frameSeed_ = 0;
    std::uint64_t count_ = 0;
    bool finished_ = false;
};

/**
 * One immutable block of decoded records. The reader thread decodes
 * each frame into a fresh StreamChunk; from then on the chunk is
 * shared read-only between the ring, the StreamTee backlog, and any
 * cursor pinning an acquireRun() window — records are decoded once
 * and never copied again.
 */
struct StreamChunk
{
    std::vector<TraceInst> data;
};

/**
 * Self-pipe wakeup channel. wake() writes one byte to a nonblocking
 * pipe — async-signal-safe, unlike condition variables — so signal
 * handlers and destructors can interrupt a poll(2) that is blocked
 * with an infinite timeout. The read end is level-triggered and
 * never drained after a stop: once woken, every later poll returns
 * immediately, which is exactly what shutdown wants.
 */
class WakeChannel
{
  public:
    WakeChannel();
    ~WakeChannel();

    WakeChannel(const WakeChannel &) = delete;
    WakeChannel &operator=(const WakeChannel &) = delete;

    /** Fd to include (POLLIN) in poll sets that must wake. */
    int pollFd() const { return fds_[0]; }

    /** Make pollFd() readable. Async-signal-safe. */
    void wake() noexcept;

  private:
    int fds_[2] = {-1, -1};
};

/**
 * Cooperative shutdown token shared between signal handlers, ring
 * waits, and fd reads. request() is async-signal-safe: it raises
 * the flag (checked by every CV predicate at wait entry) and writes
 * the wake pipe (unblocks infinite-timeout polls). Ring waiters are
 * additionally woken via SpscChunkRing::notifyStop() by whichever
 * thread notices the flag first — CVs cannot be notified from a
 * signal handler, so the wakeup is relayed, never issued, from
 * handler context.
 */
struct StopSignal
{
    std::atomic<bool> flag{false};
    WakeChannel wake;

    void request() noexcept
    {
        flag.store(true, std::memory_order_relaxed);
        wake.wake();
    }

    bool requested() const
    {
        return flag.load(std::memory_order_relaxed);
    }
};

/**
 * Bounded single-producer/single-consumer ring of immutable chunks
 * with blocking backpressure on both sides. Capacity counts
 * *records* (the sum of buffered chunk sizes), so memory bounds are
 * independent of how the producer frames the stream; a chunk larger
 * than the whole capacity is admitted only into an empty ring, so
 * progress never deadlocks on an oversized frame.
 *
 * All waits are pure condition-variable sleeps — no poll ticks.
 * The optional external stop flag is checked by every wait
 * predicate, and notifyStop() re-evaluates the predicates; callers
 * that set the flag from a context that cannot notify (a signal
 * handler) rely on a live thread relaying the wakeup (see
 * StopSignal).
 */
class SpscChunkRing
{
  public:
    explicit SpscChunkRing(std::size_t capacity_records,
                           const std::atomic<bool> *stop = nullptr);

    /**
     * Producer: append one chunk, blocking while the ring is full.
     * @return false when the consumer closed or the stop flag rose
     * before the chunk was accepted.
     */
    bool push(std::shared_ptr<const StreamChunk> chunk);

    /** Producer: mark clean end-of-stream. */
    void closeProducer();

    /**
     * Producer: mark the stream failed. The consumer drains the
     * chunks buffered before the failure, then pop() rethrows
     * @p error — so the error surfaces at the exact record position
     * where the stream went bad.
     */
    void fail(std::exception_ptr error);

    /**
     * Consumer: take the oldest chunk, blocking while the ring is
     * empty and the producer is alive. @return null at end-of-stream
     * (or when the stop flag rose with the ring empty). Throws the
     * producer's stored error once the chunks buffered before it are
     * drained.
     */
    std::shared_ptr<const StreamChunk> pop();

    /** Consumer: abandon the stream; push() starts returning false. */
    void closeConsumer();

    /** Wake both sides so their predicates re-check the stop flag.
     *  Safe from any thread *except* a signal handler. */
    void notifyStop();

    bool consumerClosed() const;

    std::size_t capacity() const { return capacity_; }

    /** Records currently buffered (telemetry gauge). */
    std::size_t occupancy() const;

    /** High-water mark of buffered records (backpressure tests pin
     *  this at <= capacity()). */
    std::size_t maxOccupancy() const;

  private:
    bool stopped() const
    {
        return stopSeen_ ||
               (stop_ != nullptr &&
                stop_->load(std::memory_order_relaxed));
    }

    const std::size_t capacity_;
    const std::atomic<bool> *stop_;
    std::deque<std::shared_ptr<const StreamChunk>> chunks_;
    std::size_t records_ = 0; ///< sum of buffered chunk sizes
    std::size_t maxOcc_ = 0;
    bool producerDone_ = false;
    bool consumerDone_ = false;
    bool stopSeen_ = false;
    std::exception_ptr error_;
    mutable std::mutex mutex_;
    std::condition_variable notFull_;
    std::condition_variable notEmpty_;
};

/**
 * A TraceSource that can also hand out whole immutable chunks.
 * StreamTee detects this interface and adopts the chunks directly
 * into its backlog — the zero-copy fast path that skips the
 * per-record decodeBatch staging entirely.
 */
class ChunkedTraceSource
{
  public:
    virtual ~ChunkedTraceSource() = default;

    /**
     * Take the next chunk, blocking like pop(). @return null at
     * end-of-stream. Must not be interleaved with partially
     * consumed next()/decodeBatch() reads.
     */
    virtual std::shared_ptr<const StreamChunk> nextChunk() = 0;
};

/**
 * TraceSource over a live framed stream: a reader thread pulls and
 * decodes frames from an fd into a bounded SpscChunkRing; next(),
 * decodeBatch(), and nextChunk() block on the ring until records,
 * end-of-stream, or a stream error arrive. Single-pass — reset() is
 * only valid before the first record is consumed (the SimEngine
 * constructor's defensive reset), and seeking is unsupported.
 *
 * The constructor reads the stream header synchronously on the
 * calling thread (so name() is valid immediately); on a FIFO this
 * blocks until the producer connects, which is the intended serve
 * startup behavior.
 */
class StreamingTraceSource : public TraceSource,
                             public ChunkedTraceSource
{
  public:
    static constexpr std::size_t kDefaultRingRecords = 1u << 16;

    /**
     * Attach to @p path: "-" for stdin, otherwise any readable path
     * (FIFO, regular file, /dev/fd/N). @p stop, when given, aborts
     * blocked reads and ring waits (signal-handler shutdown).
     */
    static std::unique_ptr<StreamingTraceSource>
    openPath(const std::string &path,
             std::size_t ring_records = kDefaultRingRecords,
             const StopSignal *stop = nullptr);

    /**
     * Adopt @p fd (closed on destruction when @p own_fd). Reads the
     * stream header before returning; throws TraceFormatError /
     * TraceTruncatedError when the header is not a framed ACIS
     * stream.
     */
    StreamingTraceSource(int fd, bool own_fd,
                         std::size_t ring_records =
                             kDefaultRingRecords,
                         const StopSignal *stop = nullptr);

    /** Joins the reader thread (closing the ring and waking its
     *  poll unblocks it). */
    ~StreamingTraceSource() override;

    void reset() override;
    bool next(TraceInst &out) override;
    unsigned decodeBatch(InstBatch &out) override;
    const TraceInst *acquireRun(std::uint64_t max,
                                std::uint64_t &n) override;

    /** Zero-copy chunk handoff (ChunkedTraceSource). */
    std::shared_ptr<const StreamChunk> nextChunk() override;

    /** Total records once the EOS frame arrived; until then, the
     *  count delivered so far (a monotonic lower bound — a live
     *  stream's length is unknowable up front). */
    std::uint64_t length() const override;

    const std::string &name() const override { return name_; }

    /** Records handed to the consumer so far. */
    std::uint64_t delivered() const
    {
        return delivered_.load(std::memory_order_relaxed);
    }

    /** Total announced by the EOS frame; 0 before it arrives. */
    std::uint64_t streamTotal() const
    {
        return total_.load(std::memory_order_acquire);
    }

    /** True once the EOS frame was parsed (clean shutdown). */
    bool sawEndOfStream() const
    {
        return cleanEos_.load(std::memory_order_acquire);
    }

    std::size_t ringCapacity() const { return ring_.capacity(); }

    /** Records buffered right now (serve telemetry gauge). */
    std::size_t ringOccupancy() const { return ring_.occupancy(); }

    std::size_t ringMaxOccupancy() const
    {
        return ring_.maxOccupancy();
    }

  private:
    enum class ReadStatus
    {
        Full,    ///< all requested bytes read
        Eof,     ///< fd ended first (got < wanted)
        Aborted, ///< stop flag / consumer close while waiting
    };

    /** Read exactly @p n bytes. Blocks in poll(2) with an infinite
     *  timeout on {fd, own wake pipe, external stop pipe}; the wake
     *  fds abort a wait on a silent producer without burning CPU. */
    ReadStatus readFully(void *dst, std::size_t n, std::size_t &got);

    void readHeader();
    void readerMain();

    /** Ensure cur_ holds unconsumed records; false at EOS. */
    bool refillCur();

    /** Decode one frame payload; throws TraceFormatError when the
     *  declared record count and payload bytes disagree. */
    void decodeFrame(const std::uint8_t *payload,
                     std::size_t payload_bytes,
                     std::uint32_t records, Addr seed,
                     std::uint64_t frame_off,
                     std::vector<TraceInst> &out);

    int fd_;
    bool ownFd_;
    const StopSignal *stop_;
    std::string name_;
    /** Unblocks the reader's poll from ~StreamingTraceSource. */
    WakeChannel ownWake_;
    SpscChunkRing ring_;
    std::thread reader_;

    /** Bytes consumed from the stream so far (error offsets). */
    std::uint64_t streamOff_ = 0;
    /** Records decoded and pushed by the reader thread. */
    std::uint64_t decoded_ = 0;

    std::atomic<std::uint64_t> total_{0};
    std::atomic<bool> cleanEos_{false};

    // Consumer-side state: the chunk being served to next() /
    // decodeBatch() / acquireRun(), plus the previous chunk kept
    // alive so the last acquireRun() pointer stays valid across the
    // chunk boundary.
    std::shared_ptr<const StreamChunk> cur_;
    std::size_t curPos_ = 0;
    std::shared_ptr<const StreamChunk> lastRun_;
    /** Relaxed atomic: tee cursors read length() (which falls back
     *  to the delivered count) from their own threads. */
    std::atomic<std::uint64_t> delivered_{0};
};

/**
 * Fan-out of one single-pass TraceSource to N cursor views —
 * `acic_run serve` keeps one resident engine per scheme, and every
 * engine must see the identical record sequence of the one live
 * stream. When the upstream is a ChunkedTraceSource its chunks are
 * adopted into the backlog as-is (zero-copy: the ring, the tee, and
 * every cursor window share the same immutable records); otherwise
 * records are staged batch-wise into tee-owned chunks. trim() drops
 * every chunk all cursors have fully consumed, so the backlog stays
 * bounded by how far the engines drift apart (the serve loop steps
 * them in lockstep), not by the stream length.
 *
 * Thread-safe for N cursors driven from N threads: pulls, lookups,
 * and trim() serialize on one mutex, while each cursor's hot path
 * runs lock-free over a captured window of an immutable chunk (the
 * window's shared_ptr keeps the chunk alive past any concurrent
 * trim). Cursors pull from upstream on demand, so a cursor never
 * reports a premature end-of-stream (BundleWalker latches
 * exhaustion permanently); ensureBuffered() exists to prefetch a
 * round's records up front — making mid-round lock traffic rare —
 * and to learn where the stream actually ended.
 */
class StreamTee
{
  public:
    class Cursor;

    explicit StreamTee(TraceSource &upstream, unsigned cursors,
                       std::size_t chunk_records = 16384);
    ~StreamTee();

    StreamTee(const StreamTee &) = delete;
    StreamTee &operator=(const StreamTee &) = delete;

    /**
     * Pull from upstream until @p target records (absolute, from
     * the stream start) are buffered or the stream ends.
     * @return the absolute buffered end — >= target unless the
     *         stream ended first. Rethrows upstream stream errors.
     */
    std::uint64_t ensureBuffered(std::uint64_t target);

    /** True once upstream reported end-of-stream. */
    bool exhausted() const;

    /** Absolute record index one past the last buffered record. */
    std::uint64_t bufferedEnd() const
    {
        return end_.load(std::memory_order_acquire);
    }

    /** Absolute record index of the oldest buffered record; the
     *  backlog bound tests pin bufferedEnd() - bufferedStart(). */
    std::uint64_t bufferedStart() const
    {
        return start_.load(std::memory_order_acquire);
    }

    /** Drop chunks every cursor has fully consumed. */
    void trim();

    Cursor &cursor(unsigned i) { return *cursors_[i]; }
    unsigned cursorCount() const
    {
        return static_cast<unsigned>(cursors_.size());
    }

  private:
    /** One backlog entry: an immutable chunk and the absolute
     *  stream index of its first record. */
    struct Entry
    {
        std::uint64_t base = 0;
        std::shared_ptr<const StreamChunk> chunk;
    };

    /** A cursor's lock-free view of one chunk: raw records plus the
     *  owning shared_ptr that pins them. */
    struct Window
    {
        const TraceInst *recs = nullptr;
        std::uint64_t base = 0;  ///< absolute index of recs[0]
        std::uint64_t count = 0; ///< records visible in this window
        std::shared_ptr<const StreamChunk> owner;
    };

    /** One upstream pull into the backlog; false at EOF. Caller
     *  holds mu_. */
    bool pullLocked();

    /** Locate the window covering @p pos, pulling on demand; false
     *  when the stream ended before @p pos. Caller holds mu_. */
    bool windowAtLocked(std::uint64_t pos, Window &out);

    TraceSource &upstream_;
    ChunkedTraceSource *chunked_; ///< non-null on the zero-copy path
    std::size_t chunkRecords_;

    mutable std::mutex mu_;
    std::deque<Entry> chunks_;
    std::atomic<std::uint64_t> start_{0};
    std::atomic<std::uint64_t> end_{0};
    bool eof_ = false;
    /** Generic-path staging: the tail chunk still being filled
     *  (reserve()d once, so record addresses are stable). */
    std::shared_ptr<StreamChunk> open_;
    InstBatch scratch_;
    std::vector<std::unique_ptr<Cursor>> cursors_;
};

/**
 * One cursor view of the tee'd stream. Implements the full
 * TraceSource supply surface — next(), decodeBatch(), and zero-copy
 * acquireRun() straight out of the shared chunk storage (the
 * walker's fast path) — pulling from upstream on demand. The chunk
 * backing the current window and the most recent acquireRun() are
 * pinned via shared_ptr, so a concurrent trim() never invalidates
 * records the engine still reads.
 */
class StreamTee::Cursor : public TraceSource
{
  public:
    Cursor(StreamTee &tee, unsigned index);

    /** Valid only before the first record is consumed. */
    void reset() override;

    bool next(TraceInst &out) override;
    unsigned decodeBatch(InstBatch &out) override;
    const TraceInst *acquireRun(std::uint64_t max,
                                std::uint64_t &n) override;

    /** Upstream's view: the announced total once known, else the
     *  monotonic lower bound (see StreamingTraceSource::length). */
    std::uint64_t length() const override;

    const std::string &name() const override;

    /** Absolute records this cursor has consumed. */
    std::uint64_t position() const
    {
        return pos_.load(std::memory_order_relaxed);
    }

  private:
    friend class StreamTee;

    /** Capture the window covering pos_; false at end-of-stream. */
    bool refill();

    StreamTee &tee_;
    unsigned index_;
    /** Atomic so trim() (another thread) can read the consumed
     *  position; only this cursor's thread writes it. */
    std::atomic<std::uint64_t> pos_{0};
    Window win_;
    /** Chunk backing the last acquireRun() (kept alive past both
     *  trim() and window advance). */
    std::shared_ptr<const StreamChunk> pin_;
};

} // namespace acic

#endif // ACIC_TRACE_STREAMING_HH
