#include "trace/import/qemu.hh"

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <iterator>

#include "common/logging.hh"

namespace acic {

namespace {

/** One successfully parsed log line. */
struct ParsedLine
{
    Addr pc = 0;
    /** True for execlog lines carrying a quoted disassembly. */
    bool haveMnemonic = false;
    std::string mnemonic;
};

std::string
trim(const std::string &s)
{
    std::size_t b = 0, e = s.size();
    while (b < e && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    while (e > b &&
           std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

bool
parseHex(const std::string &text, Addr &out)
{
    const std::string t = trim(text);
    if (t.empty())
        return false;
    const char *start = t.c_str();
    if (t.size() > 2 && t[0] == '0' && (t[1] == 'x' || t[1] == 'X'))
        start += 2;
    char *end = nullptr;
    out = std::strtoull(start, &end, 16);
    return end != start && *end == '\0';
}

bool
allDigits(const std::string &text)
{
    const std::string t = trim(text);
    if (t.empty())
        return false;
    for (const char c : t)
        if (!std::isdigit(static_cast<unsigned char>(c)))
            return false;
    return true;
}

/** `cpu, 0xPC, 0xOPCODE[, "disasm..."]` (execlog plugin). */
bool
parseExeclogLine(const std::string &line, ParsedLine &out)
{
    const std::size_t c1 = line.find(',');
    if (c1 == std::string::npos)
        return false;
    const std::size_t c2 = line.find(',', c1 + 1);
    if (!allDigits(line.substr(0, c1)))
        return false;
    const std::string pc_field =
        line.substr(c1 + 1, (c2 == std::string::npos
                                 ? std::string::npos
                                 : c2 - c1 - 1));
    if (trim(pc_field).rfind("0x", 0) != 0 &&
        trim(pc_field).rfind("0X", 0) != 0)
        return false;
    if (!parseHex(pc_field, out.pc))
        return false;
    // Mnemonic: first token of the first quoted substring, if any.
    const std::size_t q1 = line.find('"');
    if (q1 != std::string::npos) {
        std::size_t t = q1 + 1;
        std::string mnemonic;
        while (t < line.size() && line[t] != '"' &&
               !std::isspace(static_cast<unsigned char>(line[t])))
            mnemonic.push_back(line[t++]);
        if (!mnemonic.empty()) {
            out.haveMnemonic = true;
            out.mnemonic = mnemonic;
        }
    }
    return true;
}

/** `Trace N: 0xHOST [cs_base/PC/flags/...]` (-d exec). */
bool
parseExecTraceLine(const std::string &line, ParsedLine &out)
{
    if (trim(line).rfind("Trace", 0) != 0)
        return false;
    const std::size_t open = line.find('[');
    const std::size_t close = line.find(']');
    if (open == std::string::npos || close == std::string::npos ||
        close <= open)
        return false;
    const std::string inner =
        line.substr(open + 1, close - open - 1);
    const std::size_t slash = inner.find('/');
    if (slash == std::string::npos)
        return false;
    const std::size_t slash2 = inner.find('/', slash + 1);
    const std::string pc_field =
        inner.substr(slash + 1, (slash2 == std::string::npos
                                     ? std::string::npos
                                     : slash2 - slash - 1));
    return parseHex(pc_field, out.pc);
}

bool
isIgnorableLine(const std::string &line)
{
    const std::string t = trim(line);
    return t.empty() || t[0] == '#';
}

bool
matchesAny(const std::string &m, const char *const *names,
           std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        if (m == names[i])
            return true;
    return false;
}

TraceInst
finalize(const ParsedLine &line, Addr next_pc)
{
    TraceInst inst;
    inst.pc = line.pc;
    inst.nextPc = next_pc;
    const bool redirects =
        next_pc != line.pc + TraceInst::kInstBytes;
    if (line.haveMnemonic) {
        inst.kind = QemuImporter::classifyMnemonic(line.mnemonic);
        inst.taken = inst.kind == BranchKind::Cond
                         ? redirects
                         : inst.kind != BranchKind::None;
    } else {
        // TB-granularity lines carry no mnemonic: infer a taken
        // direct branch from any control-flow discontinuity.
        inst.kind =
            redirects ? BranchKind::Direct : BranchKind::None;
        inst.taken = redirects;
    }
    return inst;
}

} // namespace

BranchKind
QemuImporter::classifyMnemonic(const std::string &mnemonic)
{
    std::string m;
    m.reserve(mnemonic.size());
    for (const char c : mnemonic)
        m.push_back(static_cast<char>(
            std::tolower(static_cast<unsigned char>(c))));

    static const char *const kCalls[] = {"bl",    "blr",  "call",
                                         "callq", "calll", "jal",
                                         "jalr",  "bal"};
    static const char *const kReturns[] = {"ret",  "retq", "retl",
                                           "eret", "mret", "sret",
                                           "uret"};
    static const char *const kDirects[] = {"b", "br", "jmp", "jmpq",
                                           "j"};
    static const char *const kConds[] = {
        "cbz",    "cbnz",   "tbz",    "tbnz",  "beqz", "bnez",
        "blez",   "bgez",   "bltz",   "bgtz",  "loop", "loope",
        "loopz",  "loopne", "loopnz", "jcxz",  "jecxz", "jrcxz"};

    if (matchesAny(m, kCalls, std::size(kCalls)))
        return BranchKind::Call;
    if (matchesAny(m, kReturns, std::size(kReturns)))
        return BranchKind::Return;
    if (matchesAny(m, kDirects, std::size(kDirects)))
        return BranchKind::Direct;
    if (matchesAny(m, kConds, std::size(kConds)))
        return BranchKind::Cond;
    if (m.rfind("b.", 0) == 0) // aarch64 b.eq, b.ne, ...
        return BranchKind::Cond;
    // Short b<cond> (arm/riscv: beq, bne, bltu, ...) and j<cc>
    // (x86: je, jnz, jnae, ...) families.
    const bool alpha_tail = [&] {
        for (std::size_t i = 1; i < m.size(); ++i)
            if (!std::isalpha(static_cast<unsigned char>(m[i])))
                return false;
        return true;
    }();
    if (m.size() >= 2 && m.size() <= 4 && alpha_tail &&
        (m[0] == 'b' || m[0] == 'j'))
        return BranchKind::Cond;
    return BranchKind::None;
}

bool
QemuImporter::probe(const std::uint8_t *head, std::size_t n,
                    bool complete) const
{
    // Text input whose first parseable line matches either grammar.
    std::string text(reinterpret_cast<const char *>(head), n);
    for (const char c : text)
        if (c != '\t' && c != '\n' && c != '\r' &&
            (static_cast<unsigned char>(c) < 0x20 ||
             static_cast<unsigned char>(c) > 0x7e))
            return false;
    std::size_t start = 0;
    while (start < text.size()) {
        std::size_t end = text.find('\n', start);
        const bool unterminated = end == std::string::npos;
        const std::string line =
            text.substr(start, unterminated ? std::string::npos
                                            : end - start);
        if (!isIgnorableLine(line)) {
            // An unterminated line at the end of the probe window
            // may be cut mid-token — unless EOF fell inside the
            // window, in which case the line is actually complete.
            if (unterminated && !complete)
                return false;
            ParsedLine parsed;
            return parseExeclogLine(line, parsed) ||
                   parseExecTraceLine(line, parsed);
        }
        if (unterminated)
            break;
        start = end + 1;
    }
    return false;
}

std::uint64_t
QemuImporter::convert(InputStream &in, TraceWriter &out) const
{
    std::string line;
    std::uint64_t lineno = 0;
    ParsedLine prev;
    bool have_prev = false;
    while (in.getLine(line)) {
        ++lineno;
        if (isIgnorableLine(line))
            continue;
        ParsedLine cur;
        if (!parseExeclogLine(line, cur) &&
            !parseExecTraceLine(line, cur)) {
            std::string msg = "malformed QEMU log line " +
                              std::to_string(lineno) + " in " +
                              in.path();
            ACIC_FATAL(msg.c_str());
        }
        if (have_prev)
            out.append(finalize(prev, cur.pc));
        prev = cur;
        have_prev = true;
    }
    if (have_prev)
        out.append(
            finalize(prev, prev.pc + TraceInst::kInstBytes));
    return out.written();
}

} // namespace acic
