/**
 * @file
 * QEMU text-log importer. Accepts the two per-line shapes QEMU's
 * instruction tracing produces, auto-distinguished per line:
 *
 *  1. execlog plugin (`-plugin libexeclog.so`), one instruction per
 *     line:
 *
 *         0, 0x40052d, 0x94000043, "bl #0x400638"
 *
 *     The PC is field 2; the quoted disassembly, when present, names
 *     the mnemonic used to classify the branch kind (bl/call ->
 *     Call, ret -> Return, conditional mnemonics -> Cond, other
 *     jumps -> Direct).
 *
 *  2. `-d exec[,nochain]` translation-block log lines:
 *
 *         Trace 0: 0x7f7d4c [00000000/0000000000400526/0x31/...]
 *
 *     The PC is the second '/'-separated component in brackets. TB
 *     granularity carries no mnemonic, so control flow is inferred:
 *     a line whose successor is not pc + 4 becomes a taken Direct
 *     branch.
 *
 * Blank lines and lines starting with '#' are skipped; any other
 * unparseable line is a fatal naming its line number. The next-PC of
 * each instruction is the following line's PC (the final line falls
 * through to pc + 4).
 */

#ifndef ACIC_TRACE_IMPORT_QEMU_HH
#define ACIC_TRACE_IMPORT_QEMU_HH

#include "trace/import/importer.hh"

namespace acic {

/** See file comment. */
class QemuImporter : public TraceImporter
{
  public:
    const char *format() const override { return "qemu"; }
    bool probe(const std::uint8_t *head, std::size_t n,
               bool complete) const override;
    std::uint64_t convert(InputStream &in,
                          TraceWriter &out) const override;

    /** Branch kind of a disassembly mnemonic (exposed for tests). */
    static BranchKind classifyMnemonic(const std::string &mnemonic);
};

} // namespace acic

#endif // ACIC_TRACE_IMPORT_QEMU_HH
