#include "trace/import/framing.hh"

#include <algorithm>
#include <cstring>

#include "common/logging.hh"

#ifdef ACIC_HAVE_ZLIB
#include <zlib.h>
#endif

namespace acic {

namespace {

/** Buffer size; must exceed InputStream::kPeekMax. */
constexpr std::size_t kBufBytes = 1u << 18;

bool
hasGzipMagic(const unsigned char *b, std::size_t n)
{
    return n >= 2 && b[0] == 0x1f && b[1] == 0x8b;
}

} // namespace

bool
gzipSupported()
{
#ifdef ACIC_HAVE_ZLIB
    return true;
#else
    return false;
#endif
}

bool
gzipFile(const std::string &src_path, const std::string &dst_path)
{
#ifdef ACIC_HAVE_ZLIB
    std::FILE *in = std::fopen(src_path.c_str(), "rb");
    if (!in)
        return false;
    gzFile out = gzopen(dst_path.c_str(), "wb");
    if (!out) {
        std::fclose(in);
        return false;
    }
    char buf[1u << 16];
    std::size_t n;
    bool ok = true;
    while ((n = std::fread(buf, 1, sizeof(buf), in)) > 0)
        ok = ok && gzwrite(out, buf, static_cast<unsigned>(n)) ==
                       static_cast<int>(n);
    std::fclose(in);
    ok = gzclose(out) == Z_OK && ok;
    return ok;
#else
    (void)src_path;
    (void)dst_path;
    ACIC_FATAL("gzip support not compiled in (zlib missing)");
#endif
}

InputStream::InputStream(const std::string &path) : path_(path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (!file_)
        ACIC_FATAL("cannot open input trace file");
    unsigned char magic[2];
    const std::size_t got = std::fread(magic, 1, 2, file_);
    buf_.resize(kBufBytes);
    if (hasGzipMagic(magic, got)) {
        std::fclose(file_);
        file_ = nullptr;
#ifdef ACIC_HAVE_ZLIB
        gz_ = gzopen(path.c_str(), "rb");
        if (!gz_)
            ACIC_FATAL("cannot open gzip input trace file");
#else
        ACIC_FATAL("input is gzip-compressed but gzip support was "
                   "not compiled in (zlib missing)");
#endif
    } else {
        // Seed the buffer with the sniffed bytes instead of
        // rewinding, so non-seekable input (a pipe) is not
        // silently misframed by two bytes.
        std::memcpy(buf_.data(), magic, got);
        end_ = got;
    }
    static_assert(kBufBytes > InputStream::kPeekMax,
                  "peek window must fit the buffer");
}

InputStream::~InputStream()
{
    if (file_)
        std::fclose(file_);
#ifdef ACIC_HAVE_ZLIB
    if (gz_)
        gzclose(static_cast<gzFile>(gz_));
#endif
}

std::size_t
InputStream::backendRead(void *buf, std::size_t n)
{
#ifdef ACIC_HAVE_ZLIB
    if (gz_) {
        const int r = gzread(static_cast<gzFile>(gz_), buf,
                             static_cast<unsigned>(n));
        if (r < 0)
            ACIC_FATAL("gzip decompression error in input trace");
        return static_cast<std::size_t>(r);
    }
#endif
    return std::fread(buf, 1, n, file_);
}

void
InputStream::fill(std::size_t want)
{
    if (end_ - pos_ >= want)
        return;
    // Compact the unconsumed tail to the front, then top up.
    if (pos_ > 0) {
        std::memmove(buf_.data(), buf_.data() + pos_, end_ - pos_);
        end_ -= pos_;
        pos_ = 0;
    }
    while (end_ - pos_ < want && end_ < buf_.size()) {
        const std::size_t got =
            backendRead(buf_.data() + end_, buf_.size() - end_);
        if (got == 0)
            break;
        end_ += got;
    }
}

std::size_t
InputStream::read(void *buf, std::size_t n)
{
    std::uint8_t *dst = static_cast<std::uint8_t *>(buf);
    std::size_t copied = 0;
    while (copied < n) {
        if (pos_ == end_) {
            fill(1);
            if (pos_ == end_)
                break;
        }
        const std::size_t take =
            std::min(n - copied, end_ - pos_);
        std::memcpy(dst + copied, buf_.data() + pos_, take);
        pos_ += take;
        copied += take;
    }
    consumed_ += copied;
    return copied;
}

bool
InputStream::getLine(std::string &out)
{
    out.clear();
    bool any = false;
    for (;;) {
        if (pos_ == end_) {
            fill(1);
            if (pos_ == end_)
                return any || !out.empty();
        }
        any = true;
        const std::uint8_t *nl = static_cast<const std::uint8_t *>(
            std::memchr(buf_.data() + pos_, '\n', end_ - pos_));
        if (!nl) {
            out.append(reinterpret_cast<const char *>(
                           buf_.data() + pos_),
                       end_ - pos_);
            consumed_ += end_ - pos_;
            pos_ = end_;
            continue;
        }
        const std::size_t line_end =
            static_cast<std::size_t>(nl - buf_.data());
        out.append(reinterpret_cast<const char *>(
                       buf_.data() + pos_),
                   line_end - pos_);
        consumed_ += line_end - pos_ + 1; // include the '\n'
        pos_ = line_end + 1;
        if (!out.empty() && out.back() == '\r')
            out.pop_back();
        return true;
    }
}

std::size_t
InputStream::peek(const std::uint8_t *&ptr, std::size_t n)
{
    ACIC_ASSERT(n <= kPeekMax, "peek window too large");
    fill(n);
    ptr = buf_.data() + pos_;
    return std::min(n, end_ - pos_);
}

} // namespace acic
