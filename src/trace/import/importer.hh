/**
 * @file
 * Pluggable trace ingestion: a TraceImporter converts one external
 * instruction-trace format into the native `.acictrace` v1 container
 * (DESIGN.md section 2), after which everything downstream — oracle,
 * schemes, experiment driver — works unchanged.
 *
 * Three importers are registered (DESIGN.md section 5):
 *
 *   champsim   64-byte binary records (ip, is_branch, branch_taken,
 *              register lists, memory operands);
 *   qemu       text logs, both the execlog-plugin per-instruction
 *              form and the `-d exec` translation-block form;
 *   acictrace  native re-encode, so `acic_run import` can also
 *              re-frame (e.g. decompress) an existing trace.
 *
 * Input may be gzip-compressed (detected by magic, see framing.hh).
 * Format auto-detection probes the decompressed stream head against
 * each importer in registration order.
 */

#ifndef ACIC_TRACE_IMPORT_IMPORTER_HH
#define ACIC_TRACE_IMPORT_IMPORTER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "trace/import/framing.hh"
#include "trace/io.hh"

namespace acic {

/** Interface every ingestion format implements. */
class TraceImporter
{
  public:
    virtual ~TraceImporter() = default;

    /** Registry key and `--format` spelling, e.g. "champsim". */
    virtual const char *format() const = 0;

    /**
     * Sniff the (decompressed) stream head: may this importer parse
     * it? Probes must be cheap and side-effect free; the first
     * registered importer whose probe accepts wins auto-detection.
     * @param complete true when @p head is the entire input (EOF
     *        fell inside the probe window), so a final unterminated
     *        line is actually complete.
     */
    virtual bool probe(const std::uint8_t *head, std::size_t n,
                       bool complete) const = 0;

    /**
     * Read every instruction from @p in and append it to @p out.
     * ACIC_FATALs on malformed input naming the offending position.
     * @return instructions converted.
     */
    virtual std::uint64_t convert(InputStream &in,
                                  TraceWriter &out) const = 0;

    /**
     * Workload name recoverable from the input itself (the native
     * importer preserves the stored header name). Empty when the
     * format carries none; @p in is only peeked, never consumed.
     */
    virtual std::string sniffName(InputStream &in) const
    {
        (void)in;
        return "";
    }
};

/** Options of one importTraceFile() call. */
struct ImportOptions
{
    /** "auto", or an importer format() name. */
    std::string format = "auto";

    /**
     * Workload name stored in the output header. Empty picks the
     * input's own name (native re-encode) or, failing that, the
     * output file name minus directories and extensions.
     */
    std::string name;
};

/** What one importTraceFile() call did. */
struct ImportSummary
{
    /** Importer that ran (resolved from --format or detection). */
    std::string format;
    /** Workload name written to the output header. */
    std::string name;
    /** Instructions converted. */
    std::uint64_t instructions = 0;
    /** Decompressed input bytes consumed. */
    std::uint64_t inputBytes = 0;
    /** True when the input was gzip-compressed. */
    bool compressed = false;
};

/** All registered importers, in auto-detection probe order. */
const std::vector<const TraceImporter *> &traceImporters();

/** Look up an importer by format() name; nullptr when unknown. */
const TraceImporter *importerByFormat(const std::string &format);

/**
 * Auto-detect the format of @p in by probing its head.
 * @return the first accepting importer; ACIC_FATALs when no importer
 *         recognizes the input.
 */
const TraceImporter *detectImporter(InputStream &in);

/** "dir/web_search.champsim.gz" -> "web_search". */
std::string workloadNameForPath(const std::string &path);

/**
 * Convert @p in_path (any supported format, optionally gzipped) into
 * the `.acictrace` file @p out_path. The implementation of
 * `acic_run import`; ACIC_FATALs on unknown formats or malformed
 * input.
 */
ImportSummary importTraceFile(const std::string &in_path,
                              const std::string &out_path,
                              const ImportOptions &options = {});

} // namespace acic

#endif // ACIC_TRACE_IMPORT_IMPORTER_HH
