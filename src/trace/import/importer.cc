#include "trace/import/importer.hh"

#include <cstdio>
#include <cstring>

#include "common/logging.hh"
#include "trace/import/champsim.hh"
#include "trace/import/qemu.hh"

namespace acic {

namespace {

/** Bytes of stream head offered to probes. */
constexpr std::size_t kProbeBytes = 4096;

std::uint16_t
loadU16(const std::uint8_t *b)
{
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t
loadU32(const std::uint8_t *b)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

/**
 * Native `.acictrace` re-encoder: streams an existing container
 * (possibly gzip-compressed) through decode/append. Gives
 * `acic_run import` an identity path — re-framing, decompressing, or
 * upgrading traces — and preserves the stored workload name.
 *
 * The record decode intentionally mirrors FileTraceSource (which is
 * seek-based and cannot read compressed streams); the pairing is
 * pinned by NativeImport.ReencodePreservesStreamAndName.
 */
class NativeImporter : public TraceImporter
{
  public:
    const char *format() const override { return "acictrace"; }

    bool probe(const std::uint8_t *head, std::size_t n,
               bool complete) const override
    {
        (void)complete;
        return n >= 4 && loadU32(head) == TraceFormat::kMagic;
    }

    std::string sniffName(InputStream &in) const override
    {
        const std::uint8_t *head = nullptr;
        const std::size_t n = in.peek(head, kProbeBytes);
        if (n < 20 || loadU32(head) != TraceFormat::kMagic)
            return "";
        const std::uint32_t name_len = loadU32(head + 16);
        if (name_len > n - 20)
            return "";
        return std::string(
            reinterpret_cast<const char *>(head + 20), name_len);
    }

    std::uint64_t convert(InputStream &in,
                          TraceWriter &out) const override
    {
        std::uint8_t header[20];
        if (in.read(header, sizeof(header)) != sizeof(header) ||
            loadU32(header) != TraceFormat::kMagic)
            ACIC_FATAL("not an ACIC trace (bad magic)");
        const std::uint16_t version = loadU16(header + 4);
        if (version < TraceFormat::kMinVersion ||
            version > TraceFormat::kVersion)
            ACIC_FATAL("unsupported trace-format version");
        const std::uint64_t count =
            static_cast<std::uint64_t>(loadU32(header + 8)) |
            (static_cast<std::uint64_t>(loadU32(header + 12))
             << 32);
        const std::uint32_t name_len = loadU32(header + 16);
        if (name_len > (1u << 20))
            ACIC_FATAL("corrupt trace header");
        std::string name(name_len, '\0');
        if (in.read(name.data(), name_len) != name_len)
            ACIC_FATAL("truncated trace header");

        Addr prev_next = 0;
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint8_t tag = 0;
            if (in.read(&tag, 1) != 1)
                ACIC_FATAL("trace shorter than its header count");
            const auto kind_raw = tag & TraceFormat::kKindMask;
            if (kind_raw >
                static_cast<std::uint8_t>(BranchKind::Return))
                ACIC_FATAL("corrupt trace record (bad branch kind)");
            TraceInst inst;
            inst.kind = static_cast<BranchKind>(kind_raw);
            inst.taken = (tag & TraceFormat::kTakenBit) != 0;
            if (tag & TraceFormat::kLinkedBit)
                inst.pc = prev_next;
            else
                inst.pc = prev_next +
                          static_cast<Addr>(
                              zigzagDecode(getVarint(in)));
            const Addr seq_next = inst.pc + TraceInst::kInstBytes;
            if (tag & TraceFormat::kSequentialBit)
                inst.nextPc = seq_next;
            else
                inst.nextPc = seq_next +
                              static_cast<Addr>(
                                  zigzagDecode(getVarint(in)));
            prev_next = inst.nextPc;
            out.append(inst);
        }
        return out.written();
    }

  private:
    static std::uint64_t getVarint(InputStream &in)
    {
        std::uint64_t v = 0;
        unsigned shift = 0;
        std::uint8_t b = 0;
        do {
            if (in.read(&b, 1) != 1 || shift > 63)
                ACIC_FATAL("truncated or corrupt trace record");
            v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
            shift += 7;
        } while (b & 0x80);
        return v;
    }
};

} // namespace

const std::vector<const TraceImporter *> &
traceImporters()
{
    // Probe order matters: the native magic is unambiguous, the QEMU
    // probe claims parseable text, and ChampSim is the binary
    // fallback.
    static const NativeImporter native;
    static const QemuImporter qemu;
    static const ChampSimImporter champsim;
    static const std::vector<const TraceImporter *> registry{
        &native, &qemu, &champsim};
    return registry;
}

const TraceImporter *
importerByFormat(const std::string &format)
{
    for (const TraceImporter *importer : traceImporters())
        if (format == importer->format())
            return importer;
    return nullptr;
}

const TraceImporter *
detectImporter(InputStream &in)
{
    const std::uint8_t *head = nullptr;
    const std::size_t n = in.peek(head, kProbeBytes);
    // A short peek means EOF fell inside the window: the head IS
    // the whole input.
    const bool complete = n < kProbeBytes;
    for (const TraceImporter *importer : traceImporters())
        if (importer->probe(head, n, complete))
            return importer;
    ACIC_FATAL("cannot auto-detect trace format (not acictrace, "
               "qemu, or champsim); pass --format explicitly");
}

std::string
workloadNameForPath(const std::string &path)
{
    const std::size_t slash = path.find_last_of("/\\");
    std::string base =
        slash == std::string::npos ? path : path.substr(slash + 1);
    const std::size_t dot = base.find('.');
    if (dot != std::string::npos && dot > 0)
        base = base.substr(0, dot);
    return base.empty() ? "imported" : base;
}

ImportSummary
importTraceFile(const std::string &in_path,
                const std::string &out_path,
                const ImportOptions &options)
{
    InputStream in(in_path);
    const TraceImporter *importer =
        options.format == "auto" ? detectImporter(in)
                                 : importerByFormat(options.format);
    if (!importer) {
        std::string msg = "unknown import format '" +
                          options.format +
                          "' (expected auto, acictrace, qemu, or "
                          "champsim)";
        ACIC_FATAL(msg.c_str());
    }

    std::string name = options.name;
    if (name.empty())
        name = importer->sniffName(in);
    if (name.empty())
        name = workloadNameForPath(out_path);

    // Convert into a temp file and rename on success, so a fatal on
    // malformed input never leaves a partial (count = 0) trace
    // behind under the real name for catalog scans to pick up.
    const std::string tmp_path = out_path + ".tmp";
    TraceWriter writer(tmp_path, name);
    importer->convert(in, writer);
    writer.close();
    if (std::rename(tmp_path.c_str(), out_path.c_str()) != 0)
        ACIC_FATAL("cannot move finished trace into place");

    ImportSummary summary;
    summary.format = importer->format();
    summary.name = name;
    summary.instructions = writer.written();
    summary.inputBytes = in.consumed();
    summary.compressed = in.compressed();
    return summary;
}

} // namespace acic
