/**
 * @file
 * ChampSim binary trace importer. One record per retired instruction,
 * 64 bytes, little-endian, matching ChampSim's input_instr layout:
 *
 *   offset  size  field
 *   0       8     ip
 *   8       1     is_branch
 *   9       1     branch_taken
 *   10      2     destination_registers[2]
 *   12      4     source_registers[4]
 *   16      16    destination_memory[2]
 *   32      32    source_memory[4]
 *
 * The next-PC of each instruction is the following record's ip (the
 * final record falls through to ip + 4). Branch kinds are recovered
 * from the register lists with ChampSim's own convention — register
 * 6 is the stack pointer, 25 the flags, 26 the instruction pointer —
 * see classify() for the mapping onto BranchKind.
 */

#ifndef ACIC_TRACE_IMPORT_CHAMPSIM_HH
#define ACIC_TRACE_IMPORT_CHAMPSIM_HH

#include "trace/import/importer.hh"

namespace acic {

/** See file comment. */
class ChampSimImporter : public TraceImporter
{
  public:
    /** Record size in bytes; files must be a whole number of these. */
    static constexpr std::size_t kRecordBytes = 64;

    /** ChampSim special register numbers. */
    static constexpr std::uint8_t kRegStackPointer = 6;
    static constexpr std::uint8_t kRegFlags = 25;
    static constexpr std::uint8_t kRegInstructionPointer = 26;

    const char *format() const override { return "champsim"; }
    bool probe(const std::uint8_t *head, std::size_t n,
               bool complete) const override;
    std::uint64_t convert(InputStream &in,
                          TraceWriter &out) const override;
};

} // namespace acic

#endif // ACIC_TRACE_IMPORT_CHAMPSIM_HH
