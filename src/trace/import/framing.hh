/**
 * @file
 * Shared input framing for the trace importers: a buffered byte
 * stream over a file that transparently inflates gzip-compressed
 * input (when built with zlib), with three access styles layered on
 * one buffer:
 *
 *  - read():    record framing for binary formats (ChampSim);
 *  - getLine(): line framing for text formats (QEMU logs);
 *  - peek():    a non-consuming view of the stream head, used by the
 *               format auto-detection in the importer registry.
 *
 * Compression is detected from the gzip magic (0x1f 0x8b), never from
 * the file name, so `foo.champsim.gz` and a renamed `foo.bin` both
 * work. Without zlib, opening gzip input fails with a clear fatal
 * instead of feeding compressed bytes to a parser.
 */

#ifndef ACIC_TRACE_IMPORT_FRAMING_HH
#define ACIC_TRACE_IMPORT_FRAMING_HH

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace acic {

/** True when gzip decompression was compiled in (zlib present). */
bool gzipSupported();

/**
 * Compress @p src_path into gzip file @p dst_path. Test/CI utility
 * for building compressed fixtures; ACIC_FATALs without zlib.
 * @return false when either file cannot be opened.
 */
bool gzipFile(const std::string &src_path,
              const std::string &dst_path);

/** See file comment. */
class InputStream
{
  public:
    /** Open @p path; ACIC_FATALs if it cannot be opened. */
    explicit InputStream(const std::string &path);
    ~InputStream();

    InputStream(const InputStream &) = delete;
    InputStream &operator=(const InputStream &) = delete;

    /**
     * Consume up to @p n decompressed bytes into @p buf, filling as
     * much as the input allows.
     * @return bytes copied; short counts happen only at end of input,
     *         so 0 means a clean EOF and 0 < r < n a truncated tail.
     */
    std::size_t read(void *buf, std::size_t n);

    /**
     * Consume the next line into @p out, without its terminator
     * ("\n" and "\r\n" both end a line; a final unterminated line is
     * returned as-is).
     * @return false when the stream is exhausted.
     */
    bool getLine(std::string &out);

    /**
     * Expose up to @p n buffered bytes at the current position
     * without consuming them. @p n must be at most kPeekMax.
     * @return bytes available at @p ptr (short only near EOF).
     */
    std::size_t peek(const std::uint8_t *&ptr, std::size_t n);

    /** Decompressed bytes consumed so far. */
    std::uint64_t consumed() const { return consumed_; }

    /** True when the underlying file is gzip-compressed. */
    bool compressed() const { return gz_ != nullptr; }

    const std::string &path() const { return path_; }

    /** Upper bound on a single peek() request. */
    static constexpr std::size_t kPeekMax = 1u << 16;

  private:
    /** Pull more backend bytes into the buffer (compacting first). */
    void fill(std::size_t want);
    std::size_t backendRead(void *buf, std::size_t n);

    std::string path_;
    std::FILE *file_ = nullptr;
    void *gz_ = nullptr; // gzFile, opaque so the header needs no zlib
    std::vector<std::uint8_t> buf_;
    std::size_t pos_ = 0;
    std::size_t end_ = 0;
    std::uint64_t consumed_ = 0;
};

} // namespace acic

#endif // ACIC_TRACE_IMPORT_FRAMING_HH
