#include "trace/import/champsim.hh"

#include <cstring>

#include "common/logging.hh"

namespace acic {

namespace {

/** Decoded 64-byte record (only the fields the importer consumes). */
struct Record
{
    std::uint64_t ip = 0;
    bool isBranch = false;
    bool taken = false;
    std::uint8_t dst[2] = {};
    std::uint8_t src[4] = {};
};

std::uint64_t
loadU64(const std::uint8_t *b)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

Record
decode(const std::uint8_t *raw)
{
    Record r;
    r.ip = loadU64(raw);
    r.isBranch = raw[8] != 0;
    r.taken = raw[9] != 0;
    std::memcpy(r.dst, raw + 10, sizeof(r.dst));
    std::memcpy(r.src, raw + 12, sizeof(r.src));
    return r;
}

bool
contains(const std::uint8_t *regs, std::size_t n, std::uint8_t reg)
{
    for (std::size_t i = 0; i < n; ++i)
        if (regs[i] == reg)
            return true;
    return false;
}

/**
 * ChampSim's branch taxonomy, folded onto BranchKind: direct and
 * indirect jumps both become Direct, direct and indirect calls both
 * become Call; a branch matching no rule (unusual register mixes)
 * falls back to Direct so it still redirects.
 */
BranchKind
classify(const Record &r)
{
    if (!r.isBranch)
        return BranchKind::None;
    const bool reads_sp = contains(r.src, 4,
                                   ChampSimImporter::kRegStackPointer);
    const bool reads_ip =
        contains(r.src, 4, ChampSimImporter::kRegInstructionPointer);
    const bool reads_flags =
        contains(r.src, 4, ChampSimImporter::kRegFlags);
    const bool writes_ip =
        contains(r.dst, 2, ChampSimImporter::kRegInstructionPointer);
    const bool writes_sp =
        contains(r.dst, 2, ChampSimImporter::kRegStackPointer);

    if (reads_sp && !reads_ip && writes_ip)
        return BranchKind::Return;
    if (reads_sp && reads_ip && writes_ip && writes_sp)
        return BranchKind::Call;
    if (reads_flags && writes_ip)
        return BranchKind::Cond;
    (void)writes_ip;
    return BranchKind::Direct;
}

TraceInst
toInst(const Record &r, Addr next_pc)
{
    TraceInst inst;
    inst.pc = r.ip;
    inst.nextPc = next_pc;
    inst.kind = classify(r);
    inst.taken = r.isBranch && r.taken;
    return inst;
}

/** Printable-ASCII share used to reject text input. */
bool
looksLikeText(const std::uint8_t *head, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint8_t c = head[i];
        if (c != '\t' && c != '\n' && c != '\r' &&
            (c < 0x20 || c > 0x7e))
            return false;
    }
    return n > 0;
}

} // namespace

bool
ChampSimImporter::probe(const std::uint8_t *head, std::size_t n,
                        bool complete) const
{
    (void)complete;
    // Binary fallback: at least one whole record and not plain text.
    return n >= kRecordBytes && !looksLikeText(head, n);
}

std::uint64_t
ChampSimImporter::convert(InputStream &in, TraceWriter &out) const
{
    std::uint8_t raw[kRecordBytes];
    Record prev;
    bool have_prev = false;
    for (;;) {
        const std::size_t got = in.read(raw, kRecordBytes);
        if (got == 0)
            break;
        if (got != kRecordBytes)
            ACIC_FATAL("truncated ChampSim trace (file size is not "
                       "a whole number of 64-byte records)");
        const Record cur = decode(raw);
        if (have_prev)
            out.append(toInst(prev, cur.ip));
        prev = cur;
        have_prev = true;
    }
    if (have_prev)
        out.append(
            toInst(prev, prev.ip + TraceInst::kInstBytes));
    return out.written();
}

} // namespace acic
