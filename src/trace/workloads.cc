#include "trace/workload_params.hh"

#include "common/logging.hh"
#include "trace/catalog.hh"

namespace acic {

namespace {

/**
 * Base preset for datacenter applications; individual workloads
 * override the working-set levers. Sizing intuition: functions
 * average ~(min+max)/2 = 56 instructions at 4 B each, i.e. ~3.5
 * blocks (real-world function sizes); the per-phase working set is
 * phaseFunctions * 3.5 blocks against the 512-block (32 KB) L1i of
 * Table II. A flat-ish Zipf (0.25) and shallow call trees make each
 * request sweep most of its phase's working set, producing the
 * burst-then-long-gap reuse pattern of Fig. 1.
 */
WorkloadParams
dcBase(std::string name, std::uint64_t seed, double paper_mpki)
{
    WorkloadParams p;
    p.name = std::move(name);
    p.seed = seed;
    p.paperMpki = paper_mpki;
    p.instructions = 5'000'000;
    p.libFunctions = 12;
    p.minFnSize = 16;
    p.maxFnSize = 96;
    // Near-uniform popularity inside a phase: a request sweeps its
    // working set, so within-phase re-reference lands at ~ws-sized
    // reuse distances rather than filling the (16,512] middle.
    p.zipfSkew = 0.08;
    p.branchDensity = 0.15;
    p.condFrac = 0.60;
    p.loopFrac = 0.22;
    p.callFrac = 0.18;
    p.libCallFrac = 0.12;
    p.earlyExitFrac = 0.12;
    p.loopTripMean = 4.0;
    p.maxLoopTrip = 16;
    p.maxCallDepth = 4;
    return p;
}

/**
 * Base preset for the SPEC-like loop-heavy applications: small
 * footprints, hot loops, high i-cache hit rates even at baseline
 * (Sec. IV-H3's "little headroom" regime).
 */
WorkloadParams
specBase(std::string name, std::uint64_t seed)
{
    WorkloadParams p;
    p.name = std::move(name);
    p.seed = seed;
    p.instructions = 5'000'000;
    p.libFunctions = 8;
    p.numPhases = 3;
    p.phaseMeanLen = 400'000;
    p.minFnSize = 16;
    p.maxFnSize = 80;
    p.zipfSkew = 0.8;
    p.branchDensity = 0.17;
    p.condFrac = 0.50;
    p.loopFrac = 0.36;
    p.callFrac = 0.14;
    p.libCallFrac = 0.20;
    p.earlyExitFrac = 0.10;
    p.loopTripMean = 12.0;
    p.maxLoopTrip = 64;
    p.maxCallDepth = 4;
    return p;
}

} // namespace

std::vector<WorkloadParams>
Workloads::datacenter()
{
    std::vector<WorkloadParams> all;

    // Media streaming: working set just past L1i reach; strong
    // (512,1024] reuse mass -> big admission-control headroom.
    {
        auto p = dcBase("media_streaming", 101, 81.2);
        p.numPhases = 6;
        p.phaseFunctions = 180;
        p.phaseMeanLen = 50'000;
        all.push_back(p);
    }
    // Data caching (memcached-like): similar structure, slightly
    // smaller per-request path, faster request turnover.
    {
        auto p = dcBase("data_caching", 102, 78.1);
        p.numPhases = 8;
        p.phaseFunctions = 175;
        p.phaseMeanLen = 46'000;
        all.push_back(p);
    }
    // Data serving (YCSB): smallest footprint of the suite; much of
    // the working set fits -> lowest MPKI.
    {
        auto p = dcBase("data_serving", 103, 31.6);
        p.numPhases = 6;
        p.phaseFunctions = 100;
        p.phaseMeanLen = 70'000;
        all.push_back(p);
    }
    // Web serving: mid-size working set, many request types.
    {
        auto p = dcBase("web_serving", 104, 65.8);
        p.numPhases = 8;
        p.phaseFunctions = 155;
        p.phaseMeanLen = 48'000;
        all.push_back(p);
    }
    // Web search (Solr): biggest per-request code path, rapid phase
    // cycling -> highest MPKI, strong (512,1024] mass.
    {
        auto p = dcBase("web_search", 105, 151.5);
        p.numPhases = 10;
        p.phaseFunctions = 205;
        p.phaseMeanLen = 40'000;
        p.libCallFrac = 0.10;
        all.push_back(p);
    }
    // TPC-C: very large total footprint with reuse mass beyond 1024
    // blocks -- the "don't bother comparing" regime of Fig. 1a.
    {
        auto p = dcBase("tpcc", 106, 42.5);
        p.numPhases = 10;
        p.phaseFunctions = 540;
        p.phaseMeanLen = 80'000;
        p.libCallFrac = 0.14;
        all.push_back(p);
    }
    // Wikipedia: like TPC-C, long reuse distances dominate.
    {
        auto p = dcBase("wikipedia", 107, 41.1);
        p.numPhases = 10;
        p.phaseFunctions = 510;
        p.phaseMeanLen = 78'000;
        p.libCallFrac = 0.14;
        all.push_back(p);
    }
    // SIBench: small snapshot-isolation kernel; moderate footprint.
    {
        auto p = dcBase("sibench", 108, 35.0);
        p.numPhases = 4;
        p.phaseFunctions = 120;
        p.phaseMeanLen = 70'000;
        all.push_back(p);
    }
    // Finagle-HTTP: mid footprint, hot shared RPC library.
    {
        auto p = dcBase("finagle_http", 109, 46.1);
        p.numPhases = 8;
        p.phaseFunctions = 148;
        p.phaseMeanLen = 52'000;
        p.libCallFrac = 0.20;
        all.push_back(p);
    }
    // Neo4J analytics: graph kernels cycling over a working set just
    // past L1i reach.
    {
        auto p = dcBase("neo4j_analytics", 110, 58.7);
        p.numPhases = 8;
        p.phaseFunctions = 200;
        p.phaseMeanLen = 55'000;
        all.push_back(p);
    }
    return all;
}

std::vector<WorkloadParams>
Workloads::spec()
{
    std::vector<WorkloadParams> all;
    {
        auto p = specBase("perlbench", 201);
        p.phaseFunctions = 85;
        all.push_back(p);
    }
    {
        auto p = specBase("omnetpp", 202);
        p.phaseFunctions = 70;
        all.push_back(p);
    }
    {
        auto p = specBase("xalancbmk", 203);
        p.phaseFunctions = 95;
        all.push_back(p);
    }
    {
        auto p = specBase("x264", 204);
        p.phaseFunctions = 40;
        p.loopTripMean = 20.0;
        all.push_back(p);
    }
    {
        auto p = specBase("gcc", 205);
        p.phaseFunctions = 115;
        p.numPhases = 4;
        all.push_back(p);
    }
    return all;
}

WorkloadParams
Workloads::byName(const std::string &name)
{
    // The catalog is the registry of record; this stays as the
    // params-only convenience for code that synthesizes directly.
    const WorkloadCatalog catalog = WorkloadCatalog::builtin();
    const WorkloadEntry *entry = catalog.find(name);
    if (!entry)
        ACIC_FATAL("unknown workload name");
    return entry->params;
}

} // namespace acic
