#include "trace/io.hh"

#include <cstring>

#include "common/logging.hh"
#include "trace/errors.hh"

namespace acic {

namespace {

/** Buffer size for both writer and reader (1 MiB). */
constexpr std::size_t kBufBytes = 1u << 20;

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
readU16(std::istream &in)
{
    std::uint8_t b[2];
    in.read(reinterpret_cast<char *>(b), 2);
    return static_cast<std::uint16_t>(b[0] | (b[1] << 8));
}

std::uint32_t
readU32(std::istream &in)
{
    std::uint8_t b[4];
    in.read(reinterpret_cast<char *>(b), 4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(b[i]) << (8 * i);
    return v;
}

std::uint64_t
readU64(std::istream &in)
{
    std::uint8_t b[8];
    in.read(reinterpret_cast<char *>(b), 8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(b[i]) << (8 * i);
    return v;
}

} // namespace

// ------------------------------------------------------------ TraceWriter

TraceWriter::TraceWriter(const std::string &path,
                         const std::string &name,
                         std::uint64_t index_interval)
    : out_(path, std::ios::binary | std::ios::trunc), path_(path),
      indexInterval_(index_interval)
{
    if (!out_)
        ACIC_FATAL("cannot open trace file for writing");
    // close() patches the instruction count back into the header, so
    // a non-seekable target (pipe, FIFO, character device) would end
    // up with a corrupt count-0 header. Detect it now and fail with
    // a clear error instead.
    if (out_.tellp() == std::ofstream::pos_type(-1))
        ACIC_FATAL("trace output is not seekable (the instruction "
                   "count is patched into the header on close); "
                   "write to a regular file");
    buf_.reserve(kBufBytes + 32);
    putU32(buf_, TraceFormat::kMagic);
    putU16(buf_, TraceFormat::kVersion);
    putU16(buf_, 0); // flags
    putU64(buf_, 0); // count placeholder, patched by close()
    putU32(buf_, static_cast<std::uint32_t>(name.size()));
    for (const char c : name)
        buf_.push_back(static_cast<std::uint8_t>(c));
    headerBytes_ = buf_.size();
    open_ = true;
}

std::uint64_t
TraceWriter::bytesOut() const
{
    return flushedBytes_ + buf_.size();
}

TraceWriter::~TraceWriter()
{
    if (open_)
        close();
}

void
TraceWriter::putByte(std::uint8_t b)
{
    buf_.push_back(b);
    if (buf_.size() >= kBufBytes)
        flush();
}

void
TraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        buf_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    buf_.push_back(static_cast<std::uint8_t>(v));
    if (buf_.size() >= kBufBytes)
        flush();
}

void
TraceWriter::flush()
{
    if (buf_.empty())
        return;
    out_.write(reinterpret_cast<const char *>(buf_.data()),
               static_cast<std::streamsize>(buf_.size()));
    flushedBytes_ += buf_.size();
    buf_.clear();
}

void
TraceWriter::append(const TraceInst &inst)
{
    ACIC_ASSERT(open_, "append() on a closed TraceWriter");
    // This record starts instruction `count_`; when that lands on an
    // index-checkpoint boundary, capture where it begins and the
    // varint-chain state needed to decode it.
    if (indexInterval_ > 0 && count_ > 0 &&
        count_ % indexInterval_ == 0) {
        checkpoints_.push_back(
            {bytesOut() - headerBytes_, prevNext_});
    }
    const bool linked = inst.pc == prevNext_;
    const Addr seq_next = inst.pc + TraceInst::kInstBytes;
    const bool sequential = inst.nextPc == seq_next;

    std::uint8_t tag = static_cast<std::uint8_t>(inst.kind) &
                       TraceFormat::kKindMask;
    if (inst.taken)
        tag |= TraceFormat::kTakenBit;
    if (linked)
        tag |= TraceFormat::kLinkedBit;
    if (sequential)
        tag |= TraceFormat::kSequentialBit;
    putByte(tag);

    if (!linked)
        putVarint(zigzagEncode(static_cast<std::int64_t>(
            inst.pc - prevNext_)));
    if (!sequential)
        putVarint(zigzagEncode(static_cast<std::int64_t>(
            inst.nextPc - seq_next)));

    prevNext_ = inst.nextPc;
    ++count_;
}

void
TraceWriter::close()
{
    if (!open_)
        return;
    flush();
    std::uint16_t flags = 0;
    if (indexInterval_ > 0) {
        // Index footer: checkpoints, then the fixed trailer readers
        // locate from the end of the file.
        for (const TraceCheckpoint &cp : checkpoints_) {
            putU64(buf_, cp.offset);
            putU64(buf_, cp.prevNext);
        }
        putU64(buf_, indexInterval_);
        putU32(buf_,
               static_cast<std::uint32_t>(checkpoints_.size()));
        putU32(buf_, TraceFormat::kIndexMagic);
        flush();
        flags |= TraceFormat::kFlagHasIndex;
    }
    // Patch the flags and the instruction count into the header.
    out_.seekp(6);
    std::vector<std::uint8_t> patch;
    putU16(patch, flags);
    putU64(patch, count_);
    out_.write(reinterpret_cast<const char *>(patch.data()),
               static_cast<std::streamsize>(patch.size()));
    out_.close();
    if (!out_)
        ACIC_FATAL("error finalizing trace file");
    open_ = false;
}

// -------------------------------------------------------- FileTraceSource

FileTraceSource::FileTraceSource(const std::string &path)
    : in_(path, std::ios::binary), path_(path)
{
    if (!in_)
        ACIC_FATAL("cannot open trace file for reading");
    if (readU32(in_) != TraceFormat::kMagic)
        ACIC_FATAL("not an ACIC trace (bad magic)");
    version_ = readU16(in_);
    if (version_ < TraceFormat::kMinVersion ||
        version_ > TraceFormat::kVersion)
        ACIC_FATAL("unsupported trace-format version");
    const std::uint16_t flags = readU16(in_);
    count_ = readU64(in_);
    const std::uint32_t name_len = readU32(in_);
    if (!in_ || name_len > (1u << 20))
        ACIC_FATAL("corrupt trace header");
    name_.resize(name_len);
    in_.read(name_.data(), name_len);
    if (!in_)
        ACIC_FATAL("truncated trace header");
    payloadOff_ = in_.tellg();
    buf_.resize(kBufBytes);
    if (version_ >= 2 && (flags & TraceFormat::kFlagHasIndex))
        loadIndexFooter();
}

void
FileTraceSource::loadIndexFooter()
{
    in_.seekg(-static_cast<std::streamoff>(
                  TraceFormat::kTrailerBytes),
              std::ios::end);
    const std::streamoff trailer_off = in_.tellg();
    const std::uint64_t interval = readU64(in_);
    const std::uint32_t n_checkpoints = readU32(in_);
    const std::uint32_t magic = readU32(in_);
    if (!in_ || magic != TraceFormat::kIndexMagic || interval == 0)
        ACIC_FATAL("corrupt trace index footer");
    const std::streamoff index_off =
        trailer_off -
        static_cast<std::streamoff>(n_checkpoints *
                                    TraceFormat::kCheckpointBytes);
    if (index_off < payloadOff_)
        ACIC_FATAL("corrupt trace index footer");
    in_.seekg(index_off);
    checkpoints_.resize(n_checkpoints);
    for (TraceCheckpoint &cp : checkpoints_) {
        cp.offset = readU64(in_);
        cp.prevNext = readU64(in_);
    }
    if (!in_)
        ACIC_FATAL("truncated trace index footer");
    indexInterval_ = interval;
    in_.seekg(payloadOff_);
}

void
FileTraceSource::seekToInstruction(std::uint64_t index)
{
    if (index > count_)
        index = count_;
    // Nearest preceding checkpoint (checkpoint j sits at instruction
    // j * interval; the payload start is the implicit checkpoint 0).
    std::uint64_t cp_idx =
        indexInterval_ > 0 ? index / indexInterval_ : 0;
    if (cp_idx > checkpoints_.size())
        cp_idx = checkpoints_.size();
    if (cp_idx == 0) {
        reset();
    } else {
        const TraceCheckpoint &cp = checkpoints_[cp_idx - 1];
        in_.clear();
        in_.seekg(payloadOff_ +
                  static_cast<std::streamoff>(cp.offset));
        bufPos_ = bufEnd_ = 0;
        bufBase_ = cp.offset;
        prevNext_ = cp.prevNext;
        emitted_ = cp_idx * indexInterval_;
    }
    TraceInst scratch;
    while (emitted_ < index && next(scratch)) {
    }
}

void
FileTraceSource::reset()
{
    in_.clear();
    in_.seekg(payloadOff_);
    bufPos_ = bufEnd_ = 0;
    bufBase_ = 0;
    prevNext_ = 0;
    emitted_ = 0;
}

bool
FileTraceSource::getByte(std::uint8_t &b)
{
    if (bufPos_ == bufEnd_) {
        bufBase_ += bufEnd_;
        in_.read(reinterpret_cast<char *>(buf_.data()),
                 static_cast<std::streamsize>(buf_.size()));
        bufEnd_ = static_cast<std::size_t>(in_.gcount());
        bufPos_ = 0;
        if (bufEnd_ == 0)
            return false;
    }
    b = buf_[bufPos_++];
    return true;
}

std::uint64_t
FileTraceSource::getVarint()
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    std::uint8_t b = 0;
    do {
        if (shift > 63)
            throw TraceFormatError(
                path_ + ": corrupt trace record (runaway varint "
                        "continuation in record " +
                    std::to_string(emitted_) + " of " +
                    std::to_string(count_) + ")",
                byteOffset());
        if (!getByte(b))
            throw TraceTruncatedError(
                path_ + ": trace truncated mid-record (record " +
                    std::to_string(emitted_) + " of " +
                    std::to_string(count_) + ")",
                byteOffset(), 1, 0);
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    return v;
}

void
FileTraceSource::refillBuffer()
{
    const std::size_t leftover = bufEnd_ - bufPos_;
    if (leftover > 0 && bufPos_ > 0)
        std::memmove(buf_.data(), buf_.data() + bufPos_, leftover);
    bufBase_ += bufPos_;
    bufPos_ = 0;
    bufEnd_ = leftover;
    // A previous short read may have latched eofbit; clear it so the
    // stream accepts another read (position is unaffected). At true
    // EOF the read simply returns 0 bytes again.
    in_.clear();
    in_.read(reinterpret_cast<char *>(buf_.data()) + bufEnd_,
             static_cast<std::streamsize>(buf_.size() - bufEnd_));
    bufEnd_ += static_cast<std::size_t>(in_.gcount());
}

namespace {

/** Worst-case encoded record: tag byte + two 10-byte varints. */
constexpr std::size_t kMaxRecordBytes = 21;

/** Pointer-decode one varint; throws TraceFormatError on a runaway
 *  (corrupt) chain, which also bounds the bytes consumed to
 *  kMaxRecordBytes. @p base_abs is the absolute file offset of
 *  @p buf_start, so the error pinpoints the bad byte. */
inline std::uint64_t
takeVarint(const std::uint8_t *&p, const std::uint8_t *buf_start,
           std::uint64_t base_abs)
{
    std::uint64_t v = 0;
    unsigned shift = 0;
    std::uint8_t b;
    do {
        if (shift > 63)
            throw TraceFormatError(
                "corrupt trace record (runaway varint continuation)",
                base_abs + static_cast<std::uint64_t>(p - buf_start));
        b = *p++;
        v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
        shift += 7;
    } while (b & 0x80);
    return v;
}

} // namespace

unsigned
FileTraceSource::decodeBatch(InstBatch &out)
{
    out.count = 0;
    const std::uint64_t remaining = count_ - emitted_;
    const unsigned target =
        remaining < InstBatch::kCapacity
            ? static_cast<unsigned>(remaining)
            : InstBatch::kCapacity;
    if (target == 0)
        return 0;

    if (bufEnd_ - bufPos_ < target * kMaxRecordBytes)
        refillBuffer();
    if (bufEnd_ - bufPos_ < target * kMaxRecordBytes) {
        // Near EOF the buffer holds everything left of the file,
        // which can be less than a worst-case batch even though all
        // `target` records are present (typical records are ~1 byte).
        // The bounds-checked scalar path handles this tail.
        TraceInst inst;
        while (out.count < target && next(inst))
            out.set(out.count++, inst);
        return out.count;
    }

    // Fast path: the buffer provably holds a worst-case batch, so
    // decode with a raw pointer and no per-byte checks. takeVarint
    // throws on malformed chains, which caps every record at
    // kMaxRecordBytes — the pointer cannot run off the buffer.
    const std::uint8_t *const base = buf_.data();
    const std::uint64_t base_abs =
        static_cast<std::uint64_t>(payloadOff_) + bufBase_;
    const std::uint8_t *p = base + bufPos_;
    Addr prev = prevNext_;
    for (unsigned i = 0; i < target; ++i) {
        const std::uint8_t tag = *p++;
        const auto kind_raw = tag & TraceFormat::kKindMask;
        if (kind_raw > static_cast<std::uint8_t>(BranchKind::Return))
            throw TraceFormatError(
                path_ + ": corrupt trace record (bad branch kind " +
                    std::to_string(kind_raw) + " in record " +
                    std::to_string(emitted_ + i) + " of " +
                    std::to_string(count_) + ")",
                base_abs + static_cast<std::uint64_t>(p - 1 - base));
        out.kind[i] = static_cast<BranchKind>(kind_raw);
        out.taken[i] = (tag & TraceFormat::kTakenBit) != 0;

        Addr pc = prev;
        if (!(tag & TraceFormat::kLinkedBit))
            pc += static_cast<Addr>(
                zigzagDecode(takeVarint(p, base, base_abs)));
        Addr next_pc = pc + TraceInst::kInstBytes;
        if (!(tag & TraceFormat::kSequentialBit))
            next_pc += static_cast<Addr>(
                zigzagDecode(takeVarint(p, base, base_abs)));
        out.pc[i] = pc;
        out.nextPc[i] = next_pc;
        prev = next_pc;
    }
    bufPos_ = static_cast<std::size_t>(p - buf_.data());
    prevNext_ = prev;
    emitted_ += target;
    out.count = target;
    return target;
}

bool
FileTraceSource::next(TraceInst &out)
{
    if (emitted_ >= count_)
        return false;
    std::uint8_t tag = 0;
    if (!getByte(tag))
        throw TraceTruncatedError(
            path_ + ": trace shorter than its header count (file "
                    "ends before record " +
                std::to_string(emitted_) + " of " +
                std::to_string(count_) + ")",
            byteOffset(), 1, 0);
    const auto kind_raw = tag & TraceFormat::kKindMask;
    if (kind_raw > static_cast<std::uint8_t>(BranchKind::Return))
        throw TraceFormatError(
            path_ + ": corrupt trace record (bad branch kind " +
                std::to_string(kind_raw) + " in record " +
                std::to_string(emitted_) + " of " +
                std::to_string(count_) + ")",
            byteOffset() - 1);
    out.kind = static_cast<BranchKind>(kind_raw);
    out.taken = (tag & TraceFormat::kTakenBit) != 0;

    if (tag & TraceFormat::kLinkedBit)
        out.pc = prevNext_;
    else
        out.pc = prevNext_ + static_cast<Addr>(
                                 zigzagDecode(getVarint()));

    const Addr seq_next = out.pc + TraceInst::kInstBytes;
    if (tag & TraceFormat::kSequentialBit)
        out.nextPc = seq_next;
    else
        out.nextPc = seq_next + static_cast<Addr>(
                                    zigzagDecode(getVarint()));

    prevNext_ = out.nextPc;
    ++emitted_;
    return true;
}

// ------------------------------------------------------------- free funcs

bool
readTraceHeader(const std::string &path, TraceFileInfo &out)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    if (readU32(in) != TraceFormat::kMagic || !in)
        return false;
    TraceFileInfo info;
    info.version = readU16(in);
    // Reject unsupported versions here so directory scans skip the
    // file up front instead of fataling when it is later opened.
    if (info.version < TraceFormat::kMinVersion ||
        info.version > TraceFormat::kVersion)
        return false;
    readU16(in); // flags
    info.instructions = readU64(in);
    const std::uint32_t name_len = readU32(in);
    if (!in || name_len > (1u << 20))
        return false;
    info.name.resize(name_len);
    in.read(info.name.data(), name_len);
    if (!in)
        return false;
    out = info;
    return true;
}

std::uint64_t
recordTrace(TraceSource &src, const std::string &path)
{
    TraceWriter writer(path, src.name());
    src.reset();
    TraceInst inst;
    while (src.next(inst))
        writer.append(inst);
    writer.close();
    src.reset();
    return writer.written();
}

TraceImage
materializeTrace(TraceSource &src)
{
    auto image = std::make_shared<std::vector<TraceInst>>();
    image->reserve(src.length());
    src.reset();
    InstBatch batch;
    while (src.decodeBatch(batch) > 0)
        for (unsigned i = 0; i < batch.count; ++i)
            image->push_back(batch.get(i));
    src.reset();
    return image;
}

} // namespace acic
