/**
 * @file
 * Instruction-trace abstraction. The paper drives its simulator with
 * QEMU full-system traces; this repo drives it with deterministic
 * synthetic traces exposing the same record content: instruction PC,
 * control-flow kind, direction, and the PC that follows.
 */

#ifndef ACIC_TRACE_TRACE_HH
#define ACIC_TRACE_TRACE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace acic {

/** Control-flow class of a traced instruction. */
enum class BranchKind : std::uint8_t
{
    None,     ///< ordinary sequential instruction
    Cond,     ///< conditional direct branch
    Direct,   ///< unconditional direct jump
    Call,     ///< direct call
    Return,   ///< function return
};

/** One dynamic instruction. All instructions are 4 bytes. */
struct TraceInst
{
    /** Byte address of the instruction. */
    Addr pc = 0;
    /** PC of the *next* dynamic instruction (fallthrough or target). */
    Addr nextPc = 0;
    /** Control-flow kind. */
    BranchKind kind = BranchKind::None;
    /** Whether a Cond branch was taken (true for other taken kinds). */
    bool taken = false;

    /** Bytes of one instruction; the generator emits fixed 4 B. */
    static constexpr unsigned kInstBytes = 4;

    /** True for any control-flow instruction. */
    bool isBranch() const { return kind != BranchKind::None; }
    /** True when the next PC is not pc + 4. */
    bool redirects() const { return nextPc != pc + kInstBytes; }
};

/**
 * A re-iterable stream of dynamic instructions.
 *
 * Oracle passes (Belady OPT, reuse profiling) replay the stream, so
 * implementations must return the identical sequence after reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Rewind to the first instruction. */
    virtual void reset() = 0;

    /**
     * Produce the next instruction.
     * @return false when the trace is exhausted.
     */
    virtual bool next(TraceInst &out) = 0;

    /** Total dynamic instructions the source will emit. */
    virtual std::uint64_t length() const = 0;

    /** Workload name, e.g. "web_search". */
    virtual const std::string &name() const = 0;

    /**
     * Position the stream so the following next() emits instruction
     * @p index (0-based within this source's region). Checkpoint
     * resume uses this to re-align a fresh cursor with a serialized
     * BundleWalker. The default implementation replays from reset()
     * — always correct, O(index); random-access sources (in-memory
     * images, indexed v2 trace files) override with O(1)/O(64K)
     * seeks.
     * @return true when the stream now holds exactly
     *         length() - index remaining instructions; false when
     *         @p index lies past the end (index == length() is a
     *         valid position: the exhausted stream).
     */
    virtual bool
    seekTo(std::uint64_t index)
    {
        reset();
        TraceInst scratch;
        for (std::uint64_t i = 0; i < index; ++i)
            if (!next(scratch))
                return false;
        return true;
    }
};

} // namespace acic

#endif // ACIC_TRACE_TRACE_HH
