/**
 * @file
 * Instruction-trace abstraction. The paper drives its simulator with
 * QEMU full-system traces; this repo drives it with deterministic
 * synthetic traces exposing the same record content: instruction PC,
 * control-flow kind, direction, and the PC that follows.
 */

#ifndef ACIC_TRACE_TRACE_HH
#define ACIC_TRACE_TRACE_HH

#include <cstdint>
#include <string>

#include "common/types.hh"

namespace acic {

/** Control-flow class of a traced instruction. */
enum class BranchKind : std::uint8_t
{
    None,     ///< ordinary sequential instruction
    Cond,     ///< conditional direct branch
    Direct,   ///< unconditional direct jump
    Call,     ///< direct call
    Return,   ///< function return
};

/** One dynamic instruction. All instructions are 4 bytes. */
struct TraceInst
{
    /** Byte address of the instruction. */
    Addr pc = 0;
    /** PC of the *next* dynamic instruction (fallthrough or target). */
    Addr nextPc = 0;
    /** Control-flow kind. */
    BranchKind kind = BranchKind::None;
    /** Whether a Cond branch was taken (true for other taken kinds). */
    bool taken = false;

    /** Bytes of one instruction; the generator emits fixed 4 B. */
    static constexpr unsigned kInstBytes = 4;

    /** True for any control-flow instruction. */
    bool isBranch() const { return kind != BranchKind::None; }
    /** True when the next PC is not pc + 4. */
    bool redirects() const { return nextPc != pc + kInstBytes; }
};

/**
 * A fixed-capacity struct-of-arrays instruction buffer, filled 64
 * records at a time by TraceSource::decodeBatch(). Batching turns
 * the per-instruction virtual next() call — one of the hottest
 * edges in the simulator profile — into one virtual call per 64
 * instructions, and gives file decoders a run of records they can
 * decode from a raw buffer pointer without per-byte checks.
 */
struct InstBatch
{
    static constexpr unsigned kCapacity = 64;

    Addr pc[kCapacity];
    Addr nextPc[kCapacity];
    BranchKind kind[kCapacity];
    bool taken[kCapacity];
    /** Valid records (prefix of the arrays). */
    unsigned count = 0;

    void set(unsigned i, const TraceInst &inst)
    {
        pc[i] = inst.pc;
        nextPc[i] = inst.nextPc;
        kind[i] = inst.kind;
        taken[i] = inst.taken;
    }

    TraceInst get(unsigned i) const
    {
        TraceInst inst;
        inst.pc = pc[i];
        inst.nextPc = nextPc[i];
        inst.kind = kind[i];
        inst.taken = taken[i];
        return inst;
    }
};

/**
 * A re-iterable stream of dynamic instructions.
 *
 * Oracle passes (Belady OPT, reuse profiling) replay the stream, so
 * implementations must return the identical sequence after reset().
 */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;

    /** Rewind to the first instruction. */
    virtual void reset() = 0;

    /**
     * Produce the next instruction.
     * @return false when the trace is exhausted.
     */
    virtual bool next(TraceInst &out) = 0;

    /**
     * Fill @p out with the next up-to-64 instructions; the batched
     * equivalent of next(), consuming the identical stream (a
     * decodeBatch after N next() calls continues at instruction N,
     * and vice versa). The base implementation loops next(), so every
     * source batches correctly by default; FileTraceSource and
     * MemoryTraceSource override with real block decodes.
     * @return out.count (0 when the trace is exhausted).
     */
    virtual unsigned
    decodeBatch(InstBatch &out)
    {
        out.count = 0;
        TraceInst inst;
        while (out.count < InstBatch::kCapacity && next(inst))
            out.set(out.count++, inst);
        return out.count;
    }

    /**
     * Zero-copy alternative to decodeBatch() for sources backed by
     * materialized storage: return a pointer to the next contiguous
     * run of up to @p max instructions, set @p n to its length, and
     * consume those instructions from the stream (a later next() or
     * decodeBatch() continues after the run). Sources without
     * contiguous storage keep the default, which returns nullptr
     * with n = 0 and consumes nothing — callers then fall back to
     * decodeBatch(). The pointer stays valid until the source is
     * destroyed or mutated.
     */
    virtual const TraceInst *
    acquireRun(std::uint64_t max, std::uint64_t &n)
    {
        (void)max;
        n = 0;
        return nullptr;
    }

    /** Total dynamic instructions the source will emit. */
    virtual std::uint64_t length() const = 0;

    /** Workload name, e.g. "web_search". */
    virtual const std::string &name() const = 0;

    /**
     * Position the stream so the following next() emits instruction
     * @p index (0-based within this source's region). Checkpoint
     * resume uses this to re-align a fresh cursor with a serialized
     * BundleWalker. The default implementation replays from reset()
     * — always correct, O(index); random-access sources (in-memory
     * images, indexed v2 trace files) override with O(1)/O(64K)
     * seeks.
     * @return true when the stream now holds exactly
     *         length() - index remaining instructions; false when
     *         @p index lies past the end (index == length() is a
     *         valid position: the exhausted stream).
     */
    virtual bool
    seekTo(std::uint64_t index)
    {
        reset();
        TraceInst scratch;
        for (std::uint64_t i = 0; i < index; ++i)
            if (!next(scratch))
                return false;
        return true;
    }
};

} // namespace acic

#endif // ACIC_TRACE_TRACE_HH
