#include "trace/stats.hh"

#include <cstdio>
#include <unordered_set>

#include "sim/oracle.hh"

namespace acic {

TraceStats
computeTraceStats(TraceSource &trace)
{
    TraceStats stats;
    stats.name = trace.name();

    trace.reset();
    std::unordered_set<BlockAddr> blocks;
    TraceInst inst;
    while (trace.next(inst)) {
        ++stats.instructions;
        ++stats.kinds[static_cast<std::size_t>(inst.kind)];
        stats.taken += inst.taken ? 1 : 0;
        stats.redirects += inst.redirects() ? 1 : 0;
        blocks.insert(blockOf(inst.pc));
    }
    stats.uniqueBlocks = blocks.size();
    trace.reset();

    // Reuse distances over the demand sequence the simulator sees.
    const DemandOracle oracle = DemandOracle::build(trace);
    ReuseProfiler profiler(oracle.length());
    for (std::uint64_t i = 0; i < oracle.length(); ++i)
        profiler.feed(oracle.blockAt(i));
    stats.demandAccesses = profiler.distribution().total();
    for (std::size_t b = 0; b < ReuseProfiler::kBuckets; ++b)
        stats.reuse[b] = profiler.distribution().count(b);
    return stats;
}

void
printTraceStats(std::ostream &out, const TraceStats &stats)
{
    char line[160];
    const auto row = [&](const char *label, const std::string &val) {
        std::snprintf(line, sizeof(line), "%-22s %s\n", label,
                      val.c_str());
        out << line;
    };
    const auto pct = [&](std::uint64_t n, std::uint64_t total) {
        std::snprintf(line, sizeof(line), "%.2f%%",
                      total ? 100.0 * static_cast<double>(n) /
                                  static_cast<double>(total)
                            : 0.0);
        return std::string(line);
    };

    row("name", stats.name);
    row("instructions", std::to_string(stats.instructions));
    std::snprintf(line, sizeof(line), "%llu (density %.4f/inst)",
                  static_cast<unsigned long long>(stats.branches()),
                  stats.branchDensity());
    row("branches", line);
    static const char *const kKindNames[] = {nullptr, "  cond",
                                             "  direct", "  call",
                                             "  return"};
    for (std::size_t k = 1; k < stats.kinds.size(); ++k)
        row(kKindNames[k],
            std::to_string(stats.kinds[k]) + " (" +
                pct(stats.kinds[k], stats.instructions) + ")");
    row("taken", std::to_string(stats.taken) + " (" +
                     pct(stats.taken, stats.instructions) + ")");
    row("redirects", std::to_string(stats.redirects) + " (" +
                         pct(stats.redirects, stats.instructions) +
                         ")");
    std::snprintf(line, sizeof(line), "%llu blocks (%.1f KB)",
                  static_cast<unsigned long long>(
                      stats.uniqueBlocks),
                  stats.footprintKb());
    row("code footprint", line);
    row("demand accesses", std::to_string(stats.demandAccesses));
    out << "block reuse distance (% of demand accesses)\n";
    static const char *const kBucketNames[] = {
        "  0",          "  [1,16]",       "  (16,512]",
        "  (512,1024]", "  (1024,10000]", "  >10000"};
    for (std::size_t b = 0; b < ReuseProfiler::kBuckets; ++b) {
        std::snprintf(line, sizeof(line), "%-22s %.2f\n",
                      kBucketNames[b], stats.reusePercent(b));
        out << line;
    }
}

} // namespace acic
