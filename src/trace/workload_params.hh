/**
 * @file
 * Parameter block of the synthetic program model, plus the calibrated
 * presets standing in for the paper's datacenter (Table III) and SPEC
 * (Fig. 18/19) workloads.
 */

#ifndef ACIC_TRACE_WORKLOAD_PARAMS_HH
#define ACIC_TRACE_WORKLOAD_PARAMS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace acic {

/**
 * Knobs of the synthetic program model.
 *
 * The model is a phased request-processing program: each *phase* has a
 * working set of functions (the per-request code path); a hot shared
 * *library* is called from every phase. Phases cycle, re-touching their
 * code after long gaps — the burst-then-gap pattern the paper observes.
 * The per-phase working-set size in 64 B blocks, relative to the 512
 * blocks of a 32 KB i-cache, is the main MPKI lever.
 */
struct WorkloadParams
{
    std::string name;

    /** Dynamic trace length in instructions. */
    std::uint64_t instructions = 5'000'000;

    /** Generator seed; layout and behaviour derive from it. */
    std::uint64_t seed = 1;

    /** Number of hot shared library functions. */
    std::uint32_t libFunctions = 16;

    /** Number of execution phases (distinct request types). */
    std::uint32_t numPhases = 8;

    /** Functions in each phase's working set. */
    std::uint32_t phaseFunctions = 64;

    /**
     * Fraction of a phase's functions shared with the next phase
     * (cyclically); models common middleware between request types.
     */
    double phaseOverlap = 0.2;

    /** Mean instructions executed before switching phase. */
    std::uint64_t phaseMeanLen = 60'000;

    /** Function body size bounds, in instructions. */
    std::uint32_t minFnSize = 48;
    std::uint32_t maxFnSize = 288;

    /** Zipf skew of function popularity inside a phase / the library. */
    double zipfSkew = 0.6;

    /**
     * Probability that a function pick follows the phase's sweep
     * cursor (cyclic order) instead of an independent Zipf draw.
     * Sweeping concentrates within-phase re-reference at ~working-set
     * distance, the burst-then-gap structure of Fig. 1; iid draws
     * would smear it exponentially across shorter distances.
     */
    double sweepBias = 0.85;

    /**
     * Fraction of each phase's functions forming its *hot kernel*
     * (dispatchers, allocators, serializers) re-invoked within a
     * request at cache-friendly distances. The remaining peripheral
     * functions are swept once per request at ~working-set distance.
     * This block-role stability is what per-address predictors (ACIC
     * HRT, GHRP, SHiP) learn from.
     */
    double hotFrac = 0.25;

    /** Probability a non-library call targets the hot kernel. */
    double hotCallFrac = 0.45;

    /** Probability that an instruction slot is a branch site. */
    double branchDensity = 0.16;

    /** Branch-site kind mix (normalized internally). */
    double condFrac = 0.55;
    double loopFrac = 0.25;
    double callFrac = 0.20;

    /** Probability a call targets the shared library. */
    double libCallFrac = 0.25;

    /** Probability a conditional site is an early-exit to the return. */
    double earlyExitFrac = 0.15;

    /** Loop trip count is ~Geometric with this mean, capped below. */
    double loopTripMean = 6.0;
    std::uint32_t maxLoopTrip = 48;

    /** Call-stack depth cap; calls at the cap fall through. */
    std::uint32_t maxCallDepth = 12;

    /** Paper-reported baseline L1i MPKI (Table III), for reference. */
    double paperMpki = 0.0;
};

/** Named preset collections mirroring the paper's workload tables. */
struct Workloads
{
    /** The 10 datacenter applications of Table III. */
    static std::vector<WorkloadParams> datacenter();

    /** The 5 SPEC2017-int-like applications of Fig. 18/19. */
    static std::vector<WorkloadParams> spec();

    /** Look up one preset by name from either collection. */
    static WorkloadParams byName(const std::string &name);
};

} // namespace acic

#endif // ACIC_TRACE_WORKLOAD_PARAMS_HH
