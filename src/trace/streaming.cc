#include "trace/streaming.hh"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>

#include "common/logging.hh"
#include "trace/io.hh"

namespace acic {

namespace {

/** Ring/read waits poll the stop flag at this cadence: condition
 *  variables and read(2) cannot be interrupted portably, so both
 *  sides wake briefly to notice a shutdown request. */
constexpr auto kPollTick = std::chrono::milliseconds(50);
constexpr int kPollTickMs = 100;

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
loadU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

// ------------------------------------------------------ StreamTraceWriter

StreamTraceWriter::StreamTraceWriter(std::ostream &out,
                                     const std::string &name,
                                     std::uint32_t frame_records)
    : out_(out),
      frameRecords_(frame_records == 0 ? 1 : frame_records)
{
    std::vector<std::uint8_t> header;
    putU32(header, StreamFormat::kMagic);
    putU16(header, StreamFormat::kVersion);
    putU16(header, 0); // flags
    putU32(header, static_cast<std::uint32_t>(name.size()));
    for (const char c : name)
        header.push_back(static_cast<std::uint8_t>(c));
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    payload_.reserve(frameRecords_ * 2);
}

StreamTraceWriter::~StreamTraceWriter()
{
    if (!finished_ && out_.good()) {
        try {
            finish();
        } catch (...) {
            // Swallow: a destructor on an unwind path must not
            // throw; the caller's stream-state check reports it.
        }
    }
}

void
StreamTraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        payload_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    payload_.push_back(static_cast<std::uint8_t>(v));
}

void
StreamTraceWriter::append(const TraceInst &inst)
{
    ACIC_ASSERT(!finished_,
                "append() on a finished StreamTraceWriter");
    const bool linked = inst.pc == prevNext_;
    const Addr seq_next = inst.pc + TraceInst::kInstBytes;
    const bool sequential = inst.nextPc == seq_next;

    std::uint8_t tag = static_cast<std::uint8_t>(inst.kind) &
                       TraceFormat::kKindMask;
    if (inst.taken)
        tag |= TraceFormat::kTakenBit;
    if (linked)
        tag |= TraceFormat::kLinkedBit;
    if (sequential)
        tag |= TraceFormat::kSequentialBit;
    payload_.push_back(tag);

    if (!linked)
        putVarint(zigzagEncode(
            static_cast<std::int64_t>(inst.pc - prevNext_)));
    if (!sequential)
        putVarint(zigzagEncode(
            static_cast<std::int64_t>(inst.nextPc - seq_next)));

    prevNext_ = inst.nextPc;
    ++count_;
    if (++inFrame_ >= frameRecords_)
        flushFrame();
}

void
StreamTraceWriter::flushFrame()
{
    if (inFrame_ == 0)
        return;
    std::vector<std::uint8_t> header;
    putU32(header, StreamFormat::kFrameMagic);
    putU32(header, static_cast<std::uint32_t>(payload_.size()));
    putU32(header, inFrame_);
    putU64(header, frameSeed_);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.write(reinterpret_cast<const char *>(payload_.data()),
               static_cast<std::streamsize>(payload_.size()));
    payload_.clear();
    inFrame_ = 0;
    frameSeed_ = prevNext_;
}

void
StreamTraceWriter::finish()
{
    if (finished_)
        return;
    flushFrame();
    std::vector<std::uint8_t> eos;
    putU32(eos, StreamFormat::kFrameMagic);
    putU32(eos, 0);
    putU32(eos, 0);
    putU64(eos, count_);
    out_.write(reinterpret_cast<const char *>(eos.data()),
               static_cast<std::streamsize>(eos.size()));
    out_.flush();
    finished_ = true;
}

// --------------------------------------------------------------- SpscRing

SpscRing::SpscRing(std::size_t capacity,
                   const std::atomic<bool> *stop)
    : capacity_(capacity == 0 ? 1 : capacity), stop_(stop),
      buf_(capacity_)
{
}

bool
SpscRing::push(const TraceInst *recs, std::size_t n)
{
    std::size_t done = 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (done < n) {
        while (size_ == capacity_ && !consumerDone_ && !stopped())
            notFull_.wait_for(lock, kPollTick);
        if (consumerDone_ || stopped())
            return false;
        const std::size_t room = capacity_ - size_;
        std::size_t chunk = n - done;
        if (chunk > room)
            chunk = room;
        for (std::size_t i = 0; i < chunk; ++i)
            buf_[(head_ + size_ + i) % capacity_] = recs[done + i];
        size_ += chunk;
        done += chunk;
        if (size_ > maxOcc_)
            maxOcc_ = size_;
        notEmpty_.notify_one();
    }
    return true;
}

void
SpscRing::closeProducer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    producerDone_ = true;
    notEmpty_.notify_all();
}

void
SpscRing::fail(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    error_ = std::move(error);
    producerDone_ = true;
    notEmpty_.notify_all();
}

std::size_t
SpscRing::pop(TraceInst *out, std::size_t max)
{
    if (max == 0)
        return 0;
    std::unique_lock<std::mutex> lock(mutex_);
    while (size_ == 0 && !producerDone_ && !stopped())
        notEmpty_.wait_for(lock, kPollTick);
    if (size_ == 0) {
        // Drained: surface the producer's error (if any) exactly at
        // the record position where the stream went bad.
        if (error_) {
            std::exception_ptr e = error_;
            error_ = nullptr;
            std::rethrow_exception(e);
        }
        return 0;
    }
    std::size_t take = size_ < max ? size_ : max;
    for (std::size_t i = 0; i < take; ++i)
        out[i] = buf_[(head_ + i) % capacity_];
    head_ = (head_ + take) % capacity_;
    size_ -= take;
    notFull_.notify_one();
    return take;
}

void
SpscRing::closeConsumer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    consumerDone_ = true;
    notFull_.notify_all();
}

bool
SpscRing::consumerClosed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return consumerDone_;
}

std::size_t
SpscRing::maxOccupancy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxOcc_;
}

// ---------------------------------------------------- StreamingTraceSource

std::unique_ptr<StreamingTraceSource>
StreamingTraceSource::openPath(const std::string &path,
                               std::size_t ring_records,
                               const std::atomic<bool> *stop)
{
    int fd;
    bool own;
    if (path == "-") {
        fd = ::dup(STDIN_FILENO);
        own = true;
        if (fd < 0)
            ACIC_FATAL("cannot dup stdin for stream input");
    } else {
        // A FIFO opened O_RDONLY blocks here until a writer
        // connects — the intended `serve` startup handshake.
        fd = ::open(path.c_str(), O_RDONLY);
        own = true;
        if (fd < 0) {
            const std::string msg =
                "cannot open stream input '" + path +
                "': " + std::strerror(errno);
            ACIC_FATAL(msg.c_str());
        }
    }
    return std::make_unique<StreamingTraceSource>(fd, own,
                                                  ring_records, stop);
}

StreamingTraceSource::StreamingTraceSource(
    int fd, bool own_fd, std::size_t ring_records,
    const std::atomic<bool> *stop)
    : fd_(fd), ownFd_(own_fd), stop_(stop),
      ring_(ring_records, stop)
{
    readHeader();
    reader_ = std::thread([this] { readerMain(); });
}

StreamingTraceSource::~StreamingTraceSource()
{
    // Closing the consumer side unblocks a reader stuck in push();
    // the poll loop in readFully notices it before the next read.
    ring_.closeConsumer();
    if (reader_.joinable())
        reader_.join();
    if (ownFd_ && fd_ >= 0)
        ::close(fd_);
}

StreamingTraceSource::ReadStatus
StreamingTraceSource::readFully(void *dst, std::size_t n,
                                std::size_t &got)
{
    got = 0;
    auto *p = static_cast<std::uint8_t *>(dst);
    while (got < n) {
        if (ring_.consumerClosed() ||
            (stop_ && stop_->load(std::memory_order_relaxed)))
            return ReadStatus::Aborted;
        struct pollfd pfd;
        pfd.fd = fd_;
        pfd.events = POLLIN;
        pfd.revents = 0;
        const int pr = ::poll(&pfd, 1, kPollTickMs);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Eof;
        }
        if (pr == 0)
            continue; // timeout: re-check the abort conditions
        const ssize_t r = ::read(fd_, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return ReadStatus::Eof;
        }
        if (r == 0)
            return ReadStatus::Eof;
        got += static_cast<std::size_t>(r);
    }
    return ReadStatus::Full;
}

void
StreamingTraceSource::readHeader()
{
    std::uint8_t fixed[StreamFormat::kHeaderBytes];
    std::size_t got = 0;
    ReadStatus st = readFully(fixed, sizeof(fixed), got);
    if (st == ReadStatus::Aborted)
        throw TraceTruncatedError(
            "stream aborted before the header arrived", 0,
            sizeof(fixed), got);
    if (st == ReadStatus::Eof)
        throw TraceTruncatedError(
            "stream ended inside the ACIS header", streamOff_ + got,
            sizeof(fixed), got);
    if (loadU32(fixed) != StreamFormat::kMagic)
        throw TraceFormatError(
            "not an ACIS instruction stream (bad magic; pipe the "
            "output of 'acic_run stream' here)",
            streamOff_);
    const std::uint16_t version = loadU16(fixed + 4);
    if (version != StreamFormat::kVersion)
        throw TraceFormatError(
            "unsupported ACIS stream version " +
                std::to_string(version),
            streamOff_ + 4);
    const std::uint32_t name_len = loadU32(fixed + 8);
    if (name_len > (1u << 20))
        throw TraceFormatError("corrupt ACIS header (name length " +
                                   std::to_string(name_len) + ")",
                               streamOff_ + 8);
    streamOff_ += sizeof(fixed);
    name_.resize(name_len);
    if (name_len > 0) {
        st = readFully(name_.data(), name_len, got);
        if (st != ReadStatus::Full)
            throw TraceTruncatedError(
                "stream ended inside the workload name",
                streamOff_ + got, name_len, got);
        streamOff_ += name_len;
    }
    if (name_.empty())
        name_ = "stream";
}

void
StreamingTraceSource::decodeFrame(const std::uint8_t *payload,
                                  std::size_t payload_bytes,
                                  std::uint32_t records, Addr seed,
                                  std::uint64_t frame_off,
                                  std::vector<TraceInst> &out)
{
    out.clear();
    out.reserve(records);
    const std::uint8_t *p = payload;
    const std::uint8_t *const end = payload + payload_bytes;
    Addr prev = seed;
    for (std::uint32_t i = 0; i < records; ++i) {
        if (p >= end)
            throw TraceFormatError(
                "frame payload ends before record " +
                    std::to_string(i) + " of " +
                    std::to_string(records),
                frame_off + static_cast<std::uint64_t>(p - payload));
        const std::uint8_t tag = *p++;
        const auto kind_raw = tag & TraceFormat::kKindMask;
        if (kind_raw > static_cast<std::uint8_t>(BranchKind::Return))
            throw TraceFormatError(
                "corrupt stream record (bad branch kind " +
                    std::to_string(kind_raw) + " in frame record " +
                    std::to_string(i) + ")",
                frame_off +
                    static_cast<std::uint64_t>(p - 1 - payload));

        auto take_varint = [&]() -> std::uint64_t {
            std::uint64_t v = 0;
            unsigned shift = 0;
            std::uint8_t b;
            do {
                if (shift > 63)
                    throw TraceFormatError(
                        "corrupt stream record (runaway varint "
                        "continuation)",
                        frame_off +
                            static_cast<std::uint64_t>(p - payload));
                if (p >= end)
                    throw TraceTruncatedError(
                        "frame payload ends mid-varint in record " +
                            std::to_string(i),
                        frame_off +
                            static_cast<std::uint64_t>(p - payload),
                        1, 0);
                b = *p++;
                v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
                shift += 7;
            } while (b & 0x80);
            return v;
        };

        TraceInst inst;
        inst.kind = static_cast<BranchKind>(kind_raw);
        inst.taken = (tag & TraceFormat::kTakenBit) != 0;
        inst.pc = prev;
        if (!(tag & TraceFormat::kLinkedBit))
            inst.pc += static_cast<Addr>(
                zigzagDecode(take_varint()));
        inst.nextPc = inst.pc + TraceInst::kInstBytes;
        if (!(tag & TraceFormat::kSequentialBit))
            inst.nextPc += static_cast<Addr>(
                zigzagDecode(take_varint()));
        prev = inst.nextPc;
        out.push_back(inst);
    }
    if (p != end)
        throw TraceFormatError(
            "frame payload has " +
                std::to_string(static_cast<std::uint64_t>(end - p)) +
                " trailing byte(s) after its declared records",
            frame_off + static_cast<std::uint64_t>(p - payload));
}

void
StreamingTraceSource::readerMain()
{
    std::vector<std::uint8_t> payload;
    std::vector<TraceInst> scratch;
    try {
        for (;;) {
            std::uint8_t header[StreamFormat::kFrameHeaderBytes];
            std::size_t got = 0;
            const std::uint64_t frame_off = streamOff_;
            ReadStatus st = readFully(header, sizeof(header), got);
            if (st == ReadStatus::Aborted)
                return; // consumer gone / shutdown: not an error
            if (st == ReadStatus::Eof) {
                if (got == 0)
                    throw TraceTruncatedError(
                        "stream ended without its end-of-stream "
                        "frame (the producer likely died)",
                        frame_off, sizeof(header), 0);
                throw TraceTruncatedError(
                    "stream ended inside a frame header (the "
                    "producer likely died)",
                    frame_off + got, sizeof(header), got);
            }
            if (loadU32(header) != StreamFormat::kFrameMagic)
                throw TraceFormatError(
                    "bad frame magic (stream desynchronized or "
                    "corrupt)",
                    frame_off);
            const std::uint32_t payload_bytes = loadU32(header + 4);
            const std::uint32_t records = loadU32(header + 8);
            const std::uint64_t seed_or_total = loadU64(header + 12);
            streamOff_ += sizeof(header);

            if (payload_bytes == 0 && records == 0) {
                // End-of-stream frame: the u64 carries the total.
                if (seed_or_total != decoded_)
                    throw TraceFormatError(
                        "end-of-stream record count mismatch: "
                        "stream announced " +
                            std::to_string(seed_or_total) +
                            ", decoded " + std::to_string(decoded_),
                        frame_off);
                total_.store(decoded_, std::memory_order_release);
                cleanEos_.store(true, std::memory_order_release);
                ring_.closeProducer();
                return;
            }
            if (payload_bytes > StreamFormat::kMaxFramePayload)
                throw TraceFormatError(
                    "frame payload of " +
                        std::to_string(payload_bytes) +
                        " bytes exceeds the format bound",
                    frame_off + 4);
            if (records == 0 || records > StreamFormat::kMaxFrameRecords)
                throw TraceFormatError(
                    "frame record count " + std::to_string(records) +
                        " outside the format bounds",
                    frame_off + 8);

            payload.resize(payload_bytes);
            st = readFully(payload.data(), payload_bytes, got);
            if (st == ReadStatus::Aborted)
                return;
            if (st == ReadStatus::Eof)
                throw TraceTruncatedError(
                    "stream ended inside a frame payload (the "
                    "producer likely died)",
                    streamOff_ + got, payload_bytes, got);
            decodeFrame(payload.data(), payload_bytes, records,
                        seed_or_total, streamOff_, scratch);
            streamOff_ += payload_bytes;
            decoded_ += records;
            if (!ring_.push(scratch.data(), scratch.size()))
                return; // consumer gone / shutdown
        }
    } catch (...) {
        ring_.fail(std::current_exception());
    }
}

void
StreamingTraceSource::reset()
{
    // SimEngine's constructor defensively resets its source before
    // any record is consumed; that is a no-op here. A rewind after
    // consumption is impossible on a live stream.
    if (delivered_ != 0)
        ACIC_FATAL("cannot rewind a live instruction stream "
                   "(single-pass source)");
}

bool
StreamingTraceSource::next(TraceInst &out)
{
    if (carryPos_ == carryLen_) {
        carryLen_ = ring_.pop(carry_, InstBatch::kCapacity);
        carryPos_ = 0;
        if (carryLen_ == 0)
            return false;
    }
    out = carry_[carryPos_++];
    ++delivered_;
    return true;
}

unsigned
StreamingTraceSource::decodeBatch(InstBatch &out)
{
    out.count = 0;
    // Drain the next()-carry first so the two entry points stay
    // interleavable on one stream position.
    while (carryPos_ < carryLen_ &&
           out.count < InstBatch::kCapacity)
        out.set(out.count++, carry_[carryPos_++]);
    if (out.count < InstBatch::kCapacity) {
        TraceInst tmp[InstBatch::kCapacity];
        const std::size_t got =
            ring_.pop(tmp, InstBatch::kCapacity - out.count);
        for (std::size_t i = 0; i < got; ++i)
            out.set(out.count++, tmp[i]);
    }
    delivered_ += out.count;
    return out.count;
}

std::uint64_t
StreamingTraceSource::length() const
{
    const std::uint64_t total =
        total_.load(std::memory_order_acquire);
    return total != 0 ? total : delivered_;
}

// -------------------------------------------------------------- StreamTee

StreamTee::StreamTee(TraceSource &upstream, unsigned cursors,
                     std::size_t chunk_records)
    : upstream_(upstream),
      chunkRecords_(chunk_records == 0 ? 1 : chunk_records)
{
    ACIC_ASSERT(cursors > 0, "StreamTee needs at least one cursor");
    cursors_.reserve(cursors);
    for (unsigned i = 0; i < cursors; ++i)
        cursors_.push_back(std::make_unique<Cursor>(*this, i));
}

StreamTee::~StreamTee() = default;

bool
StreamTee::pullBatch()
{
    if (eof_)
        return false;
    const unsigned got = upstream_.decodeBatch(scratch_);
    if (got == 0) {
        eof_ = true;
        return false;
    }
    if (chunks_.empty() ||
        chunks_.back()->data.size() + got > chunkRecords_) {
        auto chunk = std::make_shared<Chunk>();
        chunk->base = end_;
        chunk->data.reserve(chunkRecords_);
        chunks_.push_back(std::move(chunk));
    }
    Chunk &tail = *chunks_.back();
    for (unsigned i = 0; i < got; ++i)
        tail.data.push_back(scratch_.get(i));
    end_ += got;
    return true;
}

std::uint64_t
StreamTee::ensureBuffered(std::uint64_t target)
{
    while (end_ < target && pullBatch()) {
    }
    return end_;
}

std::shared_ptr<StreamTee::Chunk>
StreamTee::chunkAt(std::uint64_t pos) const
{
    for (const auto &chunk : chunks_) {
        if (pos >= chunk->base &&
            pos < chunk->base + chunk->data.size())
            return chunk;
    }
    return nullptr;
}

void
StreamTee::trim()
{
    std::uint64_t min_pos = ~std::uint64_t(0);
    for (const auto &cursor : cursors_)
        if (cursor->pos_ < min_pos)
            min_pos = cursor->pos_;
    while (!chunks_.empty()) {
        const Chunk &front = *chunks_.front();
        const std::uint64_t front_end =
            front.base + front.data.size();
        if (front_end > min_pos)
            break;
        start_ = front_end;
        chunks_.pop_front();
    }
}

// ------------------------------------------------------ StreamTee::Cursor

StreamTee::Cursor::Cursor(StreamTee &tee, unsigned index)
    : tee_(tee), index_(index)
{
}

void
StreamTee::Cursor::reset()
{
    if (pos_ != 0)
        ACIC_FATAL("cannot rewind a live-stream cursor "
                   "(single-pass source)");
}

bool
StreamTee::Cursor::next(TraceInst &out)
{
    if (pos_ >= tee_.end_) {
        // Pull on demand: a cursor must never report a premature
        // end-of-stream (BundleWalker latches exhaustion).
        if (tee_.ensureBuffered(pos_ + 1) <= pos_)
            return false;
    }
    if (!cur_ || pos_ < cur_->base ||
        pos_ >= cur_->base + cur_->data.size())
        cur_ = tee_.chunkAt(pos_);
    out = cur_->data[static_cast<std::size_t>(pos_ - cur_->base)];
    ++pos_;
    return true;
}

unsigned
StreamTee::Cursor::decodeBatch(InstBatch &out)
{
    out.count = 0;
    if (pos_ >= tee_.end_ &&
        tee_.ensureBuffered(pos_ + InstBatch::kCapacity) <= pos_)
        return 0;
    TraceInst inst;
    while (out.count < InstBatch::kCapacity && next(inst))
        out.set(out.count++, inst);
    return out.count;
}

const TraceInst *
StreamTee::Cursor::acquireRun(std::uint64_t max, std::uint64_t &n)
{
    n = 0;
    if (max == 0)
        return nullptr;
    if (pos_ >= tee_.end_ &&
        tee_.ensureBuffered(pos_ + InstBatch::kCapacity) <= pos_)
        return nullptr;
    std::shared_ptr<Chunk> chunk = tee_.chunkAt(pos_);
    if (!chunk)
        return nullptr;
    const std::size_t off =
        static_cast<std::size_t>(pos_ - chunk->base);
    std::uint64_t run = chunk->data.size() - off;
    if (run > max)
        run = max;
    // Pin the chunk so trim() cannot free storage the walker still
    // reads from (the run pointer outlives this call).
    pin_ = chunk;
    pos_ += run;
    n = run;
    return chunk->data.data() + off;
}

std::uint64_t
StreamTee::Cursor::length() const
{
    const std::uint64_t up = tee_.upstream_.length();
    return up > tee_.end_ ? up : tee_.end_;
}

const std::string &
StreamTee::Cursor::name() const
{
    return tee_.upstream_.name();
}

} // namespace acic
