#include "trace/streaming.hh"

#include <fcntl.h>
#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.hh"
#include "trace/io.hh"

namespace acic {

namespace {

void
putU16(std::vector<std::uint8_t> &buf, std::uint16_t v)
{
    buf.push_back(static_cast<std::uint8_t>(v));
    buf.push_back(static_cast<std::uint8_t>(v >> 8));
}

void
putU32(std::vector<std::uint8_t> &buf, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void
putU64(std::vector<std::uint8_t> &buf, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i)
        buf.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

std::uint16_t
loadU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
loadU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

std::uint64_t
loadU64(const std::uint8_t *p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i)
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

// ------------------------------------------------------ StreamTraceWriter

StreamTraceWriter::StreamTraceWriter(std::ostream &out,
                                     const std::string &name,
                                     std::uint32_t frame_records)
    : out_(out),
      frameRecords_(frame_records == 0 ? 1 : frame_records)
{
    std::vector<std::uint8_t> header;
    putU32(header, StreamFormat::kMagic);
    putU16(header, StreamFormat::kVersion);
    putU16(header, 0); // flags
    putU32(header, static_cast<std::uint32_t>(name.size()));
    for (const char c : name)
        header.push_back(static_cast<std::uint8_t>(c));
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    payload_.reserve(frameRecords_ * 2);
}

StreamTraceWriter::~StreamTraceWriter()
{
    if (!finished_ && out_.good()) {
        try {
            finish();
        } catch (...) {
            // Swallow: a destructor on an unwind path must not
            // throw; the caller's stream-state check reports it.
        }
    }
}

void
StreamTraceWriter::putVarint(std::uint64_t v)
{
    while (v >= 0x80) {
        payload_.push_back(static_cast<std::uint8_t>(v) | 0x80);
        v >>= 7;
    }
    payload_.push_back(static_cast<std::uint8_t>(v));
}

void
StreamTraceWriter::append(const TraceInst &inst)
{
    ACIC_ASSERT(!finished_,
                "append() on a finished StreamTraceWriter");
    const bool linked = inst.pc == prevNext_;
    const Addr seq_next = inst.pc + TraceInst::kInstBytes;
    const bool sequential = inst.nextPc == seq_next;

    std::uint8_t tag = static_cast<std::uint8_t>(inst.kind) &
                       TraceFormat::kKindMask;
    if (inst.taken)
        tag |= TraceFormat::kTakenBit;
    if (linked)
        tag |= TraceFormat::kLinkedBit;
    if (sequential)
        tag |= TraceFormat::kSequentialBit;
    payload_.push_back(tag);

    if (!linked)
        putVarint(zigzagEncode(
            static_cast<std::int64_t>(inst.pc - prevNext_)));
    if (!sequential)
        putVarint(zigzagEncode(
            static_cast<std::int64_t>(inst.nextPc - seq_next)));

    prevNext_ = inst.nextPc;
    ++count_;
    if (++inFrame_ >= frameRecords_)
        flushFrame();
}

void
StreamTraceWriter::flushFrame()
{
    if (inFrame_ == 0)
        return;
    std::vector<std::uint8_t> header;
    putU32(header, StreamFormat::kFrameMagic);
    putU32(header, static_cast<std::uint32_t>(payload_.size()));
    putU32(header, inFrame_);
    putU64(header, frameSeed_);
    out_.write(reinterpret_cast<const char *>(header.data()),
               static_cast<std::streamsize>(header.size()));
    out_.write(reinterpret_cast<const char *>(payload_.data()),
               static_cast<std::streamsize>(payload_.size()));
    payload_.clear();
    inFrame_ = 0;
    frameSeed_ = prevNext_;
}

void
StreamTraceWriter::finish()
{
    if (finished_)
        return;
    flushFrame();
    std::vector<std::uint8_t> eos;
    putU32(eos, StreamFormat::kFrameMagic);
    putU32(eos, 0);
    putU32(eos, 0);
    putU64(eos, count_);
    out_.write(reinterpret_cast<const char *>(eos.data()),
               static_cast<std::streamsize>(eos.size()));
    out_.flush();
    finished_ = true;
}

// ------------------------------------------------------------ WakeChannel

WakeChannel::WakeChannel()
{
    if (::pipe(fds_) != 0)
        ACIC_FATAL("cannot create wake pipe");
    for (const int fd : fds_) {
        ::fcntl(fd, F_SETFL,
                ::fcntl(fd, F_GETFL, 0) | O_NONBLOCK);
        ::fcntl(fd, F_SETFD,
                ::fcntl(fd, F_GETFD, 0) | FD_CLOEXEC);
    }
}

WakeChannel::~WakeChannel()
{
    for (const int fd : fds_)
        if (fd >= 0)
            ::close(fd);
}

void
WakeChannel::wake() noexcept
{
    const std::uint8_t byte = 1;
    // Nonblocking: a full pipe means a wakeup is already pending,
    // which is all a level-triggered channel needs. write(2) is
    // async-signal-safe; errno is restored for handler contexts.
    const int saved_errno = errno;
    [[maybe_unused]] const ssize_t r =
        ::write(fds_[1], &byte, 1);
    errno = saved_errno;
}

// ---------------------------------------------------------- SpscChunkRing

SpscChunkRing::SpscChunkRing(std::size_t capacity_records,
                             const std::atomic<bool> *stop)
    : capacity_(capacity_records == 0 ? 1 : capacity_records),
      stop_(stop)
{
}

bool
SpscChunkRing::push(std::shared_ptr<const StreamChunk> chunk)
{
    if (!chunk || chunk->data.empty())
        return true;
    const std::size_t n = chunk->data.size();
    std::unique_lock<std::mutex> lock(mutex_);
    // A chunk larger than the whole capacity is admitted only into
    // an empty ring so an oversized frame cannot deadlock progress;
    // occupancy then transiently exceeds capacity_, which the
    // high-water mark reports honestly.
    notFull_.wait(lock, [&] {
        return consumerDone_ || stopped() || records_ == 0 ||
               records_ + n <= capacity_;
    });
    if (consumerDone_ || stopped())
        return false;
    records_ += n;
    if (records_ > maxOcc_)
        maxOcc_ = records_;
    chunks_.push_back(std::move(chunk));
    notEmpty_.notify_one();
    return true;
}

void
SpscChunkRing::closeProducer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    producerDone_ = true;
    notEmpty_.notify_all();
}

void
SpscChunkRing::fail(std::exception_ptr error)
{
    std::lock_guard<std::mutex> lock(mutex_);
    error_ = std::move(error);
    producerDone_ = true;
    notEmpty_.notify_all();
}

std::shared_ptr<const StreamChunk>
SpscChunkRing::pop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    notEmpty_.wait(lock, [&] {
        return !chunks_.empty() || producerDone_ || stopped();
    });
    if (!chunks_.empty()) {
        std::shared_ptr<const StreamChunk> chunk =
            std::move(chunks_.front());
        chunks_.pop_front();
        records_ -= chunk->data.size();
        notFull_.notify_one();
        return chunk;
    }
    // Drained: surface the producer's error (if any) exactly at the
    // record position where the stream went bad.
    if (error_) {
        std::exception_ptr e = error_;
        error_ = nullptr;
        std::rethrow_exception(e);
    }
    return nullptr;
}

void
SpscChunkRing::closeConsumer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    consumerDone_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
}

void
SpscChunkRing::notifyStop()
{
    std::lock_guard<std::mutex> lock(mutex_);
    stopSeen_ = true;
    notFull_.notify_all();
    notEmpty_.notify_all();
}

bool
SpscChunkRing::consumerClosed() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return consumerDone_;
}

std::size_t
SpscChunkRing::occupancy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return records_;
}

std::size_t
SpscChunkRing::maxOccupancy() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return maxOcc_;
}

// ---------------------------------------------------- StreamingTraceSource

std::unique_ptr<StreamingTraceSource>
StreamingTraceSource::openPath(const std::string &path,
                               std::size_t ring_records,
                               const StopSignal *stop)
{
    int fd;
    bool own;
    if (path == "-") {
        fd = ::dup(STDIN_FILENO);
        own = true;
        if (fd < 0)
            ACIC_FATAL("cannot dup stdin for stream input");
    } else {
        // A FIFO opened O_RDONLY blocks here until a writer
        // connects — the intended `serve` startup handshake.
        fd = ::open(path.c_str(), O_RDONLY);
        own = true;
        if (fd < 0) {
            const std::string msg =
                "cannot open stream input '" + path +
                "': " + std::strerror(errno);
            ACIC_FATAL(msg.c_str());
        }
    }
    return std::make_unique<StreamingTraceSource>(fd, own,
                                                  ring_records, stop);
}

StreamingTraceSource::StreamingTraceSource(int fd, bool own_fd,
                                           std::size_t ring_records,
                                           const StopSignal *stop)
    : fd_(fd), ownFd_(own_fd), stop_(stop),
      ring_(ring_records, stop != nullptr ? &stop->flag : nullptr)
{
    readHeader();
    reader_ = std::thread([this] { readerMain(); });
}

StreamingTraceSource::~StreamingTraceSource()
{
    // Closing the consumer side unblocks a reader stuck in push();
    // the wake pipe unblocks one stuck in poll(2).
    ring_.closeConsumer();
    ownWake_.wake();
    if (reader_.joinable())
        reader_.join();
    if (ownFd_ && fd_ >= 0)
        ::close(fd_);
}

StreamingTraceSource::ReadStatus
StreamingTraceSource::readFully(void *dst, std::size_t n,
                                std::size_t &got)
{
    got = 0;
    auto *p = static_cast<std::uint8_t *>(dst);
    while (got < n) {
        if (ring_.consumerClosed() ||
            (stop_ != nullptr && stop_->requested()))
            return ReadStatus::Aborted;
        struct pollfd pfds[3];
        pfds[0].fd = fd_;
        pfds[0].events = POLLIN;
        pfds[0].revents = 0;
        pfds[1].fd = ownWake_.pollFd();
        pfds[1].events = POLLIN;
        pfds[1].revents = 0;
        nfds_t nfds = 2;
        if (stop_ != nullptr) {
            pfds[2].fd = stop_->wake.pollFd();
            pfds[2].events = POLLIN;
            pfds[2].revents = 0;
            nfds = 3;
        }
        // Infinite timeout: wakeups come from data, EOF/HUP, or a
        // wake pipe — never from a tick, so waiting costs no CPU.
        const int pr = ::poll(pfds, nfds, -1);
        if (pr < 0) {
            if (errno == EINTR)
                continue;
            return ReadStatus::Eof;
        }
        if ((pfds[0].revents &
             (POLLIN | POLLHUP | POLLERR)) == 0)
            continue; // woken to re-check the abort conditions
        const ssize_t r = ::read(fd_, p + got, n - got);
        if (r < 0) {
            if (errno == EINTR || errno == EAGAIN)
                continue;
            return ReadStatus::Eof;
        }
        if (r == 0)
            return ReadStatus::Eof;
        got += static_cast<std::size_t>(r);
    }
    return ReadStatus::Full;
}

void
StreamingTraceSource::readHeader()
{
    std::uint8_t fixed[StreamFormat::kHeaderBytes];
    std::size_t got = 0;
    ReadStatus st = readFully(fixed, sizeof(fixed), got);
    if (st == ReadStatus::Aborted)
        throw TraceTruncatedError(
            "stream aborted before the header arrived", 0,
            sizeof(fixed), got);
    if (st == ReadStatus::Eof)
        throw TraceTruncatedError(
            "stream ended inside the ACIS header", streamOff_ + got,
            sizeof(fixed), got);
    if (loadU32(fixed) != StreamFormat::kMagic)
        throw TraceFormatError(
            "not an ACIS instruction stream (bad magic; pipe the "
            "output of 'acic_run stream' here)",
            streamOff_);
    const std::uint16_t version = loadU16(fixed + 4);
    if (version != StreamFormat::kVersion)
        throw TraceFormatError(
            "unsupported ACIS stream version " +
                std::to_string(version),
            streamOff_ + 4);
    const std::uint32_t name_len = loadU32(fixed + 8);
    if (name_len > (1u << 20))
        throw TraceFormatError("corrupt ACIS header (name length " +
                                   std::to_string(name_len) + ")",
                               streamOff_ + 8);
    streamOff_ += sizeof(fixed);
    name_.resize(name_len);
    if (name_len > 0) {
        st = readFully(name_.data(), name_len, got);
        if (st != ReadStatus::Full)
            throw TraceTruncatedError(
                "stream ended inside the workload name",
                streamOff_ + got, name_len, got);
        streamOff_ += name_len;
    }
    if (name_.empty())
        name_ = "stream";
}

void
StreamingTraceSource::decodeFrame(const std::uint8_t *payload,
                                  std::size_t payload_bytes,
                                  std::uint32_t records, Addr seed,
                                  std::uint64_t frame_off,
                                  std::vector<TraceInst> &out)
{
    // A record is one tag byte plus at most two 10-byte varints; a
    // runaway chain throws at shift > 63, so the fast path's pointer
    // can never advance more than this past its entry check.
    constexpr std::size_t kMaxRecordBytes = 21;

    out.clear();
    out.resize(records);
    const std::uint8_t *p = payload;
    const std::uint8_t *const end = payload + payload_bytes;
    Addr prev = seed;
    std::uint32_t i = 0;

    const auto bad_kind = [&](std::uint8_t kind_raw) {
        return TraceFormatError(
            "corrupt stream record (bad branch kind " +
                std::to_string(kind_raw) + " in frame record " +
                std::to_string(i) + ")",
            frame_off + static_cast<std::uint64_t>(p - 1 - payload));
    };

    // Fast path: while a worst-case record provably fits, decode
    // with no per-byte bounds checks — the same trick as
    // FileTraceSource::decodeBatch, and the bulk of every frame
    // (typical records are 1-3 bytes against the 21-byte bound).
    while (i < records &&
           static_cast<std::size_t>(end - p) >= kMaxRecordBytes) {
        const std::uint8_t tag = *p++;
        const auto kind_raw = tag & TraceFormat::kKindMask;
        if (kind_raw > static_cast<std::uint8_t>(BranchKind::Return))
            throw bad_kind(kind_raw);

        auto take_varint = [&]() -> std::uint64_t {
            std::uint64_t v = 0;
            unsigned shift = 0;
            std::uint8_t b;
            do {
                if (shift > 63)
                    throw TraceFormatError(
                        "corrupt stream record (runaway varint "
                        "continuation)",
                        frame_off +
                            static_cast<std::uint64_t>(p - payload));
                b = *p++;
                v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
                shift += 7;
            } while (b & 0x80);
            return v;
        };

        TraceInst &inst = out[i];
        inst.kind = static_cast<BranchKind>(kind_raw);
        inst.taken = (tag & TraceFormat::kTakenBit) != 0;
        Addr pc = prev;
        if (!(tag & TraceFormat::kLinkedBit))
            pc += static_cast<Addr>(zigzagDecode(take_varint()));
        Addr next_pc = pc + TraceInst::kInstBytes;
        if (!(tag & TraceFormat::kSequentialBit))
            next_pc += static_cast<Addr>(
                zigzagDecode(take_varint()));
        inst.pc = pc;
        inst.nextPc = next_pc;
        prev = next_pc;
        ++i;
    }

    // Bounds-checked tail: the last few records of the frame, where
    // a worst-case record no longer provably fits.
    for (; i < records; ++i) {
        if (p >= end)
            throw TraceFormatError(
                "frame payload ends before record " +
                    std::to_string(i) + " of " +
                    std::to_string(records),
                frame_off + static_cast<std::uint64_t>(p - payload));
        const std::uint8_t tag = *p++;
        const auto kind_raw = tag & TraceFormat::kKindMask;
        if (kind_raw > static_cast<std::uint8_t>(BranchKind::Return))
            throw bad_kind(kind_raw);

        auto take_varint = [&]() -> std::uint64_t {
            std::uint64_t v = 0;
            unsigned shift = 0;
            std::uint8_t b;
            do {
                if (shift > 63)
                    throw TraceFormatError(
                        "corrupt stream record (runaway varint "
                        "continuation)",
                        frame_off +
                            static_cast<std::uint64_t>(p - payload));
                if (p >= end)
                    throw TraceTruncatedError(
                        "frame payload ends mid-varint in record " +
                            std::to_string(i),
                        frame_off +
                            static_cast<std::uint64_t>(p - payload),
                        1, 0);
                b = *p++;
                v |= static_cast<std::uint64_t>(b & 0x7f) << shift;
                shift += 7;
            } while (b & 0x80);
            return v;
        };

        TraceInst &inst = out[i];
        inst.kind = static_cast<BranchKind>(kind_raw);
        inst.taken = (tag & TraceFormat::kTakenBit) != 0;
        inst.pc = prev;
        if (!(tag & TraceFormat::kLinkedBit))
            inst.pc += static_cast<Addr>(
                zigzagDecode(take_varint()));
        inst.nextPc = inst.pc + TraceInst::kInstBytes;
        if (!(tag & TraceFormat::kSequentialBit))
            inst.nextPc += static_cast<Addr>(
                zigzagDecode(take_varint()));
        prev = inst.nextPc;
    }
    if (p != end)
        throw TraceFormatError(
            "frame payload has " +
                std::to_string(static_cast<std::uint64_t>(end - p)) +
                " trailing byte(s) after its declared records",
            frame_off + static_cast<std::uint64_t>(p - payload));
}

void
StreamingTraceSource::readerMain()
{
    // Whatever path the reader exits by, wake the consumer so a
    // pop() blocked on an empty ring re-checks its predicates (a
    // signal handler cannot notify the ring's CVs itself; this
    // thread relays the wakeup).
    struct RingWaker
    {
        SpscChunkRing &ring;
        ~RingWaker() { ring.notifyStop(); }
    } waker{ring_};

    std::vector<std::uint8_t> payload;
    try {
        for (;;) {
            std::uint8_t header[StreamFormat::kFrameHeaderBytes];
            std::size_t got = 0;
            const std::uint64_t frame_off = streamOff_;
            ReadStatus st = readFully(header, sizeof(header), got);
            if (st == ReadStatus::Aborted)
                return; // consumer gone / shutdown: not an error
            if (st == ReadStatus::Eof) {
                if (got == 0)
                    throw TraceTruncatedError(
                        "stream ended without its end-of-stream "
                        "frame (the producer likely died)",
                        frame_off, sizeof(header), 0);
                throw TraceTruncatedError(
                    "stream ended inside a frame header (the "
                    "producer likely died)",
                    frame_off + got, sizeof(header), got);
            }
            if (loadU32(header) != StreamFormat::kFrameMagic)
                throw TraceFormatError(
                    "bad frame magic (stream desynchronized or "
                    "corrupt)",
                    frame_off);
            const std::uint32_t payload_bytes = loadU32(header + 4);
            const std::uint32_t records = loadU32(header + 8);
            const std::uint64_t seed_or_total = loadU64(header + 12);
            streamOff_ += sizeof(header);

            if (payload_bytes == 0 && records == 0) {
                // End-of-stream frame: the u64 carries the total.
                if (seed_or_total != decoded_)
                    throw TraceFormatError(
                        "end-of-stream record count mismatch: "
                        "stream announced " +
                            std::to_string(seed_or_total) +
                            ", decoded " + std::to_string(decoded_),
                        frame_off);
                total_.store(decoded_, std::memory_order_release);
                cleanEos_.store(true, std::memory_order_release);
                ring_.closeProducer();
                return;
            }
            if (payload_bytes > StreamFormat::kMaxFramePayload)
                throw TraceFormatError(
                    "frame payload of " +
                        std::to_string(payload_bytes) +
                        " bytes exceeds the format bound",
                    frame_off + 4);
            if (records == 0 || records > StreamFormat::kMaxFrameRecords)
                throw TraceFormatError(
                    "frame record count " + std::to_string(records) +
                        " outside the format bounds",
                    frame_off + 8);

            payload.resize(payload_bytes);
            st = readFully(payload.data(), payload_bytes, got);
            if (st == ReadStatus::Aborted)
                return;
            if (st == ReadStatus::Eof)
                throw TraceTruncatedError(
                    "stream ended inside a frame payload (the "
                    "producer likely died)",
                    streamOff_ + got, payload_bytes, got);
            // Decode once, directly into the immutable chunk every
            // downstream consumer will share — no staging copy.
            auto chunk = std::make_shared<StreamChunk>();
            decodeFrame(payload.data(), payload_bytes, records,
                        seed_or_total, streamOff_, chunk->data);
            streamOff_ += payload_bytes;
            decoded_ += records;
            if (!ring_.push(std::move(chunk)))
                return; // consumer gone / shutdown
        }
    } catch (...) {
        ring_.fail(std::current_exception());
    }
}

void
StreamingTraceSource::reset()
{
    // SimEngine's constructor defensively resets its source before
    // any record is consumed; that is a no-op here. A rewind after
    // consumption is impossible on a live stream.
    if (delivered_ != 0)
        ACIC_FATAL("cannot rewind a live instruction stream "
                   "(single-pass source)");
}

bool
StreamingTraceSource::refillCur()
{
    while (!cur_ || curPos_ >= cur_->data.size()) {
        cur_ = ring_.pop();
        curPos_ = 0;
        if (!cur_)
            return false;
    }
    return true;
}

bool
StreamingTraceSource::next(TraceInst &out)
{
    if (!refillCur())
        return false;
    out = cur_->data[curPos_++];
    delivered_.fetch_add(1, std::memory_order_relaxed);
    return true;
}

unsigned
StreamingTraceSource::decodeBatch(InstBatch &out)
{
    out.count = 0;
    while (out.count < InstBatch::kCapacity) {
        if (!refillCur())
            break;
        const std::size_t avail = cur_->data.size() - curPos_;
        std::size_t take = InstBatch::kCapacity - out.count;
        if (take > avail)
            take = avail;
        const TraceInst *recs = cur_->data.data() + curPos_;
        for (std::size_t i = 0; i < take; ++i)
            out.set(out.count++, recs[i]);
        curPos_ += take;
    }
    delivered_.fetch_add(out.count, std::memory_order_relaxed);
    return out.count;
}

const TraceInst *
StreamingTraceSource::acquireRun(std::uint64_t max, std::uint64_t &n)
{
    n = 0;
    if (max == 0)
        return nullptr;
    if (!refillCur())
        return nullptr;
    std::uint64_t run = cur_->data.size() - curPos_;
    if (run > max)
        run = max;
    const TraceInst *recs = cur_->data.data() + curPos_;
    // Keep the chunk alive until the next acquireRun(): the walker
    // reads the run after this source has moved past the chunk.
    lastRun_ = cur_;
    curPos_ += static_cast<std::size_t>(run);
    delivered_.fetch_add(run, std::memory_order_relaxed);
    n = run;
    return recs;
}

std::shared_ptr<const StreamChunk>
StreamingTraceSource::nextChunk()
{
    ACIC_ASSERT(!cur_ || curPos_ == cur_->data.size(),
                "nextChunk() interleaved with partially consumed "
                "record reads");
    cur_.reset();
    curPos_ = 0;
    std::shared_ptr<const StreamChunk> chunk = ring_.pop();
    if (chunk)
        delivered_.fetch_add(chunk->data.size(),
                             std::memory_order_relaxed);
    return chunk;
}

std::uint64_t
StreamingTraceSource::length() const
{
    const std::uint64_t total =
        total_.load(std::memory_order_acquire);
    return total != 0
               ? total
               : delivered_.load(std::memory_order_relaxed);
}

// -------------------------------------------------------------- StreamTee

StreamTee::StreamTee(TraceSource &upstream, unsigned cursors,
                     std::size_t chunk_records)
    : upstream_(upstream),
      chunked_(dynamic_cast<ChunkedTraceSource *>(&upstream)),
      chunkRecords_(chunk_records == 0 ? 1 : chunk_records)
{
    ACIC_ASSERT(cursors > 0, "StreamTee needs at least one cursor");
    cursors_.reserve(cursors);
    for (unsigned i = 0; i < cursors; ++i)
        cursors_.push_back(std::make_unique<Cursor>(*this, i));
}

StreamTee::~StreamTee() = default;

bool
StreamTee::pullLocked()
{
    if (eof_)
        return false;
    const std::uint64_t end = end_.load(std::memory_order_relaxed);
    if (chunked_ != nullptr) {
        // Zero-copy path: adopt the ring's chunk as-is. The records
        // were decoded once on the reader thread and are never
        // copied again.
        std::shared_ptr<const StreamChunk> chunk =
            chunked_->nextChunk();
        if (!chunk) {
            eof_ = true;
            return false;
        }
        if (chunk->data.empty())
            return true;
        const std::uint64_t got = chunk->data.size();
        chunks_.push_back(Entry{end, std::move(chunk)});
        end_.store(end + got, std::memory_order_release);
        return true;
    }
    const unsigned got = upstream_.decodeBatch(scratch_);
    if (got == 0) {
        eof_ = true;
        // Close the staging chunk: nothing will be appended again,
        // so trim() may now drop it once every cursor passes it.
        open_.reset();
        return false;
    }
    if (!open_ || open_->data.size() + got > chunkRecords_) {
        open_ = std::make_shared<StreamChunk>();
        // reserve() once: record addresses stay stable while the
        // chunk fills, so concurrently captured cursor windows into
        // the visible prefix never dangle.
        open_->data.reserve(chunkRecords_);
        chunks_.push_back(Entry{end, open_});
    }
    for (unsigned i = 0; i < got; ++i)
        open_->data.push_back(scratch_.get(i));
    end_.store(end + got, std::memory_order_release);
    return true;
}

std::uint64_t
StreamTee::ensureBuffered(std::uint64_t target)
{
    std::lock_guard<std::mutex> lock(mu_);
    while (end_.load(std::memory_order_relaxed) < target &&
           pullLocked()) {
    }
    return end_.load(std::memory_order_relaxed);
}

bool
StreamTee::exhausted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return eof_;
}

bool
StreamTee::windowAtLocked(std::uint64_t pos, Window &out)
{
    while (pos >= end_.load(std::memory_order_relaxed) &&
           pullLocked()) {
    }
    const std::uint64_t end = end_.load(std::memory_order_relaxed);
    if (pos >= end)
        return false;
    for (const Entry &e : chunks_) {
        // The tail chunk may still be filling on the generic path;
        // only the records below end_ are published.
        const std::uint64_t chunk_end =
            std::min<std::uint64_t>(e.base + e.chunk->data.size(),
                                    end);
        if (pos >= e.base && pos < chunk_end) {
            out.recs = e.chunk->data.data() +
                       static_cast<std::size_t>(pos - e.base);
            out.base = pos;
            out.count = chunk_end - pos;
            out.owner = e.chunk;
            return true;
        }
    }
    ACIC_FATAL("StreamTee cursor position fell below the trimmed "
               "backlog");
    return false;
}

void
StreamTee::trim()
{
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t min_pos = ~std::uint64_t(0);
    for (const auto &cursor : cursors_) {
        const std::uint64_t p =
            cursor->pos_.load(std::memory_order_relaxed);
        if (p < min_pos)
            min_pos = p;
    }
    while (!chunks_.empty()) {
        const Entry &front = chunks_.front();
        // Never drop the chunk still being filled: upcoming records
        // would land in a chunk no cursor can find.
        if (front.chunk == open_)
            break;
        const std::uint64_t front_end =
            front.base + front.chunk->data.size();
        if (front_end > min_pos)
            break;
        start_.store(front_end, std::memory_order_release);
        chunks_.pop_front();
    }
}

// ------------------------------------------------------ StreamTee::Cursor

StreamTee::Cursor::Cursor(StreamTee &tee, unsigned index)
    : tee_(tee), index_(index)
{
}

void
StreamTee::Cursor::reset()
{
    if (pos_.load(std::memory_order_relaxed) != 0)
        ACIC_FATAL("cannot rewind a live-stream cursor "
                   "(single-pass source)");
}

bool
StreamTee::Cursor::refill()
{
    const std::uint64_t pos = pos_.load(std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(tee_.mu_);
    Window w;
    if (!tee_.windowAtLocked(pos, w))
        return false;
    win_ = std::move(w);
    return true;
}

bool
StreamTee::Cursor::next(TraceInst &out)
{
    const std::uint64_t pos = pos_.load(std::memory_order_relaxed);
    if (win_.recs == nullptr || pos >= win_.base + win_.count) {
        // Pull on demand: a cursor must never report a premature
        // end-of-stream (BundleWalker latches exhaustion).
        if (!refill())
            return false;
    }
    out = win_.recs[static_cast<std::size_t>(pos - win_.base)];
    pos_.store(pos + 1, std::memory_order_relaxed);
    return true;
}

unsigned
StreamTee::Cursor::decodeBatch(InstBatch &out)
{
    out.count = 0;
    while (out.count < InstBatch::kCapacity) {
        const std::uint64_t pos =
            pos_.load(std::memory_order_relaxed);
        if (win_.recs == nullptr || pos >= win_.base + win_.count) {
            if (!refill())
                break;
        }
        const std::uint64_t cur = pos_.load(std::memory_order_relaxed);
        const TraceInst *recs =
            win_.recs + static_cast<std::size_t>(cur - win_.base);
        std::uint64_t take = win_.base + win_.count - cur;
        if (take > InstBatch::kCapacity - out.count)
            take = InstBatch::kCapacity - out.count;
        for (std::uint64_t i = 0; i < take; ++i)
            out.set(out.count++, recs[i]);
        pos_.store(cur + take, std::memory_order_relaxed);
    }
    return out.count;
}

const TraceInst *
StreamTee::Cursor::acquireRun(std::uint64_t max, std::uint64_t &n)
{
    n = 0;
    if (max == 0)
        return nullptr;
    const std::uint64_t pos = pos_.load(std::memory_order_relaxed);
    if (win_.recs == nullptr || pos >= win_.base + win_.count) {
        if (!refill())
            return nullptr;
    }
    const std::uint64_t cur = pos_.load(std::memory_order_relaxed);
    std::uint64_t run = win_.base + win_.count - cur;
    if (run > max)
        run = max;
    // Pin the owning chunk so trim() cannot free storage the walker
    // still reads from (the run pointer outlives this call).
    pin_ = win_.owner;
    pos_.store(cur + run, std::memory_order_relaxed);
    n = run;
    return win_.recs + static_cast<std::size_t>(cur - win_.base);
}

std::uint64_t
StreamTee::Cursor::length() const
{
    const std::uint64_t up = tee_.upstream_.length();
    const std::uint64_t end = tee_.bufferedEnd();
    return up > end ? up : end;
}

const std::string &
StreamTee::Cursor::name() const
{
    return tee_.upstream_.name();
}

} // namespace acic
