/**
 * @file
 * Trace-decode failure contract, shared by the on-disk reader
 * (FileTraceSource) and the live-stream frame parser
 * (StreamingTraceSource). Both decode the same varint record
 * encoding, and both can be handed bytes that end mid-record — a
 * copy that died partway, a producer SIGKILLed mid-frame — so they
 * raise the same named exception instead of whatever the varint
 * decoder happens to do at the missing byte.
 *
 * Both types derive from std::runtime_error, so the CLI's existing
 * catch-all maps them to exit code 1 with the message printed; the
 * message always carries the byte offset and, for truncation, the
 * expected/got byte counts, so the error localizes the damage.
 */

#ifndef ACIC_TRACE_ERRORS_HH
#define ACIC_TRACE_ERRORS_HH

#include <cstdint>
#include <stdexcept>
#include <string>

namespace acic {

/** Malformed trace bytes: bad magic, runaway varint chain, invalid
 *  branch kind, inconsistent frame bookkeeping. The offset is the
 *  byte position the decoder gave up at (absolute for files,
 *  stream-relative for pipes). */
class TraceFormatError : public std::runtime_error
{
  public:
    TraceFormatError(const std::string &what, std::uint64_t offset)
        : std::runtime_error(what + " (at byte offset " +
                             std::to_string(offset) + ")"),
          offset_(offset)
    {
    }

    std::uint64_t offset() const { return offset_; }

  private:
    std::uint64_t offset_;
};

/** The input ended mid-record or mid-frame: fewer bytes arrived than
 *  the encoding requires. expected/got describe the read that came
 *  up short. */
class TraceTruncatedError : public TraceFormatError
{
  public:
    TraceTruncatedError(const std::string &what, std::uint64_t offset,
                        std::uint64_t expected, std::uint64_t got)
        : TraceFormatError(what + ": expected " +
                               std::to_string(expected) +
                               " more byte(s), got " +
                               std::to_string(got),
                           offset),
          expected_(expected), got_(got)
    {
    }

    std::uint64_t expectedBytes() const { return expected_; }
    std::uint64_t gotBytes() const { return got_; }

  private:
    std::uint64_t expected_;
    std::uint64_t got_;
};

} // namespace acic

#endif // ACIC_TRACE_ERRORS_HH
