/**
 * @file
 * Deterministic synthetic workload generator.
 *
 * Substitutes for the paper's QEMU full-system traces (CloudSuite,
 * OLTPBench, Renaissance, SPEC2017). The program model reproduces the
 * instruction-stream statistics ACIC responds to:
 *
 *  - spatial bursts: sequential execution through function bodies means
 *    a touched block is immediately re-touched (reuse distance 0);
 *  - short-term temporal locality: small backward loops and early-exit
 *    conditionals re-reference recent blocks (distance 1..16);
 *  - inter-burst gaps: phases cycle over per-request working sets whose
 *    size in blocks (vs. the 512-block i-cache) places the reuse mass
 *    in the paper's (512,1024] or (1024,10000] ranges;
 *  - hot shared-library code re-referenced at short distances from
 *    every phase — the blocks admission control should retain.
 */

#ifndef ACIC_TRACE_SYNTHETIC_HH
#define ACIC_TRACE_SYNTHETIC_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hh"
#include "common/types.hh"
#include "trace/trace.hh"
#include "trace/workload_params.hh"

namespace acic {

/** See file comment. Re-iterable: reset() replays the exact stream. */
class SyntheticWorkload : public TraceSource
{
  public:
    explicit SyntheticWorkload(WorkloadParams params);

    void reset() override;
    bool next(TraceInst &out) override;
    std::uint64_t length() const override { return params_.instructions; }
    const std::string &name() const override { return params_.name; }

    /** Static code footprint in bytes (for DESIGN/EXPERIMENTS notes). */
    std::uint64_t codeFootprintBytes() const { return footprintBytes_; }

    /** Total number of generated functions including the library. */
    std::size_t functionCount() const { return functions_.size(); }

    /** Parameters this instance was built with. */
    const WorkloadParams &params() const { return params_; }

  private:
    /** Kind of a static branch site inside a function body. */
    enum class SiteKind : std::uint8_t
    {
        CondFwd,   ///< forward conditional, mostly not taken
        LoopBack,  ///< short backward conditional loop branch
        Call,      ///< direct call; callee chosen dynamically
    };

    /** A static branch site. */
    struct Site
    {
        SiteKind kind;
        std::uint32_t target;    ///< intra-function target offset
        float takenProb;         ///< CondFwd static taken bias
        std::uint16_t tripCount; ///< LoopBack static trip count
    };

    /** A generated function: address, size, and its branch sites. */
    struct Function
    {
        Addr base = 0;
        std::uint32_t size = 0;            ///< instructions incl. ret
        /** site index per offset, -1 when the slot is sequential. */
        std::vector<std::int32_t> siteAt;
        std::vector<Site> sites;
    };

    /** Live-loop state: (site offset, remaining trips). */
    using LoopState =
        std::vector<std::pair<std::uint32_t, std::uint32_t>>;

    /** A suspended caller activation record. */
    struct Frame
    {
        std::uint32_t fn;
        std::uint32_t retOff;
        LoopState loops;
    };

    void buildStaticImage();
    void startRun();

    Addr pcOf(std::uint32_t fn, std::uint32_t off) const;

    /** Advance the walker by one instruction; fills kind/taken/target. */
    void step(TraceInst &rec);

    std::uint32_t chooseCallee(std::uint32_t caller);
    std::uint32_t choosePhaseEntry();
    void enterNextPhase();

    WorkloadParams params_;
    std::vector<Function> functions_;
    /** function ids per phase working set. */
    std::vector<std::vector<std::uint32_t>> phaseFns_;
    std::unique_ptr<ZipfSampler> libZipf_;
    std::unique_ptr<ZipfSampler> phaseZipf_;
    std::unique_ptr<ZipfSampler> hotZipf_;
    std::uint32_t hotCount_ = 0;
    std::uint64_t footprintBytes_ = 0;

    // --- dynamic state, rebuilt by reset() ---
    Rng rng_;
    /** Per-phase sweep cursor over the phase's function list. */
    std::vector<std::uint32_t> sweepCursor_;
    std::vector<Frame> stack_;
    std::uint32_t curFn_ = 0;
    std::uint32_t curOff_ = 0;
    LoopState curLoops_;
    std::uint32_t phase_ = 0;
    std::int64_t phaseBudget_ = 0;
    std::uint64_t emitted_ = 0;
};

} // namespace acic

#endif // ACIC_TRACE_SYNTHETIC_HH
