#include "trace/catalog.hh"

#include <algorithm>
#include <filesystem>

#include "common/logging.hh"
#include "trace/io.hh"
#include "trace/streaming.hh"
#include "trace/synthetic.hh"

namespace acic {

WorkloadEntry
WorkloadEntry::traceFile(std::string name_, std::string path_,
                         std::uint64_t instructions)
{
    WorkloadEntry entry;
    entry.source = WorkloadSource::TraceFile;
    entry.params.name = std::move(name_);
    entry.params.instructions = instructions;
    entry.path = std::move(path_);
    entry.suite = "imported";
    return entry;
}

WorkloadEntry
WorkloadEntry::stream(const std::string &spec)
{
    WorkloadEntry entry;
    entry.source = WorkloadSource::Stream;
    entry.params.name = spec;
    // "pipe:PATH" strips to the path; "-" stays as the stdin marker
    // StreamingTraceSource::openPath understands.
    entry.path = spec.rfind("pipe:", 0) == 0 ? spec.substr(5) : spec;
    entry.suite = "stream";
    return entry;
}

bool
WorkloadEntry::isStreamSpec(const std::string &text)
{
    return text == "-" || text.rfind("pipe:", 0) == 0;
}

std::unique_ptr<TraceSource>
WorkloadEntry::open() const
{
    if (source == WorkloadSource::Stream)
        return StreamingTraceSource::openPath(path);
    if (source == WorkloadSource::TraceFile)
        return std::make_unique<FileTraceSource>(path);
    return std::make_unique<SyntheticWorkload>(params);
}

WorkloadCatalog
WorkloadCatalog::builtin()
{
    WorkloadCatalog catalog;
    for (auto &params : Workloads::datacenter()) {
        WorkloadEntry entry(std::move(params));
        entry.suite = "datacenter";
        catalog.add(std::move(entry));
    }
    for (auto &params : Workloads::spec()) {
        WorkloadEntry entry(std::move(params));
        entry.suite = "spec";
        catalog.add(std::move(entry));
    }
    return catalog;
}

void
WorkloadCatalog::add(WorkloadEntry entry)
{
    for (auto &existing : entries_) {
        if (existing.name() == entry.name()) {
            existing = std::move(entry);
            return;
        }
    }
    entries_.push_back(std::move(entry));
}

std::size_t
WorkloadCatalog::addTraceDir(const std::string &dir)
{
    namespace fs = std::filesystem;
    std::error_code ec;
    if (!fs::is_directory(dir, ec)) {
        const std::string msg =
            "trace directory not found: " + dir;
        ACIC_FATAL(msg.c_str());
    }

    std::vector<fs::path> files;
    for (const auto &it : fs::directory_iterator(dir, ec)) {
        const fs::path &p = it.path();
        if (p.extension() == TraceFormat::suffix())
            files.push_back(p);
    }
    std::sort(files.begin(), files.end());

    std::size_t added = 0;
    for (const auto &p : files) {
        TraceFileInfo info;
        if (!readTraceHeader(p.string(), info)) {
            const std::string msg =
                "skipping invalid trace file " + p.string();
            warn(msg.c_str());
            continue;
        }
        WorkloadEntry entry = WorkloadEntry::traceFile(
            p.stem().string(), p.string(), info.instructions);
        // Overlaying a preset keeps its suite (the file is still a
        // datacenter/spec workload); only new names are "imported".
        if (const WorkloadEntry *existing = find(entry.name()))
            entry.suite = existing->suite;
        add(std::move(entry));
        ++added;
    }
    return added;
}

const WorkloadEntry *
WorkloadCatalog::find(const std::string &name) const
{
    for (const auto &entry : entries_)
        if (entry.name() == name)
            return &entry;
    return nullptr;
}

std::vector<WorkloadEntry>
WorkloadCatalog::resolve(const std::string &list) const
{
    std::vector<WorkloadEntry> out;
    if (list == "all") {
        out = entries_;
    } else if (list.rfind("all-", 0) == 0) {
        const std::string suite = list.substr(4);
        if (suite != "datacenter" && suite != "spec" &&
            suite != "imported") {
            const std::string msg =
                "unknown workload group '" + list + "'";
            ACIC_FATAL(msg.c_str());
        }
        for (const auto &entry : entries_)
            if (entry.suite == suite)
                out.push_back(entry);
    } else {
        std::size_t start = 0;
        while (start <= list.size()) {
            const std::size_t comma = list.find(',', start);
            const std::string name = list.substr(
                start, comma == std::string::npos ? std::string::npos
                                                  : comma - start);
            if (!name.empty()) {
                if (WorkloadEntry::isStreamSpec(name)) {
                    out.push_back(WorkloadEntry::stream(name));
                } else {
                    const WorkloadEntry *entry = find(name);
                    if (!entry) {
                        const std::string msg =
                            "unknown workload '" + name + "'";
                        ACIC_FATAL(msg.c_str());
                    }
                    out.push_back(*entry);
                }
            }
            if (comma == std::string::npos)
                break;
            start = comma + 1;
        }
    }
    if (out.empty()) {
        const std::string msg =
            "workload list '" + list + "' resolves to nothing";
        ACIC_FATAL(msg.c_str());
    }
    return out;
}

} // namespace acic
