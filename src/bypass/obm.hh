/**
 * @file
 * OBM -- Optimal Bypass Monitor (Li et al., PACT 2012). A small
 * Replacement History Table (RHT) samples (incoming, victim) pairs at
 * fill time; whichever block of a sampled pair is re-accessed first
 * decides whether bypassing would have been optimal, training a
 * signature-indexed Bypass Decision Counter Table (BDCT). Per Table
 * IV: 21-bit tags, 10-bit signature, 128-entry RHT, 1024-entry BDCT,
 * 4-bit counters = 1.41 KB.
 */

#ifndef ACIC_BYPASS_OBM_HH
#define ACIC_BYPASS_OBM_HH

#include <vector>

#include "bypass/bypass.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"

namespace acic {

/** See file comment. */
class ObmBypass : public BypassPolicy
{
  public:
    /** @param sample_rate fraction of fills that open an RHT duel. */
    explicit ObmBypass(double sample_rate = 1.0 / 8.0,
                       std::uint64_t seed = 0x0B3);

    bool shouldBypass(const CacheAccess &incoming,
                      SetAssocCache &cache) override;
    void onDemandAccess(const CacheAccess &access,
                        SetAssocCache &cache) override;
    std::string name() const override { return "OBM"; }
    std::uint64_t storageBits() const override;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    struct RhtEntry
    {
        bool valid = false;
        std::uint32_t incomingTag = 0;
        std::uint32_t victimTag = 0;
        std::uint16_t signature = 0;
        std::uint64_t stamp = 0;
    };

    static std::uint32_t tag21(BlockAddr blk);
    std::uint16_t signatureOf(Addr pc) const;

    double sampleRate_;
    Rng rng_;
    std::vector<RhtEntry> rht_;
    std::vector<SatCounter> bdct_;
    std::uint64_t tick_ = 0;
    static constexpr std::size_t kRhtEntries = 128;
    static constexpr std::size_t kBdctEntries = 1024;
    /** Bypass when the counter clears this threshold (of 15). */
    static constexpr std::uint32_t kBypassThreshold = 9;
};

} // namespace acic

#endif // ACIC_BYPASS_OBM_HH
