/**
 * @file
 * Direct cache-bypass policies (no i-Filter in front): consulted at
 * demand-fill time to decide whether the incoming block should skip
 * the i-cache entirely. The paper compares ACIC against DSB [23] and
 * OBM [58], both originally proposed for last-level caches.
 */

#ifndef ACIC_BYPASS_BYPASS_HH
#define ACIC_BYPASS_BYPASS_HH

#include <cstdint>
#include <string>

#include "cache/cache_types.hh"
#include "cache/set_assoc.hh"

namespace acic {

/** See file comment. */
class BypassPolicy
{
  public:
    virtual ~BypassPolicy() = default;

    /**
     * Decide the fate of an incoming fill.
     * @param incoming the block being filled after a miss.
     * @param cache the L1i it would enter (for victim inspection).
     * @return true to bypass (do not insert).
     */
    virtual bool shouldBypass(const CacheAccess &incoming,
                              SetAssocCache &cache) = 0;

    /** Observe every demand access (training). */
    virtual void
    onDemandAccess(const CacheAccess &access, SetAssocCache &cache)
    {
        (void)access;
        (void)cache;
    }

    virtual std::string name() const = 0;

    virtual std::uint64_t storageBits() const { return 0; }

    /** Checkpoint hooks; stateless policies keep the no-op default. */
    virtual void save(Serializer &s) const { (void)s; }
    virtual void load(Deserializer &d) { (void)d; }
};

} // namespace acic

#endif // ACIC_BYPASS_BYPASS_HH
