/**
 * @file
 * DSB -- Dueling Segmented LRU with adaptive Bypassing (Gao &
 * Wilkerson, JWAC cache championship 2010). Incoming blocks are
 * bypassed with an adaptive probability; *duels* between a bypassed
 * block and the line it spared decide whether bypassing helped, and
 * the outcome tunes the probability. Per Table IV: 16-bit tracked
 * line tag, 3-bit competitor way, sampled duel monitors = 0.48 KB.
 */

#ifndef ACIC_BYPASS_DSB_HH
#define ACIC_BYPASS_DSB_HH

#include <vector>

#include "bypass/bypass.hh"
#include "common/rng.hh"
#include "common/sat_counter.hh"

namespace acic {

/** See file comment. */
class DsbBypass : public BypassPolicy
{
  public:
    explicit DsbBypass(std::uint64_t seed = 0xD5B);

    bool shouldBypass(const CacheAccess &incoming,
                      SetAssocCache &cache) override;
    void onDemandAccess(const CacheAccess &access,
                        SetAssocCache &cache) override;
    std::string name() const override { return "DSB"; }
    std::uint64_t storageBits() const override;

    /** Current bypass probability (tests / instrumentation). */
    double bypassProbability() const;

    void save(Serializer &s) const override;
    void load(Deserializer &d) override;

  private:
    /** One in-flight duel: bypassed block vs. the spared line. */
    struct Duel
    {
        bool active = false;
        std::uint16_t bypassedTag = 0;
        std::uint32_t set = 0;
        std::uint8_t sparedWay = 0;
    };

    static std::uint16_t tag16(BlockAddr blk);

    Rng rng_;
    /** Adaptive level: bypass probability = level / kLevels. */
    SatCounter level_;
    std::vector<Duel> duels_;
    static constexpr unsigned kLevels = 32;
    static constexpr std::size_t kDuelMonitors = 16;
};

} // namespace acic

#endif // ACIC_BYPASS_DSB_HH
