#include "bypass/obm.hh"

namespace acic {

ObmBypass::ObmBypass(double sample_rate, std::uint64_t seed)
    : sampleRate_(sample_rate), rng_(seed), rht_(kRhtEntries),
      bdct_(kBdctEntries, SatCounter(4, 7))
{
}

std::uint32_t
ObmBypass::tag21(BlockAddr blk)
{
    return static_cast<std::uint32_t>((blk ^ (blk >> 21)) &
                                      0x1fffff);
}

std::uint16_t
ObmBypass::signatureOf(Addr pc) const
{
    const std::uint64_t v = pc >> 2;
    return static_cast<std::uint16_t>((v ^ (v >> 10) ^ (v >> 20)) &
                                      0x3ff);
}

bool
ObmBypass::shouldBypass(const CacheAccess &incoming,
                        SetAssocCache &cache)
{
    const std::uint16_t sig = signatureOf(incoming.pc);
    const bool bypass =
        bdct_[sig % kBdctEntries].atLeast(kBypassThreshold);

    // Sample a duel between the incoming block and the victim the
    // replacement policy would have chosen.
    if (rng_.chance(sampleRate_)) {
        CacheAccess probe = incoming;
        const std::uint32_t set = cache.setOf(incoming.blk);
        const std::uint32_t way = cache.victimWay(probe);
        const CacheLine &victim = cache.lineAt(set, way);
        if (victim.valid) {
            RhtEntry *slot = nullptr;
            std::uint64_t oldest = ~std::uint64_t{0};
            for (auto &e : rht_) {
                if (!e.valid) {
                    slot = &e;
                    break;
                }
                if (e.stamp < oldest) {
                    oldest = e.stamp;
                    slot = &e;
                }
            }
            slot->valid = true;
            slot->incomingTag = tag21(incoming.blk);
            slot->victimTag = tag21(victim.blk);
            slot->signature = sig;
            slot->stamp = ++tick_;
        }
    }
    return bypass;
}

void
ObmBypass::onDemandAccess(const CacheAccess &access, SetAssocCache &)
{
    const std::uint32_t tag = tag21(access.blk);
    for (auto &e : rht_) {
        if (!e.valid)
            continue;
        if (e.incomingTag == tag) {
            // Incoming block returned first: keeping it was right,
            // so bypassing this signature should become less likely.
            bdct_[e.signature % kBdctEntries].decrement();
            e.valid = false;
        } else if (e.victimTag == tag) {
            // Victim returned first: bypassing would have kept it.
            bdct_[e.signature % kBdctEntries].increment();
            e.valid = false;
        }
    }
}

std::uint64_t
ObmBypass::storageBits() const
{
    return kRhtEntries * (21 + 21 + 10) + kBdctEntries * 4 + 10;
}

void
ObmBypass::save(Serializer &s) const
{
    rng_.save(s);
    s.u64(rht_.size());
    for (const RhtEntry &e : rht_) {
        s.b(e.valid);
        s.u32(e.incomingTag);
        s.u32(e.victimTag);
        s.u16(e.signature);
        s.u64(e.stamp);
    }
    s.vecSat(bdct_);
    s.u64(tick_);
}

void
ObmBypass::load(Deserializer &d)
{
    rng_.load(d);
    d.expectGeometry("obm rht entries", rht_.size());
    for (RhtEntry &e : rht_) {
        e.valid = d.b();
        e.incomingTag = d.u32();
        e.victimTag = d.u32();
        e.signature = d.u16();
        e.stamp = d.u64();
    }
    d.vecSat(bdct_);
    tick_ = d.u64();
}

} // namespace acic
