#include "bypass/dsb.hh"

namespace acic {

DsbBypass::DsbBypass(std::uint64_t seed)
    : rng_(seed), level_(5, 16), duels_(kDuelMonitors)
{
}

std::uint16_t
DsbBypass::tag16(BlockAddr blk)
{
    return static_cast<std::uint16_t>(blk ^ (blk >> 16) ^
                                      (blk >> 32));
}

double
DsbBypass::bypassProbability() const
{
    return static_cast<double>(level_.value()) / kLevels;
}

bool
DsbBypass::shouldBypass(const CacheAccess &incoming,
                        SetAssocCache &cache)
{
    const bool bypass = rng_.chance(bypassProbability());
    if (!bypass)
        return false;

    // Open a duel: the bypassed block vs. the line it spared.
    const std::uint32_t set = cache.setOf(incoming.blk);
    Duel &duel = duels_[set % duels_.size()];
    if (!duel.active) {
        CacheAccess probe = incoming;
        const std::uint32_t way = cache.victimWay(probe);
        if (cache.lineAt(set, way).valid) {
            duel.active = true;
            duel.bypassedTag = tag16(incoming.blk);
            duel.set = set;
            duel.sparedWay = static_cast<std::uint8_t>(way);
        }
    }
    return true;
}

void
DsbBypass::onDemandAccess(const CacheAccess &access,
                          SetAssocCache &cache)
{
    const std::uint32_t set = cache.setOf(access.blk);
    Duel &duel = duels_[set % duels_.size()];
    if (!duel.active || duel.set != set)
        return;

    if (tag16(access.blk) == duel.bypassedTag) {
        // The bypassed block came back first: bypassing hurt.
        level_.decrement();
        duel.active = false;
        return;
    }
    const CacheLine &spared =
        cache.lineAt(set, duel.sparedWay);
    if (spared.valid && spared.blk == access.blk) {
        // The spared line was re-used first: bypassing helped.
        level_.increment();
        duel.active = false;
    }
}

std::uint64_t
DsbBypass::storageBits() const
{
    // Tracked tag + set/way bookkeeping per monitor + the level.
    return kDuelMonitors * (16 + 6 + 3) + 5 +
           static_cast<std::uint64_t>(0.44 * 1024 * 8);
}

void
DsbBypass::save(Serializer &s) const
{
    rng_.save(s);
    s.u8(static_cast<std::uint8_t>(level_.value()));
    s.u64(duels_.size());
    for (const Duel &duel : duels_) {
        s.b(duel.active);
        s.u16(duel.bypassedTag);
        s.u32(duel.set);
        s.u8(duel.sparedWay);
    }
}

void
DsbBypass::load(Deserializer &d)
{
    rng_.load(d);
    level_.set(d.u8());
    d.expectGeometry("dsb duel monitors", duels_.size());
    for (Duel &duel : duels_) {
        duel.active = d.b();
        duel.bypassedTag = d.u16();
        duel.set = d.u32();
        duel.sparedWay = d.u8();
    }
}

} // namespace acic
