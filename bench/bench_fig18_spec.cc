/**
 * @file
 * Regenerates Fig. 18 (speedup) and Fig. 19 (MPKI reduction) for the
 * SPEC-like workloads under GHRP, the 36 KB L1i, ACIC, and OPT over
 * the LRU+FDP baseline. The paper's point: SPEC hit rates are high at
 * baseline, leaving little headroom -- ACIC roughly matches a 36 KB
 * L1i without the capacity cost.
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::spec());

    const std::vector<SchemeSpec> kSchemes =
        parseSchemeList("ghrp,l1i36k,acic,opt");

    TablePrinter fig18("Fig. 18: SPEC speedup over LRU+FDP");
    TablePrinter fig19("Fig. 19: SPEC L1i MPKI reduction");
    std::vector<std::string> header{"workload"};
    for (const SchemeSpec &s : kSchemes)
        header.push_back(schemeName(s));
    header.push_back("baseline MPKI");
    fig18.setHeader(header);
    fig19.setHeader(header);

    std::map<std::string, std::vector<double>> speedups, reductions;
    for (auto &run : runs) {
        std::vector<std::string> srow{run.name}, rrow{run.name};
        for (const SchemeSpec &s : kSchemes) {
            const SimResult r = run.context->run(s);
            const double sp = speedupOf(run.baseline, r);
            const double red = mpkiReductionOf(run.baseline, r);
            speedups[schemeName(s)].push_back(sp);
            reductions[schemeName(s)].push_back(red);
            srow.push_back(TablePrinter::fmt(sp, 4));
            rrow.push_back(TablePrinter::pct(red, 1));
        }
        srow.push_back(TablePrinter::fmt(run.baseline.mpki(), 2));
        rrow.push_back(TablePrinter::fmt(run.baseline.mpki(), 2));
        fig18.addRow(srow);
        fig19.addRow(rrow);
    }
    std::vector<std::string> grow{"gmean"}, arow{"Avg"};
    for (const SchemeSpec &s : kSchemes) {
        grow.push_back(
            TablePrinter::fmt(geomean(speedups[schemeName(s)]), 4));
        arow.push_back(
            TablePrinter::pct(mean(reductions[schemeName(s)]), 1));
    }
    grow.push_back("");
    arow.push_back("");
    fig18.addRow(grow);
    fig19.addRow(arow);
    fig18.addNote("paper: little headroom on SPEC; ACIC ~= 36KB L1i");
    fig18.print();
    fig19.print();
    return 0;
}
