/**
 * @file
 * Shared plumbing for the figure/table regeneration binaries: run a
 * scheme sweep over the datacenter workloads, compute speedups against
 * the LRU+FDP baseline, and print paper-shaped tables.
 */

#ifndef ACIC_BENCH_BENCH_UTIL_HH
#define ACIC_BENCH_BENCH_UTIL_HH

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"
#include "trace/catalog.hh"

namespace acic::bench {

/**
 * Catalog entries for the datacenter suite — the default rows of the
 * figure/table benches. Set ACIC_BENCH_TRACE_DIR to overlay a
 * directory of recorded or imported `.acictrace` files onto the
 * presets, so every bench can rerun against real traces unchanged.
 */
inline std::vector<WorkloadEntry>
datacenterEntries()
{
    WorkloadCatalog catalog = WorkloadCatalog::builtin();
    if (const char *dir = std::getenv("ACIC_BENCH_TRACE_DIR"))
        catalog.addTraceDir(dir);
    return catalog.resolve("all-datacenter");
}

/** Default per-workload trace length for bench sweeps. */
inline std::uint64_t
benchTraceLength()
{
    // Delegate ACIC_TRACE_LEN parsing to the one hardened parser.
    WorkloadParams params;
    params.instructions = 2'000'000;
    return WorkloadContext::withEnvOverrides(params).instructions;
}

/** One workload's context plus its baseline run. */
struct WorkloadRun
{
    std::string name;
    std::unique_ptr<WorkloadContext> context;
    SimResult baseline;
};

/** Build contexts and LRU+FDP baselines for a preset collection. */
inline std::vector<WorkloadRun>
buildBaselines(std::vector<WorkloadParams> presets,
               const SimConfig &config = {},
               const std::string &baseline = "lru")
{
    const SchemeSpec baseline_spec = parseScheme(baseline);
    std::vector<WorkloadRun> runs;
    for (auto &params : presets) {
        params.instructions = benchTraceLength();
        WorkloadRun run;
        run.name = params.name;
        run.context =
            std::make_unique<WorkloadContext>(params, config);
        run.baseline = run.context->run(baseline_spec);
        runs.push_back(std::move(run));
    }
    return runs;
}

inline double
speedupOf(const SimResult &baseline, const SimResult &result)
{
    return static_cast<double>(baseline.cycles) /
           static_cast<double>(result.cycles);
}

inline double
mpkiReductionOf(const SimResult &baseline, const SimResult &result)
{
    if (baseline.mpki() == 0.0)
        return 0.0;
    return (baseline.mpki() - result.mpki()) / baseline.mpki();
}

inline double
geomean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double log_sum = 0.0;
    for (const double v : values)
        log_sum += std::log(v);
    return std::exp(log_sum / static_cast<double>(values.size()));
}

inline double
mean(const std::vector<double> &values)
{
    if (values.empty())
        return 0.0;
    double sum = 0.0;
    for (const double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

/**
 * Run a scheme across all workloads and return per-workload results
 * keyed by workload name.
 */
inline std::map<std::string, SimResult>
runScheme(std::vector<WorkloadRun> &runs, const SchemeSpec &scheme)
{
    std::map<std::string, SimResult> out;
    for (auto &run : runs)
        out[run.name] = run.context->run(scheme);
    return out;
}

} // namespace acic::bench

#endif // ACIC_BENCH_BENCH_UTIL_HH
