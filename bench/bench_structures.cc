/**
 * @file
 * google-benchmark microbenchmarks of the hardware-structure models:
 * per-operation cost of the set-associative lookup, i-Filter probe,
 * CSHR search, two-level predictor, and the synthetic trace
 * generator. These guard the simulator's own performance (host-side),
 * not the simulated machine.
 */

#include <benchmark/benchmark.h>

#include "cache/lru.hh"
#include "cache/set_assoc.hh"
#include "common/rng.hh"
#include "core/admission_predictor.hh"
#include "core/cshr.hh"
#include "core/ifilter.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

void
BM_SetAssocLookup(benchmark::State &state)
{
    SetAssocCache cache(64, 8, std::make_unique<LruPolicy>());
    Rng rng(7);
    for (int i = 0; i < 4096; ++i) {
        CacheAccess access;
        access.blk = rng.nextBelow(2048);
        cache.fill(access);
    }
    for (auto _ : state) {
        CacheAccess access;
        access.blk = rng.nextBelow(2048);
        benchmark::DoNotOptimize(cache.lookup(access));
    }
}
BENCHMARK(BM_SetAssocLookup);

void
BM_IFilterProbe(benchmark::State &state)
{
    IFilter filter(16);
    Rng rng(11);
    for (int i = 0; i < 64; ++i) {
        CacheAccess access;
        access.blk = rng.nextBelow(64);
        filter.insert(access);
    }
    for (auto _ : state) {
        CacheAccess access;
        access.blk = rng.nextBelow(64);
        benchmark::DoNotOptimize(filter.lookup(access));
    }
}
BENCHMARK(BM_IFilterProbe);

void
BM_CshrSearch(benchmark::State &state)
{
    Cshr cshr;
    Rng rng(13);
    for (int i = 0; i < 256; ++i)
        cshr.insert(rng.next(), rng.next(),
                    static_cast<std::uint32_t>(rng.nextBelow(64)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cshr.search(
            rng.next(),
            static_cast<std::uint32_t>(rng.nextBelow(64))));
    }
}
BENCHMARK(BM_CshrSearch);

void
BM_PredictorTrain(benchmark::State &state)
{
    AdmissionPredictor predictor;
    Rng rng(17);
    Cycle now = 0;
    for (auto _ : state) {
        const auto tag =
            static_cast<std::uint32_t>(rng.nextBelow(4096));
        predictor.train(tag, rng.chance(0.5), now);
        predictor.tick(now);
        ++now;
        benchmark::DoNotOptimize(predictor.predict(tag));
    }
}
BENCHMARK(BM_PredictorTrain);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto params = Workloads::byName("media_streaming");
    params.instructions = 1u << 20;
    SyntheticWorkload trace(params);
    TraceInst inst;
    for (auto _ : state) {
        if (!trace.next(inst))
            trace.reset();
        benchmark::DoNotOptimize(inst.pc);
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
