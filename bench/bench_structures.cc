/**
 * @file
 * google-benchmark microbenchmarks of the hardware-structure models:
 * per-operation cost of the set-associative lookup, i-Filter probe,
 * CSHR search, two-level predictor, and the synthetic trace
 * generator — plus the two kernels under the throughput tentpole,
 * each implementation individually selectable: the tag-probe scan
 * (portable / SSE2 / dispatched wide path, hit and miss, 2/4/8
 * ways) and the trace decoder (scalar next() vs 64-record
 * decodeBatch() vs zero-copy acquireRun()). These guard the
 * simulator's own performance (host-side), not the simulated
 * machine.
 */

#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cache/lru.hh"
#include "cache/set_assoc.hh"
#include "common/rng.hh"
#include "common/tagscan.hh"
#include "core/admission_predictor.hh"
#include "core/cshr.hh"
#include "core/ifilter.hh"
#include "trace/io.hh"
#include "trace/memory.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

namespace {

void
BM_SetAssocLookup(benchmark::State &state)
{
    SetAssocCache cache(64, 8, std::make_unique<LruPolicy>());
    Rng rng(7);
    for (int i = 0; i < 4096; ++i) {
        CacheAccess access;
        access.blk = rng.nextBelow(2048);
        cache.fill(access);
    }
    for (auto _ : state) {
        CacheAccess access;
        access.blk = rng.nextBelow(2048);
        benchmark::DoNotOptimize(cache.lookup(access));
    }
}
BENCHMARK(BM_SetAssocLookup);

void
BM_IFilterProbe(benchmark::State &state)
{
    IFilter filter(16);
    Rng rng(11);
    for (int i = 0; i < 64; ++i) {
        CacheAccess access;
        access.blk = rng.nextBelow(64);
        filter.insert(access);
    }
    for (auto _ : state) {
        CacheAccess access;
        access.blk = rng.nextBelow(64);
        benchmark::DoNotOptimize(filter.lookup(access));
    }
}
BENCHMARK(BM_IFilterProbe);

void
BM_CshrSearch(benchmark::State &state)
{
    Cshr cshr;
    Rng rng(13);
    for (int i = 0; i < 256; ++i)
        cshr.insert(rng.next(), rng.next(),
                    static_cast<std::uint32_t>(rng.nextBelow(64)));
    for (auto _ : state) {
        benchmark::DoNotOptimize(cshr.search(
            rng.next(),
            static_cast<std::uint32_t>(rng.nextBelow(64))));
    }
}
BENCHMARK(BM_CshrSearch);

void
BM_PredictorTrain(benchmark::State &state)
{
    AdmissionPredictor predictor;
    Rng rng(17);
    Cycle now = 0;
    for (auto _ : state) {
        const auto tag =
            static_cast<std::uint32_t>(rng.nextBelow(4096));
        predictor.train(tag, rng.chance(0.5), now);
        predictor.tick(now);
        ++now;
        benchmark::DoNotOptimize(predictor.predict(tag));
    }
}
BENCHMARK(BM_PredictorTrain);

/**
 * Tag-probe kernel cost per scan, one implementation per capture.
 * Arg 0: ways (2/4/8, padded to the lane stride like SetAssocCache
 * rows are). Arg 1: 1 = every probe hits, 0 = every probe misses.
 * 1024 sets probed round-robin so the targets are not
 * branch-predictable.
 */
void
BM_TagProbe(benchmark::State &state,
            std::uint64_t (*kernel)(const std::uint64_t *,
                                    std::uint32_t, std::uint64_t))
{
    const auto ways = static_cast<std::uint32_t>(state.range(0));
    const bool hit = state.range(1) != 0;
    constexpr std::size_t kSets = 1024;
    const std::uint32_t stride = tagscan::padLanes64(ways);
    std::vector<std::uint64_t> lanes(kSets * stride);
    Rng rng(31);
    for (auto &lane : lanes)
        lane = 1 + rng.nextBelow(1u << 20); // never 0
    std::vector<std::uint64_t> targets(kSets);
    for (std::size_t s = 0; s < kSets; ++s) {
        targets[s] =
            hit ? lanes[s * stride + rng.nextBelow(ways)] : 0;
    }
    std::size_t s = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            kernel(lanes.data() + s * stride, ways, targets[s]));
        s = (s + 1) & (kSets - 1);
    }
    state.SetLabel(hit ? "hit" : "miss");
}
BENCHMARK_CAPTURE(BM_TagProbe, portable,
                  &tagscan::matchMask64Portable)
    ->ArgsProduct({{2, 4, 8}, {0, 1}});
#ifdef ACIC_TAGSCAN_SIMD
BENCHMARK_CAPTURE(BM_TagProbe, sse2, &tagscan::matchMask64Sse2)
    ->ArgsProduct({{2, 4, 8}, {0, 1}});
BENCHMARK_CAPTURE(BM_TagProbe, wide, tagscan::matchMask64Wide)
    ->ArgsProduct({{2, 4, 8}, {0, 1}});
#endif

/** The recorded trace the decoder benches read (built once). */
const std::string &
decoderBenchTrace()
{
    static const std::string path = [] {
        const std::string p =
            "bench_structures_decode" + std::string(
                TraceFormat::suffix());
        auto params = Workloads::byName("media_streaming");
        params.instructions = 1u << 20;
        SyntheticWorkload synth(params);
        recordTrace(synth, p);
        return p;
    }();
    return path;
}

/** Per-instruction cost of the scalar next() decode loop. */
void
BM_DecodeScalarFile(benchmark::State &state)
{
    FileTraceSource file(decoderBenchTrace());
    TraceInst inst;
    for (auto _ : state) {
        if (!file.next(inst))
            file.reset();
        benchmark::DoNotOptimize(inst.pc);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeScalarFile);

/** Per-instruction cost through the 64-record batch decoder. */
void
BM_DecodeBatchFile(benchmark::State &state)
{
    FileTraceSource file(decoderBenchTrace());
    InstBatch batch;
    unsigned pos = 0;
    for (auto _ : state) {
        if (pos >= batch.count) {
            if (file.decodeBatch(batch) == 0) {
                file.reset();
                file.decodeBatch(batch);
            }
            pos = 0;
        }
        benchmark::DoNotOptimize(batch.pc[pos]);
        ++pos;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeBatchFile);

/** Per-instruction cost of the batched copy out of a materialized
 *  image (the driver's steady-state source). */
void
BM_DecodeBatchMemory(benchmark::State &state)
{
    FileTraceSource file(decoderBenchTrace());
    MemoryTraceSource mem = MemoryTraceSource::capture(file);
    InstBatch batch;
    unsigned pos = 0;
    for (auto _ : state) {
        if (pos >= batch.count) {
            if (mem.decodeBatch(batch) == 0) {
                mem.reset();
                mem.decodeBatch(batch);
            }
            pos = 0;
        }
        benchmark::DoNotOptimize(batch.pc[pos]);
        ++pos;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeBatchMemory);

/** Per-instruction cost of the zero-copy run path (what the
 *  BundleWalker rides in steady state). */
void
BM_DecodeRunMemory(benchmark::State &state)
{
    FileTraceSource file(decoderBenchTrace());
    MemoryTraceSource mem = MemoryTraceSource::capture(file);
    const TraceInst *run = nullptr;
    std::uint64_t len = 0;
    std::uint64_t pos = 0;
    for (auto _ : state) {
        if (pos >= len) {
            run = mem.acquireRun(~std::uint64_t{0}, len);
            if (run == nullptr) {
                mem.reset();
                run = mem.acquireRun(~std::uint64_t{0}, len);
            }
            pos = 0;
        }
        benchmark::DoNotOptimize(run[pos].pc);
        ++pos;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DecodeRunMemory);

void
BM_TraceGeneration(benchmark::State &state)
{
    auto params = Workloads::byName("media_streaming");
    params.instructions = 1u << 20;
    SyntheticWorkload trace(params);
    TraceInst inst;
    for (auto _ : state) {
        if (!trace.next(inst))
            trace.reset();
        benchmark::DoNotOptimize(inst.pc);
    }
}
BENCHMARK(BM_TraceGeneration);

} // namespace

BENCHMARK_MAIN();
