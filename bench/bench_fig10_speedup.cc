/**
 * @file
 * Regenerates Fig. 10: speedup of every compared scheme (replacement
 * policies, bypassing policies, victim caches, larger L1i, ACIC, and
 * the OPT oracles) over the LRU + FDP baseline, per datacenter
 * workload with geomean.
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    static const Scheme kSchemes[] = {
        Scheme::Srrip,  Scheme::Ship,   Scheme::Harmony,
        Scheme::Ghrp,   Scheme::Dsb,    Scheme::Obm,
        Scheme::Vvc,    Scheme::Vc3k,   Scheme::Acic,
        Scheme::L1i36k, Scheme::Opt,    Scheme::OptBypass,
    };

    TablePrinter table(
        "Fig. 10: speedup over LRU baseline with fetch-directed "
        "prefetching");
    std::vector<std::string> header{"workload"};
    for (const Scheme s : kSchemes)
        header.push_back(schemeName(s));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> per_scheme;
    for (auto &run : runs) {
        std::vector<std::string> row{run.name};
        for (const Scheme s : kSchemes) {
            const SimResult result = run.context->run(s);
            const double speedup = speedupOf(run.baseline, result);
            per_scheme[schemeName(s)].push_back(speedup);
            row.push_back(TablePrinter::fmt(speedup, 4));
        }
        table.addRow(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (const Scheme s : kSchemes)
        gmean_row.push_back(
            TablePrinter::fmt(geomean(per_scheme[schemeName(s)]), 4));
    table.addRow(gmean_row);
    table.addNote("paper gmeans: GHRP best prior (< ACIC 1.0223); "
                  "VVC slows down; OPT 1.0398; OPT-bypass ~= OPT");
    table.print();
    return 0;
}
