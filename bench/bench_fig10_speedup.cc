/**
 * @file
 * Regenerates Fig. 10: speedup of every compared scheme (replacement
 * policies, bypassing policies, victim caches, larger L1i, ACIC, and
 * the OPT oracles) over the LRU + FDP baseline, per datacenter
 * workload with geomean. Runs the whole matrix on the experiment
 * driver: one shared trace + oracle per workload, all (workload,
 * scheme) cells fanned out across hardware threads.
 */

#include "bench_util.hh"
#include "driver/experiment.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    ExperimentSpec spec;
    spec.workloads = datacenterEntries();
    spec.schemes = parseSchemeList(
        "lru,srrip,ship,harmony,ghrp,dsb,obm,vvc,vc3k,acic,"
        "l1i36k,opt,opt_bypass");
    spec.instructions = benchTraceLength();

    ExperimentDriver driver(spec);
    const auto cells = driver.run();
    const std::size_t n_schemes = spec.schemes.size();

    TablePrinter table(
        "Fig. 10: speedup over LRU baseline with fetch-directed "
        "prefetching");
    std::vector<std::string> header{"workload"};
    // Column 0 (the baseline itself) is the denominator, not a bar.
    for (std::size_t s = 1; s < n_schemes; ++s)
        header.push_back(schemeName(spec.schemes[s]));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> per_scheme;
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        const SimResult &baseline = cells[w * n_schemes].result;
        std::vector<std::string> row{spec.workloads[w].name()};
        for (std::size_t s = 1; s < n_schemes; ++s) {
            const SimResult &result = cells[w * n_schemes + s].result;
            const double speedup = speedupOf(baseline, result);
            per_scheme[schemeName(spec.schemes[s])].push_back(
                speedup);
            row.push_back(TablePrinter::fmt(speedup, 4));
        }
        table.addRow(row);
    }
    std::vector<std::string> gmean_row{"gmean"};
    for (std::size_t s = 1; s < n_schemes; ++s)
        gmean_row.push_back(TablePrinter::fmt(
            geomean(per_scheme[schemeName(spec.schemes[s])]), 4));
    table.addRow(gmean_row);
    table.addNote("paper gmeans: GHRP best prior (< ACIC 1.0223); "
                  "VVC slows down; OPT 1.0398; OPT-bypass ~= OPT");
    table.print();
    return 0;
}
