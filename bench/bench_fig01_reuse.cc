/**
 * @file
 * Regenerates Fig. 1a (reuse-distance distribution per datacenter
 * workload, bucketed {0, 1-16, 16-512, 512-1024, 1024-10000}) and
 * Fig. 1b (Markov chain of successive reuse distances of the same
 * block in media streaming).
 */

#include "bench_util.hh"
#include "sim/oracle.hh"
#include "sim/reuse.hh"
#include "trace/synthetic.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    TablePrinter fig1a(
        "Fig. 1a: reuse-distance distribution (% of accesses)");
    fig1a.setHeader({"workload", "0", "1-16", "16-512", "512-1024",
                     "1024-10000", ">10000"});

    std::unique_ptr<ReuseProfiler> media_profiler;
    for (auto params : Workloads::datacenter()) {
        params.instructions = benchTraceLength();
        SyntheticWorkload trace(params);
        const DemandOracle oracle = DemandOracle::build(trace);
        auto profiler =
            std::make_unique<ReuseProfiler>(oracle.length());
        for (std::uint64_t i = 0; i < oracle.length(); ++i)
            profiler->feed(oracle.blockAt(i));
        const Histogram &hist = profiler->distribution();
        fig1a.addRow({params.name, TablePrinter::fmt(hist.percent(0), 2),
                      TablePrinter::fmt(hist.percent(1), 2),
                      TablePrinter::fmt(hist.percent(2), 2),
                      TablePrinter::fmt(hist.percent(3), 2),
                      TablePrinter::fmt(hist.percent(4), 2),
                      TablePrinter::fmt(hist.percent(5), 2)});
        if (params.name == "media_streaming")
            media_profiler = std::move(profiler);
    }
    fig1a.addNote("paper: distance-0 dominates (spatial bursts); "
                  "web search/neo4j/data caching/media streaming "
                  "carry mass in (512,1024]; tpcc/wikipedia beyond");
    fig1a.print();

    TablePrinter fig1b("Fig. 1b: Markov chain of successive reuse "
                       "distances, media streaming (row -> col "
                       "transition probability)");
    static const char *kLabels[] = {"0",        "1-16",
                                    "16-512",   "512-1024",
                                    "1024-10k", ">10k"};
    fig1b.setHeader({"from\\to", kLabels[0], kLabels[1], kLabels[2],
                     kLabels[3], kLabels[4], kLabels[5]});
    for (std::size_t from = 0; from < ReuseProfiler::kBuckets;
         ++from) {
        std::vector<std::string> row{kLabels[from]};
        for (std::size_t to = 0; to < ReuseProfiler::kBuckets; ++to)
            row.push_back(TablePrinter::fmt(
                media_profiler->transitionProb(from, to), 3));
        fig1b.addRow(row);
    }
    fig1b.addNote("paper: self-transitions and transitions into "
                  "distance 0 dominate (burstiness)");
    fig1b.print();
    return 0;
}
