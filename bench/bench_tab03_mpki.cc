/**
 * @file
 * Prints Table II (simulation parameters) and regenerates Table III:
 * baseline (LRU + fetch-directed prefetching) L1i MPKI of the ten
 * datacenter applications, next to the paper's reported values. The
 * ten baseline runs execute in parallel on the experiment driver.
 */

#include "bench_util.hh"
#include "driver/experiment.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    const SimConfig config;
    TablePrinter tab2("Table II: simulation parameters");
    tab2.setHeader({"parameter", "value"});
    tab2.addRow({"Fetch width",
                 std::to_string(config.fetchWidth) + "-wide, " +
                     std::to_string(config.ftqEntries) +
                     "-entry FTQ"});
    tab2.addRow({"Decode queue",
                 std::to_string(config.decodeQueueEntries) +
                     " entries"});
    tab2.addRow({"BTB", std::to_string(config.btbEntries) +
                            "-entry, " +
                            std::to_string(config.btbWays) + "-way"});
    tab2.addRow({"Branch predictor", "TAGE"});
    tab2.addRow({"L1 I-Cache",
                 "32KB, 8-way, " + std::to_string(config.l1iMshrs) +
                     " MSHRs"});
    tab2.addRow({"L2",
                 "512KB, 8-way, " +
                     std::to_string(config.hierarchy.l2Latency) +
                     "-cycle"});
    tab2.addRow({"L3",
                 "2MB, 16-way, " +
                     std::to_string(config.hierarchy.l3Latency) +
                     "-cycle"});
    tab2.addRow({"DRAM", "+" +
                             std::to_string(
                                 config.hierarchy.dramLatency) +
                             " cycles"});
    tab2.addRow({"Prefetcher", "fetch-directed (FDP)"});
    tab2.print();

    ExperimentSpec spec;
    spec.workloads = datacenterEntries();
    spec.schemes = {parseScheme("lru")};
    spec.config = config;
    spec.instructions = benchTraceLength();

    ExperimentDriver driver(spec);
    const auto cells = driver.run();

    TablePrinter tab3("Table III: baseline L1i MPKI (LRU + FDP)");
    tab3.setHeader({"workload", "measured MPKI", "paper MPKI", "IPC",
                    "br-misp/ki"});
    for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
        const SimResult &baseline = cells[w].result;
        const double paper_mpki =
            spec.workloads[w].params.paperMpki;
        tab3.addRow(
            {spec.workloads[w].name(),
             TablePrinter::fmt(baseline.mpki(), 1),
             paper_mpki > 0.0 ? TablePrinter::fmt(paper_mpki, 1)
                              : "-",
             TablePrinter::fmt(baseline.ipc(), 2),
             TablePrinter::fmt(
                 1000.0 *
                     static_cast<double>(baseline.branchMispredicts) /
                     static_cast<double>(baseline.instructions),
                 1)});
    }
    tab3.addNote("absolute MPKI differs from the paper's testbed; "
                 "the cross-workload ordering is the reproduced "
                 "property");
    tab3.print();
    return 0;
}
