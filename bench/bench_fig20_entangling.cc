/**
 * @file
 * Regenerates Fig. 20 (speedup) and Fig. 21 (MPKI reduction) with the
 * entangling instruction prefetcher as the baseline prefetcher
 * instead of FDP, comparing GHRP, 36 KB L1i, ACIC, and OPT. The
 * paper's point: a stronger prefetcher raises baseline hit rate, yet
 * ACIC still improves on top of it.
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    SimConfig config;
    config.prefetcher = PrefetcherKind::Entangling;
    auto runs = buildBaselines(Workloads::datacenter(), config);

    const std::vector<SchemeSpec> kSchemes =
        parseSchemeList("ghrp,l1i36k,acic,opt");

    TablePrinter fig20(
        "Fig. 20: speedup over entangling-prefetcher baseline");
    TablePrinter fig21(
        "Fig. 21: L1i MPKI reduction over entangling baseline");
    std::vector<std::string> header{"workload"};
    for (const SchemeSpec &s : kSchemes)
        header.push_back(schemeName(s));
    fig20.setHeader(header);
    fig21.setHeader(header);

    std::map<std::string, std::vector<double>> speedups, reductions;
    for (auto &run : runs) {
        std::vector<std::string> srow{run.name}, rrow{run.name};
        for (const SchemeSpec &s : kSchemes) {
            const SimResult r = run.context->run(s);
            const double sp = speedupOf(run.baseline, r);
            const double red = mpkiReductionOf(run.baseline, r);
            speedups[schemeName(s)].push_back(sp);
            reductions[schemeName(s)].push_back(red);
            srow.push_back(TablePrinter::fmt(sp, 4));
            rrow.push_back(TablePrinter::pct(red, 1));
        }
        fig20.addRow(srow);
        fig21.addRow(rrow);
    }
    std::vector<std::string> grow{"gmean"}, arow{"Avg"};
    for (const SchemeSpec &s : kSchemes) {
        grow.push_back(
            TablePrinter::fmt(geomean(speedups[schemeName(s)]), 4));
        arow.push_back(
            TablePrinter::pct(mean(reductions[schemeName(s)]), 1));
    }
    fig20.addRow(grow);
    fig21.addRow(arow);
    fig20.addNote("paper: ACIC 1.0102 gmean, 6.71% MPKI reduction "
                  "on top of the entangling prefetcher");
    fig20.print();
    fig21.print();
    return 0;
}
