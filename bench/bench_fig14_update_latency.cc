/**
 * @file
 * Regenerates Fig. 14: L1i MPKI reduction of ACIC with the realistic
 * 2-cycle parallel predictor-update pipeline vs. an instant-update
 * idealization. The paper's point: staleness from the update latency
 * does not measurably hurt.
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    TablePrinter table("Fig. 14: MPKI reduction, parallel (2-cycle) "
                       "vs instant predictor update");
    table.setHeader({"workload", "parallel update",
                     "instant update"});
    std::vector<double> red_parallel, red_instant;
    for (auto &run : runs) {
        const SimResult parallel = run.context->run("acic");
        const SimResult instant =
            run.context->run("acic_instant");
        red_parallel.push_back(
            mpkiReductionOf(run.baseline, parallel));
        red_instant.push_back(
            mpkiReductionOf(run.baseline, instant));
        table.addRow({run.name,
                      TablePrinter::pct(red_parallel.back(), 2),
                      TablePrinter::pct(red_instant.back(), 2)});
    }
    table.addRow({"Avg", TablePrinter::pct(mean(red_parallel), 2),
                  TablePrinter::pct(mean(red_instant), 2)});
    table.addNote("paper: the two schemes are indistinguishable, so "
                  "the update pipeline stays off the critical path");
    table.print();
    return 0;
}
