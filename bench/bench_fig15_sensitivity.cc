/**
 * @file
 * Regenerates Fig. 15: geomean speedup of ACIC under the paper's
 * sensitivity axes -- HRT entries, history length, PT counter width,
 * i-Filter slots, and CSHR partial-tag width -- around the default
 * Table I configuration.
 *
 * The sweep is declared as registry spec strings and executed on the
 * parallel experiment driver: the same points are reachable from the
 * command line, e.g.
 *   acic_run sweep --grid 'acic(filter={8,16,32})' \
 *            --workloads all-datacenter
 */

#include "bench_util.hh"
#include "driver/experiment.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    // (figure label, registry spec) pairs; "lru" is the denominator.
    static const std::pair<const char *, const char *> kVariants[] = {
        {"default", "acic"},
        {"2k HRT entries", "acic(hrt=2048)"},
        {"512 HRT entries", "acic(hrt=512)"},
        {"8-bit history", "acic(history=8)"},
        {"10-bit history", "acic(history=10)"},
        {"2-bit counter", "acic(counter=2)"},
        {"8-bit counter", "acic(counter=8)"},
        {"8-slot i-Filter", "acic(filter=8)"},
        {"32-slot i-Filter", "acic(filter=32)"},
        {"7-bit CSHR tag", "acic(tag=7)"},
        {"27-bit CSHR tag", "acic(tag=27)"},
    };

    ExperimentSpec spec;
    spec.workloads = datacenterEntries();
    spec.schemes = {parseScheme("lru")};
    for (const auto &[label, text] : kVariants) {
        (void)label;
        spec.schemes.push_back(parseScheme(text));
    }
    spec.instructions = benchTraceLength();

    ExperimentDriver driver(spec);
    const auto cells = driver.run();
    const std::size_t n_schemes = spec.schemes.size();

    TablePrinter table("Fig. 15: ACIC sensitivity (gmean speedup "
                       "over LRU+FDP)");
    table.setHeader({"configuration", "gmean speedup"});
    for (std::size_t s = 1; s < n_schemes; ++s) {
        std::vector<double> speedups;
        for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
            const SimResult &baseline =
                cells[w * n_schemes].result;
            speedups.push_back(
                speedupOf(baseline, cells[w * n_schemes + s].result));
        }
        table.addRow({kVariants[s - 1].first,
                      TablePrinter::fmt(geomean(speedups), 4)});
    }
    table.addNote("paper: larger i-Filter helps most; smaller "
                  "i-Filter, short PT counters, and 7-bit CSHR tags "
                  "hurt most; 10-bit history barely helps");
    table.print();
    return 0;
}
