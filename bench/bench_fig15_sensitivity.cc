/**
 * @file
 * Regenerates Fig. 15: geomean speedup of ACIC under the paper's
 * sensitivity axes -- HRT entries, history length, PT counter width,
 * i-Filter slots, and CSHR partial-tag width -- around the default
 * Table I configuration.
 */

#include <functional>

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

namespace {

struct Variant
{
    std::string label;
    PredictorConfig predictor;
    CshrConfig cshr;
    std::uint32_t filterEntries = 16;
};

} // namespace

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    std::vector<Variant> variants;
    variants.push_back({"default", {}, {}, 16});
    {
        Variant v{"2k HRT entries", {}, {}, 16};
        v.predictor.hrtEntries = 2048;
        variants.push_back(v);
    }
    {
        Variant v{"512 HRT entries", {}, {}, 16};
        v.predictor.hrtEntries = 512;
        variants.push_back(v);
    }
    {
        Variant v{"8-bit history", {}, {}, 16};
        v.predictor.historyBits = 8;
        variants.push_back(v);
    }
    {
        Variant v{"10-bit history", {}, {}, 16};
        v.predictor.historyBits = 10;
        variants.push_back(v);
    }
    {
        Variant v{"2-bit counter", {}, {}, 16};
        v.predictor.counterBits = 2;
        variants.push_back(v);
    }
    {
        Variant v{"8-bit counter", {}, {}, 16};
        v.predictor.counterBits = 8;
        variants.push_back(v);
    }
    variants.push_back({"8-slot i-Filter", {}, {}, 8});
    variants.push_back({"32-slot i-Filter", {}, {}, 32});
    {
        Variant v{"7-bit CSHR tag", {}, {}, 16};
        v.cshr.tagBits = 7;
        variants.push_back(v);
    }
    {
        Variant v{"27-bit CSHR tag", {}, {}, 16};
        v.cshr.tagBits = 27;
        variants.push_back(v);
    }

    TablePrinter table("Fig. 15: ACIC sensitivity (gmean speedup "
                       "over LRU+FDP)");
    table.setHeader({"configuration", "gmean speedup"});
    for (const auto &variant : variants) {
        std::vector<double> speedups;
        for (auto &run : runs) {
            auto org = makeAcicOrg(run.context->config(),
                                   variant.predictor, variant.cshr,
                                   variant.filterEntries);
            const SimResult r = run.context->run(*org);
            speedups.push_back(speedupOf(run.baseline, r));
        }
        table.addRow({variant.label,
                      TablePrinter::fmt(geomean(speedups), 4)});
    }
    table.addNote("paper: larger i-Filter helps most; smaller "
                  "i-Filter, short PT counters, and 7-bit CSHR tags "
                  "hurt most; 10-bit history barely helps");
    table.print();
    return 0;
}
