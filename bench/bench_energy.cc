/**
 * @file
 * Regenerates the Sec. III-D energy claim: chip energy of ACIC vs.
 * the LRU+FDP baseline, charging ACIC's i-Filter/HRT/PT/CSHR activity
 * and crediting the shorter execution time (paper: -0.63% on
 * average).
 */

#include "bench_util.hh"
#include "sim/energy.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    TablePrinter table("Sec. III-D: chip energy, ACIC vs baseline");
    table.setHeader({"workload", "baseline (mJ)", "ACIC (mJ)",
                     "delta"});
    std::vector<double> deltas;
    for (auto &run : runs) {
        const SimResult acic = run.context->run("acic");
        const EnergyBreakdown base_e =
            computeEnergy(run.baseline, {}, false);
        const EnergyBreakdown acic_e = computeEnergy(acic, {}, true);
        const double delta =
            acic_e.totalNj() / base_e.totalNj() - 1.0;
        deltas.push_back(delta);
        table.addRow({run.name,
                      TablePrinter::fmt(base_e.totalNj() / 1e6, 3),
                      TablePrinter::fmt(acic_e.totalNj() / 1e6, 3),
                      TablePrinter::pct(delta, 2)});
    }
    table.addRow({"Avg", "", "", TablePrinter::pct(mean(deltas), 2)});
    table.addNote("paper: ACIC saves 0.63% chip energy on average "
                  "despite the added structures");
    table.print();
    return 0;
}
