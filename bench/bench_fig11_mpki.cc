/**
 * @file
 * Regenerates Fig. 11: L1i MPKI reduction of every compared scheme
 * over the LRU + FDP baseline, plus the Sec. IV-D replacement-
 * accuracy statistic (fraction of evictions matching OPT's choice).
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    const std::vector<SchemeSpec> kSchemes = parseSchemeList(
        "srrip,ship,harmony,ghrp,dsb,obm,vvc,vc3k,acic,l1i36k,"
        "opt,opt_bypass");

    TablePrinter table("Fig. 11: L1i MPKI reduction over LRU+FDP");
    std::vector<std::string> header{"workload"};
    for (const SchemeSpec &s : kSchemes)
        header.push_back(schemeName(s));
    table.setHeader(header);

    std::map<std::string, std::vector<double>> reductions;
    std::map<std::string, std::vector<double>> accuracy;
    for (auto &run : runs) {
        std::vector<std::string> row{run.name};
        for (const SchemeSpec &s : kSchemes) {
            const SimResult result = run.context->run(s);
            const double red = mpkiReductionOf(run.baseline, result);
            reductions[schemeName(s)].push_back(red);
            row.push_back(TablePrinter::pct(red, 1));
            if (result.orgStats.has("plain.evictions_judged")) {
                accuracy[schemeName(s)].push_back(
                    result.orgStats.ratio(
                        "plain.evictions_match_opt",
                        "plain.evictions_judged"));
            }
        }
        table.addRow(row);
    }
    std::vector<std::string> avg_row{"Avg"};
    for (const SchemeSpec &s : kSchemes)
        avg_row.push_back(
            TablePrinter::pct(mean(reductions[schemeName(s)]), 1));
    table.addRow(avg_row);
    table.addNote("paper: ACIC 18.14% avg (55.85% of OPT's "
                  "reduction); GHRP 15.64% of OPT's");
    table.print();

    TablePrinter acc("Sec. IV-D: replacement accuracy (evictions "
                     "matching OPT's victim)");
    acc.setHeader({"scheme", "avg accuracy"});
    for (const auto &[name, values] : accuracy)
        acc.addRow({name, TablePrinter::pct(mean(values), 1)});
    acc.addNote("paper: GHRP 17.90% average");
    acc.print();
    return 0;
}
