/**
 * @file
 * Regenerates Fig. 12a (ACIC bypass accuracy restricted to decisions
 * where at least one of the two blocks is re-referenced within a
 * distance bound) and Fig. 12b (MPKI reduction of a 60%-accurate
 * random bypass vs. ACIC).
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    // Fig. 12a: accumulate range-restricted accuracy across runs.
    static const std::uint64_t kRanges[] = {2048, 1024, 512, 256,
                                            128};
    std::uint64_t all_total = 0, all_correct = 0;
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>>
        by_range;
    std::vector<double> red_acic, red_random;

    TablePrinter fig12b("Fig. 12b: MPKI reduction, random 60% bypass "
                        "vs ACIC (over LRU+FDP)");
    fig12b.setHeader({"workload", "Random bypass", "ACIC"});

    for (auto &run : runs) {
        const SimResult acic = run.context->run("acic");
        const SimResult random =
            run.context->run("random_bypass");
        all_total += acic.orgStats.get("acic.decisions");
        all_correct += acic.orgStats.get("acic.decisions_correct");
        for (const std::uint64_t r : kRanges) {
            by_range[r].first += acic.orgStats.get(
                "acic.decisions_r" + std::to_string(r));
            by_range[r].second += acic.orgStats.get(
                "acic.correct_r" + std::to_string(r));
        }
        red_acic.push_back(mpkiReductionOf(run.baseline, acic));
        red_random.push_back(mpkiReductionOf(run.baseline, random));
        fig12b.addRow({run.name,
                       TablePrinter::pct(red_random.back(), 1),
                       TablePrinter::pct(red_acic.back(), 1)});
    }

    TablePrinter fig12a("Fig. 12a: avg ACIC bypass accuracy by "
                        "reuse-distance range");
    fig12a.setHeader({"range", "accuracy"});
    fig12a.addRow({"[0, InF)",
                   TablePrinter::pct(
                       all_total == 0
                           ? 0.0
                           : static_cast<double>(all_correct) /
                                 static_cast<double>(all_total),
                       1)});
    for (const std::uint64_t r : {2048ull, 1024ull, 512ull, 256ull,
                                  128ull}) {
        const auto &[total, correct] = by_range[r];
        fig12a.addRow({"[0, " + std::to_string(r) + ")",
                       TablePrinter::pct(
                           total == 0
                               ? 0.0
                               : static_cast<double>(correct) /
                                     static_cast<double>(total),
                           1)});
    }
    fig12a.addNote("paper: 60.89% overall, rising toward ~78% for "
                   "[0,128) -- accuracy matters where a block is "
                   "re-referenced soon");
    fig12a.print();

    fig12b.addRow({"Avg", TablePrinter::pct(mean(red_random), 1),
                   TablePrinter::pct(mean(red_acic), 1)});
    fig12b.addNote("paper: random-60% achieves 7.65% reduction, "
                   "42.17% of ACIC's 18.14%");
    fig12b.print();
    return 0;
}
