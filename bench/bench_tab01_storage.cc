/**
 * @file
 * Regenerates Table I (ACIC storage breakdown for the 32 KB 8-way
 * i-cache configuration) and Table IV's storage-overhead column for
 * every compared scheme.
 */

#include "common/table.hh"
#include "core/storage.hh"

using namespace acic;

int
main()
{
    const auto breakdown = acicStorageBreakdown();
    TablePrinter tab1(
        "Table I: storage overhead of ACIC (32 KB, 8-way i-cache)");
    tab1.setHeader({"component", "configuration", "KB"});
    for (const auto &row : breakdown)
        tab1.addRow({row.component, row.detail,
                     TablePrinter::fmt(row.kilobytes(), 4)});
    tab1.addRow({"Total", "",
                 TablePrinter::fmt(
                     static_cast<double>(totalBits(breakdown)) / 8.0 /
                         1024.0,
                     4)});
    tab1.addNote("paper: i-Filter 1.123KB, HRT 0.5KB, PT 10B, "
                 "queues 100B, CSHR 0.9375KB, total 2.67KB");
    tab1.print();

    TablePrinter tab4("Table IV: storage overhead of every scheme");
    tab4.setHeader({"scheme", "parameters", "KB"});
    for (const auto &row : schemeStorageTable())
        tab4.addRow({row.component, row.detail,
                     TablePrinter::fmt(row.kilobytes(), 3)});
    tab4.addNote("paper: SRRIP 0.125, SHiP 2.88, Hawkeye/Harmony "
                 "4.69, GHRP 4.06, DSB 0.48, OBM 1.41, VVC 9.06, "
                 "VC8K 8, 40KB-L1i 8, ACIC 2.67 KB");
    tab4.print();
    return 0;
}
