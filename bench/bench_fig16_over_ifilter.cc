/**
 * @file
 * Regenerates Fig. 16: ACIC's speedup over an FDP baseline that is
 * *already equipped with an i-Filter* (always-insert). Real cores
 * carry small fetch buffers, so this isolates the benefit of the
 * admission/bypass policy itself.
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    // Baseline here is the i-Filter + always-insert organization.
    auto runs = buildBaselines(Workloads::datacenter(), SimConfig{},
                               "always_insert");

    TablePrinter table("Fig. 16: ACIC speedup over FDP baseline "
                       "with i-Filter (always-insert)");
    table.setHeader({"workload", "speedup"});
    std::vector<double> speedups;
    for (auto &run : runs) {
        const SimResult r = run.context->run("acic");
        speedups.push_back(speedupOf(run.baseline, r));
        table.addRow({run.name,
                      TablePrinter::fmt(speedups.back(), 4)});
    }
    table.addRow({"gmean", TablePrinter::fmt(geomean(speedups), 4)});
    table.addNote("paper: the bypass policy alone gives 1.0165 "
                  "geomean over the i-Filter-equipped baseline");
    table.print();
    return 0;
}
