/**
 * @file
 * Regenerates Fig. 13: the percentage of i-Filter victims that ACIC's
 * predictor admits into the i-cache, per workload. The paper reads
 * this as evidence of dynamic per-application adaptation (30-99%).
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    TablePrinter table(
        "Fig. 13: %% of i-Filter victims inserted into i-cache");
    table.setHeader({"workload", "victims", "inserted", "percent"});
    for (auto &run : runs) {
        const SimResult r = run.context->run("acic");
        const std::uint64_t victims =
            r.orgStats.get("filtered.filter_victims");
        const std::uint64_t admitted =
            r.orgStats.get("filtered.victims_admitted");
        table.addRow({run.name, std::to_string(victims),
                      std::to_string(admitted),
                      TablePrinter::pct(
                          victims == 0
                              ? 0.0
                              : static_cast<double>(admitted) /
                                    static_cast<double>(victims),
                          1)});
    }
    table.addNote("paper: 30-99% across applications; the four "
                  "(512,1024]-heavy apps filter the most");
    table.print();
    return 0;
}
