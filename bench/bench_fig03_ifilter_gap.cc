/**
 * @file
 * Regenerates Fig. 3a (speedup of always-insert i-Filter, bypass with
 * access-count comparison, and the OPT replacement policy over the
 * LRU+FDP baseline) and Fig. 3b (histogram of incoming-minus-outgoing
 * next-use gap at i-Filter -> i-cache insertion, media streaming).
 */

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    TablePrinter fig3a("Fig. 3a: speedup over LRU+FDP baseline");
    fig3a.setHeader({"workload", "Always insert", "Access count",
                     "OPT replacement"});
    std::vector<double> s_always, s_count, s_opt;
    std::map<std::string, SimResult> always_results;
    for (auto &run : runs) {
        const SimResult always = run.context->run("always_insert");
        const SimResult count = run.context->run("access_count");
        const SimResult opt = run.context->run("opt");
        always_results[run.name] = always;
        s_always.push_back(speedupOf(run.baseline, always));
        s_count.push_back(speedupOf(run.baseline, count));
        s_opt.push_back(speedupOf(run.baseline, opt));
        fig3a.addRow({run.name,
                      TablePrinter::fmt(s_always.back(), 4),
                      TablePrinter::fmt(s_count.back(), 4),
                      TablePrinter::fmt(s_opt.back(), 4)});
    }
    fig3a.addRow({"gmean", TablePrinter::fmt(geomean(s_always), 4),
                  TablePrinter::fmt(geomean(s_count), 4),
                  TablePrinter::fmt(geomean(s_opt), 4)});
    fig3a.addNote("paper: always-insert 1.0057, access-count 1.0102, "
                  "OPT 1.0398 geomean");
    fig3a.print();

    // Fig. 3b: gap buckets recorded by the always-insert run.
    const SimResult &media = always_results["media_streaming"];
    static const char *kGapLabels[] = {
        "-InF..-10000", "-10000..-1000", "-1000..-100", "-100..-10",
        "-10..0",       "0..10",         "10..100",     "100..1000",
        "1000..10000",  "10000..InF"};
    std::uint64_t total = 0;
    std::uint64_t positive = 0;
    std::vector<std::uint64_t> counts;
    for (std::size_t b = 0; b < 10; ++b) {
        const std::uint64_t c = media.orgStats.get(
            "acic.gap_bucket_" + std::to_string(b));
        counts.push_back(c);
        total += c;
        if (b >= 5)
            positive += c;
    }
    TablePrinter fig3b(
        "Fig. 3b: (incoming - outgoing) next-use gap at insertion, "
        "media streaming, always-insert");
    fig3b.setHeader({"gap bucket", "percent"});
    for (std::size_t b = 0; b < 10; ++b)
        fig3b.addRow({kGapLabels[b],
                      TablePrinter::pct(total == 0
                                            ? 0.0
                                            : static_cast<double>(
                                                  counts[b]) /
                                                  static_cast<double>(
                                                      total))});
    fig3b.addRow({"> 0 (wrong insertions)",
                  TablePrinter::pct(total == 0
                                        ? 0.0
                                        : static_cast<double>(
                                              positive) /
                                              static_cast<double>(
                                                  total))});
    fig3b.addNote("paper: 38.38% of insertions bring in a block with "
                  "a larger reuse distance than the block evicted");
    fig3b.print();
    return 0;
}
