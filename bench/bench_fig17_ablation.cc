/**
 * @file
 * Regenerates Fig. 17: geomean speedup of ACIC with pieces removed or
 * simplified -- no i-Filter (1-slot filter, every fill judged
 * immediately), i-Filter only (no admission), global-history
 * predictor, and bimodal predictor -- against the full design.
 */

#include <functional>

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto runs = buildBaselines(Workloads::datacenter());

    struct Variant
    {
        std::string label;
        std::function<SimResult(WorkloadRun &)> run;
    };
    std::vector<Variant> variants;
    variants.push_back({"default ACIC", [](WorkloadRun &run) {
        return run.context->run(Scheme::Acic);
    }});
    variants.push_back({"no i-Filter", [](WorkloadRun &run) {
        auto org = makeAcicOrg(run.context->config(),
                               PredictorConfig{}, CshrConfig{},
                               /*filter_entries=*/1);
        return run.context->run(*org);
    }});
    variants.push_back({"i-Filter only", [](WorkloadRun &run) {
        return run.context->run(Scheme::IFilterOnly);
    }});
    variants.push_back({"global-history predictor",
                        [](WorkloadRun &run) {
        return run.context->run(Scheme::AcicGlobalHistory);
    }});
    variants.push_back({"bimodal predictor", [](WorkloadRun &run) {
        return run.context->run(Scheme::AcicBimodal);
    }});

    TablePrinter table("Fig. 17: speedup of ACIC with simpler "
                       "designs over LRU+FDP (gmean)");
    table.setHeader({"design", "gmean speedup"});
    for (auto &variant : variants) {
        std::vector<double> speedups;
        for (auto &run : runs)
            speedups.push_back(
                speedupOf(run.baseline, variant.run(run)));
        table.addRow({variant.label,
                      TablePrinter::fmt(geomean(speedups), 4)});
    }
    table.addNote("paper: turning off the i-Filter or the predictor, "
                  "or degrading it to global-history/bimodal, all "
                  "lose performance vs. the full ACIC");
    table.print();
    return 0;
}
