/**
 * @file
 * Regenerates Fig. 17: geomean speedup of ACIC with pieces removed or
 * simplified -- no i-Filter (1-slot filter, every fill judged
 * immediately), i-Filter only (no admission), global-history
 * predictor, and bimodal predictor -- against the full design.
 *
 * Every ablation is a registry spec string run through the parallel
 * experiment driver; the same points are reachable from the command
 * line via `acic_run run --schemes`.
 */

#include "bench_util.hh"
#include "driver/experiment.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    // (figure label, registry spec) pairs; "lru" is the denominator.
    static const std::pair<const char *, const char *> kVariants[] = {
        {"default ACIC", "acic"},
        {"no i-Filter", "acic(filter=1)"},
        {"i-Filter only", "ifilter_only"},
        {"global-history predictor", "acic_global_history"},
        {"bimodal predictor", "acic_bimodal"},
    };

    ExperimentSpec spec;
    spec.workloads = datacenterEntries();
    spec.schemes = {parseScheme("lru")};
    for (const auto &[label, text] : kVariants) {
        (void)label;
        spec.schemes.push_back(parseScheme(text));
    }
    spec.instructions = benchTraceLength();

    ExperimentDriver driver(spec);
    const auto cells = driver.run();
    const std::size_t n_schemes = spec.schemes.size();

    TablePrinter table("Fig. 17: speedup of ACIC with simpler "
                       "designs over LRU+FDP (gmean)");
    table.setHeader({"design", "gmean speedup"});
    for (std::size_t s = 1; s < n_schemes; ++s) {
        std::vector<double> speedups;
        for (std::size_t w = 0; w < spec.workloads.size(); ++w) {
            const SimResult &baseline =
                cells[w * n_schemes].result;
            speedups.push_back(
                speedupOf(baseline, cells[w * n_schemes + s].result));
        }
        table.addRow({kVariants[s - 1].first,
                      TablePrinter::fmt(geomean(speedups), 4)});
    }
    table.addNote("paper: turning off the i-Filter or the predictor, "
                  "or degrading it to global-history/bimodal, all "
                  "lose performance vs. the full ACIC");
    table.print();
    return 0;
}
