/**
 * @file
 * bench_throughput — host-side simulator throughput: simulated
 * instructions per host second, per scheme. This is the number the
 * stats hot path and any other per-fetch-bundle work is judged by;
 * sweep wall-clock is (cells x instructions) / this rate. Each
 * scheme is run several times and the best repetition is reported,
 * so the table is a noise-resistant before/after comparison for
 * performance PRs.
 *
 * With an interval count the bench also measures interval-parallel
 * throughput (runShardedCell: K concurrently simulated regions of
 * the same trace, merged) and reports the intra-workload scaling
 * each scheme achieves over its own serial pass.
 *
 * Results are also written to BENCH_throughput.json (driver emitter
 * format) so the performance trajectory is tracked across PRs.
 *
 * Usage: bench_throughput [scheme-list] [repetitions] [intervals]
 *   scheme-list   registry specs, default
 *                 "lru,srrip,acic,acic_instant,opt_bypass"
 *   repetitions   timed runs per scheme, default 3 (best is kept)
 *   intervals     interval-mode shard count, default 0 (off)
 * ACIC_TRACE_LEN overrides the 2M-instruction default trace length.
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "bench_util.hh"
#include "common/telemetry.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "sim/engine.hh"
#include "trace/streaming.hh"
#include "trace/synthetic.hh"

using namespace acic;
using namespace acic::bench;

namespace {

/** Best-of-@p reps wall seconds of @p fn. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const auto start = std::chrono::steady_clock::now();
        fn();
        const double secs =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (best == 0.0 || secs < best)
            best = secs;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *list =
        argc > 1 ? argv[1] : "lru,srrip,acic,acic_instant,opt_bypass";
    const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
    if (reps <= 0) {
        std::fprintf(stderr, "repetitions must be positive\n");
        return 2;
    }
    const int intervals = argc > 3 ? std::atoi(argv[3]) : 0;
    if (intervals < 0) {
        std::fprintf(stderr, "intervals must be non-negative\n");
        return 2;
    }
    const std::vector<SchemeSpec> schemes = parseSchemeList(list);

    // ACIC_BENCH_TELEMETRY=out.jsonl opens the telemetry sink so the
    // timed runs emit phase spans and heartbeats — the bench then
    // measures the *enabled*-mode overhead instead of the default
    // disabled path (one predictable branch, no measurable cost).
    if (const char *tel = std::getenv("ACIC_BENCH_TELEMETRY")) {
        if (!Telemetry::open(tel)) {
            std::fprintf(stderr, "failed opening %s\n", tel);
            return 1;
        }
        std::printf("telemetry enabled -> %s\n", tel);
    }

    // One representative datacenter workload, materialized the way
    // the experiment driver replays it: the trace image and oracle
    // are built once, outside the timed region, so the measurement
    // isolates the simulation loop itself (not synthetic generation).
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = benchTraceLength();
    params = WorkloadContext::withEnvOverrides(params);
    SharedWorkload context(params);
    const double minst =
        static_cast<double>(params.instructions) / 1e6;

    std::vector<BenchRow> rows;

    TablePrinter table("Simulator throughput (" + params.name + ", " +
                       std::to_string(params.instructions) +
                       " instructions, best of " +
                       std::to_string(reps) + ")");
    table.setHeader({"scheme", "seconds", "Minst/s"});
    std::vector<double> serial_secs(schemes.size(), 0.0);
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeSpec &scheme = schemes[s];
        const double secs = bestSeconds(
            reps, [&] { (void)context.run(scheme); });
        serial_secs[s] = secs;
        if (secs <= 0.0) {
            table.addRow({schemeName(scheme), "-", "-"});
            continue;
        }
        table.addRow({schemeName(scheme), TablePrinter::fmt(secs, 3),
                      TablePrinter::fmt(minst / secs, 2)});
        rows.push_back({schemeName(scheme), secs, minst / secs});
    }
    table.addNote("rate = trace instructions / host seconds of "
                  "Simulator::run (org built inside the timer)");
    table.print();

    {
        // Streamed-source lane: the same workload framed once to a
        // file (outside the timer), then consumed the way
        // `acic_run serve` consumes live traffic — decode thread,
        // bounded ring, tee fan-out, no oracle. The @streamed labels
        // record the ingest path's cost trajectory in
        // BENCH_throughput.json without gating the perf check
        // (check_throughput.py compares them only when both sides
        // have them).
        const std::string framed = "bench_stream.acis";
        {
            SyntheticWorkload synth(params);
            std::ofstream out(framed,
                              std::ios::binary | std::ios::trunc);
            StreamTraceWriter writer(out, params.name);
            TraceInst inst;
            while (synth.next(inst))
                writer.append(inst);
            writer.finish();
        }
        const SimConfig config;
        const std::uint64_t warm = static_cast<std::uint64_t>(
            static_cast<double>(params.instructions) *
            config.warmupFraction);
        TablePrinter stable("Streamed-source throughput (framed "
                            "stream, ring " +
                            std::to_string(
                                StreamingTraceSource::
                                    kDefaultRingRecords) +
                            ", best of " + std::to_string(reps) +
                            ")");
        stable.setHeader(
            {"scheme", "seconds", "Minst/s", "vs file-sourced"});
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SchemeSpec &scheme = schemes[s];
            const double secs = bestSeconds(reps, [&] {
                auto source =
                    StreamingTraceSource::openPath(framed);
                StreamTee tee(*source, 1);
                auto org = makeScheme(scheme, config);
                SimEngine engine(config, tee.cursor(0), *org);
                engine.warmUp(warm);
                engine.measure(params.instructions - warm);
                (void)engine.finish();
            });
            if (secs <= 0.0) {
                stable.addRow({schemeName(scheme), "-", "-", "-"});
                continue;
            }
            const std::string ratio =
                serial_secs[s] > 0.0
                    ? TablePrinter::fmt(serial_secs[s] / secs, 2) +
                          "x"
                    : "-";
            stable.addRow({schemeName(scheme),
                           TablePrinter::fmt(secs, 3),
                           TablePrinter::fmt(minst / secs, 2),
                           ratio});
            rows.push_back({schemeName(scheme) + "@streamed", secs,
                            minst / secs});
        }
        stable.addNote("decode thread + SPSC ring + tee, oracle "
                       "disabled; the file-sourced lane replays a "
                       "pre-materialized image");
        stable.print();
        std::remove(framed.c_str());
    }

    if (intervals > 1) {
        // Interval mode: the same cell sharded into K concurrently
        // simulated regions (default driver warmup). The shards do
        // extra warmup work, so perfect scaling is K_effective =
        // measured / (measured/K + warmup) — report raw speedup and
        // let the table speak.
        TablePrinter itable(
            "Interval-parallel throughput (--intervals " +
            std::to_string(intervals) + ", best of " +
            std::to_string(reps) + ")");
        itable.setHeader(
            {"scheme", "seconds", "Minst/s", "speedup vs serial"});
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SchemeSpec &scheme = schemes[s];
            const double secs = bestSeconds(reps, [&] {
                (void)runShardedCell(context, scheme,
                                     static_cast<unsigned>(
                                         intervals),
                                     kDefaultIntervalWarmup);
            });
            if (secs <= 0.0 || serial_secs[s] <= 0.0) {
                itable.addRow({schemeName(scheme), "-", "-", "-"});
                continue;
            }
            itable.addRow(
                {schemeName(scheme), TablePrinter::fmt(secs, 3),
                 TablePrinter::fmt(minst / secs, 2),
                 TablePrinter::fmt(serial_secs[s] / secs, 2) + "x"});
            rows.push_back({schemeName(scheme) + "@intervals=" +
                                std::to_string(intervals),
                            secs, minst / secs});
        }
        itable.addNote("merged shard results; functional warming + " +
                       std::to_string(kDefaultIntervalWarmup) +
                       "-instruction timed warmup per shard");
        itable.print();
    }

    std::ofstream json("BENCH_throughput.json");
    writeBenchJson(
        json, "throughput",
        {{"workload", params.name},
         {"instructions", std::to_string(params.instructions)},
         {"repetitions", std::to_string(reps)},
         {"intervals", std::to_string(intervals)}},
        rows);
    if (json)
        std::printf("wrote BENCH_throughput.json\n");
    else
        std::fprintf(stderr, "failed writing BENCH_throughput.json\n");
    Telemetry::close(); // no-op unless ACIC_BENCH_TELEMETRY opened it
    return 0;
}
