/**
 * @file
 * bench_throughput — host-side simulator throughput: simulated
 * instructions per host second, per scheme. This is the number the
 * stats hot path and any other per-fetch-bundle work is judged by;
 * sweep wall-clock is (cells x instructions) / this rate. Each
 * scheme is run several times and the best repetition is reported,
 * so the table is a noise-resistant before/after comparison for
 * performance PRs.
 *
 * Usage: bench_throughput [scheme-list] [repetitions]
 *   scheme-list   registry specs, default
 *                 "lru,srrip,acic,acic_instant,opt_bypass"
 *   repetitions   timed runs per scheme, default 3 (best is kept)
 * ACIC_TRACE_LEN overrides the 2M-instruction default trace length.
 */

#include <chrono>
#include <cstdlib>

#include "bench_util.hh"

using namespace acic;
using namespace acic::bench;

int
main(int argc, char **argv)
{
    const char *list =
        argc > 1 ? argv[1] : "lru,srrip,acic,acic_instant,opt_bypass";
    const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
    if (reps <= 0) {
        std::fprintf(stderr, "repetitions must be positive\n");
        return 2;
    }
    const std::vector<SchemeSpec> schemes = parseSchemeList(list);

    // One representative datacenter workload, materialized the way
    // the experiment driver replays it: the trace image and oracle
    // are built once, outside the timed region, so the measurement
    // isolates the simulation loop itself (not synthetic generation).
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = benchTraceLength();
    params = WorkloadContext::withEnvOverrides(params);
    SharedWorkload context(params);

    TablePrinter table("Simulator throughput (" + params.name + ", " +
                       std::to_string(params.instructions) +
                       " instructions, best of " +
                       std::to_string(reps) + ")");
    table.setHeader({"scheme", "seconds", "Minst/s"});

    for (const SchemeSpec &scheme : schemes) {
        double best = 0.0;
        for (int r = 0; r < reps; ++r) {
            const auto start = std::chrono::steady_clock::now();
            const SimResult result = context.run(scheme);
            const double secs =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            (void)result;
            const double rate =
                secs > 0.0
                    ? static_cast<double>(params.instructions) /
                          secs / 1e6
                    : 0.0;
            if (rate > best)
                best = rate;
        }
        if (best <= 0.0) {
            table.addRow({schemeName(scheme), "-", "-"});
            continue;
        }
        table.addRow({schemeName(scheme),
                      TablePrinter::fmt(
                          static_cast<double>(params.instructions) /
                              (best * 1e6),
                          3),
                      TablePrinter::fmt(best, 2)});
    }
    table.addNote("rate = trace instructions / host seconds of "
                  "Simulator::run (org built inside the timer)");
    table.print();
    return 0;
}
