/**
 * @file
 * bench_throughput — host-side simulator throughput: simulated
 * instructions per host second, per scheme. This is the number the
 * stats hot path and any other per-fetch-bundle work is judged by;
 * sweep wall-clock is (cells x instructions) / this rate. Each
 * scheme is run several times and the best repetition is reported,
 * so the table is a noise-resistant before/after comparison for
 * performance PRs.
 *
 * The file-sourced and streamed lanes are timed *interleaved* — for
 * each scheme every repetition runs one file-backed pass immediately
 * followed by one streamed pass — so the streamed-vs-file ratio is
 * an A/B comparison under the same transient machine conditions,
 * not two tables measured minutes apart. Both lanes gate the
 * perf-trajectory check (ci/check_throughput.py).
 *
 * A serve-scaling lane times the full multi-scheme `acic_run serve`
 * round loop (resident engines, lockstep rounds) serial vs parallel
 * to show how N resident schemes scale with cores; its labels start
 * with "serve" and stay informational in the perf gate because the
 * speedup is a property of the runner's core count.
 *
 * With an interval count the bench also measures interval-parallel
 * throughput (runShardedCell: K concurrently simulated regions of
 * the same trace, merged) and reports the intra-workload scaling
 * each scheme achieves over its own serial pass.
 *
 * Results are also written to BENCH_throughput.json (driver emitter
 * format) so the performance trajectory is tracked across PRs.
 *
 * Usage: bench_throughput [scheme-list] [repetitions] [intervals]
 *   scheme-list   registry specs, default
 *                 "lru,srrip,acic,acic_instant,opt_bypass"
 *   repetitions   timed runs per scheme, default 3 (best is kept)
 *   intervals     interval-mode shard count, default 0 (off)
 * ACIC_TRACE_LEN overrides the 2M-instruction default trace length.
 */

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <thread>

#include "bench_util.hh"
#include "common/telemetry.hh"
#include "driver/emitters.hh"
#include "driver/experiment.hh"
#include "driver/serve.hh"
#include "sim/engine.hh"
#include "sim/scheme.hh"
#include "trace/streaming.hh"
#include "trace/synthetic.hh"

using namespace acic;
using namespace acic::bench;

namespace {

/** Wall seconds of one call of @p fn. */
template <typename Fn>
double
timedSeconds(Fn &&fn)
{
    const auto start = std::chrono::steady_clock::now();
    fn();
    return std::chrono::duration<double>(
               std::chrono::steady_clock::now() - start)
        .count();
}

/** Best-of-@p reps wall seconds of @p fn. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        const double secs = timedSeconds(fn);
        if (best == 0.0 || secs < best)
            best = secs;
    }
    return best;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *list =
        argc > 1 ? argv[1] : "lru,srrip,acic,acic_instant,opt_bypass";
    const int reps = argc > 2 ? std::atoi(argv[2]) : 3;
    if (reps <= 0) {
        std::fprintf(stderr, "repetitions must be positive\n");
        return 2;
    }
    const int intervals = argc > 3 ? std::atoi(argv[3]) : 0;
    if (intervals < 0) {
        std::fprintf(stderr, "intervals must be non-negative\n");
        return 2;
    }
    const std::vector<SchemeSpec> schemes = parseSchemeList(list);

    // ACIC_BENCH_TELEMETRY=out.jsonl opens the telemetry sink so the
    // timed runs emit phase spans and heartbeats — the bench then
    // measures the *enabled*-mode overhead instead of the default
    // disabled path (one predictable branch, no measurable cost).
    if (const char *tel = std::getenv("ACIC_BENCH_TELEMETRY")) {
        if (!Telemetry::open(tel)) {
            std::fprintf(stderr, "failed opening %s\n", tel);
            return 1;
        }
        std::printf("telemetry enabled -> %s\n", tel);
    }

    // One representative datacenter workload, materialized the way
    // the experiment driver replays it: the trace image and oracle
    // are built once, outside the timed region, so the measurement
    // isolates the simulation loop itself (not synthetic generation).
    WorkloadParams params = Workloads::datacenter().front();
    params.instructions = benchTraceLength();
    params = WorkloadContext::withEnvOverrides(params);
    SharedWorkload context(params);
    const double minst =
        static_cast<double>(params.instructions) / 1e6;

    // The same workload framed once to a file (outside every timed
    // region) for the streamed lanes, consumed the way `acic_run
    // serve` consumes live traffic — decode thread, bounded ring,
    // zero-copy tee fan-out, no oracle.
    const std::string framed = "bench_stream.acis";
    {
        SyntheticWorkload synth(params);
        std::ofstream out(framed,
                          std::ios::binary | std::ios::trunc);
        StreamTraceWriter writer(out, params.name);
        TraceInst inst;
        while (synth.next(inst))
            writer.append(inst);
        writer.finish();
    }
    const SimConfig config;
    const std::uint64_t warm = static_cast<std::uint64_t>(
        static_cast<double>(params.instructions) *
        config.warmupFraction);
    const auto streamed_pass = [&](const SchemeSpec &scheme) {
        auto source = StreamingTraceSource::openPath(framed);
        StreamTee tee(*source, 1);
        auto org = makeScheme(scheme, config);
        SimEngine engine(config, tee.cursor(0), *org);
        engine.warmUp(warm);
        // Step-and-trim like the serve loop: the tee backlog (and
        // the cache footprint) stays bounded by one step, instead
        // of silently buffering the whole decoded stream.
        std::uint64_t target = warm;
        while (target < params.instructions) {
            const std::uint64_t step = std::min<std::uint64_t>(
                65'536, params.instructions - target);
            engine.measure(step);
            target += step;
            tee.trim();
        }
        (void)engine.finish();
    };

    std::vector<BenchRow> rows;

    TablePrinter table("Simulator throughput (" + params.name + ", " +
                       std::to_string(params.instructions) +
                       " instructions, best of " +
                       std::to_string(reps) + ")");
    table.setHeader({"scheme", "seconds", "Minst/s"});
    TablePrinter stable("Streamed-source throughput (framed "
                        "stream, ring " +
                        std::to_string(StreamingTraceSource::
                                           kDefaultRingRecords) +
                        ", A/B-interleaved with the file lane, "
                        "best of " +
                        std::to_string(reps) + ")");
    stable.setHeader(
        {"scheme", "seconds", "Minst/s", "vs file-sourced"});

    std::vector<double> serial_secs(schemes.size(), 0.0);
    std::vector<BenchRow> streamed_rows;
    for (std::size_t s = 0; s < schemes.size(); ++s) {
        const SchemeSpec &scheme = schemes[s];
        // Interleave the two lanes repetition by repetition: any
        // machine-speed transient hits both sides equally, so the
        // streamed/file ratio is trustworthy.
        double file_best = 0.0, stream_best = 0.0;
        for (int r = 0; r < reps; ++r) {
            const double fs =
                timedSeconds([&] { (void)context.run(scheme); });
            if (file_best == 0.0 || fs < file_best)
                file_best = fs;
            const double ss =
                timedSeconds([&] { streamed_pass(scheme); });
            if (stream_best == 0.0 || ss < stream_best)
                stream_best = ss;
        }
        serial_secs[s] = file_best;
        if (file_best <= 0.0) {
            table.addRow({schemeName(scheme), "-", "-"});
        } else {
            table.addRow({schemeName(scheme),
                          TablePrinter::fmt(file_best, 3),
                          TablePrinter::fmt(minst / file_best, 2)});
            rows.push_back(
                {schemeName(scheme), file_best, minst / file_best});
        }
        if (stream_best <= 0.0) {
            stable.addRow({schemeName(scheme), "-", "-", "-"});
        } else {
            const std::string ratio =
                file_best > 0.0
                    ? TablePrinter::fmt(file_best / stream_best, 2) +
                          "x"
                    : "-";
            stable.addRow({schemeName(scheme),
                           TablePrinter::fmt(stream_best, 3),
                           TablePrinter::fmt(minst / stream_best, 2),
                           ratio});
            streamed_rows.push_back({schemeName(scheme) + "@streamed",
                                     stream_best,
                                     minst / stream_best});
        }
    }
    table.addNote("rate = trace instructions / host seconds of "
                  "Simulator::run (org built inside the timer)");
    table.print();
    stable.addNote("decode thread + chunk ring + zero-copy tee, "
                   "oracle disabled; the file-sourced lane replays "
                   "a pre-materialized image");
    stable.print();
    for (BenchRow &row : streamed_rows)
        rows.push_back(std::move(row));

    unsigned serve_threads = 0;
    if (schemes.size() > 1) {
        // Serve scaling lane: all schemes resident over one stream,
        // stepped in lockstep rounds — exactly the `acic_run serve`
        // hot loop — serial vs one-engine-per-task parallel rounds.
        const auto serve_pass = [&](unsigned threads) {
            auto source = StreamingTraceSource::openPath(framed);
            StreamTee tee(*source,
                          static_cast<unsigned>(schemes.size()));
            std::vector<std::unique_ptr<IcacheOrg>> orgs;
            std::vector<std::unique_ptr<SimEngine>> engines;
            orgs.reserve(schemes.size());
            engines.reserve(schemes.size());
            for (std::size_t i = 0; i < schemes.size(); ++i) {
                orgs.push_back(makeScheme(schemes[i], config));
                engines.push_back(std::make_unique<SimEngine>(
                    config, tee.cursor(static_cast<unsigned>(i)),
                    *orgs[i], nullptr));
            }
            LockstepOptions lockstep;
            lockstep.warmup = warm;
            lockstep.threads = threads;
            (void)runLockstepRounds(tee, engines, config, lockstep,
                                    nullptr, nullptr, nullptr);
            for (auto &engine : engines)
                (void)engine->finish();
        };
        const unsigned hw = std::thread::hardware_concurrency();
        serve_threads = static_cast<unsigned>(
            std::min<std::size_t>(schemes.size(), hw == 0 ? 1 : hw));
        const std::string tag =
            "serve" + std::to_string(schemes.size());
        // Interleaved A/B again: serial round, then parallel round.
        double serial_best = 0.0, parallel_best = 0.0;
        for (int r = 0; r < reps; ++r) {
            const double ss = timedSeconds([&] { serve_pass(1); });
            if (serial_best == 0.0 || ss < serial_best)
                serial_best = ss;
            const double ps = timedSeconds([&] { serve_pass(0); });
            if (parallel_best == 0.0 || ps < parallel_best)
                parallel_best = ps;
        }
        const double agg =
            minst * static_cast<double>(schemes.size());
        TablePrinter vtable(
            "Multi-scheme serve scaling (" +
            std::to_string(schemes.size()) +
            " resident engines, lockstep rounds, best of " +
            std::to_string(reps) + ")");
        vtable.setHeader(
            {"rounds", "threads", "seconds", "Minst/s", "speedup"});
        if (serial_best > 0.0) {
            vtable.addRow({"serial", "1",
                           TablePrinter::fmt(serial_best, 3),
                           TablePrinter::fmt(agg / serial_best, 2),
                           "1.00x"});
            rows.push_back({tag + "-serial", serial_best,
                            agg / serial_best});
        }
        if (parallel_best > 0.0) {
            vtable.addRow(
                {"parallel", std::to_string(serve_threads),
                 TablePrinter::fmt(parallel_best, 3),
                 TablePrinter::fmt(agg / parallel_best, 2),
                 serial_best > 0.0
                     ? TablePrinter::fmt(
                           serial_best / parallel_best, 2) +
                           "x"
                     : "-"});
            rows.push_back({tag + "-parallel", parallel_best,
                            agg / parallel_best});
        }
        vtable.addNote("aggregate rate = engines x instructions / "
                       "wall; speedup is bounded by the runner's "
                       "core count");
        vtable.print();
    }
    std::remove(framed.c_str());

    if (intervals > 1) {
        // Interval mode: the same cell sharded into K concurrently
        // simulated regions (default driver warmup). The shards do
        // extra warmup work, so perfect scaling is K_effective =
        // measured / (measured/K + warmup) — report raw speedup and
        // let the table speak.
        TablePrinter itable(
            "Interval-parallel throughput (--intervals " +
            std::to_string(intervals) + ", best of " +
            std::to_string(reps) + ")");
        itable.setHeader(
            {"scheme", "seconds", "Minst/s", "speedup vs serial"});
        for (std::size_t s = 0; s < schemes.size(); ++s) {
            const SchemeSpec &scheme = schemes[s];
            const double secs = bestSeconds(reps, [&] {
                (void)runShardedCell(context, scheme,
                                     static_cast<unsigned>(
                                         intervals),
                                     kDefaultIntervalWarmup);
            });
            if (secs <= 0.0 || serial_secs[s] <= 0.0) {
                itable.addRow({schemeName(scheme), "-", "-", "-"});
                continue;
            }
            itable.addRow(
                {schemeName(scheme), TablePrinter::fmt(secs, 3),
                 TablePrinter::fmt(minst / secs, 2),
                 TablePrinter::fmt(serial_secs[s] / secs, 2) + "x"});
            rows.push_back({schemeName(scheme) + "@intervals=" +
                                std::to_string(intervals),
                            secs, minst / secs});
        }
        itable.addNote("merged shard results; functional warming + " +
                       std::to_string(kDefaultIntervalWarmup) +
                       "-instruction timed warmup per shard");
        itable.print();
    }

    std::ofstream json("BENCH_throughput.json");
    writeBenchJson(
        json, "throughput",
        {{"workload", params.name},
         {"instructions", std::to_string(params.instructions)},
         {"repetitions", std::to_string(reps)},
         {"intervals", std::to_string(intervals)},
         {"serve_threads", std::to_string(serve_threads)}},
        rows);
    if (json)
        std::printf("wrote BENCH_throughput.json\n");
    else
        std::fprintf(stderr, "failed writing BENCH_throughput.json\n");
    Telemetry::close(); // no-op unless ACIC_BENCH_TELEMETRY opened it
    return 0;
}
