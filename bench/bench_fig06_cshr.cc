/**
 * @file
 * Regenerates Fig. 6: distribution of how many CSHR insertions elapse
 * before a comparison resolves, in data caching. A pair needing fewer
 * than N intervening insertions would resolve inside an N-entry
 * fully-associative LRU CSHR; the paper picks 256 entries because
 * ~70% of comparisons complete within that budget.
 *
 * The ACIC organizations come from the scheme registry, so the
 * finite-CSHR validation sweep below labels each row with its spec
 * string ("acic(cshr=64)") instead of a bare "ACIC".
 */

#include "bench_util.hh"
#include "common/logging.hh"
#include "core/filtered_icache.hh"

using namespace acic;
using namespace acic::bench;

namespace {

/** The registry-built ACIC org plus its AcicAdmission internals. */
struct AcicInstance
{
    std::unique_ptr<IcacheOrg> org;
    FilteredIcache *filtered = nullptr;
    AcicAdmission *admission = nullptr;
};

AcicInstance
buildAcic(const std::string &spec, const SimConfig &config)
{
    AcicInstance inst;
    inst.org = makeScheme(parseScheme(spec), config);
    inst.filtered = dynamic_cast<FilteredIcache *>(inst.org.get());
    inst.admission = inst.filtered
                         ? dynamic_cast<AcicAdmission *>(
                               &inst.filtered->admission())
                         : nullptr;
    if (!inst.admission)
        ACIC_FATAL("registry spec did not build an ACIC org");
    return inst;
}

} // namespace

int
main()
{
    auto params = Workloads::byName("data_caching");
    params.instructions = benchTraceLength();
    WorkloadContext context(params);

    // Unbounded-CSHR lifetime profile (the figure itself), measured
    // on the registry's default ACIC organization.
    CshrLifetimeProfiler profiler;
    auto inst = buildAcic("acic", context.config());
    inst.admission->setLifetimeProfiler(&profiler);
    context.run(*inst.org);
    profiler.finalize();

    const Histogram &hist = profiler.distribution();
    TablePrinter table("Fig. 6: comparisons resolved within N CSHR "
                       "insertions (data caching)");
    table.setHeader({"insertions until resolution", "percent",
                     "cumulative"});
    double cumulative = 0.0;
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
        cumulative += hist.percent(b);
        table.addRow({hist.label(b),
                      TablePrinter::fmt(hist.percent(b), 2) + "%",
                      TablePrinter::fmt(cumulative, 2) + "%"});
    }
    table.addNote("paper: 31.43% within 50, ~70% within 256 entries, "
                  "23.13% unresolved (InF)");
    table.print();

    // Validation sweep: finite CSHR capacities through the registry.
    // Each row's label is the org's own display name, so the CSHR
    // size is visible in the output.
    TablePrinter sizes("CSHR capacity sweep: fetch-resolved vs "
                       "forced-by-eviction comparisons");
    sizes.setHeader({"organization", "resolved", "forced",
                     "resolved share"});
    for (const char *spec :
         {"acic(cshr=64)", "acic(cshr=128)", "acic(cshr=256)",
          "acic(cshr=512)"}) {
        auto variant = buildAcic(spec, context.config());
        context.run(*variant.org);
        const Cshr &cshr = variant.admission->cshr();
        const std::uint64_t resolved = cshr.resolvedCount();
        const std::uint64_t forced = cshr.forcedCount();
        const std::uint64_t total = resolved + forced;
        sizes.addRow(
            {variant.org->name(), std::to_string(resolved),
             std::to_string(forced),
             TablePrinter::pct(total == 0
                                   ? 0.0
                                   : static_cast<double>(resolved) /
                                         static_cast<double>(total),
                               1)});
    }
    sizes.addNote("larger CSHRs resolve more comparisons by fetch "
                  "instead of forcing benefit-of-the-doubt "
                  "evictions");
    sizes.print();
    return 0;
}
