/**
 * @file
 * Regenerates Fig. 6: distribution of how many CSHR insertions elapse
 * before a comparison resolves, in data caching. A pair needing fewer
 * than N intervening insertions would resolve inside an N-entry
 * fully-associative LRU CSHR; the paper picks 256 entries because
 * ~70% of comparisons complete within that budget.
 */

#include "bench_util.hh"
#include "core/filtered_icache.hh"

using namespace acic;
using namespace acic::bench;

int
main()
{
    auto params = Workloads::byName("data_caching");
    params.instructions = benchTraceLength();
    WorkloadContext context(params);

    CshrLifetimeProfiler profiler;
    auto org = makeAcicOrg(context.config(), PredictorConfig{},
                           CshrConfig{});
    auto *admission =
        dynamic_cast<AcicAdmission *>(&org->admission());
    admission->setLifetimeProfiler(&profiler);
    context.run(*org);
    profiler.finalize();

    const Histogram &hist = profiler.distribution();
    TablePrinter table("Fig. 6: comparisons resolved within N CSHR "
                       "insertions (data caching)");
    table.setHeader({"insertions until resolution", "percent",
                     "cumulative"});
    double cumulative = 0.0;
    for (std::size_t b = 0; b < hist.buckets(); ++b) {
        cumulative += hist.percent(b);
        table.addRow({hist.label(b),
                      TablePrinter::fmt(hist.percent(b), 2) + "%",
                      TablePrinter::fmt(cumulative, 2) + "%"});
    }
    table.addNote("paper: 31.43% within 50, ~70% within 256 entries, "
                  "23.13% unresolved (InF)");
    table.print();
    return 0;
}
