/**
 * @file
 * Policy comparison example: run the full scheme catalogue on one
 * workload and print a compact Fig. 10/11-style table (speedup and
 * MPKI reduction vs. the LRU+FDP baseline), plus the i-Filter
 * admission statistics for the filtered schemes.
 *
 * Usage: policy_comparison [workload] [instructions]
 */

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/table.hh"
#include "sim/runner.hh"

using namespace acic;

int
main(int argc, char **argv)
{
    const std::string workload_name =
        argc > 1 ? argv[1] : "neo4j_analytics";
    WorkloadParams params = Workloads::byName(workload_name);
    params.instructions =
        argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2]))
                 : 2'000'000;

    WorkloadContext context(params);
    const SimResult base = context.run("lru");

    const std::vector<SchemeSpec> kSchemes = parseSchemeList(
        "srrip,ship,harmony,ghrp,dsb,obm,vvc,vc3k,always_insert,"
        "acic,l1i36k,opt,opt_bypass");

    TablePrinter table("Scheme comparison on " + params.name +
                       " (baseline LRU+FDP: " +
                       TablePrinter::fmt(base.mpki(), 2) + " MPKI, " +
                       TablePrinter::fmt(base.ipc(), 2) + " IPC)");
    table.setHeader({"scheme", "speedup", "MPKI", "MPKI reduction",
                     "admit rate", "storage KB"});
    for (const SchemeSpec &scheme : kSchemes) {
        auto org = makeScheme(scheme, context.config());
        const SimResult r = context.run(*org);
        const double speedup = static_cast<double>(base.cycles) /
                               static_cast<double>(r.cycles);
        const double reduction =
            base.mpki() == 0.0
                ? 0.0
                : (base.mpki() - r.mpki()) / base.mpki();
        std::string admit = "-";
        const std::uint64_t victims =
            r.orgStats.get("filtered.filter_victims");
        if (victims > 0) {
            admit = TablePrinter::pct(
                static_cast<double>(
                    r.orgStats.get("filtered.victims_admitted")) /
                    static_cast<double>(victims),
                0);
        }
        table.addRow({r.scheme, TablePrinter::fmt(speedup, 4),
                      TablePrinter::fmt(r.mpki(), 2),
                      TablePrinter::pct(reduction, 1), admit,
                      TablePrinter::fmt(
                          static_cast<double>(
                              org->storageOverheadBits()) /
                              8.0 / 1024.0,
                          2)});
    }
    table.print();
    return 0;
}
