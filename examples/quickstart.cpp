/**
 * @file
 * Quickstart: simulate one datacenter workload under the baseline
 * LRU i-cache, ACIC, and the OPT oracle, and print the headline
 * metrics the paper reports (speedup, MPKI reduction, storage).
 *
 * Usage: quickstart [workload_name] [instructions]
 *   e.g. quickstart web_search 2000000
 */

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/table.hh"
#include "core/storage.hh"
#include "sim/runner.hh"

using namespace acic;

int
main(int argc, char **argv)
{
    const std::string workload_name =
        argc > 1 ? argv[1] : "media_streaming";
    WorkloadParams params = Workloads::byName(workload_name);
    if (argc > 2)
        params.instructions =
            static_cast<std::uint64_t>(std::atoll(argv[2]));

    std::printf("ACIC quickstart: workload '%s', %llu instructions\n",
                params.name.c_str(),
                static_cast<unsigned long long>(params.instructions));

    WorkloadContext context(params);

    const SimResult base = context.run("lru");
    const SimResult acic = context.run("acic");
    const SimResult opt = context.run("opt");

    TablePrinter table("Quickstart: LRU baseline vs ACIC vs OPT");
    table.setHeader({"scheme", "IPC", "L1i MPKI", "speedup",
                     "MPKI reduction"});
    const auto row = [&](const SimResult &r) {
        const double speedup = static_cast<double>(base.cycles) /
                               static_cast<double>(r.cycles);
        const double mpki_red =
            base.mpki() == 0.0
                ? 0.0
                : (base.mpki() - r.mpki()) / base.mpki();
        table.addRow({r.scheme, TablePrinter::fmt(r.ipc(), 3),
                      TablePrinter::fmt(r.mpki(), 2),
                      TablePrinter::fmt(speedup, 4),
                      TablePrinter::pct(mpki_red)});
    };
    row(base);
    row(acic);
    row(opt);
    table.print();

    const auto breakdown = acicStorageBreakdown();
    std::printf("\nACIC hardware budget: %.2f KB "
                "(paper: 2.67 KB)\n",
                static_cast<double>(totalBits(breakdown)) / 8.0 /
                    1024.0);
    std::printf("demand accesses: %llu, branch mispredicts: %llu, "
                "prefetches: %llu\n",
                static_cast<unsigned long long>(base.demandAccesses),
                static_cast<unsigned long long>(
                    base.branchMispredicts),
                static_cast<unsigned long long>(
                    base.prefetchesIssued));
    return 0;
}
