/**
 * @file
 * Workload locality probe: prints, for each datacenter workload, the
 * code footprint, the demand-access statistics, the Fig. 1a
 * reuse-distance buckets, and the miss rate of a bare 512-block LRU
 * cache over the block sequence (timing-free). Useful for verifying
 * that a synthetic workload preset has the locality structure its
 * real counterpart shows in the paper.
 */

#include <cstdio>
#include <memory>

#include "cache/lru.hh"
#include "cache/set_assoc.hh"
#include "common/table.hh"
#include "sim/oracle.hh"
#include "sim/reuse.hh"
#include "trace/synthetic.hh"
#include "trace/workload_params.hh"

using namespace acic;

int
main(int argc, char **argv)
{
    auto presets = Workloads::datacenter();
    if (argc > 1) {
        presets = {Workloads::byName(argv[1])};
    }

    TablePrinter table("Workload locality profile (Fig. 1a buckets)");
    table.setHeader({"workload", "blocks", "accesses", "d=0", "1-16",
                     "16-512", "512-1024", "1024-10k", ">10k",
                     "LRU512 miss%", "br/ki"});

    for (auto params : presets) {
        params.instructions = 2'000'000;
        SyntheticWorkload trace(params);
        const DemandOracle oracle = DemandOracle::build(trace);

        ReuseProfiler profiler(oracle.length());
        SetAssocCache lru(64, 8, std::make_unique<LruPolicy>());
        std::uint64_t misses = 0;
        for (std::uint64_t i = 0; i < oracle.length(); ++i) {
            const BlockAddr blk = oracle.blockAt(i);
            profiler.feed(blk);
            CacheAccess access;
            access.blk = blk;
            if (!lru.lookup(access)) {
                ++misses;
                lru.fill(access);
            }
        }

        // Branch statistics.
        trace.reset();
        TraceInst inst;
        std::uint64_t branches = 0;
        std::uint64_t conds = 0;
        while (trace.next(inst)) {
            if (inst.isBranch())
                ++branches;
            if (inst.kind == BranchKind::Cond)
                ++conds;
        }

        const auto &hist = profiler.distribution();
        table.addRow(
            {params.name, std::to_string(oracle.distinctBlocks()),
             std::to_string(oracle.length()),
             TablePrinter::fmt(hist.percent(0), 1),
             TablePrinter::fmt(hist.percent(1), 1),
             TablePrinter::fmt(hist.percent(2), 1),
             TablePrinter::fmt(hist.percent(3), 2),
             TablePrinter::fmt(hist.percent(4), 2),
             TablePrinter::fmt(hist.percent(5), 2),
             TablePrinter::fmt(100.0 * static_cast<double>(misses) /
                                   static_cast<double>(
                                       oracle.length()),
                               1),
             TablePrinter::fmt(
                 1000.0 * static_cast<double>(branches) /
                     static_cast<double>(params.instructions),
                 0)});
    }
    table.print();
    return 0;
}
